//! Property-based tests of the entropy quality metric.
//!
//! These properties mirror the paper's Lemmas:
//! * Lemma 7: the finishing probability function is non-decreasing in the set
//!   of executed subtasks;
//! * Lemma 6: the finishing probability function is submodular;
//! * Lemma 2: the task quality `q` is non-decreasing and submodular.
//!
//! The entropy-composition argument requires `p ≤ 1/e`, which holds whenever
//! `m ≥ 3`; the generators below therefore use `m ≥ 4`.
//!
//! Each property is checked over a seeded stream of random instances (the
//! workspace vendors a deterministic `rand`, so failures are reproducible
//! from the case index alone).

use std::collections::BTreeSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tcsc_core::quality::QualityEvaluator;

/// Number of random cases checked per property.
const CASES: usize = 400;

/// Builds an evaluator with the given executed slots.
fn evaluator(m: usize, k: usize, executed: &BTreeSet<usize>) -> QualityEvaluator {
    let mut ev = QualityEvaluator::with_slots(m, k);
    for &s in executed {
        ev.execute(s);
    }
    ev
}

/// Generates one random instance: (m, k, executed-set, candidate slot).
fn instance(rng: &mut StdRng) -> (usize, usize, BTreeSet<usize>, usize) {
    let m = rng.gen_range(4usize..60);
    let k = rng.gen_range(1usize..6);
    let set_size = rng.gen_range(0..m.min(12));
    // Partial Fisher-Yates: draw exactly `set_size` *distinct* slots so the
    // set-size distribution matches the drawn size (duplicates would skew
    // small-m instances away from near-maximal executed sets).
    let mut slots: Vec<usize> = (0..m).collect();
    for i in 0..set_size {
        let j = rng.gen_range(i..m);
        slots.swap(i, j);
    }
    let executed: BTreeSet<usize> = slots[..set_size].iter().copied().collect();
    let extra = rng.gen_range(0..m);
    (m, k, executed, extra)
}

/// Executing one more subtask never decreases any finishing probability
/// (Lemma 7), and never decreases the task quality (Lemma 2).
#[test]
fn quality_and_probability_are_monotone() {
    let mut rng = StdRng::seed_from_u64(0xA11CE);
    for case in 0..CASES {
        let (m, k, executed, extra) = instance(&mut rng);
        let base = evaluator(m, k, &executed);
        let mut more = base.clone();
        more.execute(extra);

        for j in 0..m {
            assert!(
                more.finishing_probability(j) + 1e-12 >= base.finishing_probability(j),
                "case {case}: p({j}) decreased after executing {extra}"
            );
        }
        assert!(
            more.quality() + 1e-9 >= base.quality(),
            "case {case}: quality decreased"
        );
    }
}

/// Submodularity / diminishing returns of the quality function (Lemma 2):
/// for executed sets A ⊆ B and a slot e ∉ B,
/// q(A ∪ {e}) − q(A) ≥ q(B ∪ {e}) − q(B).
#[test]
fn quality_has_diminishing_returns() {
    let mut rng = StdRng::seed_from_u64(0xB0B);
    let mut checked = 0usize;
    while checked < CASES {
        let (m, k, set_b, extra) = instance(&mut rng);
        if set_b.contains(&extra) {
            continue;
        }
        checked += 1;
        // A is a random subset of B.
        let set_a: BTreeSet<usize> = set_b
            .iter()
            .filter(|_| rng.gen_bool(0.5))
            .copied()
            .collect();

        let a = evaluator(m, k, &set_a);
        let b = evaluator(m, k, &set_b);
        let gain_a = a.gain_if_executed(extra);
        let gain_b = b.gain_if_executed(extra);
        assert!(
            gain_a + 1e-9 >= gain_b,
            "case {checked}: marginal gain grew on the superset: \
             A-gain {gain_a} < B-gain {gain_b}"
        );
    }
}

/// The error ratio stays within [0, 1] and the finishing probability within
/// [0, 1/m] for every slot, regardless of the executed set.
#[test]
fn metric_values_stay_in_range() {
    let mut rng = StdRng::seed_from_u64(0xCAFE);
    for case in 0..CASES {
        let (m, k, executed, _extra) = instance(&mut rng);
        let ev = evaluator(m, k, &executed);
        for j in 0..m {
            let rho = ev.error_ratio(j);
            let p = ev.finishing_probability(j);
            assert!(
                (0.0..=1.0 + 1e-12).contains(&rho),
                "case {case}: rho({j}) = {rho}"
            );
            assert!(
                p >= 0.0 && p <= 1.0 / m as f64 + 1e-12,
                "case {case}: p({j}) = {p}"
            );
        }
        let q = ev.quality();
        assert!(
            q >= 0.0 && q <= (m as f64).log2() + 1e-9,
            "case {case}: q = {q}"
        );
    }
}

/// The incremental gain computation agrees with executing the slot and
/// recomputing the quality from scratch.
#[test]
fn gain_is_consistent_with_recomputation() {
    let mut rng = StdRng::seed_from_u64(0xD00D);
    let mut checked = 0usize;
    while checked < CASES {
        let (m, k, executed, extra) = instance(&mut rng);
        if executed.contains(&extra) {
            continue;
        }
        checked += 1;
        let mut ev = evaluator(m, k, &executed);
        let before = ev.quality();
        let gain = ev.gain_if_executed(extra);
        ev.execute(extra);
        let after = ev.quality();
        assert!(
            (after - before - gain).abs() < 1e-9,
            "case {checked}: incremental gain {gain} disagrees with \
             recomputed {}",
            after - before
        );
    }
}

/// Executing every slot always yields exactly log2(m), independent of the
/// execution order.
#[test]
fn full_execution_reaches_maximum() {
    let mut rng = StdRng::seed_from_u64(0xF00);
    for case in 0..CASES {
        let m = rng.gen_range(4usize..40);
        let k = rng.gen_range(1usize..6);
        // Fisher-Yates shuffle of the execution order.
        let mut order: Vec<usize> = (0..m).collect();
        for i in (1..order.len()).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        let mut ev = QualityEvaluator::with_slots(m, k);
        for s in order {
            ev.execute(s);
        }
        assert!(
            (ev.quality() - (m as f64).log2()).abs() < 1e-9,
            "case {case}: full execution missed the maximum"
        );
    }
}

/// Worker reliability weighting: lowering the reliability of the executing
/// workers never increases the quality.
#[test]
fn reliability_weighting_is_monotone() {
    let mut rng = StdRng::seed_from_u64(0xFADE);
    for case in 0..CASES {
        let (m, k, executed, _extra) = instance(&mut rng);
        let lambda = rng.gen_range(0.05f64..1.0);
        let full = evaluator(m, k, &executed);
        let mut weighted = QualityEvaluator::with_slots(m, k);
        for &s in &executed {
            weighted.execute_with_reliability(s, lambda);
        }
        assert!(
            weighted.quality() <= full.quality() + 1e-9,
            "case {case}: reliability {lambda} increased quality"
        );
    }
}
