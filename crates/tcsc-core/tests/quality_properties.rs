//! Property-based tests of the entropy quality metric.
//!
//! These properties mirror the paper's Lemmas:
//! * Lemma 7: the finishing probability function is non-decreasing in the set
//!   of executed subtasks;
//! * Lemma 6: the finishing probability function is submodular;
//! * Lemma 2: the task quality `q` is non-decreasing and submodular.
//!
//! The entropy-composition argument requires `p ≤ 1/e`, which holds whenever
//! `m ≥ 3`; the generators below therefore use `m ≥ 4`.

use proptest::prelude::*;
use std::collections::BTreeSet;
use tcsc_core::quality::QualityEvaluator;

/// Builds an evaluator with the given executed slots.
fn evaluator(m: usize, k: usize, executed: &BTreeSet<usize>) -> QualityEvaluator {
    let mut ev = QualityEvaluator::with_slots(m, k);
    for &s in executed {
        ev.execute(s);
    }
    ev
}

/// Strategy generating (m, k, executed-set, candidate slot).
fn instances() -> impl Strategy<Value = (usize, usize, BTreeSet<usize>, usize)> {
    (4usize..60, 1usize..6).prop_flat_map(|(m, k)| {
        (
            Just(m),
            Just(k),
            proptest::collection::btree_set(0..m, 0..m.min(12)),
            0..m,
        )
    })
}

proptest! {
    /// Executing one more subtask never decreases any finishing probability
    /// (Lemma 7), and never decreases the task quality (Lemma 2).
    #[test]
    fn quality_and_probability_are_monotone((m, k, executed, extra) in instances()) {
        let base = evaluator(m, k, &executed);
        let mut more = base.clone();
        more.execute(extra);

        for j in 0..m {
            prop_assert!(
                more.finishing_probability(j) + 1e-12 >= base.finishing_probability(j),
                "p({j}) decreased after executing {extra}"
            );
        }
        prop_assert!(more.quality() + 1e-9 >= base.quality());
    }

    /// Submodularity / diminishing returns of the quality function (Lemma 2):
    /// for executed sets A ⊆ B and a slot e ∉ B,
    /// q(A ∪ {e}) − q(A) ≥ q(B ∪ {e}) − q(B).
    #[test]
    fn quality_has_diminishing_returns(
        (m, k, set_b, extra) in instances(),
        subset_selector in proptest::collection::vec(any::<bool>(), 60)
    ) {
        prop_assume!(!set_b.contains(&extra));
        // A is a subset of B chosen by the boolean mask.
        let set_a: BTreeSet<usize> = set_b
            .iter()
            .enumerate()
            .filter(|(i, _)| subset_selector[*i % subset_selector.len()])
            .map(|(_, &s)| s)
            .collect();

        let a = evaluator(m, k, &set_a);
        let b = evaluator(m, k, &set_b);
        let gain_a = a.gain_if_executed(extra);
        let gain_b = b.gain_if_executed(extra);
        prop_assert!(
            gain_a + 1e-9 >= gain_b,
            "marginal gain grew on the superset: A-gain {gain_a} < B-gain {gain_b}"
        );
    }

    /// The error ratio stays within [0, 1] and the finishing probability
    /// within [0, 1/m] for every slot, regardless of the executed set.
    #[test]
    fn metric_values_stay_in_range((m, k, executed, _extra) in instances()) {
        let ev = evaluator(m, k, &executed);
        for j in 0..m {
            let rho = ev.error_ratio(j);
            let p = ev.finishing_probability(j);
            prop_assert!((0.0..=1.0 + 1e-12).contains(&rho), "rho({j}) = {rho}");
            prop_assert!(p >= 0.0 && p <= 1.0 / m as f64 + 1e-12, "p({j}) = {p}");
        }
        let q = ev.quality();
        prop_assert!(q >= 0.0 && q <= (m as f64).log2() + 1e-9, "q = {q}");
    }

    /// The incremental gain computation agrees with executing the slot and
    /// recomputing the quality from scratch.
    #[test]
    fn gain_is_consistent_with_recomputation((m, k, executed, extra) in instances()) {
        prop_assume!(!executed.contains(&extra));
        let mut ev = evaluator(m, k, &executed);
        let before = ev.quality();
        let gain = ev.gain_if_executed(extra);
        ev.execute(extra);
        let after = ev.quality();
        prop_assert!((after - before - gain).abs() < 1e-9);
    }

    /// Executing every slot always yields exactly log2(m), independent of the
    /// execution order.
    #[test]
    fn full_execution_reaches_maximum(m in 4usize..40, k in 1usize..6, seed in any::<u64>()) {
        let mut order: Vec<usize> = (0..m).collect();
        // Deterministic pseudo-shuffle driven by the seed.
        let mut state = seed | 1;
        for i in (1..order.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            order.swap(i, j);
        }
        let mut ev = QualityEvaluator::with_slots(m, k);
        for s in order {
            ev.execute(s);
        }
        prop_assert!((ev.quality() - (m as f64).log2()).abs() < 1e-9);
    }

    /// Worker reliability weighting: lowering the reliability of the executing
    /// workers never increases the quality.
    #[test]
    fn reliability_weighting_is_monotone(
        (m, k, executed, _extra) in instances(),
        lambda in 0.05f64..1.0
    ) {
        let full = evaluator(m, k, &executed);
        let mut weighted = QualityEvaluator::with_slots(m, k);
        for &s in &executed {
            weighted.execute_with_reliability(s, lambda);
        }
        prop_assert!(weighted.quality() <= full.quality() + 1e-9);
    }
}
