//! Spatiotemporal interpolation extension (Appendix C of the paper, "STCC").
//!
//! With multiple TCSC tasks running simultaneously, an unexecuted subtask
//! `τ_i(j)` can be interpolated *temporally* (from executed subtasks of the
//! same task, as in the base metric) or *spatially* (from subtasks executed at
//! the same time slot `j` by *other* tasks).  The combined error ratio is a
//! weighted sum
//!
//! ```text
//! ρ_err = w_s · ρ_s + w_t · ρ_t        with w_s + w_t = 1
//! ```
//!
//! where the spatial error ratio normalises spatial distances by the domain
//! size `|D|` (Eq. 13), so both components stay within `[0, 1]` and the
//! combined metric remains submodular and non-decreasing (the paper's
//! composition argument).  Finishing probabilities and the per-task entropy
//! quality are then defined exactly as in the temporal-only case.

use crate::model::{Domain, Location, SlotIndex};
use crate::quality::{ExecutedSlot, QualityEvaluator, QualityParams};

/// Weights of the spatial and temporal interpolation components.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InterpolationWeights {
    /// Spatial weight `w_s`.
    pub spatial: f64,
    /// Temporal weight `w_t`.
    pub temporal: f64,
}

impl InterpolationWeights {
    /// Creates weights; they must be non-negative and sum to one (within a
    /// small tolerance).
    pub fn new(spatial: f64, temporal: f64) -> Self {
        assert!(
            spatial >= 0.0 && temporal >= 0.0,
            "interpolation weights must be non-negative"
        );
        assert!(
            (spatial + temporal - 1.0).abs() < 1e-9,
            "interpolation weights must sum to 1, got {spatial} + {temporal}"
        );
        Self { spatial, temporal }
    }

    /// The paper's default: `w_t = 0.7`, `w_s = 0.3` (best setting found in
    /// Fig. 11(c)).
    pub fn paper_default() -> Self {
        Self::new(0.3, 0.7)
    }

    /// Temporal-only interpolation (`w_t = 1`), which degenerates the STCC
    /// metric into the base TCSC metric.
    pub fn temporal_only() -> Self {
        Self::new(0.0, 1.0)
    }

    /// Weights from a temporal ratio `w_t ∈ [0, 1]` (the x-axis of
    /// Fig. 11(c)).
    pub fn from_temporal_ratio(temporal: f64) -> Self {
        assert!((0.0..=1.0).contains(&temporal), "w_t must lie in [0, 1]");
        Self::new(1.0 - temporal, temporal)
    }
}

impl Default for InterpolationWeights {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// An executed subtask of some *other* task during the same time slot, used as
/// a spatial interpolation source.
#[derive(Debug, Clone, Copy, PartialEq)]
struct SpatialSource {
    task: usize,
    location: Location,
    reliability: f64,
}

/// Quality evaluator for a *set* of TCSC tasks under spatiotemporal
/// interpolation.
///
/// Task are addressed by their index in the task set (0-based).  Every task
/// must have the same number of slots `m`; the spatial domain is needed for
/// the `|D|` normalisation of spatial distances.
#[derive(Debug, Clone)]
pub struct SpatioTemporalEvaluator {
    params: QualityParams,
    weights: InterpolationWeights,
    domain_size: f64,
    /// Task locations, indexed by task index.
    locations: Vec<Location>,
    /// Per-task temporal evaluators.
    temporal: Vec<QualityEvaluator>,
    /// Per-slot executed subtasks across all tasks (spatial sources).
    by_slot: Vec<Vec<SpatialSource>>,
}

impl SpatioTemporalEvaluator {
    /// Creates an evaluator for tasks at `locations`, each with
    /// `params.num_slots` slots, in `domain`, using `weights`.
    pub fn new(
        locations: Vec<Location>,
        params: QualityParams,
        domain: Domain,
        weights: InterpolationWeights,
    ) -> Self {
        let diagonal = domain.diagonal();
        assert!(diagonal > 0.0, "domain must have a positive extent");
        let temporal = locations
            .iter()
            .map(|_| QualityEvaluator::new(params))
            .collect();
        Self {
            params,
            weights,
            domain_size: diagonal,
            by_slot: vec![Vec::new(); params.num_slots],
            locations,
            temporal,
        }
    }

    /// Number of tasks.
    pub fn num_tasks(&self) -> usize {
        self.locations.len()
    }

    /// Number of slots per task.
    pub fn num_slots(&self) -> usize {
        self.params.num_slots
    }

    /// The interpolation weights in use.
    pub fn weights(&self) -> InterpolationWeights {
        self.weights
    }

    /// The per-task temporal evaluator (read-only), mainly for tests and the
    /// assignment algorithms' bookkeeping.
    pub fn temporal(&self, task: usize) -> &QualityEvaluator {
        &self.temporal[task]
    }

    /// Whether the subtask `(task, slot)` has been executed.
    pub fn is_executed(&self, task: usize, slot: SlotIndex) -> bool {
        self.temporal[task].is_executed(slot)
    }

    /// Marks subtask `(task, slot)` as executed by a worker with reliability
    /// `λ`.  Returns `false` if it was already executed.
    pub fn execute(&mut self, task: usize, slot: SlotIndex, reliability: f64) -> bool {
        if !self.temporal[task].execute_with_reliability(slot, reliability) {
            return false;
        }
        self.by_slot[slot].push(SpatialSource {
            task,
            location: self.locations[task],
            reliability,
        });
        true
    }

    /// Temporal error ratio of subtask `(task, slot)` (Eq. 3 / Eq. 5).
    pub fn temporal_error_ratio(&self, task: usize, slot: SlotIndex) -> f64 {
        self.temporal[task].error_ratio(slot)
    }

    /// Spatial error ratio of subtask `(task, slot)` (Eq. 13): inverse
    /// distance interpolation from the `k` spatially nearest subtasks executed
    /// during the same slot by other tasks, with distances normalised by the
    /// domain size.
    pub fn spatial_error_ratio(&self, task: usize, slot: SlotIndex) -> f64 {
        self.spatial_error_ratio_with_extra(task, slot, None)
    }

    fn spatial_error_ratio_with_extra(
        &self,
        task: usize,
        slot: SlotIndex,
        extra: Option<(usize, f64)>,
    ) -> f64 {
        if self.temporal[task].is_executed(slot) {
            return 0.0;
        }
        if let Some((t, _)) = extra {
            if t == task {
                return 0.0;
            }
        }
        let k = self.params.k;
        let my_loc = self.locations[task];
        // Gather candidate sources: executed subtasks of other tasks at this
        // slot, plus the optional tentative execution.
        let mut dists: Vec<(f64, f64)> = self.by_slot[slot]
            .iter()
            .filter(|s| s.task != task)
            .map(|s| (my_loc.distance(&s.location), s.reliability))
            .collect();
        if let Some((t, reliability)) = extra {
            if t != task && !self.temporal[t].is_executed(slot) {
                dists.push((my_loc.distance(&self.locations[t]), reliability));
            }
        }
        if dists.is_empty() {
            return 1.0;
        }
        dists.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut sum = 0.0;
        for i in 0..k {
            match dists.get(i) {
                // Distances are clamped to |D| so that the ratio stays ≤ 1
                // even for locations on the domain boundary.
                Some(&(d, lambda)) => sum += lambda * d.min(self.domain_size),
                // Padding: missing neighbours count with the largest possible
                // spatial distance |D|.
                None => sum += self.domain_size,
            }
        }
        sum / (k as f64 * self.domain_size)
    }

    /// Combined error ratio `w_s·ρ_s + w_t·ρ_t` of subtask `(task, slot)`.
    pub fn error_ratio(&self, task: usize, slot: SlotIndex) -> f64 {
        self.error_ratio_with_extra(task, slot, None)
    }

    fn error_ratio_with_extra(
        &self,
        task: usize,
        slot: SlotIndex,
        extra: Option<(usize, SlotIndex, f64)>,
    ) -> f64 {
        let temporal_extra = extra.and_then(|(t, s, lambda)| {
            (t == task).then_some(ExecutedSlot {
                slot: s,
                reliability: lambda,
            })
        });
        let spatial_extra = extra.and_then(|(t, s, lambda)| (s == slot).then_some((t, lambda)));
        let rho_t = self.temporal[task].error_ratio_with_extra(slot, temporal_extra);
        let rho_s = self.spatial_error_ratio_with_extra(task, slot, spatial_extra);
        self.weights.spatial * rho_s + self.weights.temporal * rho_t
    }

    /// Finishing probability of subtask `(task, slot)` under spatiotemporal
    /// interpolation.
    pub fn finishing_probability(&self, task: usize, slot: SlotIndex) -> f64 {
        self.finishing_probability_with_extra(task, slot, None)
    }

    fn finishing_probability_with_extra(
        &self,
        task: usize,
        slot: SlotIndex,
        extra: Option<(usize, SlotIndex, f64)>,
    ) -> f64 {
        let m = self.params.num_slots as f64;
        if let Some(lambda) = self.temporal[task].reliability_of(slot) {
            return lambda / m;
        }
        if let Some((t, s, lambda)) = extra {
            if t == task && s == slot {
                return lambda / m;
            }
        }
        // Zero knowledge: nothing executed anywhere that could interpolate
        // this subtask, neither temporally nor spatially.
        let has_temporal = self.temporal[task].executed_len() > 0
            || extra.map(|(t, _, _)| t == task).unwrap_or(false);
        let has_spatial = self.by_slot[slot].iter().any(|s| s.task != task)
            || extra
                .map(|(t, s, _)| t != task && s == slot)
                .unwrap_or(false);
        if !has_temporal && !has_spatial {
            return 0.0;
        }
        let rho = self.error_ratio_with_extra(task, slot, extra);
        ((1.0 - rho) / m).max(0.0)
    }

    /// Partial quality `−p·log2 p` of subtask `(task, slot)`.
    pub fn partial_quality(&self, task: usize, slot: SlotIndex) -> f64 {
        let p = self.finishing_probability(task, slot);
        if p <= 0.0 {
            0.0
        } else {
            -p * p.log2()
        }
    }

    /// Quality `q(τ_i)` of one task under spatiotemporal interpolation.
    pub fn task_quality(&self, task: usize) -> f64 {
        (0..self.params.num_slots)
            .map(|j| self.partial_quality(task, j))
            .sum()
    }

    /// Summation quality `q_sum(T)` over all tasks.
    pub fn sum_quality(&self) -> f64 {
        (0..self.num_tasks()).map(|i| self.task_quality(i)).sum()
    }

    /// Minimum quality `q_min(T)` over all tasks (zero for an empty set).
    pub fn min_quality(&self) -> f64 {
        (0..self.num_tasks())
            .map(|i| self.task_quality(i))
            .fold(f64::INFINITY, f64::min)
            .to_finite_or_zero()
    }

    /// Gain in **summation quality** of tentatively executing `(task, slot)`
    /// with reliability `λ`.
    ///
    /// The tentative execution affects the task itself (temporal component)
    /// and, through the spatial component, every other task's subtask at the
    /// same slot.
    pub fn sum_gain_if_executed(&self, task: usize, slot: SlotIndex, reliability: f64) -> f64 {
        if self.is_executed(task, slot) {
            return 0.0;
        }
        let extra = Some((task, slot, reliability));
        let mut gain = 0.0;
        // Temporal effect: every slot of the same task may change.
        for j in 0..self.params.num_slots {
            let before = self.partial_quality(task, j);
            let p = self.finishing_probability_with_extra(task, j, extra);
            let after = if p <= 0.0 { 0.0 } else { -p * p.log2() };
            gain += after - before;
        }
        // Spatial effect: other tasks' subtasks at the same slot.
        for other in 0..self.num_tasks() {
            if other == task {
                continue;
            }
            let before = self.partial_quality(other, slot);
            let p = self.finishing_probability_with_extra(other, slot, extra);
            let after = if p <= 0.0 { 0.0 } else { -p * p.log2() };
            gain += after - before;
        }
        gain
    }

    /// Gain in the quality of a *single* task of tentatively executing
    /// `(task, slot)` (used by the max-min objective).
    pub fn task_gain_if_executed(&self, task: usize, slot: SlotIndex, reliability: f64) -> f64 {
        if self.is_executed(task, slot) {
            return 0.0;
        }
        let extra = Some((task, slot, reliability));
        let mut gain = 0.0;
        for j in 0..self.params.num_slots {
            let before = self.partial_quality(task, j);
            let p = self.finishing_probability_with_extra(task, j, extra);
            let after = if p <= 0.0 { 0.0 } else { -p * p.log2() };
            gain += after - before;
        }
        gain
    }
}

trait ToFiniteOrZero {
    fn to_finite_or_zero(self) -> f64;
}

impl ToFiniteOrZero for f64 {
    fn to_finite_or_zero(self) -> f64 {
        if self.is_finite() {
            self
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn evaluator(
        num_tasks: usize,
        m: usize,
        weights: InterpolationWeights,
    ) -> SpatioTemporalEvaluator {
        let domain = Domain::square(100.0);
        let locations: Vec<_> = (0..num_tasks)
            .map(|i| Location::new(10.0 * i as f64, 10.0 * i as f64))
            .collect();
        SpatioTemporalEvaluator::new(locations, QualityParams::new(m, 2), domain, weights)
    }

    #[test]
    fn weights_validation() {
        let w = InterpolationWeights::paper_default();
        assert!((w.spatial - 0.3).abs() < 1e-12);
        assert!((w.temporal - 0.7).abs() < 1e-12);
        let t = InterpolationWeights::from_temporal_ratio(0.25);
        assert!((t.spatial - 0.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn weights_must_sum_to_one() {
        let _ = InterpolationWeights::new(0.5, 0.6);
    }

    #[test]
    fn temporal_only_matches_base_metric() {
        let mut st = evaluator(3, 20, InterpolationWeights::temporal_only());
        let mut base = QualityEvaluator::with_slots(20, 2);
        for slot in [2, 9, 15] {
            st.execute(0, slot, 1.0);
            base.execute(slot);
        }
        // Executions on other tasks must not influence task 0 when w_s = 0.
        st.execute(1, 4, 1.0);
        for j in 0..20 {
            assert!(
                (st.finishing_probability(0, j) - base.finishing_probability(j)).abs() < 1e-12,
                "slot {j}"
            );
        }
        assert!((st.task_quality(0) - base.quality()).abs() < 1e-9);
    }

    #[test]
    fn spatial_interpolation_adds_information() {
        let w = InterpolationWeights::paper_default();
        let mut with_spatial = evaluator(2, 10, w);
        let mut temporal_only = evaluator(2, 10, InterpolationWeights::temporal_only());
        // Execute slot 3 on task 1 only; task 0's slot 3 is spatially
        // interpolated in the first evaluator.
        with_spatial.execute(1, 3, 1.0);
        temporal_only.execute(1, 3, 1.0);
        assert!(with_spatial.finishing_probability(0, 3) > 0.0);
        assert_eq!(temporal_only.finishing_probability(0, 3), 0.0);
        // Task 0 (which executed nothing) gains information purely from the
        // spatial component.
        assert!(with_spatial.task_quality(0) > temporal_only.task_quality(0));
    }

    #[test]
    fn spatial_error_decreases_with_proximity() {
        let w = InterpolationWeights::new(1.0, 0.0);
        let domain = Domain::square(100.0);
        let locations = vec![
            Location::new(0.0, 0.0),
            Location::new(5.0, 0.0),
            Location::new(90.0, 90.0),
        ];
        let mut near =
            SpatioTemporalEvaluator::new(locations.clone(), QualityParams::new(10, 1), domain, w);
        let mut far = SpatioTemporalEvaluator::new(locations, QualityParams::new(10, 1), domain, w);
        near.execute(1, 2, 1.0); // 5 units away from task 0
        far.execute(2, 2, 1.0); // ~127 units away (clamped to |D|)
        assert!(near.spatial_error_ratio(0, 2) < far.spatial_error_ratio(0, 2));
        assert!(far.spatial_error_ratio(0, 2) <= 1.0);
    }

    #[test]
    fn executed_subtask_has_zero_error() {
        let mut st = evaluator(2, 10, InterpolationWeights::paper_default());
        st.execute(0, 5, 1.0);
        assert_eq!(st.error_ratio(0, 5), 0.0);
        assert_eq!(st.spatial_error_ratio(0, 5), 0.0);
        assert!((st.finishing_probability(0, 5) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn sum_gain_matches_execute_then_recompute() {
        let mut st = evaluator(3, 12, InterpolationWeights::paper_default());
        st.execute(0, 2, 1.0);
        st.execute(1, 7, 1.0);
        let before = st.sum_quality();
        let gain = st.sum_gain_if_executed(2, 7, 1.0);
        st.execute(2, 7, 1.0);
        let after = st.sum_quality();
        assert!(
            (after - before - gain).abs() < 1e-9,
            "gain {gain} vs delta {}",
            after - before
        );
    }

    #[test]
    fn sum_quality_is_monotone() {
        let mut st = evaluator(3, 15, InterpolationWeights::paper_default());
        let mut last = st.sum_quality();
        for (task, slot) in [(0, 3), (1, 3), (2, 10), (0, 12), (1, 0)] {
            st.execute(task, slot, 1.0);
            let q = st.sum_quality();
            assert!(q >= last - 1e-9, "sum quality decreased: {last} -> {q}");
            last = q;
        }
    }

    #[test]
    fn min_quality_of_empty_set_is_zero() {
        let st = evaluator(0, 5, InterpolationWeights::paper_default());
        assert_eq!(st.min_quality(), 0.0);
        assert_eq!(st.sum_quality(), 0.0);
    }

    #[test]
    fn double_execute_rejected() {
        let mut st = evaluator(2, 10, InterpolationWeights::paper_default());
        assert!(st.execute(0, 1, 1.0));
        assert!(!st.execute(0, 1, 1.0));
    }

    #[test]
    fn task_gain_ignores_other_tasks() {
        let mut st = evaluator(2, 10, InterpolationWeights::paper_default());
        st.execute(1, 4, 1.0);
        let before = st.task_quality(0);
        let gain = st.task_gain_if_executed(0, 4, 1.0);
        st.execute(0, 4, 1.0);
        let after = st.task_quality(0);
        assert!((after - before - gain).abs() < 1e-9);
    }
}
