//! Core data model for time-continuous spatial crowdsourcing (TCSC).
//!
//! A TCSC [`Task`] occupies a single [`Location`] for a long duration that is
//! divided into `m` equal-sized time slots.  Each time slot corresponds to a
//! [`Subtask`].  A [`Worker`] registers, per time slot, whether she is
//! available and where she is located (derived from her trajectory).  Task
//! assignment maps workers to subtasks; see `tcsc-assign` for the assignment
//! algorithms and `crate::quality` for the entropy-based quality metric.

use std::fmt;

/// Identifier of a TCSC task within a task set `T`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub u32);

/// Identifier of a registered worker within the worker set `W`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WorkerId(pub u32);

/// Zero-based index of a time slot within a task's duration (`0..m`).
///
/// The paper indexes slots `1..=m`; we use zero-based indices internally.
/// Temporal distances `|a, b|` are absolute differences of slot indices and
/// are therefore identical under either convention.
pub type SlotIndex = usize;

/// A point in the two-dimensional spatial domain.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Location {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Location {
    /// Creates a new location.
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Euclidean distance to another location.
    ///
    /// This is the travel-cost primitive of the paper (Section II-A): the cost
    /// of a subtask is the Euclidean distance between the subtask's location
    /// and the assigned worker's location.
    pub fn distance(&self, other: &Location) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }

    /// Squared Euclidean distance (avoids the square root when only ordering
    /// matters, e.g. nearest-neighbour searches in the spatial grid index).
    pub fn distance_sq(&self, other: &Location) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.3}, {:.3})", self.x, self.y)
    }
}

/// Rectangular spatial domain in which tasks and workers live.
///
/// The domain is needed by the spatiotemporal quality extension (Appendix C of
/// the paper): spatial interpolation distances are normalised by the domain
/// size `|D|` so that the spatial error ratio stays within `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Domain {
    /// Minimum corner of the rectangle.
    pub min: Location,
    /// Maximum corner of the rectangle.
    pub max: Location,
}

impl Domain {
    /// Creates a new rectangular domain; panics if the corners are inverted.
    pub fn new(min: Location, max: Location) -> Self {
        assert!(
            min.x <= max.x && min.y <= max.y,
            "domain min corner must not exceed max corner"
        );
        Self { min, max }
    }

    /// A square domain `[0, side] x [0, side]`.
    pub fn square(side: f64) -> Self {
        Self::new(Location::new(0.0, 0.0), Location::new(side, side))
    }

    /// Domain side length along the x axis.
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Domain side length along the y axis.
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Centre of the domain (used as the mean of the Gaussian generator).
    pub fn center(&self) -> Location {
        Location::new(
            (self.min.x + self.max.x) / 2.0,
            (self.min.y + self.max.y) / 2.0,
        )
    }

    /// The normalisation constant `|D|` of the spatial error ratio: the
    /// diagonal length, i.e. the largest possible distance between two points
    /// of the domain.
    pub fn diagonal(&self) -> f64 {
        self.min.distance(&self.max)
    }

    /// Whether a location lies inside the domain (inclusive).
    pub fn contains(&self, loc: &Location) -> bool {
        loc.x >= self.min.x && loc.x <= self.max.x && loc.y >= self.min.y && loc.y <= self.max.y
    }

    /// Clamps a location into the domain.
    pub fn clamp(&self, loc: Location) -> Location {
        Location::new(
            loc.x.clamp(self.min.x, self.max.x),
            loc.y.clamp(self.min.y, self.max.y),
        )
    }
}

impl Default for Domain {
    fn default() -> Self {
        Self::square(100.0)
    }
}

/// Execution state of a subtask (Section II-B).
///
/// All subtasks start as [`SubtaskState::Null`].  When a worker is assigned
/// and probes the value, the state becomes [`SubtaskState::Executed`].  The
/// remaining subtasks are [`SubtaskState::Interpolated`] from the executed
/// ones once at least one subtask has been executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SubtaskState {
    /// No information at all: not executed and nothing to interpolate from.
    #[default]
    Null,
    /// Probed by an assigned worker.
    Executed,
    /// Inferred from executed subtasks by k-NN interpolation.
    Interpolated,
}

/// A subtask `τ(j)`: one time slot of a TCSC task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Subtask {
    /// The task this subtask belongs to.
    pub task: TaskId,
    /// Zero-based slot index `j` within the task.
    pub slot: SlotIndex,
    /// Location inherited from the parent task.
    pub location: Location,
}

/// A TCSC task `τ`: a location observed over `m` consecutive time slots.
#[derive(Debug, Clone, PartialEq)]
pub struct Task {
    /// Identifier of the task.
    pub id: TaskId,
    /// Location `τ.loc` of the task.
    pub location: Location,
    /// Number of subtasks / time slots `m`.
    pub num_slots: usize,
}

impl Task {
    /// Creates a task with `num_slots` subtasks at `location`.
    pub fn new(id: TaskId, location: Location, num_slots: usize) -> Self {
        assert!(num_slots > 0, "a task must have at least one subtask");
        Self {
            id,
            location,
            num_slots,
        }
    }

    /// The subtask at slot `j`.
    ///
    /// # Panics
    /// Panics if `slot >= self.num_slots`.
    pub fn subtask(&self, slot: SlotIndex) -> Subtask {
        assert!(slot < self.num_slots, "slot {slot} out of range");
        Subtask {
            task: self.id,
            slot,
            location: self.location,
        }
    }

    /// Iterator over all subtasks in slot order.
    pub fn subtasks(&self) -> impl Iterator<Item = Subtask> + '_ {
        (0..self.num_slots).map(move |slot| self.subtask(slot))
    }
}

/// A worker's presence during one time slot: where she is and that she is
/// available to take a subtask at that slot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkerSlot {
    /// The time slot during which the worker is available.
    pub slot: SlotIndex,
    /// The worker's location during that slot (from her trajectory).
    pub location: Location,
}

/// A registered worker `w_i` with her availability windows.
///
/// The paper cuts each T-Drive trajectory into pieces of 1–5 time slots that
/// become the worker's active slots; `availability` holds exactly those
/// (slot, location) pairs, sorted by slot.
#[derive(Debug, Clone, PartialEq)]
pub struct Worker {
    /// Identifier of the worker.
    pub id: WorkerId,
    /// Reliability score `λ_i ∈ [0, 1]` (Section II-B, reliability extension).
    /// Defaults to `1.0` (fully reliable), which degenerates the reliability
    /// metric into the basic metric.
    pub reliability: f64,
    /// Sorted list of (slot, location) availability entries.
    availability: Vec<WorkerSlot>,
}

impl Worker {
    /// Creates a fully reliable worker from (slot, location) availability
    /// entries.  Entries are sorted by slot; duplicate slots keep the first
    /// entry.
    pub fn new(id: WorkerId, availability: Vec<WorkerSlot>) -> Self {
        Self::with_reliability(id, availability, 1.0)
    }

    /// Creates a worker with an explicit reliability score.
    ///
    /// # Panics
    /// Panics if `reliability` is not within `[0, 1]`.
    pub fn with_reliability(
        id: WorkerId,
        mut availability: Vec<WorkerSlot>,
        reliability: f64,
    ) -> Self {
        assert!(
            (0.0..=1.0).contains(&reliability),
            "worker reliability must lie in [0, 1], got {reliability}"
        );
        availability.sort_by_key(|ws| ws.slot);
        availability.dedup_by_key(|ws| ws.slot);
        Self {
            id,
            reliability,
            availability,
        }
    }

    /// Sorted availability entries.
    pub fn availability(&self) -> &[WorkerSlot] {
        &self.availability
    }

    /// Whether the worker is available at `slot`, and if so where.
    pub fn location_at(&self, slot: SlotIndex) -> Option<Location> {
        self.availability
            .binary_search_by_key(&slot, |ws| ws.slot)
            .ok()
            .map(|idx| self.availability[idx].location)
    }

    /// Whether the worker is available at `slot`.
    pub fn is_available_at(&self, slot: SlotIndex) -> bool {
        self.location_at(slot).is_some()
    }

    /// Number of slots the worker is available for.
    pub fn availability_len(&self) -> usize {
        self.availability.len()
    }
}

/// A collection of registered workers, the worker set `W`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WorkerPool {
    workers: Vec<Worker>,
}

impl WorkerPool {
    /// Creates a pool from a vector of workers, sorted by id.
    pub fn new(mut workers: Vec<Worker>) -> Self {
        workers.sort_by_key(|w| w.id);
        Self { workers }
    }

    /// An empty pool.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Adds a worker to the pool.
    pub fn push(&mut self, worker: Worker) {
        self.workers.push(worker);
        self.workers.sort_by_key(|w| w.id);
    }

    /// Number of registered workers `n = |W|`.
    pub fn len(&self) -> usize {
        self.workers.len()
    }

    /// Whether the pool has no workers.
    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }

    /// All workers, sorted by id.
    pub fn workers(&self) -> &[Worker] {
        &self.workers
    }

    /// Looks a worker up by id.
    pub fn get(&self, id: WorkerId) -> Option<&Worker> {
        self.workers
            .binary_search_by_key(&id, |w| w.id)
            .ok()
            .map(|idx| &self.workers[idx])
    }

    /// Iterator over workers available at a given slot together with their
    /// location during that slot.
    pub fn available_at(&self, slot: SlotIndex) -> impl Iterator<Item = (&Worker, Location)> + '_ {
        self.workers
            .iter()
            .filter_map(move |w| w.location_at(slot).map(|loc| (w, loc)))
    }

    /// The largest slot index any worker is available at, plus one (i.e. the
    /// horizon covered by the pool), or zero for an empty pool.
    pub fn horizon(&self) -> usize {
        self.workers
            .iter()
            .filter_map(|w| w.availability().last().map(|ws| ws.slot + 1))
            .max()
            .unwrap_or(0)
    }
}

impl FromIterator<Worker> for WorkerPool {
    fn from_iter<I: IntoIterator<Item = Worker>>(iter: I) -> Self {
        Self::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wslot(slot: SlotIndex, x: f64, y: f64) -> WorkerSlot {
        WorkerSlot {
            slot,
            location: Location::new(x, y),
        }
    }

    #[test]
    fn location_distance_is_euclidean() {
        let a = Location::new(0.0, 0.0);
        let b = Location::new(3.0, 4.0);
        assert!((a.distance(&b) - 5.0).abs() < 1e-12);
        assert!((a.distance_sq(&b) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn location_distance_is_symmetric() {
        let a = Location::new(-1.5, 2.0);
        let b = Location::new(7.25, -3.0);
        assert!((a.distance(&b) - b.distance(&a)).abs() < 1e-12);
    }

    #[test]
    fn domain_center_and_diagonal() {
        let d = Domain::square(100.0);
        assert_eq!(d.center(), Location::new(50.0, 50.0));
        assert!((d.diagonal() - (2.0f64).sqrt() * 100.0).abs() < 1e-9);
        assert_eq!(d.width(), 100.0);
        assert_eq!(d.height(), 100.0);
    }

    #[test]
    fn domain_contains_and_clamp() {
        let d = Domain::square(10.0);
        assert!(d.contains(&Location::new(5.0, 5.0)));
        assert!(!d.contains(&Location::new(11.0, 5.0)));
        assert_eq!(d.clamp(Location::new(-2.0, 15.0)), Location::new(0.0, 10.0));
    }

    #[test]
    #[should_panic(expected = "domain min corner")]
    fn domain_rejects_inverted_corners() {
        let _ = Domain::new(Location::new(1.0, 1.0), Location::new(0.0, 0.0));
    }

    #[test]
    fn task_produces_subtasks_in_order() {
        let t = Task::new(TaskId(7), Location::new(1.0, 2.0), 5);
        let subs: Vec<_> = t.subtasks().collect();
        assert_eq!(subs.len(), 5);
        for (j, s) in subs.iter().enumerate() {
            assert_eq!(s.slot, j);
            assert_eq!(s.task, TaskId(7));
            assert_eq!(s.location, t.location);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn task_subtask_out_of_range_panics() {
        let t = Task::new(TaskId(0), Location::default(), 3);
        let _ = t.subtask(3);
    }

    #[test]
    #[should_panic(expected = "at least one subtask")]
    fn task_requires_slots() {
        let _ = Task::new(TaskId(0), Location::default(), 0);
    }

    #[test]
    fn worker_availability_is_sorted_and_queryable() {
        let w = Worker::new(
            WorkerId(1),
            vec![wslot(5, 1.0, 1.0), wslot(2, 0.0, 0.0), wslot(9, 2.0, 2.0)],
        );
        assert_eq!(w.availability_len(), 3);
        assert!(w.is_available_at(2));
        assert!(w.is_available_at(5));
        assert!(!w.is_available_at(3));
        assert_eq!(w.location_at(9), Some(Location::new(2.0, 2.0)));
        assert_eq!(w.location_at(0), None);
        // Sorted.
        let slots: Vec<_> = w.availability().iter().map(|ws| ws.slot).collect();
        assert_eq!(slots, vec![2, 5, 9]);
    }

    #[test]
    fn worker_dedups_duplicate_slots() {
        let w = Worker::new(WorkerId(1), vec![wslot(2, 0.0, 0.0), wslot(2, 1.0, 1.0)]);
        assert_eq!(w.availability_len(), 1);
    }

    #[test]
    #[should_panic(expected = "reliability")]
    fn worker_rejects_bad_reliability() {
        let _ = Worker::with_reliability(WorkerId(0), vec![], 1.5);
    }

    #[test]
    fn pool_lookup_and_available_at() {
        let pool: WorkerPool = vec![
            Worker::new(WorkerId(2), vec![wslot(0, 0.0, 0.0)]),
            Worker::new(WorkerId(1), vec![wslot(0, 5.0, 5.0), wslot(1, 6.0, 6.0)]),
        ]
        .into_iter()
        .collect();
        assert_eq!(pool.len(), 2);
        assert!(pool.get(WorkerId(1)).is_some());
        assert!(pool.get(WorkerId(3)).is_none());
        let at0: Vec<_> = pool.available_at(0).map(|(w, _)| w.id).collect();
        assert_eq!(at0, vec![WorkerId(1), WorkerId(2)]);
        let at1: Vec<_> = pool.available_at(1).map(|(w, _)| w.id).collect();
        assert_eq!(at1, vec![WorkerId(1)]);
        assert_eq!(pool.horizon(), 2);
    }

    #[test]
    fn empty_pool_horizon_is_zero() {
        assert_eq!(WorkerPool::empty().horizon(), 0);
        assert!(WorkerPool::empty().is_empty());
    }
}
