//! # tcsc-core
//!
//! Core data model and quality metric for **Time-Continuous Spatial
//! Crowdsourcing (TCSC)**, reproducing the system described in
//! *"On Efficient and Scalable Time-Continuous Spatial Crowdsourcing"*
//! (ICDE 2021, arXiv:2010.15404).
//!
//! A TCSC task observes one location for a long duration split into `m` time
//! slots; workers with registered availability windows are assigned to
//! individual slots (subtasks).  Because budgets and worker availability are
//! limited, not every slot can be probed, and the unprobed slots are inferred
//! by temporal k-NN inverse-distance interpolation.  The crate provides:
//!
//! * the data model: [`model::Task`], [`model::Subtask`], [`model::Worker`],
//!   [`model::WorkerPool`], locations and the spatial [`model::Domain`];
//! * the cost model and budget accounting: [`cost::CostModel`],
//!   [`cost::EuclideanCost`], [`cost::Budget`];
//! * the entropy-based quality metric with its reliability extension:
//!   [`quality::QualityEvaluator`];
//! * the spatiotemporal (STCC) extension of the metric:
//!   [`spatiotemporal::SpatioTemporalEvaluator`];
//! * assignment-plan result types: [`assignment::AssignmentPlan`],
//!   [`assignment::MultiAssignment`].
//!
//! Assignment algorithms (greedy `Approx`, index-accelerated `Approx*`,
//! exhaustive `OPT`, randomized baselines, and the multi-task / parallel
//! frameworks) live in the `tcsc-assign` crate; indexing structures in
//! `tcsc-index`; workload generators in `tcsc-workload`.
//!
//! ## Example
//!
//! ```
//! use tcsc_core::quality::QualityEvaluator;
//!
//! // A task with 10 slots, interpolating from the 3 nearest executed slots.
//! let mut quality = QualityEvaluator::with_slots(10, 3);
//! assert_eq!(quality.quality(), 0.0);
//!
//! // Executing subtasks raises the entropy-based quality monotonically,
//! // up to log2(10) when everything is executed.
//! quality.execute(2);
//! quality.execute(7);
//! assert!(quality.quality() > 0.0);
//! assert!(quality.quality() <= 10f64.log2());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod assignment;
pub mod cost;
pub mod model;
pub mod quality;
pub mod spatiotemporal;

pub use assignment::{AssignmentPlan, ExecutedSubtask, MultiAssignment};
pub use cost::{Budget, CandidateAssignment, CostModel, EuclideanCost, ManhattanCost, UnitCost};
pub use model::{
    Domain, Location, SlotIndex, Subtask, SubtaskState, Task, TaskId, Worker, WorkerId, WorkerPool,
    WorkerSlot,
};
pub use quality::{ExecutedSlot, Neighbor, QualityEvaluator, QualityParams};
pub use spatiotemporal::{InterpolationWeights, SpatioTemporalEvaluator};
