//! Assignment plans: the output of the task-assignment algorithms.
//!
//! An [`AssignmentPlan`] records, for one task, which worker was assigned to
//! which time slot and at what cost, together with the achieved quality.  A
//! [`MultiAssignment`] aggregates the plans of a task set and exposes the two
//! multi-task objectives of the paper, `q_sum` and `q_min`.

use crate::model::{SlotIndex, TaskId, WorkerId};

/// A single executed subtask within an assignment plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecutedSubtask {
    /// The slot that was executed.
    pub slot: SlotIndex,
    /// The worker assigned to the slot.
    pub worker: WorkerId,
    /// The cost charged for the assignment.
    pub cost: f64,
    /// The reliability of the assigned worker.
    pub reliability: f64,
}

/// The result of assigning a single TCSC task.
#[derive(Debug, Clone, PartialEq)]
pub struct AssignmentPlan {
    /// The task this plan belongs to.
    pub task: TaskId,
    /// Number of slots `m` of the task.
    pub num_slots: usize,
    /// Executed subtasks, in the order the algorithm selected them.
    pub executions: Vec<ExecutedSubtask>,
    /// Quality `q(τ)` achieved by the plan.
    pub quality: f64,
}

impl AssignmentPlan {
    /// An empty plan (nothing executed, quality zero).
    pub fn empty(task: TaskId, num_slots: usize) -> Self {
        Self {
            task,
            num_slots,
            executions: Vec::new(),
            quality: 0.0,
        }
    }

    /// Total cost of the plan.
    pub fn total_cost(&self) -> f64 {
        self.executions.iter().map(|e| e.cost).sum()
    }

    /// Number of executed subtasks.
    pub fn executed_count(&self) -> usize {
        self.executions.len()
    }

    /// Completion ratio: executed subtasks over total subtasks.
    pub fn completion_ratio(&self) -> f64 {
        self.executions.len() as f64 / self.num_slots as f64
    }

    /// The executed slots, sorted.
    pub fn executed_slots(&self) -> Vec<SlotIndex> {
        let mut slots: Vec<_> = self.executions.iter().map(|e| e.slot).collect();
        slots.sort_unstable();
        slots
    }

    /// Whether a particular slot is executed by the plan.
    pub fn is_executed(&self, slot: SlotIndex) -> bool {
        self.executions.iter().any(|e| e.slot == slot)
    }

    /// The worker assigned to a slot, if any.
    pub fn worker_at(&self, slot: SlotIndex) -> Option<WorkerId> {
        self.executions
            .iter()
            .find(|e| e.slot == slot)
            .map(|e| e.worker)
    }
}

/// Aggregated result of assigning a set of tasks.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MultiAssignment {
    /// Per-task plans, in the order of the input task set.
    pub plans: Vec<AssignmentPlan>,
}

impl MultiAssignment {
    /// Wraps per-task plans.
    pub fn new(plans: Vec<AssignmentPlan>) -> Self {
        Self { plans }
    }

    /// Summation quality `q_sum(T) = Σ_i q(τ_i)` (Definition 3).
    pub fn sum_quality(&self) -> f64 {
        self.plans.iter().map(|p| p.quality).sum()
    }

    /// Minimum quality `q_min(T) = min_i q(τ_i)` (Definition 4).  Returns
    /// `0.0` for an empty task set.
    pub fn min_quality(&self) -> f64 {
        self.plans
            .iter()
            .map(|p| p.quality)
            .fold(f64::INFINITY, f64::min)
            .min(f64::INFINITY)
            .pipe_finite()
    }

    /// Average per-task quality.
    pub fn average_quality(&self) -> f64 {
        if self.plans.is_empty() {
            0.0
        } else {
            self.sum_quality() / self.plans.len() as f64
        }
    }

    /// Total cost across all plans.
    pub fn total_cost(&self) -> f64 {
        self.plans.iter().map(|p| p.total_cost()).sum()
    }

    /// Total number of executed subtasks across all plans.
    pub fn executed_count(&self) -> usize {
        self.plans.iter().map(|p| p.executed_count()).sum()
    }

    /// The plan for a given task id, if present.
    pub fn plan_for(&self, task: TaskId) -> Option<&AssignmentPlan> {
        self.plans.iter().find(|p| p.task == task)
    }
}

/// Small helper turning the `INFINITY` produced by folding an empty iterator
/// into `0.0`, so `min_quality` of an empty set is well defined.
trait PipeFinite {
    fn pipe_finite(self) -> f64;
}

impl PipeFinite for f64 {
    fn pipe_finite(self) -> f64 {
        if self.is_finite() {
            self
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(task: u32, quality: f64, execs: &[(SlotIndex, u32, f64)]) -> AssignmentPlan {
        AssignmentPlan {
            task: TaskId(task),
            num_slots: 10,
            executions: execs
                .iter()
                .map(|&(slot, worker, cost)| ExecutedSubtask {
                    slot,
                    worker: WorkerId(worker),
                    cost,
                    reliability: 1.0,
                })
                .collect(),
            quality,
        }
    }

    #[test]
    fn empty_plan_has_no_cost_and_zero_quality() {
        let p = AssignmentPlan::empty(TaskId(1), 5);
        assert_eq!(p.total_cost(), 0.0);
        assert_eq!(p.quality, 0.0);
        assert_eq!(p.executed_count(), 0);
        assert_eq!(p.completion_ratio(), 0.0);
    }

    #[test]
    fn plan_accessors() {
        let p = plan(1, 2.5, &[(3, 7, 1.5), (1, 9, 2.0)]);
        assert!((p.total_cost() - 3.5).abs() < 1e-12);
        assert_eq!(p.executed_count(), 2);
        assert_eq!(p.executed_slots(), vec![1, 3]);
        assert!(p.is_executed(3));
        assert!(!p.is_executed(2));
        assert_eq!(p.worker_at(1), Some(WorkerId(9)));
        assert_eq!(p.worker_at(5), None);
        assert!((p.completion_ratio() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn multi_assignment_objectives() {
        let multi = MultiAssignment::new(vec![
            plan(0, 3.0, &[(0, 0, 1.0)]),
            plan(1, 1.0, &[(1, 1, 2.0)]),
            plan(2, 2.0, &[]),
        ]);
        assert!((multi.sum_quality() - 6.0).abs() < 1e-12);
        assert!((multi.min_quality() - 1.0).abs() < 1e-12);
        assert!((multi.average_quality() - 2.0).abs() < 1e-12);
        assert!((multi.total_cost() - 3.0).abs() < 1e-12);
        assert_eq!(multi.executed_count(), 2);
        assert_eq!(multi.plan_for(TaskId(1)).unwrap().quality, 1.0);
        assert!(multi.plan_for(TaskId(9)).is_none());
    }

    #[test]
    fn empty_multi_assignment_is_well_defined() {
        let multi = MultiAssignment::default();
        assert_eq!(multi.sum_quality(), 0.0);
        assert_eq!(multi.min_quality(), 0.0);
        assert_eq!(multi.average_quality(), 0.0);
    }
}
