//! Cost model and budget accounting (Section II-A of the paper).
//!
//! Following the common setting of spatial crowdsourcing, the cost of a
//! subtask is the travel distance between the subtask location and the
//! assigned worker's location, with a uniform unit cost for all workers.
//! The module is generic over the cost definition via [`CostModel`] so that
//! alternative cost functions (e.g. Manhattan distance, flat per-assignment
//! fees) can be plugged in without touching the assignment algorithms.

use crate::model::{Location, SlotIndex, Subtask, Worker, WorkerId};

/// Strategy for pricing a single worker-to-subtask assignment.
pub trait CostModel: Send + Sync {
    /// Cost `c(τ(j))` of assigning worker `worker` (located at `worker_loc`
    /// during the subtask's slot) to `subtask`.
    ///
    /// This is the hot-path entry point used by the candidate retrieval of
    /// the assignment algorithms: the worker is identified by id and
    /// location alone, so callers never have to materialise a full `Worker`
    /// value per query.  Models with per-worker pricing (e.g. id-keyed wage
    /// levels) key off `worker`.
    fn assignment_cost_at(&self, subtask: &Subtask, worker: WorkerId, worker_loc: Location) -> f64;

    /// Cost `c(τ(j))` of assigning `worker` (located at `worker_loc` during
    /// the subtask's slot) to `subtask`.
    ///
    /// Convenience wrapper over [`CostModel::assignment_cost_at`] for callers
    /// holding a full `Worker` value.
    fn assignment_cost(&self, subtask: &Subtask, worker: &Worker, worker_loc: Location) -> f64 {
        self.assignment_cost_at(subtask, worker.id, worker_loc)
    }
}

impl<M: CostModel + ?Sized> CostModel for &M {
    fn assignment_cost_at(&self, subtask: &Subtask, worker: WorkerId, worker_loc: Location) -> f64 {
        (**self).assignment_cost_at(subtask, worker, worker_loc)
    }

    fn assignment_cost(&self, subtask: &Subtask, worker: &Worker, worker_loc: Location) -> f64 {
        (**self).assignment_cost(subtask, worker, worker_loc)
    }
}

/// Euclidean travel-distance cost with a configurable unit price.
///
/// This is the paper's default: `c(τ(j)) = unit_cost × dist(τ.loc, w.loc)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EuclideanCost {
    /// Price per unit of travelled distance (the paper assumes the same unit
    /// cost for all workers; default `1.0`).
    pub unit_cost: f64,
}

impl EuclideanCost {
    /// Cost model with the given unit price.
    pub fn new(unit_cost: f64) -> Self {
        assert!(unit_cost >= 0.0, "unit cost must be non-negative");
        Self { unit_cost }
    }
}

impl Default for EuclideanCost {
    fn default() -> Self {
        Self { unit_cost: 1.0 }
    }
}

impl CostModel for EuclideanCost {
    fn assignment_cost_at(
        &self,
        subtask: &Subtask,
        _worker: WorkerId,
        worker_loc: Location,
    ) -> f64 {
        self.unit_cost * subtask.location.distance(&worker_loc)
    }
}

/// Manhattan (L1) travel-distance cost, useful for grid-like road networks.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ManhattanCost {
    /// Price per unit of travelled distance.
    pub unit_cost: f64,
}

impl Default for ManhattanCost {
    fn default() -> Self {
        Self { unit_cost: 1.0 }
    }
}

impl CostModel for ManhattanCost {
    fn assignment_cost_at(
        &self,
        subtask: &Subtask,
        _worker: WorkerId,
        worker_loc: Location,
    ) -> f64 {
        self.unit_cost
            * ((subtask.location.x - worker_loc.x).abs()
                + (subtask.location.y - worker_loc.y).abs())
    }
}

/// Flat per-assignment cost, independent of distance.  Setting the fee to `1`
/// turns the budget constraint into a cardinality constraint, which is the
/// special case used in the paper's NP-hardness reduction (Lemma 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnitCost {
    /// Fee charged for every executed subtask.
    pub fee: f64,
}

impl Default for UnitCost {
    fn default() -> Self {
        Self { fee: 1.0 }
    }
}

impl CostModel for UnitCost {
    fn assignment_cost_at(
        &self,
        _subtask: &Subtask,
        _worker: WorkerId,
        _worker_loc: Location,
    ) -> f64 {
        self.fee
    }
}

/// Tracks spending against a fixed budget `b`.
///
/// All assignment algorithms share this accounting so that budget-feasibility
/// checks are consistent (including the floating-point tolerance).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Budget {
    limit: f64,
    spent: f64,
}

/// Relative tolerance used when comparing accumulated floating-point costs to
/// the budget limit.
const BUDGET_EPS: f64 = 1e-9;

impl Budget {
    /// A budget with the given limit.
    ///
    /// # Panics
    /// Panics if the limit is negative or not finite.
    pub fn new(limit: f64) -> Self {
        assert!(
            limit.is_finite() && limit >= 0.0,
            "budget limit must be finite and non-negative, got {limit}"
        );
        Self { limit, spent: 0.0 }
    }

    /// An effectively unlimited budget (useful for tests and for computing the
    /// full-completion cost of a task).
    pub fn unlimited() -> Self {
        Self {
            limit: f64::MAX,
            spent: 0.0,
        }
    }

    /// The budget limit `b`.
    pub fn limit(&self) -> f64 {
        self.limit
    }

    /// Total amount spent so far.
    pub fn spent(&self) -> f64 {
        self.spent
    }

    /// Remaining budget (never negative).
    pub fn remaining(&self) -> f64 {
        (self.limit - self.spent).max(0.0)
    }

    /// Whether a further expense of `cost` still fits within the budget.
    pub fn can_afford(&self, cost: f64) -> bool {
        self.spent + cost <= self.limit * (1.0 + BUDGET_EPS) + BUDGET_EPS
    }

    /// Charges `cost` against the budget.  Returns `true` when the charge fits
    /// (and was applied), `false` otherwise (nothing is charged then).
    pub fn charge(&mut self, cost: f64) -> bool {
        if self.can_afford(cost) {
            self.spent += cost;
            true
        } else {
            false
        }
    }

    /// Refunds a previously charged amount (used when a tentative execution is
    /// rolled back, e.g. by the group-level parallel framework on a conflict).
    pub fn refund(&mut self, cost: f64) {
        self.spent = (self.spent - cost).max(0.0);
    }
}

/// A priced candidate assignment: which worker would take a subtask at which
/// cost.  The nearest available worker yields the cheapest candidate under
/// travel-distance costs; multi-task algorithms may fall back to the 2nd, 3rd,
/// ... nearest worker on conflicts (Section IV-A).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CandidateAssignment {
    /// The slot being served.
    pub slot: SlotIndex,
    /// The worker that would serve it.
    pub worker: crate::model::WorkerId,
    /// The worker's location during the slot.
    pub worker_location: Location,
    /// The cost charged against the budget.
    pub cost: f64,
    /// The worker's reliability score.
    pub reliability: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Task, TaskId, WorkerId, WorkerSlot};

    fn subtask() -> Subtask {
        Task::new(TaskId(0), Location::new(0.0, 0.0), 10).subtask(3)
    }

    fn worker() -> Worker {
        Worker::new(
            WorkerId(0),
            vec![WorkerSlot {
                slot: 3,
                location: Location::new(3.0, 4.0),
            }],
        )
    }

    #[test]
    fn euclidean_cost_is_distance_times_unit() {
        let model = EuclideanCost::new(2.0);
        let c = model.assignment_cost(&subtask(), &worker(), Location::new(3.0, 4.0));
        assert!((c - 10.0).abs() < 1e-12);
    }

    #[test]
    fn default_euclidean_unit_cost_is_one() {
        let model = EuclideanCost::default();
        let c = model.assignment_cost(&subtask(), &worker(), Location::new(3.0, 4.0));
        assert!((c - 5.0).abs() < 1e-12);
    }

    #[test]
    fn manhattan_cost() {
        let model = ManhattanCost::default();
        let c = model.assignment_cost(&subtask(), &worker(), Location::new(3.0, 4.0));
        assert!((c - 7.0).abs() < 1e-12);
    }

    #[test]
    fn assignment_cost_at_matches_the_worker_entry_point() {
        // The allocation-free hot-path entry must price identically to the
        // `Worker`-based convenience wrapper for every bundled model.
        let loc = Location::new(3.0, 4.0);
        let models: Vec<Box<dyn CostModel>> = vec![
            Box::new(EuclideanCost::new(2.0)),
            Box::new(ManhattanCost::default()),
            Box::new(UnitCost { fee: 3.0 }),
        ];
        for model in &models {
            let direct = model.assignment_cost_at(&subtask(), worker().id, loc);
            let via_worker = model.assignment_cost(&subtask(), &worker(), loc);
            assert!((direct - via_worker).abs() < 1e-12);
        }
    }

    #[test]
    fn per_worker_pricing_reaches_the_hot_path() {
        // A model keyed on worker identity must affect costs through the
        // id-carrying hot-path entry point (the one candidate retrieval
        // uses), not only through the `Worker`-based wrapper.
        struct Wage;
        impl CostModel for Wage {
            fn assignment_cost_at(
                &self,
                _subtask: &Subtask,
                worker: WorkerId,
                _worker_loc: Location,
            ) -> f64 {
                1.0 + worker.0 as f64
            }
        }
        let model = Wage;
        let loc = Location::new(0.0, 0.0);
        assert!((model.assignment_cost_at(&subtask(), WorkerId(0), loc) - 1.0).abs() < 1e-12);
        assert!((model.assignment_cost_at(&subtask(), WorkerId(4), loc) - 5.0).abs() < 1e-12);
        assert!((model.assignment_cost(&subtask(), &worker(), loc) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cost_model_is_implemented_for_references() {
        // `&dyn CostModel` must itself be usable as a cost model so borrowed
        // engines can wrap caller-provided models without boxing.
        let model = EuclideanCost::default();
        let by_ref: &dyn CostModel = &model;
        let c = by_ref.assignment_cost_at(&subtask(), WorkerId(0), Location::new(3.0, 4.0));
        assert!((c - 5.0).abs() < 1e-12);
    }

    #[test]
    fn unit_cost_ignores_distance() {
        let model = UnitCost { fee: 1.0 };
        let c = model.assignment_cost(&subtask(), &worker(), Location::new(100.0, 100.0));
        assert!((c - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn euclidean_rejects_negative_unit_cost() {
        let _ = EuclideanCost::new(-1.0);
    }

    #[test]
    fn budget_charging_and_refunding() {
        let mut b = Budget::new(10.0);
        assert_eq!(b.limit(), 10.0);
        assert!(b.can_afford(10.0));
        assert!(!b.can_afford(10.1));
        assert!(b.charge(4.0));
        assert!((b.spent() - 4.0).abs() < 1e-12);
        assert!((b.remaining() - 6.0).abs() < 1e-12);
        assert!(!b.charge(7.0));
        assert!(
            (b.spent() - 4.0).abs() < 1e-12,
            "failed charge must not spend"
        );
        assert!(b.charge(6.0));
        assert!(b.remaining() < 1e-9);
        b.refund(6.0);
        assert!((b.remaining() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn budget_tolerates_floating_point_accumulation() {
        let mut b = Budget::new(1.0);
        for _ in 0..10 {
            assert!(b.charge(0.1), "ten charges of 0.1 must fit a budget of 1.0");
        }
        assert!(!b.charge(0.01));
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn budget_rejects_negative_limit() {
        let _ = Budget::new(-1.0);
    }

    #[test]
    fn unlimited_budget_accepts_everything() {
        let mut b = Budget::unlimited();
        assert!(b.charge(1e12));
        assert!(b.can_afford(1e12));
    }
}
