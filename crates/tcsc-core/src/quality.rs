//! Entropy-based quality metric for TCSC tasks (Section II-B of the paper).
//!
//! The metric captures the joint effect of *incompletion* (not every subtask
//! can be executed under a limited budget) and *imprecision* (unexecuted
//! subtasks are inferred by temporal k-NN inverse-distance interpolation).
//!
//! For a task with `m` subtasks and executed-slot set `E`:
//!
//! * interpolation error ratio (Eq. 3):
//!   `ρ_err(τ(j)) = Σ_{e ∈ SkNN(j)} |j, e| / (k·m)`, where `SkNN(j)` are the
//!   `k` executed slots nearest in time to `j`; missing neighbours (when
//!   `|E| < k`) count with the largest possible distance `m`;
//! * subtask finishing probability (Eq. 2):
//!   `p(j) = (1/m)(1 − ρ_err(τ(j)))`, which is `1/m` for executed subtasks
//!   and `0` when nothing has been executed;
//! * task quality (Eq. 1): `q(τ) = −Σ_j p(j)·log2 p(j)`, ranging from `0`
//!   (no information) to `log2 m` (every subtask executed).
//!
//! The reliability extension (Eq. 4–5) weights every executed slot with the
//! reliability `λ ∈ [0, 1]` of the worker that executed it; setting every
//! `λ = 1` recovers the basic metric exactly.
//!
//! [`QualityEvaluator`] is the single shared implementation of this metric:
//! the greedy algorithms, the Voronoi-tree index and the baselines all consult
//! it, so Eq. 1–5 are defined in exactly one place.

use crate::model::SlotIndex;

/// Parameters of the quality metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QualityParams {
    /// Number of time slots `m` of the task.
    pub num_slots: usize,
    /// Number of neighbours `k` used by the inverse-distance interpolation
    /// (the paper's default is `k = 3`).
    pub k: usize,
}

impl QualityParams {
    /// Creates metric parameters.
    ///
    /// # Panics
    /// Panics if `num_slots == 0` or `k == 0`.
    pub fn new(num_slots: usize, k: usize) -> Self {
        assert!(num_slots > 0, "a task needs at least one slot");
        assert!(k > 0, "k-NN interpolation needs k >= 1");
        Self { num_slots, k }
    }

    /// The maximum achievable quality, `log2 m`, reached when every subtask is
    /// executed by fully reliable workers.
    pub fn max_quality(&self) -> f64 {
        (self.num_slots as f64).log2()
    }
}

/// An executed slot together with the reliability of the worker that probed
/// it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecutedSlot {
    /// The slot index.
    pub slot: SlotIndex,
    /// Reliability `λ` of the executing worker (`1.0` for the basic metric).
    pub reliability: f64,
}

/// One temporal nearest neighbour of a slot: an executed slot, its temporal
/// distance and the executing worker's reliability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// The executed slot serving as interpolation source, or `None` for a
    /// "padding" neighbour standing in for a missing executed slot (counted
    /// with the largest possible distance `m` and reliability `1`).
    pub slot: Option<SlotIndex>,
    /// Temporal distance `|j, e|` (in slots) from the query slot.
    pub distance: usize,
    /// Reliability of the executing worker.
    pub reliability: f64,
}

/// `x · log2(x)` with the convention `0 · log2(0) = 0`.
#[inline]
fn xlog2x(x: f64) -> f64 {
    if x <= 0.0 {
        0.0
    } else {
        x * x.log2()
    }
}

/// Incremental evaluator of the entropy-based task quality.
///
/// The evaluator stores the sorted list of executed slots (with worker
/// reliabilities) and answers:
///
/// * exact temporal k-NN queries over the executed slots ([`Self::knn`]);
/// * per-slot error ratios, finishing probabilities and partial qualities;
/// * the total task quality ([`Self::quality`]);
/// * the *quality gain* of tentatively executing one more slot
///   ([`Self::gain_if_executed`]), the quantity the greedy Algorithm 1
///   maximises per unit cost.
#[derive(Debug, Clone, PartialEq)]
pub struct QualityEvaluator {
    params: QualityParams,
    /// Executed slots sorted by slot index.
    executed: Vec<ExecutedSlot>,
}

impl QualityEvaluator {
    /// Creates an evaluator with no executed subtasks (all states "null").
    pub fn new(params: QualityParams) -> Self {
        Self {
            params,
            executed: Vec::new(),
        }
    }

    /// Convenience constructor: `m` slots, interpolation parameter `k`.
    pub fn with_slots(num_slots: usize, k: usize) -> Self {
        Self::new(QualityParams::new(num_slots, k))
    }

    /// The metric parameters.
    pub fn params(&self) -> QualityParams {
        self.params
    }

    /// Number of slots `m`.
    pub fn num_slots(&self) -> usize {
        self.params.num_slots
    }

    /// Interpolation parameter `k`.
    pub fn k(&self) -> usize {
        self.params.k
    }

    /// The executed slots, sorted by slot index.
    pub fn executed(&self) -> &[ExecutedSlot] {
        &self.executed
    }

    /// Number of executed slots.
    pub fn executed_len(&self) -> usize {
        self.executed.len()
    }

    /// Whether `slot` has been executed.
    pub fn is_executed(&self, slot: SlotIndex) -> bool {
        self.executed
            .binary_search_by_key(&slot, |e| e.slot)
            .is_ok()
    }

    /// Reliability recorded for an executed slot, if any.
    pub fn reliability_of(&self, slot: SlotIndex) -> Option<f64> {
        self.executed
            .binary_search_by_key(&slot, |e| e.slot)
            .ok()
            .map(|i| self.executed[i].reliability)
    }

    /// Marks `slot` as executed by a fully reliable worker.
    ///
    /// Returns `false` (and changes nothing) if the slot was already executed.
    pub fn execute(&mut self, slot: SlotIndex) -> bool {
        self.execute_with_reliability(slot, 1.0)
    }

    /// Marks `slot` as executed by a worker with reliability `λ`.
    ///
    /// # Panics
    /// Panics if the slot is out of range or the reliability is outside
    /// `[0, 1]`.
    pub fn execute_with_reliability(&mut self, slot: SlotIndex, reliability: f64) -> bool {
        assert!(
            slot < self.params.num_slots,
            "slot {slot} out of range (m = {})",
            self.params.num_slots
        );
        assert!(
            (0.0..=1.0).contains(&reliability),
            "reliability must lie in [0, 1]"
        );
        match self.executed.binary_search_by_key(&slot, |e| e.slot) {
            Ok(_) => false,
            Err(pos) => {
                self.executed
                    .insert(pos, ExecutedSlot { slot, reliability });
                true
            }
        }
    }

    /// Reverts an executed slot back to the unexecuted state (used by
    /// algorithms that roll back tentative executions).  Returns `true` when
    /// the slot was executed.
    pub fn unexecute(&mut self, slot: SlotIndex) -> bool {
        match self.executed.binary_search_by_key(&slot, |e| e.slot) {
            Ok(pos) => {
                self.executed.remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// The `k` executed slots nearest in time to `slot` (the set
    /// `SkNN(τ(j))`), padded with sentinel neighbours of distance `m` when
    /// fewer than `k` slots have been executed (footnote 2 of the paper).
    ///
    /// Neighbours are returned in ascending order of distance; ties are broken
    /// towards the earlier slot so the result is deterministic.
    pub fn knn(&self, slot: SlotIndex) -> Vec<Neighbor> {
        self.knn_with_extra(slot, None)
    }

    /// Like [`Self::knn`] but treating `extra` as an additionally executed
    /// slot (a *tentative execution*).  The query slot itself is never its own
    /// neighbour.
    pub fn knn_with_extra(&self, slot: SlotIndex, extra: Option<ExecutedSlot>) -> Vec<Neighbor> {
        let k = self.params.k;
        let m = self.params.num_slots;
        let mut result: Vec<Neighbor> = Vec::with_capacity(k);

        // Two-pointer walk outwards from the insertion point of `slot` in the
        // sorted executed list, merged with the optional extra slot.
        let pos = self
            .executed
            .binary_search_by_key(&slot, |e| e.slot)
            .unwrap_or_else(|p| p);
        // Left cursor points at the next candidate to the left (inclusive of
        // an executed slot equal to `slot`, which we skip below).
        let mut left: isize = pos as isize - 1;
        let mut right: usize = pos;
        // Skip the query slot itself if it is executed.
        if right < self.executed.len() && self.executed[right].slot == slot {
            right += 1;
        }
        let mut extra = extra.filter(|e| e.slot != slot);

        while result.len() < k {
            let left_cand = (left >= 0).then(|| self.executed[left as usize]);
            let right_cand = (right < self.executed.len()).then(|| self.executed[right]);
            let extra_cand = extra;

            // Pick the closest among the three cursors; ties go to the
            // smallest slot index.
            let mut best: Option<(usize, ExecutedSlot, u8)> = None;
            for (cand, tag) in [(left_cand, 0u8), (right_cand, 1u8), (extra_cand, 2u8)] {
                if let Some(e) = cand {
                    let d = e.slot.abs_diff(slot);
                    let better = match best {
                        None => true,
                        Some((bd, be, _)) => d < bd || (d == bd && e.slot < be.slot),
                    };
                    if better {
                        best = Some((d, e, tag));
                    }
                }
            }

            match best {
                Some((d, e, tag)) => {
                    result.push(Neighbor {
                        slot: Some(e.slot),
                        distance: d,
                        reliability: e.reliability,
                    });
                    match tag {
                        0 => left -= 1,
                        1 => {
                            right += 1;
                            if right < self.executed.len() && self.executed[right].slot == slot {
                                right += 1;
                            }
                        }
                        _ => extra = None,
                    }
                }
                None => {
                    // Fewer than k executed slots: pad with the largest
                    // possible interpolation distance m and reliability 1.
                    result.push(Neighbor {
                        slot: None,
                        distance: m,
                        reliability: 1.0,
                    });
                }
            }
        }
        result
    }

    /// Interpolation error ratio `ρ_err(τ(j))` (Eq. 3, or Eq. 5 with worker
    /// reliabilities).  Zero for executed slots, one when nothing has been
    /// executed.
    pub fn error_ratio(&self, slot: SlotIndex) -> f64 {
        self.error_ratio_with_extra(slot, None)
    }

    /// Error ratio assuming `extra` were additionally executed.
    pub fn error_ratio_with_extra(&self, slot: SlotIndex, extra: Option<ExecutedSlot>) -> f64 {
        if self.is_executed(slot) || extra.map(|e| e.slot) == Some(slot) {
            return 0.0;
        }
        if self.executed.is_empty() && extra.is_none() {
            return 1.0;
        }
        let k = self.params.k as f64;
        let m = self.params.num_slots as f64;
        let neighbors = self.knn_with_extra(slot, extra);
        neighbors
            .iter()
            .map(|n| n.reliability * n.distance as f64)
            .sum::<f64>()
            / (k * m)
    }

    /// Subtask finishing probability `p(j)` (Eq. 2, or Eq. 4 with worker
    /// reliabilities).
    pub fn finishing_probability(&self, slot: SlotIndex) -> f64 {
        self.finishing_probability_with_extra(slot, None)
    }

    /// Finishing probability assuming `extra` were additionally executed.
    pub fn finishing_probability_with_extra(
        &self,
        slot: SlotIndex,
        extra: Option<ExecutedSlot>,
    ) -> f64 {
        let m = self.params.num_slots as f64;
        // Executed slot: p = λ / m.
        if let Some(lambda) = self.reliability_of(slot) {
            return lambda / m;
        }
        if let Some(e) = extra {
            if e.slot == slot {
                return e.reliability / m;
            }
        }
        // Nothing executed at all: zero knowledge about the subtask.
        if self.executed.is_empty() && extra.is_none() {
            return 0.0;
        }
        let k = self.params.k as f64;
        let neighbors = self.knn_with_extra(slot, extra);
        let avg_reliability = neighbors.iter().map(|n| n.reliability).sum::<f64>() / k;
        let rho = neighbors
            .iter()
            .map(|n| n.reliability * n.distance as f64)
            .sum::<f64>()
            / (k * m);
        ((avg_reliability - rho) / m).max(0.0)
    }

    /// Partial quality of a single slot: `−p(j)·log2 p(j)`.
    pub fn partial_quality(&self, slot: SlotIndex) -> f64 {
        -xlog2x(self.finishing_probability(slot))
    }

    /// Partial quality of a slot assuming `extra` were additionally executed.
    pub fn partial_quality_with_extra(&self, slot: SlotIndex, extra: Option<ExecutedSlot>) -> f64 {
        -xlog2x(self.finishing_probability_with_extra(slot, extra))
    }

    /// Total task quality `q(τ)` (Eq. 1).
    pub fn quality(&self) -> f64 {
        (0..self.params.num_slots)
            .map(|j| self.partial_quality(j))
            .sum()
    }

    /// Quality of the task assuming `extra` were additionally executed.
    pub fn quality_with_extra(&self, extra: ExecutedSlot) -> f64 {
        (0..self.params.num_slots)
            .map(|j| self.partial_quality_with_extra(j, Some(extra)))
            .sum()
    }

    /// Quality gain `Δq = q(E ∪ {slot}) − q(E)` of tentatively executing
    /// `slot` with a fully reliable worker.
    pub fn gain_if_executed(&self, slot: SlotIndex) -> f64 {
        self.gain_if_executed_with_reliability(slot, 1.0)
    }

    /// Quality gain of tentatively executing `slot` with reliability `λ`.
    ///
    /// Already-executed slots yield a gain of zero.
    pub fn gain_if_executed_with_reliability(&self, slot: SlotIndex, reliability: f64) -> f64 {
        if self.is_executed(slot) {
            return 0.0;
        }
        let extra = ExecutedSlot { slot, reliability };
        self.quality_with_extra(extra) - self.quality()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn executed(ev: &mut QualityEvaluator, slots: &[SlotIndex]) {
        for &s in slots {
            ev.execute(s);
        }
    }

    #[test]
    fn empty_task_has_zero_quality() {
        let ev = QualityEvaluator::with_slots(10, 3);
        assert_eq!(ev.quality(), 0.0);
        assert_eq!(ev.finishing_probability(4), 0.0);
        assert_eq!(ev.error_ratio(4), 1.0);
    }

    #[test]
    fn fully_executed_task_reaches_log2_m() {
        let m = 16;
        let mut ev = QualityEvaluator::with_slots(m, 3);
        executed(&mut ev, &(0..m).collect::<Vec<_>>());
        assert!((ev.quality() - (m as f64).log2()).abs() < 1e-12);
        assert!((ev.params().max_quality() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn executed_slot_has_probability_one_over_m() {
        let mut ev = QualityEvaluator::with_slots(10, 2);
        ev.execute(3);
        assert!((ev.finishing_probability(3) - 0.1).abs() < 1e-12);
        assert_eq!(ev.error_ratio(3), 0.0);
    }

    #[test]
    fn paper_running_example_error_ratio() {
        // Fig. 2 of the paper: m = 5... but the worked number uses m = 100,
        // k = 2 with executed slots {2, 4} (1-based) and query slot 1:
        // ρ_err(τ(1)) = (1 + 3) / (2 · 100) = 0.02.
        let mut ev = QualityEvaluator::with_slots(100, 2);
        // 1-based slots 2 and 4 are 0-based 1 and 3.
        executed(&mut ev, &[1, 3]);
        let rho = ev.error_ratio(0);
        assert!((rho - 0.02).abs() < 1e-12, "got {rho}");
    }

    #[test]
    fn fig3_example_knn_locality() {
        // Fig. 3 of the paper: k = 2, m = 100 executed (1-based) {2, 4, 7, 9}.
        let mut ev = QualityEvaluator::with_slots(100, 2);
        executed(&mut ev, &[1, 3, 6, 8]);
        // The unexecuted slots of the first Voronoi cell (1-based 1 and 3)
        // share the 2-NN result {2, 4}.
        for slot in [0, 2] {
            let nn: Vec<_> = ev.knn(slot).iter().map(|n| n.slot.unwrap()).collect();
            let mut sorted = nn.clone();
            sorted.sort_unstable();
            assert_eq!(
                sorted,
                vec![1, 3],
                "slot {slot} should see {{2,4}} (1-based)"
            );
        }
    }

    #[test]
    fn knn_pads_missing_neighbors_with_distance_m() {
        let mut ev = QualityEvaluator::with_slots(50, 3);
        ev.execute(10);
        let nn = ev.knn(12);
        assert_eq!(nn.len(), 3);
        assert_eq!(nn[0].slot, Some(10));
        assert_eq!(nn[0].distance, 2);
        assert_eq!(nn[1].slot, None);
        assert_eq!(nn[1].distance, 50);
        assert_eq!(nn[2].slot, None);
    }

    #[test]
    fn knn_never_returns_query_slot() {
        let mut ev = QualityEvaluator::with_slots(20, 3);
        executed(&mut ev, &[4, 5, 6, 7]);
        let nn = ev.knn(5);
        assert!(nn.iter().all(|n| n.slot != Some(5)));
    }

    #[test]
    fn knn_tie_breaks_towards_earlier_slot() {
        let mut ev = QualityEvaluator::with_slots(20, 1);
        executed(&mut ev, &[3, 7]);
        // Slot 5 is equidistant from 3 and 7; the earlier slot wins.
        let nn = ev.knn(5);
        assert_eq!(nn[0].slot, Some(3));
    }

    #[test]
    fn knn_with_extra_sees_tentative_slot() {
        let mut ev = QualityEvaluator::with_slots(20, 2);
        executed(&mut ev, &[10]);
        let extra = ExecutedSlot {
            slot: 4,
            reliability: 1.0,
        };
        let nn = ev.knn_with_extra(5, Some(extra));
        assert_eq!(nn[0].slot, Some(4));
        assert_eq!(nn[1].slot, Some(10));
    }

    #[test]
    fn quality_is_monotone_in_executions() {
        let mut ev = QualityEvaluator::with_slots(30, 3);
        let mut last = ev.quality();
        for slot in [5, 17, 2, 29, 11, 23, 8] {
            ev.execute(slot);
            let q = ev.quality();
            assert!(
                q >= last - 1e-12,
                "quality decreased after executing {slot}: {last} -> {q}"
            );
            last = q;
        }
    }

    #[test]
    fn gain_matches_execute_then_recompute() {
        let mut ev = QualityEvaluator::with_slots(40, 3);
        executed(&mut ev, &[3, 19, 33]);
        let before = ev.quality();
        let gain = ev.gain_if_executed(10);
        ev.execute(10);
        let after = ev.quality();
        assert!((after - before - gain).abs() < 1e-9);
    }

    #[test]
    fn gain_of_executed_slot_is_zero() {
        let mut ev = QualityEvaluator::with_slots(10, 2);
        ev.execute(4);
        assert_eq!(ev.gain_if_executed(4), 0.0);
    }

    #[test]
    fn unexecute_rolls_back() {
        let mut ev = QualityEvaluator::with_slots(10, 2);
        let q0 = ev.quality();
        ev.execute(5);
        assert!(ev.is_executed(5));
        assert!(ev.unexecute(5));
        assert!(!ev.is_executed(5));
        assert!(!ev.unexecute(5));
        assert!((ev.quality() - q0).abs() < 1e-12);
    }

    #[test]
    fn reliability_scales_executed_probability() {
        let mut ev = QualityEvaluator::with_slots(10, 2);
        ev.execute_with_reliability(3, 0.5);
        assert!((ev.finishing_probability(3) - 0.05).abs() < 1e-12);
        assert_eq!(ev.reliability_of(3), Some(0.5));
    }

    #[test]
    fn full_reliability_degenerates_to_basic_metric() {
        let mut basic = QualityEvaluator::with_slots(25, 3);
        let mut reliable = QualityEvaluator::with_slots(25, 3);
        for slot in [2, 9, 14, 20] {
            basic.execute(slot);
            reliable.execute_with_reliability(slot, 1.0);
        }
        for j in 0..25 {
            assert!(
                (basic.finishing_probability(j) - reliable.finishing_probability(j)).abs() < 1e-12
            );
        }
        assert!((basic.quality() - reliable.quality()).abs() < 1e-12);
    }

    #[test]
    fn lower_reliability_never_increases_quality() {
        let mut high = QualityEvaluator::with_slots(20, 3);
        let mut low = QualityEvaluator::with_slots(20, 3);
        for slot in [1, 7, 13] {
            high.execute_with_reliability(slot, 0.9);
            low.execute_with_reliability(slot, 0.4);
        }
        assert!(low.quality() <= high.quality() + 1e-12);
    }

    #[test]
    fn double_execute_is_rejected() {
        let mut ev = QualityEvaluator::with_slots(10, 2);
        assert!(ev.execute(5));
        assert!(!ev.execute(5));
        assert_eq!(ev.executed_len(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn execute_out_of_range_panics() {
        let mut ev = QualityEvaluator::with_slots(10, 2);
        ev.execute(10);
    }

    #[test]
    fn error_ratio_bounded_by_one() {
        let mut ev = QualityEvaluator::with_slots(8, 4);
        ev.execute(0);
        for j in 0..8 {
            let rho = ev.error_ratio(j);
            assert!((0.0..=1.0).contains(&rho), "rho({j}) = {rho}");
        }
    }
}
