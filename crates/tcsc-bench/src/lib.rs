//! # tcsc-bench
//!
//! Benchmark harness reproducing every figure of the paper's evaluation
//! (Section V and the appendix).  Each figure has a driver in [`figures`]
//! that generates the corresponding workload, runs the competing algorithms
//! and returns the table rows the paper plots; the `experiments` binary prints
//! them, and the Criterion benches time the underlying algorithm calls.
//!
//! Absolute running times differ from the paper (different language, machine
//! and data substitutes); the drivers are designed so the *shape* of every
//! series — which method wins, how curves scale with `m`, `|W|`, `|T|`,
//! budgets, cores — can be compared directly.  See `EXPERIMENTS.md` at the
//! repository root for the recorded comparison.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;

use tcsc_assign::candidates::SlotCandidates;
use tcsc_core::{EuclideanCost, Task};
use tcsc_index::WorkerIndex;
use tcsc_workload::{Scenario, ScenarioConfig};

/// How large the generated workloads are.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Laptop/CI-sized workloads (seconds per figure).
    Quick,
    /// Larger workloads closer to the paper's parameters (minutes per
    /// figure).
    Full,
}

impl Scale {
    /// Parses a scale flag.
    pub fn from_flag(flag: &str) -> Option<Self> {
        match flag {
            "--quick" | "quick" => Some(Self::Quick),
            "--full" | "full" | "--paper" | "paper" => Some(Self::Full),
            _ => None,
        }
    }
}

/// A single output row of an experiment: a label and one or more named
/// numeric series values.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// X-axis label (distribution name, budget, `m`, number of cores, ...).
    pub label: String,
    /// (series name, value) pairs.
    pub values: Vec<(String, f64)>,
}

impl Row {
    /// Creates a row.
    pub fn new(label: impl Into<String>, values: Vec<(String, f64)>) -> Self {
        Self {
            label: label.into(),
            values,
        }
    }

    /// Formats the row as a fixed-width table line.
    pub fn render(&self) -> String {
        let mut s = format!("{:<18}", self.label);
        for (name, value) in &self.values {
            s.push_str(&format!(" {name}={value:<12.4}"));
        }
        s
    }
}

/// A complete experiment result: the figure id, a caption and the rows.
#[derive(Debug, Clone, PartialEq)]
pub struct Experiment {
    /// Figure identifier, e.g. `"fig6a"`.
    pub id: &'static str,
    /// Human-readable caption.
    pub caption: &'static str,
    /// The result rows.
    pub rows: Vec<Row>,
}

impl Experiment {
    /// Renders the experiment as a printable block.
    pub fn render(&self) -> String {
        let mut out = format!("== {} — {} ==\n", self.id, self.caption);
        for row in &self.rows {
            out.push_str(&row.render());
            out.push('\n');
        }
        out
    }
}

/// Times a closure, returning (result, elapsed milliseconds).
///
/// The single wall-clock timing path of the harness — a thin alias of
/// [`tcsc_obs::time_closure`] so every fig driver, bench and example reads
/// the same [`tcsc_obs::Stopwatch`] clock.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    tcsc_obs::time_closure(f)
}

/// The best-of-`runs` wall-clock time of a closure, in milliseconds.
///
/// Min (not mean) because the drivers report *capability* numbers: the
/// fastest observed run is the one least perturbed by scheduler noise.
pub fn best_of<T>(runs: usize, mut f: impl FnMut() -> T) -> f64 {
    (0..runs.max(1))
        .map(|_| timed(&mut f).1)
        .fold(f64::INFINITY, f64::min)
}

/// A prepared single-task instance: the scenario, its worker index and the
/// per-slot candidates of the first task.
pub struct PreparedSingle {
    /// The generated scenario.
    pub scenario: Scenario,
    /// The per-slot worker index.
    pub index: WorkerIndex,
    /// The task under assignment.
    pub task: Task,
    /// Its per-slot candidates.
    pub candidates: SlotCandidates,
    /// Milliseconds spent on worker cost retrieval (index build + candidate
    /// computation), for the Fig. 8(c) breakdown.
    pub retrieval_ms: f64,
}

/// Builds a single-task instance from a scenario configuration.
pub fn prepare_single(config: &ScenarioConfig) -> PreparedSingle {
    let scenario = config.build();
    let (index, index_ms) =
        timed(|| WorkerIndex::build(&scenario.workers, config.num_slots, &scenario.domain));
    let task = scenario.first_task().clone();
    let (candidates, cand_ms) =
        timed(|| SlotCandidates::compute(&task, &index, &EuclideanCost::default()));
    PreparedSingle {
        scenario,
        index,
        task,
        candidates,
        retrieval_ms: index_ms + cand_ms,
    }
}

/// A prepared multi-task instance.
pub struct PreparedMulti {
    /// The generated scenario.
    pub scenario: Scenario,
    /// The per-slot worker index.
    pub index: WorkerIndex,
}

/// Builds a multi-task instance from a scenario configuration.
pub fn prepare_multi(config: &ScenarioConfig) -> PreparedMulti {
    let scenario = config.build();
    let index = WorkerIndex::build(&scenario.workers, config.num_slots, &scenario.domain);
    PreparedMulti { scenario, index }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::from_flag("--quick"), Some(Scale::Quick));
        assert_eq!(Scale::from_flag("paper"), Some(Scale::Full));
        assert_eq!(Scale::from_flag("bogus"), None);
    }

    #[test]
    fn row_and_experiment_render() {
        let row = Row::new("Uniform", vec![("Approx".into(), 3.2), ("Opt".into(), 3.4)]);
        assert!(row.render().contains("Approx=3.2"));
        let exp = Experiment {
            id: "fig6a",
            caption: "test",
            rows: vec![row],
        };
        let rendered = exp.render();
        assert!(rendered.starts_with("== fig6a"));
        assert!(rendered.contains("Uniform"));
    }

    #[test]
    fn prepare_single_produces_candidates() {
        let cfg = ScenarioConfig::small()
            .with_num_slots(30)
            .with_num_workers(200);
        let prepared = prepare_single(&cfg);
        assert_eq!(prepared.candidates.len(), 30);
        assert!(prepared.retrieval_ms >= 0.0);
        assert!(prepared.candidates.available() > 0);
        assert_eq!(prepared.task.num_slots, 30);
    }

    #[test]
    fn prepare_multi_produces_index() {
        let cfg = ScenarioConfig::small().with_num_tasks(4);
        let prepared = prepare_multi(&cfg);
        assert_eq!(prepared.scenario.tasks.len(), 4);
        assert_eq!(prepared.index.num_slots(), cfg.num_slots);
    }
}
