//! Experiment runner: regenerates the rows of every figure in the paper's
//! evaluation.
//!
//! Usage:
//!
//! ```text
//! experiments [--quick|--full] [all | fig6a fig6b ... fig11c]
//! ```
//!
//! With no figure ids, every figure is run.  `--quick` (default) uses
//! CI-sized workloads; `--full` approaches the paper's parameters and can
//! take much longer.

use tcsc_bench::figures;
use tcsc_bench::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Quick;
    let mut ids: Vec<String> = Vec::new();
    for arg in &args {
        if let Some(s) = Scale::from_flag(arg) {
            scale = s;
        } else if arg == "all" {
            ids.clear();
        } else if arg == "--help" || arg == "-h" {
            eprintln!("usage: experiments [--quick|--full] [all | fig6a fig6b ... fig11c]");
            return;
        } else {
            ids.push(arg.clone());
        }
    }

    if ids.is_empty() {
        for experiment in figures::all(scale) {
            println!("{}", experiment.render());
        }
    } else {
        for id in ids {
            match figures::by_id(&id, scale) {
                Some(experiment) => println!("{}", experiment.render()),
                None => eprintln!("unknown figure id: {id}"),
            }
        }
    }
}
