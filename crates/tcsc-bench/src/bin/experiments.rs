//! Experiment runner: regenerates the rows of every figure in the paper's
//! evaluation.
//!
//! Usage:
//!
//! ```text
//! experiments [--quick|--full] [all | fig6a fig6b ... fig9s ... fig11c]
//! ```
//!
//! With no figure ids, every figure is run.  `--quick` (default) uses
//! CI-sized workloads; `--full` approaches the paper's parameters and can
//! take much longer.
//!
//! Running `fig9s` (directly or via `all`) additionally writes
//! `BENCH_fig9.json` — the machine-readable throughput/speedup-per-thread
//! artifact that tracks the sharded-engine perf trajectory across PRs.
//! Running `fig9p` writes `BENCH_fig9p.json` — the incremental-gain commit
//! engine against the full-refresh path (per-grant refresh cost, commit-tail
//! share) — and **exits non-zero** when the two strategies' outcomes diverge,
//! when the incremental path's measured per-grant refresh cost exceeds the
//! full path's, or when the incremental commit tail ran a full recompute.
//! Running `fig9celf` writes `BENCH_fig9c.json` — the CELF lazy commit queue
//! against the eager V1 conflict contract (re-scores per commit, boundary
//! conflict rate, disjoint-region drain sweep) — and **exits non-zero** when
//! the concurrent V1 plan hash diverges from the serial V1 plan, when the
//! lazy queue fails to re-score strictly fewer candidates than the eager
//! contract, or when a multi-shard drain fails to overlap ≥2 regions.
//! Running `fig9dist` writes `BENCH_fig9d.json` — the distributed-runtime
//! sweep (node count × latency, barrier vs optimistic master) including the
//! zero-latency-sim-vs-engine plan-hash gate, and **exits non-zero when the
//! hashes disagree** so CI fails loudly.
//! Running `fig9obs` writes `BENCH_obs.json`, a chrome://tracing dump
//! (`TRACE_fig9obs.jsonl`, loadable in Perfetto) and a plain-text
//! `OBS_SUMMARY.txt`, and **exits non-zero** when the logical digest differs
//! across cluster layouts, when the exported trace fails to replay to the
//! same digest, or when a live recorder costs more than noise over the
//! statically-dispatched no-op baseline.
//! Running `fig9svc` writes `BENCH_svc.json` (per-phase windowed latency
//! SLOs of the streaming service driver), `TRACE_fig9svc.jsonl` (the engine
//! wall-clock spans and gauge tracks), `PROFILE_fig9svc.txt` (collapsed
//! stacks, pipe into flamegraph.pl) and `SVC_SUMMARY.txt`, and **exits
//! non-zero** when any phase's p99 is missing, when any phase's committed
//! throughput is zero, when the obs-on plan hash diverges from the
//! unobserved pass, when the retired-task GC fails to bound the occupancy
//! ledger, or when the span-tree profile's self-time disagrees with the
//! measured drain wall clock by more than 5%.
//! Running `fig9mob` writes `BENCH_fig9m.json` (mobile-worker service loop:
//! mutate-in-place index maintenance vs rebuild-per-drain) and **exits
//! non-zero** when the two passes' folded plan hashes diverge or when
//! in-place maintenance fails to be at least 5× cheaper than the rebuild
//! baseline at the current scale.

use tcsc_bench::figures;
use tcsc_bench::Scale;

/// Runs one figure: prints its table and, for `fig9s` / `fig9dist`, writes
/// the JSON artifact from the same measurement pass (no double measuring).
fn run_figure(id: &str, scale: Scale) -> bool {
    if id == "fig9s" {
        let measurements = figures::fig9s_measurements(scale);
        println!("{}", measurements.to_experiment().render());
        match std::fs::write("BENCH_fig9.json", measurements.to_json()) {
            Ok(()) => eprintln!("wrote BENCH_fig9.json"),
            Err(e) => eprintln!("could not write BENCH_fig9.json: {e}"),
        }
        return true;
    }
    if id == "fig9p" {
        let measurements = figures::fig9p_measurements(scale);
        println!("{}", measurements.to_experiment().render());
        match std::fs::write("BENCH_fig9p.json", measurements.to_json()) {
            Ok(()) => eprintln!("wrote BENCH_fig9p.json"),
            Err(e) => eprintln!("could not write BENCH_fig9p.json: {e}"),
        }
        assert!(
            measurements.plans_match,
            "the incremental-gain commit engine must be bit-identical to the full-refresh path \
             (plans/conflicts/executions diverged)"
        );
        assert!(
            measurements.incremental.per_grant_refresh_us <= measurements.full.per_grant_refresh_us,
            "per-grant refresh regression: incremental {:.2}us > full {:.2}us",
            measurements.incremental.per_grant_refresh_us,
            measurements.full.per_grant_refresh_us
        );
        assert_eq!(
            measurements.incremental.full_refreshes, 0,
            "the incremental commit tail must not run full best-candidate recomputes"
        );
        return true;
    }
    if id == "fig9celf" {
        let measurements = figures::fig9celf_measurements(scale);
        println!("{}", measurements.to_experiment().render());
        match std::fs::write("BENCH_fig9c.json", measurements.to_json()) {
            Ok(()) => eprintln!("wrote BENCH_fig9c.json"),
            Err(e) => eprintln!("could not write BENCH_fig9c.json: {e}"),
        }
        assert!(
            measurements.v1_plan_hash_match,
            "the concurrent engine under ConflictAccounting::V1 must replay the serial V1 plan"
        );
        assert!(
            measurements.v2_lazy_below_eager,
            "the CELF lazy queue must re-score strictly fewer candidates than the eager V1 \
             contract ({} vs {})",
            measurements.v2_commit_rescores, measurements.v1_commit_rescores
        );
        assert!(
            measurements.regions_overlapped,
            "every V2 multi-shard drain must overlap at least two disjoint interior regions"
        );
        return true;
    }
    if id == "fig9dist" {
        let measurements = figures::fig9dist_measurements(scale);
        println!("{}", measurements.to_experiment().render());
        match std::fs::write("BENCH_fig9d.json", measurements.to_json()) {
            Ok(()) => eprintln!("wrote BENCH_fig9d.json"),
            Err(e) => eprintln!("could not write BENCH_fig9d.json: {e}"),
        }
        assert!(
            measurements.plan_hash_matches,
            "the zero-latency single-node simulation must reproduce the serial engine's plans \
             (sim {:#018x} vs engine {:#018x})",
            measurements.sim_plan_hash, measurements.engine_plan_hash
        );
        return true;
    }
    if id == "fig9obs" {
        let measurements = figures::fig9obs_measurements(scale);
        println!("{}", measurements.to_experiment().render());
        for (path, contents) in [
            ("BENCH_obs.json", measurements.to_json()),
            ("TRACE_fig9obs.jsonl", measurements.trace_jsonl.clone()),
            ("OBS_SUMMARY.txt", measurements.summary.clone()),
        ] {
            match std::fs::write(path, contents) {
                Ok(()) => eprintln!("wrote {path}"),
                Err(e) => eprintln!("could not write {path}: {e}"),
            }
        }
        assert!(
            measurements.digest_uniform,
            "the logical-stream digest must be identical across node counts, latency models \
             and grant policies (the trace equivalence lock)"
        );
        assert!(
            measurements.digest_match,
            "exporting the trace and replaying it through the parser must reproduce the digest"
        );
        assert!(
            measurements.overhead_ok,
            "a live recorder must stay within noise of the no-op baseline \
             ({:.2}ms recorded vs {:.2}ms noop)",
            measurements.recorded_ms, measurements.noop_ms
        );
        return true;
    }
    if id == "fig9svc" {
        let measurements = figures::fig9svc_measurements(scale);
        println!("{}", measurements.to_experiment().render());
        for (path, contents) in [
            ("BENCH_svc.json", measurements.to_json()),
            ("TRACE_fig9svc.jsonl", measurements.trace_jsonl.clone()),
            ("PROFILE_fig9svc.txt", measurements.collapsed.clone()),
            ("SVC_SUMMARY.txt", measurements.summary.clone()),
        ] {
            match std::fs::write(path, contents) {
                Ok(()) => eprintln!("wrote {path}"),
                Err(e) => eprintln!("could not write {path}: {e}"),
            }
        }
        assert!(
            measurements.p99_finite,
            "every service phase must commit tasks and report a finite, positive p99 latency"
        );
        assert!(
            measurements.throughput_positive,
            "every service phase must sustain positive committed throughput"
        );
        assert!(
            measurements.plan_hash_match,
            "the observed service pass must decide bit-identical plans to the unobserved pass \
             (obs {:#018x} vs noop {:#018x})",
            measurements.obs_plan_hash, measurements.noop_plan_hash
        );
        assert!(
            measurements.ledger_bounded,
            "the retired-task GC must bound the occupancy ledger (peak {} of {} workers, \
             released {} of {} executions, final {})",
            measurements.peak_ledger,
            measurements.workers,
            measurements.released,
            measurements.executions,
            measurements.final_ledger
        );
        assert!(
            measurements.profile_within_bound,
            "the span-tree profile's self-time must reconcile with the measured drain wall \
             clock within 5% ({:.2}ms profiled vs {:.2}ms measured)",
            measurements.profile_self_ms, measurements.drain_wall_ms
        );
        return true;
    }
    if id == "fig9mob" {
        let measurements = figures::fig9mob_measurements(scale);
        println!("{}", measurements.to_experiment().render());
        match std::fs::write("BENCH_fig9m.json", measurements.to_json()) {
            Ok(()) => eprintln!("wrote BENCH_fig9m.json"),
            Err(e) => eprintln!("could not write BENCH_fig9m.json: {e}"),
        }
        assert!(
            measurements.plan_hash_match,
            "the mutate-in-place pass must decide bit-identical plans to rebuild-per-drain \
             (mutate {:#018x} vs rebuild {:#018x})",
            measurements.mutate_plan_hash, measurements.rebuild_plan_hash
        );
        assert!(
            measurements.speedup_ok,
            "in-place index maintenance must be at least 5x cheaper than rebuild-per-drain \
             ({:.2}ms mutate vs {:.2}ms rebuild, {:.1}x)",
            measurements.mutate_maintenance_ms,
            measurements.rebuild_maintenance_ms,
            measurements.maintenance_speedup
        );
        return true;
    }
    match figures::by_id(id, scale) {
        Some(experiment) => {
            println!("{}", experiment.render());
            true
        }
        None => false,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Quick;
    let mut ids: Vec<String> = Vec::new();
    for arg in &args {
        if let Some(s) = Scale::from_flag(arg) {
            scale = s;
        } else if arg == "all" {
            ids.clear();
        } else if arg == "--help" || arg == "-h" {
            eprintln!("usage: experiments [--quick|--full] [all | fig6a fig6b ... fig11c]");
            return;
        } else {
            ids.push(arg.clone());
        }
    }

    if ids.is_empty() {
        for id in figures::ALL_IDS {
            run_figure(id, scale);
        }
    } else {
        for id in ids {
            if !run_figure(&id, scale) {
                eprintln!("unknown figure id: {id}");
            }
        }
    }
}
