//! Per-figure experiment drivers.
//!
//! Every public function regenerates one figure of the paper's evaluation and
//! returns the plotted series as [`Experiment`] rows.  The `Scale` parameter
//! switches between CI-sized workloads (`Quick`) and workloads close to the
//! paper's parameters (`Full`).

use rand::rngs::StdRng;
use rand::SeedableRng;

use tcsc::solver::{Runtime, SolveObjective, SolverBuilder};
use tcsc_assign::candidates::SlotCandidates;
use tcsc_assign::{
    approx, approx_star, independence_graph, msqm_rebuild, optimal, random_summary,
    AssignmentEngine, ConcurrentAssignmentEngine, ConflictAccounting, MultiTaskConfig, Objective,
    SingleTaskConfig, SpatioTemporalObjective,
};
use tcsc_core::{EuclideanCost, InterpolationWeights};
use tcsc_index::{ShardGridConfig, ShardedWorkerIndex, WorkerIndex};
use tcsc_workload::{
    PoiConfig, ScenarioConfig, SpatialDistribution, StreamingConfig, TaskPlacement,
};

use crate::{best_of, prepare_multi, prepare_single, timed, Experiment, Row, Scale};

/// Shorthand: a [`SolverBuilder`] seeded from a figure's `MultiTaskConfig`.
///
/// Every multi-task figure routes through the facade; the prebuilt dense
/// index stays outside the timed regions via [`SolverBuilder::solve_indexed`].
fn builder(cfg: &MultiTaskConfig) -> SolverBuilder {
    SolverBuilder::new(cfg.budget).with_config(*cfg)
}

/// Workload sizes per scale.
struct Params {
    /// `m` used for quality experiments where OPT must stay feasible.
    opt_slots: usize,
    /// `m` sweep for the single-task efficiency experiments (Fig. 8).
    m_sweep: Vec<usize>,
    /// Worker-count sweep for Fig. 8(b).
    worker_sweep: Vec<usize>,
    /// Default worker count.
    workers: usize,
    /// Task-count sweep for the multi-task experiments (Fig. 9).
    task_sweep: Vec<usize>,
    /// Default task count.
    tasks: usize,
    /// Default `m` for multi-task experiments.
    multi_slots: usize,
    /// Core-count sweep for Fig. 9(a)(f).
    cores: Vec<usize>,
    /// Randomized-baseline repetitions.
    rand_runs: usize,
}

fn params(scale: Scale) -> Params {
    match scale {
        Scale::Quick => Params {
            opt_slots: 14,
            m_sweep: vec![100, 200, 300],
            worker_sweep: vec![500, 1000, 2000],
            workers: 1000,
            task_sweep: vec![4, 8, 12],
            tasks: 8,
            multi_slots: 60,
            cores: vec![1, 2, 4, 8],
            rand_runs: 10,
        },
        Scale::Full => Params {
            opt_slots: 18,
            m_sweep: vec![300, 500, 1000],
            worker_sweep: vec![5000, 7500, 10000],
            workers: 10_357,
            task_sweep: vec![100, 300, 500],
            tasks: 100,
            multi_slots: 300,
            cores: vec![1, 2, 4, 8, 10, 12, 16],
            rand_runs: 20,
        },
    }
}

/// The three synthetic distributions plus the POI ("real") placement.
fn placements() -> Vec<TaskPlacement> {
    vec![
        TaskPlacement::Synthetic(SpatialDistribution::Uniform),
        TaskPlacement::Synthetic(SpatialDistribution::Gaussian),
        TaskPlacement::Synthetic(SpatialDistribution::zipf_default()),
        TaskPlacement::Poi(PoiConfig::default()),
    ]
}

fn synthetic_placements() -> Vec<TaskPlacement> {
    placements().into_iter().take(3).collect()
}

/// The cost of executing every available slot of the prepared task; budgets
/// are expressed as fractions of it, mirroring the paper's "12.5% / 25% /
/// 50% of the average task cost" calibration.
fn full_cost(candidates: &SlotCandidates) -> f64 {
    (0..candidates.len())
        .filter_map(|j| candidates.cost(j))
        .sum()
}

// ---------------------------------------------------------------------------
// Figure 6: quality of the single-task case
// ---------------------------------------------------------------------------

/// Fig. 6(a): single-task average quality per task-location distribution
/// (RandMin, RandMax, Opt, Approx).
pub fn fig6a(scale: Scale) -> Experiment {
    let p = params(scale);
    let mut rows = Vec::new();
    for placement in placements() {
        let cfg = ScenarioConfig::small()
            .with_num_slots(p.opt_slots)
            .with_num_workers(p.workers.min(2000))
            .with_placement(placement.clone());
        let prepared = prepare_single(&cfg);
        let budget = 0.25 * full_cost(&prepared.candidates);
        let single = SingleTaskConfig::new(budget);
        let mut rng = StdRng::seed_from_u64(7);
        let rand = random_summary(
            &mut rng,
            &prepared.task,
            &prepared.candidates,
            &single,
            p.rand_runs,
        );
        let opt = optimal(&prepared.task, &prepared.candidates, &single);
        let greedy = approx(&prepared.task, &prepared.candidates, &single);
        rows.push(Row::new(
            placement.label(),
            vec![
                ("RandMin".into(), rand.min),
                ("RandMax".into(), rand.max),
                ("Opt".into(), opt.quality),
                ("Approx".into(), greedy.plan.quality),
            ],
        ));
    }
    Experiment {
        id: "fig6a",
        caption: "Single-task quality vs task-location distribution",
        rows,
    }
}

/// Fig. 6(b): single-task quality vs budget (Opt, Approx, RandAvg).
pub fn fig6b(scale: Scale) -> Experiment {
    let p = params(scale);
    let cfg = ScenarioConfig::small()
        .with_num_slots(p.opt_slots)
        .with_num_workers(p.workers.min(2000));
    let prepared = prepare_single(&cfg);
    let full = full_cost(&prepared.candidates);
    let mut rows = Vec::new();
    for fraction in [0.15, 0.25, 0.35] {
        let single = SingleTaskConfig::new(fraction * full);
        let mut rng = StdRng::seed_from_u64(11);
        let rand = random_summary(
            &mut rng,
            &prepared.task,
            &prepared.candidates,
            &single,
            p.rand_runs,
        );
        let opt = optimal(&prepared.task, &prepared.candidates, &single);
        let greedy = approx(&prepared.task, &prepared.candidates, &single);
        rows.push(Row::new(
            format!("b={:.0}%", fraction * 100.0),
            vec![
                ("Opt".into(), opt.quality),
                ("Approx".into(), greedy.plan.quality),
                ("RandAvg".into(), rand.avg),
            ],
        ));
    }
    Experiment {
        id: "fig6b",
        caption: "Single-task quality vs budget",
        rows,
    }
}

// ---------------------------------------------------------------------------
// Figure 7: quality of the multi-task case
// ---------------------------------------------------------------------------

fn multi_rand_baseline(
    prepared: &crate::PreparedMulti,
    config: &MultiTaskConfig,
    runs: usize,
) -> (f64, f64, f64, f64) {
    // Randomized multi-task baseline: the budget is split evenly over tasks
    // and each task assigns random subtasks to its nearest workers.  Returns
    // (sum of per-task min, sum of per-task max, min over tasks of avg,
    //  max over tasks of avg).
    let per_task_budget = config.budget / prepared.scenario.tasks.len().max(1) as f64;
    let cost_model = EuclideanCost::default();
    let mut sum_min = 0.0;
    let mut sum_max = 0.0;
    let mut min_avg = f64::INFINITY;
    let mut max_avg: f64 = 0.0;
    for (i, task) in prepared.scenario.tasks.iter().enumerate() {
        let candidates = SlotCandidates::compute(task, &prepared.index, &cost_model);
        let single = SingleTaskConfig::new(per_task_budget).with_k(config.k);
        let mut rng = StdRng::seed_from_u64(100 + i as u64);
        let rand = random_summary(&mut rng, task, &candidates, &single, runs);
        sum_min += rand.min;
        sum_max += rand.max;
        min_avg = min_avg.min(rand.avg);
        max_avg = max_avg.max(rand.avg);
    }
    if !min_avg.is_finite() {
        min_avg = 0.0;
    }
    (sum_min, sum_max, min_avg, max_avg)
}

fn multi_scenario(p: &Params, placement: TaskPlacement) -> ScenarioConfig {
    ScenarioConfig::small()
        .with_num_tasks(p.tasks)
        .with_num_slots(p.multi_slots)
        .with_num_workers(p.workers.min(3000))
        .with_placement(placement)
}

/// Fig. 7(a): multi-task summation quality per distribution.
pub fn fig7a(scale: Scale) -> Experiment {
    let p = params(scale);
    let mut rows = Vec::new();
    for placement in synthetic_placements() {
        let prepared = prepare_multi(&multi_scenario(&p, placement.clone()));
        let budget = budget_for_multi(&prepared, 0.25);
        let cfg = MultiTaskConfig::new(budget);
        let (rand_min, rand_max, _, _) = multi_rand_baseline(&prepared, &cfg, p.rand_runs.min(5));
        let outcome = builder(&cfg).solve_indexed(
            &prepared.scenario.tasks,
            &prepared.index,
            &prepared.scenario.domain,
            &EuclideanCost::default(),
        );
        rows.push(Row::new(
            placement.label(),
            vec![
                ("RandMin".into(), rand_min),
                ("RandMax".into(), rand_max),
                ("Approx".into(), outcome.sum_quality()),
            ],
        ));
    }
    Experiment {
        id: "fig7a",
        caption: "Multi-task summation quality vs distribution (q_sum)",
        rows,
    }
}

/// Budget for a multi-task scenario: `fraction` of the total full-completion
/// cost of all tasks.
fn budget_for_multi(prepared: &crate::PreparedMulti, fraction: f64) -> f64 {
    let cost_model = EuclideanCost::default();
    let total: f64 = prepared
        .scenario
        .tasks
        .iter()
        .map(|t| full_cost(&SlotCandidates::compute(t, &prepared.index, &cost_model)))
        .sum();
    fraction * total
}

/// Fig. 7(b): multi-task summation quality vs budget.
pub fn fig7b(scale: Scale) -> Experiment {
    let p = params(scale);
    let prepared = prepare_multi(&multi_scenario(
        &p,
        TaskPlacement::Synthetic(SpatialDistribution::Uniform),
    ));
    let mut rows = Vec::new();
    for fraction in [0.125, 0.25, 0.375, 0.5] {
        let budget = budget_for_multi(&prepared, fraction);
        let cfg = MultiTaskConfig::new(budget);
        let (_, _, _, _) = (0.0, 0.0, 0.0, 0.0);
        let (rand_min, rand_max, _, _) = multi_rand_baseline(&prepared, &cfg, 3);
        let outcome = builder(&cfg).solve_indexed(
            &prepared.scenario.tasks,
            &prepared.index,
            &prepared.scenario.domain,
            &EuclideanCost::default(),
        );
        rows.push(Row::new(
            format!("b={:.1}%", fraction * 100.0),
            vec![
                ("Approx".into(), outcome.sum_quality()),
                ("RandAvg".into(), (rand_min + rand_max) / 2.0),
            ],
        ));
    }
    Experiment {
        id: "fig7b",
        caption: "Multi-task summation quality vs budget (q_sum)",
        rows,
    }
}

/// Fig. 7(c): multi-task minimum quality per distribution.
pub fn fig7c(scale: Scale) -> Experiment {
    let p = params(scale);
    let mut rows = Vec::new();
    for placement in synthetic_placements() {
        let prepared = prepare_multi(&multi_scenario(&p, placement.clone()));
        let budget = budget_for_multi(&prepared, 0.25);
        let cfg = MultiTaskConfig::new(budget);
        let (_, _, rand_min_avg, rand_max_avg) =
            multi_rand_baseline(&prepared, &cfg, p.rand_runs.min(5));
        let outcome = builder(&cfg)
            .with_objective(SolveObjective::MinQuality)
            .solve_indexed(
                &prepared.scenario.tasks,
                &prepared.index,
                &prepared.scenario.domain,
                &EuclideanCost::default(),
            );
        rows.push(Row::new(
            placement.label(),
            vec![
                ("RandMin".into(), rand_min_avg),
                ("RandMax".into(), rand_max_avg),
                ("Approx".into(), outcome.min_quality()),
            ],
        ));
    }
    Experiment {
        id: "fig7c",
        caption: "Multi-task minimum quality vs distribution (q_min)",
        rows,
    }
}

/// Fig. 7(d): multi-task minimum quality vs budget.
pub fn fig7d(scale: Scale) -> Experiment {
    let p = params(scale);
    let prepared = prepare_multi(&multi_scenario(
        &p,
        TaskPlacement::Synthetic(SpatialDistribution::Uniform),
    ));
    let mut rows = Vec::new();
    for fraction in [0.125, 0.25, 0.375, 0.5] {
        let budget = budget_for_multi(&prepared, fraction);
        let cfg = MultiTaskConfig::new(budget);
        let (_, _, rand_min_avg, _) = multi_rand_baseline(&prepared, &cfg, 3);
        let outcome = builder(&cfg)
            .with_objective(SolveObjective::MinQuality)
            .solve_indexed(
                &prepared.scenario.tasks,
                &prepared.index,
                &prepared.scenario.domain,
                &EuclideanCost::default(),
            );
        rows.push(Row::new(
            format!("b={:.1}%", fraction * 100.0),
            vec![
                ("Approx".into(), outcome.min_quality()),
                ("RandAvg".into(), rand_min_avg),
            ],
        ));
    }
    Experiment {
        id: "fig7d",
        caption: "Multi-task minimum quality vs budget (q_min)",
        rows,
    }
}

// ---------------------------------------------------------------------------
// Figure 8: efficiency of the single-task case
// ---------------------------------------------------------------------------

fn single_efficiency_scenario(
    m: usize,
    workers: usize,
    placement: TaskPlacement,
) -> ScenarioConfig {
    ScenarioConfig::small()
        .with_num_slots(m)
        .with_num_workers(workers)
        .with_placement(placement)
}

/// Fig. 8(a): single-task running time vs `m` (Approx vs Approx*).
pub fn fig8a(scale: Scale) -> Experiment {
    let p = params(scale);
    let mut rows = Vec::new();
    for &m in &p.m_sweep {
        let prepared = prepare_single(&single_efficiency_scenario(
            m,
            p.workers,
            TaskPlacement::Synthetic(SpatialDistribution::Uniform),
        ));
        let budget = 0.25 * full_cost(&prepared.candidates);
        let cfg = SingleTaskConfig::new(budget);
        let (_, plain_ms) = timed(|| approx(&prepared.task, &prepared.candidates, &cfg));
        let (_, fast_ms) = timed(|| approx_star(&prepared.task, &prepared.candidates, &cfg));
        rows.push(Row::new(
            format!("m={m}"),
            vec![("Approx".into(), plain_ms), ("Approx*".into(), fast_ms)],
        ));
    }
    Experiment {
        id: "fig8a",
        caption: "Single-task time (ms) vs number of subtasks m",
        rows,
    }
}

/// Fig. 8(b): single-task running time vs number of workers.
pub fn fig8b(scale: Scale) -> Experiment {
    let p = params(scale);
    let m = p.m_sweep[p.m_sweep.len() / 2];
    let mut rows = Vec::new();
    for &w in &p.worker_sweep {
        let prepared = prepare_single(&single_efficiency_scenario(
            m,
            w,
            TaskPlacement::Synthetic(SpatialDistribution::Uniform),
        ));
        let budget = 0.25 * full_cost(&prepared.candidates);
        let cfg = SingleTaskConfig::new(budget);
        let (_, plain_ms) = timed(|| approx(&prepared.task, &prepared.candidates, &cfg));
        let (_, fast_ms) = timed(|| approx_star(&prepared.task, &prepared.candidates, &cfg));
        rows.push(Row::new(
            format!("|W|={w}"),
            vec![("Approx".into(), plain_ms), ("Approx*".into(), fast_ms)],
        ));
    }
    Experiment {
        id: "fig8b",
        caption: "Single-task time (ms) vs number of workers",
        rows,
    }
}

/// Fig. 8(c): time breakdown of Approx vs Approx* (worker cost retrieval,
/// heuristic calculation / k-NN interpolation, tree construction).
pub fn fig8c(scale: Scale) -> Experiment {
    let p = params(scale);
    let m = p.m_sweep[p.m_sweep.len() / 2];
    let prepared = prepare_single(&single_efficiency_scenario(
        m,
        p.workers,
        TaskPlacement::Synthetic(SpatialDistribution::Uniform),
    ));
    let budget = 0.25 * full_cost(&prepared.candidates);
    let cfg = SingleTaskConfig::new(budget);
    let (plain, plain_ms) = timed(|| approx(&prepared.task, &prepared.candidates, &cfg));
    let (fast, fast_ms) = timed(|| approx_star(&prepared.task, &prepared.candidates, &cfg));
    Experiment {
        id: "fig8c",
        caption: "Time breakdown (ms) of Approx and Approx*",
        rows: vec![
            Row::new(
                "Approx",
                vec![
                    ("WorkerCostRetrieval".into(), prepared.retrieval_ms),
                    (
                        "HeuristicCalc".into(),
                        plain.stats.heuristic_seconds * 1000.0,
                    ),
                    ("Total".into(), plain_ms + prepared.retrieval_ms),
                ],
            ),
            Row::new(
                "Approx*",
                vec![
                    ("WorkerCostRetrieval".into(), prepared.retrieval_ms),
                    ("HeuristicCalc".into(), fast.timings.search * 1000.0),
                    (
                        "TreeConstruction".into(),
                        fast.timings.tree_construction * 1000.0,
                    ),
                    (
                        "TreeMaintenance".into(),
                        fast.timings.tree_maintenance * 1000.0,
                    ),
                    ("Total".into(), fast_ms + prepared.retrieval_ms),
                ],
            ),
        ],
    }
}

/// Fig. 8(d): pruning ratio of Approx* vs `m`, per distribution.
pub fn fig8d(scale: Scale) -> Experiment {
    let p = params(scale);
    let mut rows = Vec::new();
    for &m in &p.m_sweep {
        let mut values = Vec::new();
        for placement in placements() {
            let prepared =
                prepare_single(&single_efficiency_scenario(m, p.workers, placement.clone()));
            let budget = 0.25 * full_cost(&prepared.candidates);
            let outcome = approx_star(
                &prepared.task,
                &prepared.candidates,
                &SingleTaskConfig::new(budget),
            );
            values.push((
                placement.label().to_string(),
                outcome.search_stats.pruning_ratio() * 100.0,
            ));
        }
        rows.push(Row::new(format!("m={m}"), values));
    }
    Experiment {
        id: "fig8d",
        caption: "Pruning ratio (%) of Approx* vs m, per distribution",
        rows,
    }
}

/// Fig. 8(e): tree construction time vs the split threshold `ts`.
pub fn fig8e(scale: Scale) -> Experiment {
    let p = params(scale);
    let m = *p.m_sweep.last().unwrap();
    let prepared = prepare_single(&single_efficiency_scenario(
        m,
        p.workers,
        TaskPlacement::Synthetic(SpatialDistribution::Uniform),
    ));
    let budget = 0.25 * full_cost(&prepared.candidates);
    let mut rows = Vec::new();
    for ts in [2usize, 3, 4, 5, 6, 8, 10] {
        let outcome = approx_star(
            &prepared.task,
            &prepared.candidates,
            &SingleTaskConfig::new(budget).with_ts(ts),
        );
        rows.push(Row::new(
            format!("ts={ts}"),
            vec![
                (
                    "TreeConstructionMs".into(),
                    outcome.timings.tree_construction * 1000.0,
                ),
                ("TreeNodes".into(), outcome.tree_nodes as f64),
            ],
        ));
    }
    Experiment {
        id: "fig8e",
        caption: "Tree construction time vs split threshold ts",
        rows,
    }
}

/// Fig. 8(f): effect of the task-location distribution on running time.
pub fn fig8f(scale: Scale) -> Experiment {
    let p = params(scale);
    let m = p.m_sweep[p.m_sweep.len() / 2];
    let mut rows = Vec::new();
    for placement in synthetic_placements() {
        let prepared = prepare_single(&single_efficiency_scenario(m, p.workers, placement.clone()));
        let budget = 0.25 * full_cost(&prepared.candidates);
        let cfg = SingleTaskConfig::new(budget);
        let (_, plain_ms) = timed(|| approx(&prepared.task, &prepared.candidates, &cfg));
        let (_, fast_ms) = timed(|| approx_star(&prepared.task, &prepared.candidates, &cfg));
        rows.push(Row::new(
            placement.label(),
            vec![("Approx*".into(), fast_ms), ("Approx".into(), plain_ms)],
        ));
    }
    Experiment {
        id: "fig8f",
        caption: "Single-task time (ms) vs task-location distribution",
        rows,
    }
}

/// Fig. 8(g): effect of the interpolation parameter `k`.
pub fn fig8g(scale: Scale) -> Experiment {
    let p = params(scale);
    let m = p.m_sweep[p.m_sweep.len() / 2];
    let prepared = prepare_single(&single_efficiency_scenario(
        m,
        p.workers,
        TaskPlacement::Synthetic(SpatialDistribution::Uniform),
    ));
    let budget = 0.25 * full_cost(&prepared.candidates);
    let mut rows = Vec::new();
    for k in [1usize, 2, 3, 5, 7, 10] {
        let cfg = SingleTaskConfig::new(budget).with_k(k);
        let (_, plain_ms) = timed(|| approx(&prepared.task, &prepared.candidates, &cfg));
        let (_, fast_ms) = timed(|| approx_star(&prepared.task, &prepared.candidates, &cfg));
        rows.push(Row::new(
            format!("k={k}"),
            vec![("Approx".into(), plain_ms), ("Approx*".into(), fast_ms)],
        ));
    }
    Experiment {
        id: "fig8g",
        caption: "Single-task time (ms) vs interpolation parameter k",
        rows,
    }
}

/// Fig. 8(h): Approx* running time vs budget, per distribution.
pub fn fig8h(scale: Scale) -> Experiment {
    let p = params(scale);
    let m = p.m_sweep[p.m_sweep.len() / 2];
    let mut rows = Vec::new();
    for fraction in [0.125, 0.25, 0.5] {
        let mut values = Vec::new();
        for placement in placements() {
            let prepared =
                prepare_single(&single_efficiency_scenario(m, p.workers, placement.clone()));
            let budget = fraction * full_cost(&prepared.candidates);
            let (_, fast_ms) = timed(|| {
                approx_star(
                    &prepared.task,
                    &prepared.candidates,
                    &SingleTaskConfig::new(budget),
                )
            });
            values.push((placement.label().to_string(), fast_ms));
        }
        rows.push(Row::new(format!("b={:.1}%", fraction * 100.0), values));
    }
    Experiment {
        id: "fig8h",
        caption: "Approx* time (ms) vs budget, per distribution",
        rows,
    }
}

// ---------------------------------------------------------------------------
// Figure 9: efficiency of the multi-task case
// ---------------------------------------------------------------------------

/// Fig. 9(a): multi-task running time vs number of cores (task-level,
/// group-level, without parallelization).
pub fn fig9a(scale: Scale) -> Experiment {
    let p = params(scale);
    let prepared = prepare_multi(&multi_scenario(
        &p,
        TaskPlacement::Synthetic(SpatialDistribution::Uniform),
    ));
    let budget = budget_for_multi(&prepared, 0.25);
    let cfg = MultiTaskConfig::new(budget);
    let cost_model = EuclideanCost::default();
    let (_, serial_ms) = timed(|| {
        builder(&cfg).solve_indexed(
            &prepared.scenario.tasks,
            &prepared.index,
            &prepared.scenario.domain,
            &cost_model,
        )
    });
    let mut rows = Vec::new();
    for &cores in &p.cores {
        let (_, task_ms) = timed(|| {
            builder(&cfg)
                .with_runtime(Runtime::TaskParallel)
                .with_threads(cores)
                .with_priorities(true)
                .solve_indexed(
                    &prepared.scenario.tasks,
                    &prepared.index,
                    &prepared.scenario.domain,
                    &cost_model,
                )
        });
        let (_, group_ms) = timed(|| {
            builder(&cfg)
                .with_runtime(Runtime::GroupParallel)
                .with_threads(cores)
                .solve_indexed(
                    &prepared.scenario.tasks,
                    &prepared.index,
                    &prepared.scenario.domain,
                    &cost_model,
                )
        });
        rows.push(Row::new(
            format!("cores={cores}"),
            vec![
                ("TaskLevel".into(), task_ms),
                ("GroupLevel".into(), group_ms),
                ("NoParallel".into(), serial_ms),
            ],
        ));
    }
    Experiment {
        id: "fig9a",
        caption: "Multi-task time (ms) vs number of cores",
        rows,
    }
}

/// Fig. 9(b): multi-task running time and worker conflicts vs distribution.
pub fn fig9b(scale: Scale) -> Experiment {
    let p = params(scale);
    let cores = *p.cores.last().unwrap();
    let cost_model = EuclideanCost::default();
    let mut rows = Vec::new();
    for placement in synthetic_placements() {
        let prepared = prepare_multi(&multi_scenario(&p, placement.clone()));
        let budget = budget_for_multi(&prepared, 0.25);
        let cfg = MultiTaskConfig::new(budget);
        let (task_outcome, task_ms) = timed(|| {
            builder(&cfg)
                .with_runtime(Runtime::TaskParallel)
                .with_threads(cores)
                .with_priorities(true)
                .solve_indexed(
                    &prepared.scenario.tasks,
                    &prepared.index,
                    &prepared.scenario.domain,
                    &cost_model,
                )
        });
        let (_, group_ms) = timed(|| {
            builder(&cfg)
                .with_runtime(Runtime::GroupParallel)
                .with_threads(cores)
                .solve_indexed(
                    &prepared.scenario.tasks,
                    &prepared.index,
                    &prepared.scenario.domain,
                    &cost_model,
                )
        });
        rows.push(Row::new(
            placement.label(),
            vec![
                ("TaskLevel".into(), task_ms),
                ("GroupLevel".into(), group_ms),
                ("WorkerConflicts".into(), task_outcome.conflicts as f64),
            ],
        ));
    }
    Experiment {
        id: "fig9b",
        caption: "Multi-task time (ms) and worker conflicts vs distribution",
        rows,
    }
}

/// Fig. 9(c): worker conflicts vs number of tasks, per distribution.
pub fn fig9c(scale: Scale) -> Experiment {
    let p = params(scale);
    let cost_model = EuclideanCost::default();
    let mut rows = Vec::new();
    for &t in &p.task_sweep {
        let mut values = Vec::new();
        for placement in placements() {
            let prepared = prepare_multi(&multi_scenario(&p, placement.clone()).with_num_tasks(t));
            let budget = budget_for_multi(&prepared, 0.25);
            let cfg = MultiTaskConfig::new(budget);
            let outcome = builder(&cfg).solve_indexed(
                &prepared.scenario.tasks,
                &prepared.index,
                &prepared.scenario.domain,
                &cost_model,
            );
            let graph = independence_graph(&prepared.scenario.tasks, &prepared.index, 4);
            values.push((
                placement.label().to_string(),
                (outcome.conflicts + graph.conflict_count()) as f64,
            ));
        }
        rows.push(Row::new(format!("|T|={t}"), values));
    }
    Experiment {
        id: "fig9c",
        caption: "Worker conflicts vs number of tasks, per distribution",
        rows,
    }
}

/// Fig. 9(d): multi-task running time vs number of tasks.
pub fn fig9d(scale: Scale) -> Experiment {
    let p = params(scale);
    let cores = *p.cores.last().unwrap();
    let cost_model = EuclideanCost::default();
    let mut rows = Vec::new();
    for &t in &p.task_sweep {
        let prepared = prepare_multi(
            &multi_scenario(&p, TaskPlacement::Synthetic(SpatialDistribution::Uniform))
                .with_num_tasks(t),
        );
        let budget = budget_for_multi(&prepared, 0.25);
        let cfg = MultiTaskConfig::new(budget);
        let (_, task_ms) = timed(|| {
            builder(&cfg)
                .with_runtime(Runtime::TaskParallel)
                .with_threads(cores)
                .with_priorities(true)
                .solve_indexed(
                    &prepared.scenario.tasks,
                    &prepared.index,
                    &prepared.scenario.domain,
                    &cost_model,
                )
        });
        let (_, group_ms) = timed(|| {
            builder(&cfg)
                .with_runtime(Runtime::GroupParallel)
                .with_threads(cores)
                .solve_indexed(
                    &prepared.scenario.tasks,
                    &prepared.index,
                    &prepared.scenario.domain,
                    &cost_model,
                )
        });
        rows.push(Row::new(
            format!("|T|={t}"),
            vec![
                ("TaskLevel".into(), task_ms),
                ("GroupLevel".into(), group_ms),
            ],
        ));
    }
    Experiment {
        id: "fig9d",
        caption: "Multi-task time (ms) vs number of tasks",
        rows,
    }
}

/// Fig. 9(e): multi-task running time vs `m`, per distribution (task-level).
pub fn fig9e(scale: Scale) -> Experiment {
    let p = params(scale);
    let cores = *p.cores.last().unwrap();
    let cost_model = EuclideanCost::default();
    let m_values: Vec<usize> = p
        .m_sweep
        .iter()
        .map(|&m| m.min(p.multi_slots * 4))
        .collect();
    let mut rows = Vec::new();
    for &m in &m_values {
        let mut values = Vec::new();
        for placement in placements() {
            let prepared = prepare_multi(&multi_scenario(&p, placement.clone()).with_num_slots(m));
            let budget = budget_for_multi(&prepared, 0.25);
            let cfg = MultiTaskConfig::new(budget);
            let (_, ms) = timed(|| {
                builder(&cfg)
                    .with_runtime(Runtime::TaskParallel)
                    .with_threads(cores)
                    .with_priorities(true)
                    .solve_indexed(
                        &prepared.scenario.tasks,
                        &prepared.index,
                        &prepared.scenario.domain,
                        &cost_model,
                    )
            });
            values.push((placement.label().to_string(), ms));
        }
        rows.push(Row::new(format!("m={m}"), values));
    }
    Experiment {
        id: "fig9e",
        caption: "Multi-task time (ms) vs m, per distribution (task-level)",
        rows,
    }
}

/// Fig. 9(f): effect of dynamic thread priorities on the task-level framework.
pub fn fig9f(scale: Scale) -> Experiment {
    let p = params(scale);
    let prepared = prepare_multi(&multi_scenario(
        &p,
        TaskPlacement::Synthetic(SpatialDistribution::Uniform),
    ));
    let budget = budget_for_multi(&prepared, 0.25);
    let cfg = MultiTaskConfig::new(budget);
    let cost_model = EuclideanCost::default();
    let mut rows = Vec::new();
    for &cores in &p.cores {
        let (_, with_ms) = timed(|| {
            builder(&cfg)
                .with_runtime(Runtime::TaskParallel)
                .with_threads(cores)
                .with_priorities(true)
                .solve_indexed(
                    &prepared.scenario.tasks,
                    &prepared.index,
                    &prepared.scenario.domain,
                    &cost_model,
                )
        });
        let (_, without_ms) = timed(|| {
            builder(&cfg)
                .with_runtime(Runtime::TaskParallel)
                .with_threads(cores)
                .with_priorities(false)
                .solve_indexed(
                    &prepared.scenario.tasks,
                    &prepared.index,
                    &prepared.scenario.domain,
                    &cost_model,
                )
        });
        rows.push(Row::new(
            format!("cores={cores}"),
            vec![("Priority".into(), with_ms), ("Default".into(), without_ms)],
        ));
    }
    Experiment {
        id: "fig9f",
        caption: "Task-level parallelization time (ms): priority vs default",
        rows,
    }
}

/// Fig. 9(g): MMQM running time vs number of tasks (Approx vs Approx*).
pub fn fig9g(scale: Scale) -> Experiment {
    let p = params(scale);
    let cost_model = EuclideanCost::default();
    let mut rows = Vec::new();
    for &t in &p.task_sweep {
        let prepared = prepare_multi(
            &multi_scenario(&p, TaskPlacement::Synthetic(SpatialDistribution::Uniform))
                .with_num_tasks(t),
        );
        let budget = budget_for_multi(&prepared, 0.25);
        let (_, plain_ms) = timed(|| {
            builder(&MultiTaskConfig::new(budget).with_index(false))
                .with_objective(SolveObjective::MinQuality)
                .solve_indexed(
                    &prepared.scenario.tasks,
                    &prepared.index,
                    &prepared.scenario.domain,
                    &cost_model,
                )
        });
        let (_, fast_ms) = timed(|| {
            builder(&MultiTaskConfig::new(budget))
                .with_objective(SolveObjective::MinQuality)
                .solve_indexed(
                    &prepared.scenario.tasks,
                    &prepared.index,
                    &prepared.scenario.domain,
                    &cost_model,
                )
        });
        rows.push(Row::new(
            format!("|T|={t}"),
            vec![("Approx".into(), plain_ms), ("Approx*".into(), fast_ms)],
        ));
    }
    Experiment {
        id: "fig9g",
        caption: "MMQM time (ms) vs number of tasks",
        rows,
    }
}

/// Fig. 9(h): MMQM running time vs `m` (Approx vs Approx*).
pub fn fig9h(scale: Scale) -> Experiment {
    let p = params(scale);
    let cost_model = EuclideanCost::default();
    let mut rows = Vec::new();
    for &m in &p.m_sweep {
        let prepared = prepare_multi(
            &multi_scenario(&p, TaskPlacement::Synthetic(SpatialDistribution::Uniform))
                .with_num_slots(m),
        );
        let budget = budget_for_multi(&prepared, 0.25);
        let (_, plain_ms) = timed(|| {
            builder(&MultiTaskConfig::new(budget).with_index(false))
                .with_objective(SolveObjective::MinQuality)
                .solve_indexed(
                    &prepared.scenario.tasks,
                    &prepared.index,
                    &prepared.scenario.domain,
                    &cost_model,
                )
        });
        let (_, fast_ms) = timed(|| {
            builder(&MultiTaskConfig::new(budget))
                .with_objective(SolveObjective::MinQuality)
                .solve_indexed(
                    &prepared.scenario.tasks,
                    &prepared.index,
                    &prepared.scenario.domain,
                    &cost_model,
                )
        });
        rows.push(Row::new(
            format!("m={m}"),
            vec![("Approx".into(), plain_ms), ("Approx*".into(), fast_ms)],
        ));
    }
    Experiment {
        id: "fig9h",
        caption: "MMQM time (ms) vs number of subtasks m",
        rows,
    }
}

/// Fig. 9(i) — repo extension beyond the paper: throughput of the batched
/// engine vs the rebuild-per-call baseline on a re-planning sweep (the same
/// task batch solved under several budgets, as in the paper's budget
/// ablations).  The rebuild baseline recomputes every task's candidates per
/// call; the engine serves repeated solves from its incremental candidate
/// cache.  Slot-computation counters are reported alongside wall-clock time.
pub fn fig9i(scale: Scale) -> Experiment {
    let p = params(scale);
    let cost_model = EuclideanCost::default();
    let mut rows = Vec::new();
    for &t in &p.task_sweep {
        let prepared = prepare_multi(
            &multi_scenario(&p, TaskPlacement::Synthetic(SpatialDistribution::Uniform))
                .with_num_tasks(t),
        );
        let tasks = &prepared.scenario.tasks;
        let budgets: Vec<f64> = [0.125, 0.25, 0.375, 0.5]
            .iter()
            .map(|&f| budget_for_multi(&prepared, f))
            .collect();

        let (rebuild_slots, rebuild_ms) = timed(|| {
            let mut slots = 0usize;
            for &budget in &budgets {
                let outcome = msqm_rebuild(
                    tasks,
                    &prepared.index,
                    &cost_model,
                    &MultiTaskConfig::new(budget),
                );
                slots += outcome.stats.slot_computations;
            }
            slots
        });
        let (engine_slots, engine_ms) = timed(|| {
            let mut engine = AssignmentEngine::borrowed(
                &prepared.index,
                &cost_model,
                MultiTaskConfig::new(budgets[0]),
            );
            for &budget in &budgets {
                engine.release_all();
                engine.set_budget(budget);
                engine.assign_batch(tasks, Objective::SumQuality);
            }
            engine.stats().slot_computations
        });
        rows.push(Row::new(
            format!("|T|={t}"),
            vec![
                ("Rebuild".into(), rebuild_ms),
                ("Engine".into(), engine_ms),
                ("RebuildSlotComps".into(), rebuild_slots as f64),
                ("EngineSlotComps".into(), engine_slots as f64),
            ],
        ));
    }
    Experiment {
        id: "fig9i",
        caption:
            "Batched engine vs rebuild-per-call: re-planning sweep time (ms) and slot computations",
        rows,
    }
}

// ---------------------------------------------------------------------------
// Figure 9s (repo extension): sharded index + concurrent engine
// ---------------------------------------------------------------------------

/// One thread-count row of the `fig9s` serial-vs-concurrent comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig9sThreadRow {
    /// Worker threads of the concurrent engine.
    pub threads: usize,
    /// Cold-cache `assign_batch` time of the serial engine (ms).
    pub serial_ms: f64,
    /// Cold-cache `assign_batch_parallel` time of the concurrent engine (ms).
    pub concurrent_ms: f64,
    /// `serial_ms / concurrent_ms`.
    pub speedup: f64,
    /// Tasks assigned per second by the concurrent engine.
    pub throughput_tasks_per_s: f64,
}

/// The raw measurements behind [`fig9s`]: dense-vs-sharded index query time
/// and serial-vs-concurrent batch-assign time per thread count, on the
/// region-partitioned streaming preset.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig9sMeasurements {
    /// Scale label (`"quick"` / `"full"`).
    pub scale: &'static str,
    /// Hardware threads of the measuring machine (`1` serialises every
    /// parallel phase, so speedups can only materialise when this is > 1 —
    /// recorded so the artifact is interpretable across machines).
    pub hardware_threads: usize,
    /// Number of tasks in the batch.
    pub num_tasks: usize,
    /// Bulk k-NN query time over the dense index (ms).
    pub dense_knn_ms: f64,
    /// The same query bulk over the sharded index (ms).
    pub sharded_knn_ms: f64,
    /// Per-thread-count engine comparison.
    pub threads: Vec<Fig9sThreadRow>,
}

impl Fig9sMeasurements {
    /// Renders the measurements as an [`Experiment`] table.
    pub fn to_experiment(&self) -> Experiment {
        let mut rows = vec![Row::new(
            "index(kNN)",
            vec![
                ("DenseMs".into(), self.dense_knn_ms),
                ("ShardedMs".into(), self.sharded_knn_ms),
            ],
        )];
        for row in &self.threads {
            rows.push(Row::new(
                format!("threads={}", row.threads),
                vec![
                    ("Serial".into(), row.serial_ms),
                    ("Concurrent".into(), row.concurrent_ms),
                    ("Speedup".into(), row.speedup),
                    ("TasksPerSec".into(), row.throughput_tasks_per_s),
                ],
            ));
        }
        Experiment {
            id: "fig9s",
            caption: "Sharded index + concurrent engine: batch assign vs threads \
                      (region-partitioned streaming preset)",
            rows,
        }
    }

    /// Serialises the measurements as the `BENCH_fig9.json` artifact tracked
    /// across PRs (hand-rolled JSON; no serde in the hermetic build).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"figure\": \"fig9s\",\n");
        out.push_str(&format!("  \"scale\": \"{}\",\n", self.scale));
        out.push_str(&format!(
            "  \"hardware_threads\": {},\n",
            self.hardware_threads
        ));
        out.push_str(&format!("  \"num_tasks\": {},\n", self.num_tasks));
        out.push_str(&format!(
            "  \"index\": {{ \"dense_knn_ms\": {:.4}, \"sharded_knn_ms\": {:.4} }},\n",
            self.dense_knn_ms, self.sharded_knn_ms
        ));
        out.push_str("  \"threads\": [\n");
        for (i, row) in self.threads.iter().enumerate() {
            out.push_str(&format!(
                "    {{ \"threads\": {}, \"serial_ms\": {:.4}, \"concurrent_ms\": {:.4}, \
                 \"speedup\": {:.4}, \"throughput_tasks_per_s\": {:.2} }}{}\n",
                row.threads,
                row.serial_ms,
                row.concurrent_ms,
                row.speedup,
                row.throughput_tasks_per_s,
                if i + 1 < self.threads.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Measures Fig. 9s: dense-vs-sharded query time, then cold-cache batch
/// assignment of the region-partitioned streaming preset through the serial
/// engine and through the concurrent engine at increasing thread counts.
pub fn fig9s_measurements(scale: Scale) -> Fig9sMeasurements {
    // The batch is deliberately wide (many concurrent arrivals) with a
    // budget that executes a moderate fraction of it: the cold-cache
    // checkout and the all-tasks warm-start candidate wave dominate, which
    // is the work the region sharding spreads across threads; the serial
    // commit tail (one winner refresh per grant) stays short.
    let (label, regions, rounds, per_round, slots, workers, cores, runs) = match scale {
        Scale::Quick => (
            "quick",
            4usize,
            8usize,
            16usize,
            96usize,
            4000usize,
            vec![1, 2, 4, 8],
            3,
        ),
        Scale::Full => ("full", 8, 8, 40, 300, 10_357, vec![1, 2, 4, 8, 16], 3),
    };
    let base = ScenarioConfig::small()
        .with_num_slots(slots)
        .with_num_workers(workers);
    let streaming = StreamingConfig::region_partitioned(base, regions, rounds, per_round).build();
    let tasks = streaming.concatenated();
    let grid = ShardGridConfig::new(regions, regions);
    let dense = WorkerIndex::build(&streaming.workers, slots, &streaming.domain);
    let sharded = ShardedWorkerIndex::build(&streaming.workers, slots, &streaming.domain, grid);
    let cost = EuclideanCost::default();

    // Index comparison: the conflict-fallback query shape (k-NN per task per
    // slot) over both indexes.
    let dense_knn_ms = best_of(runs, || {
        let mut acc = 0usize;
        for task in &tasks {
            for slot in (0..slots).step_by(7) {
                acc += dense.k_nearest(slot, &task.location, 8).len();
            }
        }
        acc
    });
    let sharded_knn_ms = best_of(runs, || {
        let mut acc = 0usize;
        for task in &tasks {
            for slot in (0..slots).step_by(7) {
                acc += sharded.k_nearest(slot, &task.location, 8).len();
            }
        }
        acc
    });

    // Engine comparison: cold-cache batch assignment.  The budget scales
    // with the batch so the greedy grants a realistic number of executions
    // without letting the (inherently serial) commit tail dominate.
    let budget = tasks.len() as f64 * 0.2;
    let cfg = MultiTaskConfig::new(budget);
    let serial_ms = best_of(runs, || {
        AssignmentEngine::borrowed(&dense, &cost, cfg).assign_batch(&tasks, Objective::SumQuality)
    });
    let threads = cores
        .into_iter()
        .map(|t| {
            let concurrent_ms = best_of(runs, || {
                ConcurrentAssignmentEngine::new(sharded.clone(), &cost, cfg, t)
                    .assign_batch_parallel(&tasks, Objective::SumQuality)
            });
            Fig9sThreadRow {
                threads: t,
                serial_ms,
                concurrent_ms,
                speedup: serial_ms / concurrent_ms,
                throughput_tasks_per_s: tasks.len() as f64 / (concurrent_ms / 1000.0),
            }
        })
        .collect();

    Fig9sMeasurements {
        scale: label,
        hardware_threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
        num_tasks: tasks.len(),
        dense_knn_ms,
        sharded_knn_ms,
        threads,
    }
}

/// Fig. 9s (repo extension): dense-vs-sharded index and serial-vs-concurrent
/// engine on the region-partitioned streaming preset.
pub fn fig9s(scale: Scale) -> Experiment {
    fig9s_measurements(scale).to_experiment()
}

// ---------------------------------------------------------------------------
// Figure 9p (repo extension): incremental-gain commit engine
// ---------------------------------------------------------------------------

/// One refresh-strategy row of the `fig9p` old-vs-incremental comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig9pStrategyRow {
    /// Strategy label (`"full"` / `"incremental"`).
    pub strategy: &'static str,
    /// End-to-end cold-cache `assign_batch` time (ms, best-of).
    pub batch_ms: f64,
    /// Commit-tail refresh time of that run (ms): best-candidate searches
    /// beyond each task's warm start, ledger pops and patches.
    pub refresh_ms: f64,
    /// Refresh time per committed grant (µs).
    pub per_grant_refresh_us: f64,
    /// Fraction of the batch time spent in commit-tail refreshes.
    pub commit_tail_share: f64,
    /// Full best-candidate recomputes on the commit tail.
    pub full_refreshes: usize,
    /// Gain-ledger entry patches (conflict refreshes / undos).
    pub incremental_patches: usize,
    /// Stale ledger entries re-scored on pop.
    pub stale_pops: usize,
}

/// The raw measurements behind [`fig9p`]: the same cold-cache batch solved
/// under [`tcsc_assign::RefreshStrategy::Full`] (the pre-ledger
/// recompute-per-grant path, kept as the oracle) and under
/// [`tcsc_assign::RefreshStrategy::Incremental`] (the gain ledger), with the
/// commit-tail refresh cost broken out.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig9pMeasurements {
    /// Scale label (`"quick"` / `"full"`).
    pub scale: &'static str,
    /// Number of tasks in the batch.
    pub num_tasks: usize,
    /// Committed grants of the solve (identical across strategies).
    pub executions: usize,
    /// Worker conflicts of the solve (identical across strategies).
    pub conflicts: usize,
    /// Whether the two strategies committed bit-identical outcomes (plans,
    /// conflicts, executions) — the in-tree equivalence gate.
    pub plans_match: bool,
    /// `full.per_grant_refresh_us / incremental.per_grant_refresh_us`.
    pub refresh_speedup: f64,
    /// The full-refresh (old-path) measurements.
    pub full: Fig9pStrategyRow,
    /// The incremental-gain measurements.
    pub incremental: Fig9pStrategyRow,
}

impl Fig9pMeasurements {
    /// Renders the measurements as an [`Experiment`] table.
    pub fn to_experiment(&self) -> Experiment {
        let mut rows = Vec::new();
        for row in [&self.full, &self.incremental] {
            rows.push(Row::new(
                row.strategy,
                vec![
                    ("BatchMs".into(), row.batch_ms),
                    ("RefreshMs".into(), row.refresh_ms),
                    ("PerGrantUs".into(), row.per_grant_refresh_us),
                    ("TailShare".into(), row.commit_tail_share),
                    ("FullRefreshes".into(), row.full_refreshes as f64),
                    ("Patches".into(), row.incremental_patches as f64),
                    ("StalePops".into(), row.stale_pops as f64),
                ],
            ));
        }
        rows.push(Row::new(
            "summary",
            vec![
                ("RefreshSpeedup".into(), self.refresh_speedup),
                ("Executions".into(), self.executions as f64),
                ("Conflicts".into(), self.conflicts as f64),
                ("PlansMatch".into(), f64::from(u8::from(self.plans_match))),
            ],
        ));
        Experiment {
            id: "fig9p",
            caption: "Incremental-gain commit engine: per-grant refresh cost and commit-tail \
                      share, full vs incremental strategy",
            rows,
        }
    }

    /// Serialises the measurements as the `BENCH_fig9p.json` artifact tracked
    /// across PRs (hand-rolled JSON; no serde in the hermetic build).
    pub fn to_json(&self) -> String {
        let strategy = |row: &Fig9pStrategyRow| {
            format!(
                "{{ \"strategy\": \"{}\", \"batch_ms\": {:.4}, \"refresh_ms\": {:.4}, \
                 \"per_grant_refresh_us\": {:.4}, \"commit_tail_share\": {:.4}, \
                 \"full_refreshes\": {}, \"incremental_patches\": {}, \"stale_pops\": {} }}",
                row.strategy,
                row.batch_ms,
                row.refresh_ms,
                row.per_grant_refresh_us,
                row.commit_tail_share,
                row.full_refreshes,
                row.incremental_patches,
                row.stale_pops
            )
        };
        let mut out = String::from("{\n");
        out.push_str("  \"figure\": \"fig9p\",\n");
        out.push_str(&format!("  \"scale\": \"{}\",\n", self.scale));
        out.push_str(&format!("  \"num_tasks\": {},\n", self.num_tasks));
        out.push_str(&format!("  \"executions\": {},\n", self.executions));
        out.push_str(&format!("  \"conflicts\": {},\n", self.conflicts));
        out.push_str(&format!("  \"plans_match\": {},\n", self.plans_match));
        out.push_str(&format!(
            "  \"refresh_speedup\": {:.4},\n",
            self.refresh_speedup
        ));
        out.push_str(&format!("  \"full\": {},\n", strategy(&self.full)));
        out.push_str(&format!(
            "  \"incremental\": {}\n",
            strategy(&self.incremental)
        ));
        out.push_str("}\n");
        out
    }
}

/// Measures Fig. 9p: one cold-cache MSQM batch with a commit-heavy budget
/// (many grants, so the per-grant refresh dominates), solved under both
/// refresh strategies.
pub fn fig9p_measurements(scale: Scale) -> Fig9pMeasurements {
    // The fig9s shape that motivated this figure: a wide batch of many-slot
    // tasks under a tight budget, where every grant triggers the winner's
    // recompute *and* budget-staleness invalidations across the batch — the
    // commit tail that pinned the concurrent engine's speedup below 1x.
    let (label, num_tasks, slots, workers, budget_per_task, runs) = match scale {
        Scale::Quick => ("quick", 128usize, 96usize, 4000usize, 0.2f64, 3usize),
        Scale::Full => ("full", 256, 300, 10_357, 0.25, 3),
    };
    let cfg = ScenarioConfig::small()
        .with_num_tasks(num_tasks)
        .with_num_slots(slots)
        .with_num_workers(workers);
    let prepared = prepare_multi(&cfg);
    let tasks = &prepared.scenario.tasks;
    let cost = EuclideanCost::default();
    let budget = num_tasks as f64 * budget_per_task;

    // Best-of-`runs` on *both* reported quantities independently: the batch
    // wall clock and the commit-tail refresh nanos.  The refresh figure is a
    // hard CI gate (incremental must not exceed full), so it must not
    // inherit the noise of whichever run happened to win on batch time — a
    // preemption inside a timed section would flake the gate otherwise.
    // All deterministic counters are identical across runs by construction.
    let run = |strategy: tcsc_assign::RefreshStrategy| {
        let mcfg = MultiTaskConfig::new(budget).with_refresh(strategy);
        let mut best: Option<(tcsc_assign::MultiOutcome, f64)> = None;
        let mut best_refresh_nanos = u64::MAX;
        for _ in 0..runs.max(1) {
            let (outcome, ms) = timed(|| {
                AssignmentEngine::borrowed(&prepared.index, &cost, mcfg)
                    .assign_batch(tasks, Objective::SumQuality)
            });
            best_refresh_nanos = best_refresh_nanos.min(outcome.stats.refresh_nanos);
            if best.as_ref().map_or(true, |(_, best_ms)| ms < *best_ms) {
                best = Some((outcome, ms));
            }
        }
        let (outcome, ms) = best.expect("at least one run");
        (outcome, ms, best_refresh_nanos)
    };
    let (full_outcome, full_ms, full_refresh_nanos) = run(tcsc_assign::RefreshStrategy::Full);
    let (inc_outcome, inc_ms, inc_refresh_nanos) = run(tcsc_assign::RefreshStrategy::Incremental);

    let strategy_row = |name: &'static str,
                        outcome: &tcsc_assign::MultiOutcome,
                        batch_ms: f64,
                        refresh_nanos: u64|
     -> Fig9pStrategyRow {
        let refresh_ms = refresh_nanos as f64 / 1e6;
        Fig9pStrategyRow {
            strategy: name,
            batch_ms,
            refresh_ms,
            per_grant_refresh_us: refresh_nanos as f64 / 1e3 / outcome.executions.max(1) as f64,
            commit_tail_share: refresh_ms / batch_ms.max(f64::MIN_POSITIVE),
            full_refreshes: outcome.stats.full_refreshes,
            incremental_patches: outcome.stats.incremental_patches,
            stale_pops: outcome.stats.stale_pops,
        }
    };
    let full = strategy_row("full", &full_outcome, full_ms, full_refresh_nanos);
    let incremental = strategy_row("incremental", &inc_outcome, inc_ms, inc_refresh_nanos);
    let plans_match = full_outcome.assignment == inc_outcome.assignment
        && full_outcome.conflicts == inc_outcome.conflicts
        && full_outcome.executions == inc_outcome.executions;

    Fig9pMeasurements {
        scale: label,
        num_tasks,
        executions: inc_outcome.executions,
        conflicts: inc_outcome.conflicts,
        plans_match,
        refresh_speedup: full.per_grant_refresh_us
            / incremental.per_grant_refresh_us.max(f64::MIN_POSITIVE),
        full,
        incremental,
    }
}

/// Fig. 9p (repo extension): the incremental-gain commit engine against the
/// recompute-per-grant path on the same batch.
pub fn fig9p(scale: Scale) -> Experiment {
    fig9p_measurements(scale).to_experiment()
}

// ---------------------------------------------------------------------------
// Figure 9celf (repo extension): the cross-task CELF lazy commit queue and
// the disjoint-region overlapped drains
// ---------------------------------------------------------------------------

/// One thread-count cell of the fig9celf disjoint-drain sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig9cThreadRow {
    /// Worker threads of the concurrent engine.
    pub threads: usize,
    /// `drain_parallel` wall clock (ms, best-of).
    pub drain_ms: f64,
    /// Interior regions whose CELF commit loops ran overlapped.
    pub regions_used: usize,
    /// Tasks committed inside an interior region.
    pub interior_tasks: usize,
    /// Tasks reconciled by the serial boundary pass.
    pub boundary_tasks: usize,
    /// Interior conflict fallbacks dropped because the replacement fell
    /// outside the tile interior bound.
    pub deferred_slots: usize,
    /// Share of the drain's worker conflicts charged by the boundary pass.
    pub boundary_conflict_rate: f64,
}

/// The raw measurements behind [`fig9celf`]: the same batch committed under
/// the eager [`ConflictAccounting::V1`] contract and the lazy CELF
/// [`ConflictAccounting::V2`] queue, plus the disjoint-region
/// `drain_parallel` thread sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig9cMeasurements {
    /// Scale label (`"quick"` / `"full"`).
    pub scale: &'static str,
    /// Number of tasks in the batch.
    pub num_tasks: usize,
    /// Global budget of the batch.
    pub budget: f64,
    /// Committed grants (identical across contracts).
    pub executions: usize,
    /// Commit-loop re-scores under the eager V1 contract (every refreshed
    /// task per grant).
    pub v1_commit_rescores: usize,
    /// Commit-loop re-scores under the lazy V2 CELF queue (only the bounds
    /// that actually bound a selection).
    pub v2_commit_rescores: usize,
    /// `v2_commit_rescores / v1_commit_rescores`.
    pub lazy_rescore_ratio: f64,
    /// Summed quality under V1.
    pub v1_sum_quality: f64,
    /// Summed quality under V2.
    pub v2_sum_quality: f64,
    /// `v1_sum_quality - v2_sum_quality` (zero: the contracts pick the same
    /// plans and differ only in conflict bookkeeping).
    pub quality_delta: f64,
    /// CI gate: the concurrent engine under V1 committed the serial V1 plan
    /// (FNV plan hash over the committed executions).
    pub v1_plan_hash_match: bool,
    /// CI gate: the CELF queue re-scored strictly fewer candidates than the
    /// eager contract.
    pub v2_lazy_below_eager: bool,
    /// CI gate: every multi-thread drain overlapped at least two disjoint
    /// interior regions.
    pub regions_overlapped: bool,
    /// The disjoint-drain thread sweep.
    pub threads: Vec<Fig9cThreadRow>,
    /// The per-drain interior/boundary split (one streaming round per
    /// drain, top thread count) — the tracked baseline for the "widen
    /// interior classification" follow-up.
    pub drains: Vec<Fig9cDrainRow>,
}

/// One drain of the round-by-round disjoint-drain pass: how the region
/// classifier split that drain's tasks.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig9cDrainRow {
    /// Drain index (one streaming round per drain).
    pub drain: usize,
    /// Disjoint regions overlapped in the drain.
    pub regions_used: usize,
    /// Tasks committed inside an interior region.
    pub interior_tasks: usize,
    /// Tasks reconciled by the serial boundary pass.
    pub boundary_tasks: usize,
    /// Interior conflict fallbacks deferred past the tile interior bound.
    pub deferred_slots: usize,
}

impl Fig9cMeasurements {
    /// Renders the measurements as an [`Experiment`] table.
    pub fn to_experiment(&self) -> Experiment {
        let mut rows = vec![Row::new(
            "contracts",
            vec![
                ("V1Rescores".into(), self.v1_commit_rescores as f64),
                ("V2Rescores".into(), self.v2_commit_rescores as f64),
                ("LazyRatio".into(), self.lazy_rescore_ratio),
                ("QualityDelta".into(), self.quality_delta),
                (
                    "V1HashMatch".into(),
                    f64::from(u8::from(self.v1_plan_hash_match)),
                ),
            ],
        )];
        for row in &self.threads {
            rows.push(Row::new(
                format!("t={}", row.threads),
                vec![
                    ("DrainMs".into(), row.drain_ms),
                    ("Regions".into(), row.regions_used as f64),
                    ("Interior".into(), row.interior_tasks as f64),
                    ("Boundary".into(), row.boundary_tasks as f64),
                    ("Deferred".into(), row.deferred_slots as f64),
                    ("BoundaryConflictRate".into(), row.boundary_conflict_rate),
                ],
            ));
        }
        Experiment {
            id: "fig9celf",
            caption: "CELF lazy commit queue (V1 eager vs V2 lazy re-scores) and \
                      disjoint-region overlapped drains per thread count",
            rows,
        }
    }

    /// Serialises the measurements as the `BENCH_fig9c.json` artifact tracked
    /// across PRs (hand-rolled JSON; no serde in the hermetic build).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"figure\": \"fig9celf\",\n");
        out.push_str(&format!("  \"scale\": \"{}\",\n", self.scale));
        out.push_str(&format!("  \"num_tasks\": {},\n", self.num_tasks));
        out.push_str(&format!("  \"budget\": {:.4},\n", self.budget));
        out.push_str(&format!("  \"executions\": {},\n", self.executions));
        out.push_str(&format!(
            "  \"v1\": {{ \"commit_rescores\": {}, \"rescores_per_commit\": {:.4}, \
             \"sum_quality\": {:.6} }},\n",
            self.v1_commit_rescores,
            self.v1_commit_rescores as f64 / self.executions.max(1) as f64,
            self.v1_sum_quality
        ));
        out.push_str(&format!(
            "  \"v2\": {{ \"commit_rescores\": {}, \"rescores_per_commit\": {:.4}, \
             \"sum_quality\": {:.6} }},\n",
            self.v2_commit_rescores,
            self.v2_commit_rescores as f64 / self.executions.max(1) as f64,
            self.v2_sum_quality
        ));
        out.push_str(&format!(
            "  \"lazy_rescore_ratio\": {:.4},\n",
            self.lazy_rescore_ratio
        ));
        out.push_str(&format!(
            "  \"quality_delta\": {:.6},\n",
            self.quality_delta
        ));
        out.push_str(&format!(
            "  \"v1_plan_hash_match\": {},\n",
            self.v1_plan_hash_match
        ));
        out.push_str(&format!(
            "  \"v2_lazy_below_eager\": {},\n",
            self.v2_lazy_below_eager
        ));
        out.push_str(&format!(
            "  \"regions_overlapped\": {},\n",
            self.regions_overlapped
        ));
        out.push_str("  \"threads\": [\n");
        for (i, row) in self.threads.iter().enumerate() {
            out.push_str(&format!(
                "    {{ \"threads\": {}, \"drain_ms\": {:.4}, \"regions_used\": {}, \
                 \"interior_tasks\": {}, \"boundary_tasks\": {}, \"deferred_slots\": {}, \
                 \"boundary_conflict_rate\": {:.4} }}{}\n",
                row.threads,
                row.drain_ms,
                row.regions_used,
                row.interior_tasks,
                row.boundary_tasks,
                row.deferred_slots,
                row.boundary_conflict_rate,
                if i + 1 < self.threads.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"drains\": [\n");
        for (i, row) in self.drains.iter().enumerate() {
            out.push_str(&format!(
                "    {{ \"drain\": {}, \"regions_used\": {}, \"interior_tasks\": {}, \
                 \"boundary_tasks\": {}, \"deferred_slots\": {} }}{}\n",
                row.drain,
                row.regions_used,
                row.interior_tasks,
                row.boundary_tasks,
                row.deferred_slots,
                if i + 1 < self.drains.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Measures Fig. 9celf: the region-partitioned streaming preset (clustered
/// arrivals, so interior regions exist) solved serially under both conflict
/// contracts, the concurrent V1 plan-hash gate, and the V2 disjoint-region
/// `drain_parallel` at increasing thread counts.
pub fn fig9celf_measurements(scale: Scale) -> Fig9cMeasurements {
    let (label, regions, rounds, per_round, slots, workers, cores, runs) = match scale {
        Scale::Quick => (
            "quick",
            3usize,
            6usize,
            12usize,
            64usize,
            900usize,
            vec![1, 2, 4],
            3,
        ),
        Scale::Full => ("full", 4, 8, 24, 128, 2400, vec![1, 2, 4, 8], 3),
    };
    let base = ScenarioConfig::small()
        .with_num_slots(slots)
        .with_num_workers(workers);
    let streaming = StreamingConfig::region_partitioned(base, regions, rounds, per_round).build();
    let tasks = streaming.concatenated();
    let grid = ShardGridConfig::new(regions, regions);
    let dense = WorkerIndex::build(&streaming.workers, slots, &streaming.domain);
    let sharded = ShardedWorkerIndex::build(&streaming.workers, slots, &streaming.domain, grid);
    let cost = EuclideanCost::default();
    let budget = tasks.len() as f64 * 1.1;

    // Serial V1 vs V2: same batch, same budget — the plans agree, only the
    // commit-loop re-score counters (and conflict bookkeeping) differ.
    let solve_serial = |accounting: ConflictAccounting| {
        let cfg = MultiTaskConfig::new(budget).with_accounting(accounting);
        AssignmentEngine::borrowed(&dense, &cost, cfg).assign_batch(&tasks, Objective::SumQuality)
    };
    let v1 = solve_serial(ConflictAccounting::V1);
    let v2 = solve_serial(ConflictAccounting::V2);

    // Gate 1: the concurrent engine under the pinned V1 contract replays the
    // serial V1 plan bit-for-bit (compared through the FNV plan hash the
    // distributed runtime uses).
    let concurrent_v1 = ConcurrentAssignmentEngine::new(
        sharded.clone(),
        &cost,
        MultiTaskConfig::new(budget).with_accounting(ConflictAccounting::V1),
        4,
    )
    .assign_batch_parallel(&tasks, Objective::SumQuality);
    let v1_plan_hash_match =
        tcsc_sim::plan_hash(&v1.assignment) == tcsc_sim::plan_hash(&concurrent_v1.assignment);

    // Thread sweep: V2 disjoint-region drains.  The engine is rebuilt per
    // run (drains consume the pending batch); the report is identical across
    // runs and threads by construction, the wall clock is best-of.
    let mut thread_rows = Vec::new();
    let mut regions_overlapped = true;
    for &threads in &cores {
        let cfg = MultiTaskConfig::new(budget).with_accounting(ConflictAccounting::V2);
        let mut best_ms = f64::INFINITY;
        let mut captured = None;
        for _ in 0..runs.max(1) {
            let mut engine = ConcurrentAssignmentEngine::new(sharded.clone(), &cost, cfg, threads);
            engine.submit(tasks.iter().cloned());
            let (outcome, ms) = timed(|| engine.drain_parallel(Objective::SumQuality));
            best_ms = best_ms.min(ms);
            let report = engine
                .last_drain_report()
                .expect("V2 multi-shard drains take the disjoint-region path");
            captured = Some((outcome, report));
        }
        let (outcome, report) = captured.expect("at least one run");
        if report.regions_used < 2 {
            regions_overlapped = false;
        }
        thread_rows.push(Fig9cThreadRow {
            threads,
            drain_ms: best_ms,
            regions_used: report.regions_used,
            interior_tasks: report.interior_tasks,
            boundary_tasks: report.boundary_tasks,
            deferred_slots: report.deferred_slots,
            boundary_conflict_rate: report.boundary_conflicts as f64
                / outcome.conflicts.max(1) as f64,
        });
    }

    // Per-drain split: the streaming rounds drained one at a time at the
    // top thread count, so the interior/boundary classification gets a
    // tracked per-drain baseline (previously only the one-off report of the
    // final drain was visible).
    let top_threads = *cores.last().expect("at least one thread count");
    let mut round_engine = ConcurrentAssignmentEngine::new(
        sharded.clone(),
        &cost,
        MultiTaskConfig::new(budget).with_accounting(ConflictAccounting::V2),
        top_threads,
    );
    let mut drain_rows = Vec::new();
    for (round, batch) in streaming.rounds.iter().enumerate() {
        round_engine.submit(batch.iter().cloned());
        let _ = round_engine.drain_parallel(Objective::SumQuality);
        let report = round_engine
            .last_drain_report()
            .expect("V2 multi-shard drains take the disjoint-region path");
        drain_rows.push(Fig9cDrainRow {
            drain: round,
            regions_used: report.regions_used,
            interior_tasks: report.interior_tasks,
            boundary_tasks: report.boundary_tasks,
            deferred_slots: report.deferred_slots,
        });
    }

    Fig9cMeasurements {
        scale: label,
        num_tasks: tasks.len(),
        budget,
        executions: v2.executions,
        v1_commit_rescores: v1.stats.commit_rescores,
        v2_commit_rescores: v2.stats.commit_rescores,
        lazy_rescore_ratio: v2.stats.commit_rescores as f64
            / v1.stats.commit_rescores.max(1) as f64,
        v1_sum_quality: v1.sum_quality(),
        v2_sum_quality: v2.sum_quality(),
        quality_delta: v1.sum_quality() - v2.sum_quality(),
        v1_plan_hash_match,
        v2_lazy_below_eager: v2.stats.commit_rescores < v1.stats.commit_rescores,
        regions_overlapped,
        threads: thread_rows,
        drains: drain_rows,
    }
}

/// Fig. 9celf (repo extension): the CELF lazy commit queue and the
/// disjoint-region overlapped drains.
pub fn fig9celf(scale: Scale) -> Experiment {
    fig9celf_measurements(scale).to_experiment()
}

// ---------------------------------------------------------------------------
// Figure 9d (repo extension): the simulated distributed runtime
// ---------------------------------------------------------------------------

/// One `(node count, latency model)` cell of the fig9dist sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig9dRow {
    /// Region nodes in the cluster.
    pub nodes: usize,
    /// Latency-model label.
    pub latency: String,
    /// Mean one-way latency (µs).
    pub latency_mean_us: f64,
    /// Virtual completion time of the barrier master (ms).
    pub barrier_virtual_ms: f64,
    /// Virtual completion time of the optimistic master (ms).
    pub optimistic_virtual_ms: f64,
    /// Delivered events under the barrier master.
    pub barrier_events: u64,
    /// Delivered events under the optimistic master.
    pub optimistic_events: u64,
    /// Rolled-back provisional grants of the optimistic run.
    pub optimistic_rollbacks: usize,
    /// Serial-tie-break supersedes of the optimistic run (a subset of the
    /// rollbacks: late heartbeats that beat an already-granted selection).
    pub optimistic_supersedes: usize,
    /// Wall-clock time to simulate both runs (ms).
    pub wall_ms: f64,
}

/// The raw measurements behind [`fig9dist`]: the distributed discrete-event
/// runtime swept over node count × network latency, under both grant
/// policies, plus the zero-latency single-node cross-check against the
/// in-process engine (the CI gate).
#[derive(Debug, Clone, PartialEq)]
pub struct Fig9dMeasurements {
    /// Scale label (`"quick"` / `"full"`).
    pub scale: &'static str,
    /// Total simulated task arrivals.
    pub num_tasks: usize,
    /// Arrival rounds.
    pub rounds: usize,
    /// Worker conflicts of the committed solve.
    pub conflicts: usize,
    /// Committed executions.
    pub executions: usize,
    /// Plan hash of the zero-latency single-node simulation.
    pub sim_plan_hash: u64,
    /// Plan hash of the in-process engine on the same rounds.
    pub engine_plan_hash: u64,
    /// Whether the two hashes agree (must be `true`; CI asserts it).
    pub plan_hash_matches: bool,
    /// Speculation aggregates over the whole sweep, accumulated through the
    /// `tcsc-obs` registry: total/per-cell rollback and supersede counts —
    /// the baseline the speculation-tuning work starts from.
    pub speculation: tcsc_obs::MetricsRegistry,
    /// The sweep cells.
    pub rows: Vec<Fig9dRow>,
}

impl Fig9dMeasurements {
    /// Renders the measurements as an [`Experiment`] table.
    pub fn to_experiment(&self) -> Experiment {
        let mut rows = vec![Row::new(
            "plan-hash",
            vec![(
                "Matches".into(),
                f64::from(u8::from(self.plan_hash_matches)),
            )],
        )];
        for row in &self.rows {
            rows.push(Row::new(
                format!("n={} {}", row.nodes, row.latency),
                vec![
                    ("BarrierVmMs".into(), row.barrier_virtual_ms),
                    ("OptimisticVmMs".into(), row.optimistic_virtual_ms),
                    ("BarrierEvents".into(), row.barrier_events as f64),
                    ("OptimisticEvents".into(), row.optimistic_events as f64),
                    ("Rollbacks".into(), row.optimistic_rollbacks as f64),
                    ("Supersedes".into(), row.optimistic_supersedes as f64),
                ],
            ));
        }
        Experiment {
            id: "fig9dist",
            caption: "Distributed discrete-event runtime: virtual completion time vs \
                      node count x network latency (barrier vs optimistic master)",
            rows,
        }
    }

    /// Serialises the measurements as the `BENCH_fig9d.json` artifact
    /// (hand-rolled JSON; no serde in the hermetic build).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"figure\": \"fig9d\",\n");
        out.push_str(&format!("  \"scale\": \"{}\",\n", self.scale));
        out.push_str(&format!("  \"num_tasks\": {},\n", self.num_tasks));
        out.push_str(&format!("  \"rounds\": {},\n", self.rounds));
        out.push_str(&format!("  \"conflicts\": {},\n", self.conflicts));
        out.push_str(&format!("  \"executions\": {},\n", self.executions));
        out.push_str(&format!(
            "  \"sim_plan_hash\": \"{:#018x}\",\n",
            self.sim_plan_hash
        ));
        out.push_str(&format!(
            "  \"engine_plan_hash\": \"{:#018x}\",\n",
            self.engine_plan_hash
        ));
        out.push_str(&format!(
            "  \"plan_hash_matches\": {},\n",
            self.plan_hash_matches
        ));
        let rollback_hist = self.speculation.histogram("fig9d.cell_rollbacks");
        out.push_str(&format!(
            "  \"speculation\": {{ \"total_rollbacks\": {}, \"total_supersedes\": {}, \
             \"max_cell_rollbacks\": {}, \"p50_cell_rollbacks\": {} }},\n",
            self.speculation.counter_value("fig9d.rollbacks"),
            self.speculation.counter_value("fig9d.supersedes"),
            rollback_hist.map_or(0, |h| h.max()),
            rollback_hist.map_or(0, |h| h.p50()),
        ));
        out.push_str("  \"sweep\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{ \"nodes\": {}, \"latency\": \"{}\", \"latency_mean_us\": {:.1}, \
                 \"barrier_virtual_ms\": {:.4}, \"optimistic_virtual_ms\": {:.4}, \
                 \"barrier_events\": {}, \"optimistic_events\": {}, \
                 \"optimistic_rollbacks\": {}, \"optimistic_supersedes\": {}, \
                 \"wall_ms\": {:.4} }}{}\n",
                row.nodes,
                row.latency,
                row.latency_mean_us,
                row.barrier_virtual_ms,
                row.optimistic_virtual_ms,
                row.barrier_events,
                row.optimistic_events,
                row.optimistic_rollbacks,
                row.optimistic_supersedes,
                row.wall_ms,
                if i + 1 < self.rows.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Measures fig9dist: a region-partitioned streaming workload converted to a
/// timed arrival trace and replayed through the simulated distributed
/// runtime, sweeping node count × network latency under both grant policies.
/// Every cell's plans are checked against the in-process engine.
pub fn fig9dist_measurements(scale: Scale) -> Fig9dMeasurements {
    use std::rc::Rc;

    use tcsc_sim::{plan_hash, run_cluster, GrantPolicy, LatencyModel, SimBatch, SimClusterConfig};
    use tcsc_workload::ArrivalTrace;

    let (label, regions, rounds, per_round, slots, workers, node_sweep, latencies) = match scale {
        Scale::Quick => (
            "quick",
            3usize,
            3usize,
            6usize,
            24usize,
            120usize,
            vec![1usize, 2, 4],
            vec![
                LatencyModel::Zero,
                LatencyModel::Fixed(200),
                LatencyModel::Uniform { min: 50, max: 2000 },
            ],
        ),
        Scale::Full => (
            "full",
            4,
            4,
            15,
            60,
            800,
            vec![1, 2, 4, 8, 16],
            vec![
                LatencyModel::Zero,
                LatencyModel::Fixed(200),
                LatencyModel::Fixed(2_000),
                LatencyModel::Uniform { min: 50, max: 5000 },
            ],
        ),
    };
    let base = ScenarioConfig::small()
        .with_num_slots(slots)
        .with_num_workers(workers);
    let streaming = StreamingConfig::region_partitioned(base, regions, rounds, per_round).build();
    // Rounds arrive back to back (10ms apart), so completion time measures
    // the protocol's latency behaviour rather than the arrival schedule.
    let trace = ArrivalTrace::from_streaming(&streaming, 10_000);
    let budget = trace.len() as f64 * 2.0;
    let cost = EuclideanCost::default();

    // The in-process reference: the serial engine on the same rounds.
    let dense = WorkerIndex::build(&streaming.workers, slots, &streaming.domain);
    let mut engine = AssignmentEngine::borrowed(&dense, &cost, MultiTaskConfig::new(budget));
    let mut engine_plans = Vec::new();
    let mut conflicts = 0usize;
    let mut executions = 0usize;
    for round in &streaming.rounds {
        engine.submit(round.clone());
        let outcome = engine.drain(Objective::SumQuality);
        engine_plans.extend(outcome.assignment.plans);
        conflicts += outcome.conflicts;
        executions += outcome.executions;
    }
    let engine_plan_hash = tcsc_sim::plan_hash(&tcsc_core::MultiAssignment::new(engine_plans));

    let batches = |trace: &ArrivalTrace| -> Vec<SimBatch> {
        trace
            .batches()
            .into_iter()
            .map(|(at_us, tasks)| SimBatch { at_us, tasks })
            .collect()
    };

    // CI gate: the zero-latency single-node barrier sim must reproduce the
    // engine's plans bit for bit.
    let gate = run_cluster(
        &streaming.workers,
        slots,
        &streaming.domain,
        batches(&trace),
        Rc::new(EuclideanCost::default()),
        &SimClusterConfig::new(1, regions, budget, LatencyModel::Zero)
            .with_policy(GrantPolicy::Barrier),
    );
    let sim_plan_hash = plan_hash(&gate.assignment);
    let plan_hash_matches = sim_plan_hash == engine_plan_hash;

    let mut rows = Vec::new();
    let mut speculation = tcsc_obs::MetricsRegistry::new();
    for &nodes in &node_sweep {
        for latency in &latencies {
            let ((barrier, optimistic), wall_ms) = timed(|| {
                let barrier = run_cluster(
                    &streaming.workers,
                    slots,
                    &streaming.domain,
                    batches(&trace),
                    Rc::new(EuclideanCost::default()),
                    &SimClusterConfig::new(nodes, regions, budget, *latency)
                        .with_policy(GrantPolicy::Barrier)
                        .with_service_us(50)
                        .with_pings(10_000, 16),
                );
                let optimistic = run_cluster(
                    &streaming.workers,
                    slots,
                    &streaming.domain,
                    batches(&trace),
                    Rc::new(EuclideanCost::default()),
                    &SimClusterConfig::new(nodes, regions, budget, *latency)
                        .with_policy(GrantPolicy::Optimistic)
                        .with_service_us(50)
                        .with_pings(10_000, 16),
                );
                (barrier, optimistic)
            });
            assert_eq!(
                plan_hash(&barrier.assignment),
                engine_plan_hash,
                "barrier sim diverged from the engine at {nodes} nodes, {latency:?}"
            );
            assert_eq!(
                plan_hash(&optimistic.assignment),
                engine_plan_hash,
                "optimistic sim diverged from the engine at {nodes} nodes, {latency:?}"
            );
            speculation.counter("fig9d.rollbacks", optimistic.rollbacks as u64);
            speculation.counter("fig9d.supersedes", optimistic.supersedes as u64);
            speculation.value("fig9d.cell_rollbacks", optimistic.rollbacks as u64);
            rows.push(Fig9dRow {
                nodes,
                latency: latency.describe(),
                latency_mean_us: latency.mean(),
                barrier_virtual_ms: barrier.finish_time_us as f64 / 1000.0,
                optimistic_virtual_ms: optimistic.finish_time_us as f64 / 1000.0,
                barrier_events: barrier.delivered_events,
                optimistic_events: optimistic.delivered_events,
                optimistic_rollbacks: optimistic.rollbacks,
                optimistic_supersedes: optimistic.supersedes,
                wall_ms,
            });
        }
    }

    Fig9dMeasurements {
        scale: label,
        num_tasks: trace.len(),
        rounds: trace.rounds,
        conflicts,
        executions,
        sim_plan_hash,
        engine_plan_hash,
        plan_hash_matches,
        speculation,
        rows,
    }
}

/// Fig. 9d (repo extension): the distributed discrete-event runtime swept
/// over node count × network latency, barrier vs optimistic master.
pub fn fig9dist(scale: Scale) -> Experiment {
    fig9dist_measurements(scale).to_experiment()
}

// ---------------------------------------------------------------------------
// Figure 9obs (repo extension): the observability layer itself — digest
// stability across cluster layouts, trace export/replay, recorder overhead
// ---------------------------------------------------------------------------

/// One `(nodes, latency, policy)` cell of the fig9obs digest sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig9oRow {
    /// Region nodes in the cluster.
    pub nodes: usize,
    /// Latency-model label.
    pub latency: String,
    /// Grant-policy label.
    pub policy: &'static str,
    /// Logical-stream digest of the recorded run.
    pub digest: u64,
    /// Total recorded events (all scopes).
    pub events: usize,
}

/// The raw measurements behind [`fig9obs`]: the trace digest swept over
/// cluster layouts (must be uniform — the equivalence lock), the chrome
/// export → replay round trip, and the recorder's overhead on the fig9p
/// commit-tail workload against the static no-op baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig9oMeasurements {
    /// Scale label (`"quick"` / `"full"`).
    pub scale: &'static str,
    /// The digest sweep cells.
    pub rows: Vec<Fig9oRow>,
    /// Whether every cell produced the identical logical digest (CI gate).
    pub digest_uniform: bool,
    /// Whether exporting the trace and replaying it through the parser
    /// reproduced the digest bit for bit (CI gate).
    pub digest_match: bool,
    /// fig9p-shaped batch wall clock with the `NoopRecorder` default (ms,
    /// best-of).
    pub noop_ms: f64,
    /// The same batch with a live `ObsSession` attached (ms, best-of).
    pub recorded_ms: f64,
    /// `recorded_ms / noop_ms`.
    pub overhead_ratio: f64,
    /// Whether the live recorder stayed within noise of the no-op baseline
    /// (generous bound — the gate guards order-of-magnitude regressions,
    /// not scheduler jitter).
    pub overhead_ok: bool,
    /// chrome://tracing dump of one recorded run (the CI artifact).
    pub trace_jsonl: String,
    /// Plain-text summary of the same run (events + metrics registry).
    pub summary: String,
}

impl Fig9oMeasurements {
    /// Renders the measurements as an [`Experiment`] table.
    pub fn to_experiment(&self) -> Experiment {
        let reference = self.rows.first().map_or(0, |r| r.digest);
        let mut rows = vec![
            Row::new(
                "locks",
                vec![
                    (
                        "DigestUniform".into(),
                        f64::from(u8::from(self.digest_uniform)),
                    ),
                    (
                        "ReplayMatches".into(),
                        f64::from(u8::from(self.digest_match)),
                    ),
                ],
            ),
            Row::new(
                "overhead",
                vec![
                    ("NoopMs".into(), self.noop_ms),
                    ("RecordedMs".into(), self.recorded_ms),
                    ("Ratio".into(), self.overhead_ratio),
                ],
            ),
        ];
        for row in &self.rows {
            rows.push(Row::new(
                format!("n={} {} {}", row.nodes, row.latency, row.policy),
                vec![
                    ("Events".into(), row.events as f64),
                    (
                        "DigestOk".into(),
                        f64::from(u8::from(row.digest == reference)),
                    ),
                ],
            ));
        }
        Experiment {
            id: "fig9obs",
            caption: "Observability layer: logical digest across cluster layouts, \
                      trace export/replay round trip, recorder overhead vs no-op",
            rows,
        }
    }

    /// Serialises the measurements as the `BENCH_obs.json` artifact
    /// (hand-rolled JSON; no serde in the hermetic build).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"figure\": \"fig9obs\",\n");
        out.push_str(&format!("  \"scale\": \"{}\",\n", self.scale));
        out.push_str(&format!("  \"digest_uniform\": {},\n", self.digest_uniform));
        out.push_str(&format!("  \"digest_match\": {},\n", self.digest_match));
        out.push_str(&format!("  \"noop_ms\": {:.4},\n", self.noop_ms));
        out.push_str(&format!("  \"recorded_ms\": {:.4},\n", self.recorded_ms));
        out.push_str(&format!(
            "  \"overhead_ratio\": {:.4},\n",
            self.overhead_ratio
        ));
        out.push_str(&format!("  \"overhead_ok\": {},\n", self.overhead_ok));
        out.push_str("  \"sweep\": [\n");
        for (i, row) in self.rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{ \"nodes\": {}, \"latency\": \"{}\", \"policy\": \"{}\", \
                 \"digest\": \"{:#018x}\", \"events\": {} }}{}\n",
                row.nodes,
                row.latency,
                row.policy,
                row.digest,
                row.events,
                if i + 1 < self.rows.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// Measures fig9obs: records the seeded sim across node count × latency ×
/// grant policy and checks the logical digest is layout-invariant, round-trips
/// one trace through the chrome exporter/parser, then times the fig9p-shaped
/// commit-tail batch with and without a live recorder.
pub fn fig9obs_measurements(scale: Scale) -> Fig9oMeasurements {
    use std::rc::Rc;

    use tcsc_obs::{parse_chrome_trace_jsonl, replay_digest, ObsSession};
    use tcsc_sim::{run_cluster, GrantPolicy, LatencyModel, SimBatch, SimClusterConfig};

    let (label, node_sweep, latencies, overhead_tasks, overhead_workers, runs) = match scale {
        Scale::Quick => (
            "quick",
            vec![1usize, 2, 4],
            vec![
                LatencyModel::Zero,
                LatencyModel::Uniform { min: 20, max: 4000 },
            ],
            128usize,
            4000usize,
            3usize,
        ),
        Scale::Full => (
            "full",
            vec![1, 2, 4, 8],
            vec![
                LatencyModel::Zero,
                LatencyModel::Fixed(250),
                LatencyModel::Uniform { min: 20, max: 4000 },
            ],
            256,
            10_357,
            5,
        ),
    };

    let cfg = ScenarioConfig::small()
        .with_num_tasks(10)
        .with_num_slots(30)
        .with_num_workers(150)
        .with_placement(TaskPlacement::Synthetic(SpatialDistribution::region_grid(
            3,
        )));
    let scenario = cfg.build();
    let slots = cfg.num_slots;

    let mut rows = Vec::new();
    let mut kept: Option<tcsc_obs::ObsReport> = None;
    for &nodes in &node_sweep {
        for latency in &latencies {
            for policy in [GrantPolicy::Barrier, GrantPolicy::Optimistic] {
                let config = SimClusterConfig::new(nodes, 3, 55.0, *latency)
                    .with_policy(policy)
                    .with_seed(7 + nodes as u64)
                    .with_obs();
                let outcome = run_cluster(
                    &scenario.workers,
                    slots,
                    &scenario.domain,
                    vec![SimBatch::immediate(scenario.tasks.clone())],
                    Rc::new(EuclideanCost::default()),
                    &config,
                );
                let report = outcome.obs.expect("with_obs() records");
                rows.push(Fig9oRow {
                    nodes,
                    latency: latency.describe(),
                    policy: match policy {
                        GrantPolicy::Barrier => "barrier",
                        GrantPolicy::Optimistic => "optimistic",
                    },
                    digest: report.digest,
                    events: report.events.len(),
                });
                kept.get_or_insert(report);
            }
        }
    }
    let reference = rows.first().map_or(0, |r| r.digest);
    let digest_uniform = rows.iter().all(|r| r.digest == reference);

    let kept = kept.expect("at least one sweep cell");
    let trace_jsonl = kept.chrome_trace();
    let digest_match = replay_digest(&parse_chrome_trace_jsonl(&trace_jsonl)) == kept.digest;
    let summary = format!(
        "fig9obs ({label}): {} sweep cells, digest {:#018x} (uniform: {digest_uniform}, \
         replay match: {digest_match})\n\n{}",
        rows.len(),
        reference,
        kept.metrics.render()
    );

    // Recorder overhead on the fig9p commit-tail shape: the per-grant
    // incremental-refresh batch, untimed instrumentation (NoopRecorder
    // default) against a live wall-clock session.
    let pcfg = ScenarioConfig::small()
        .with_num_tasks(overhead_tasks)
        .with_num_slots(96)
        .with_num_workers(overhead_workers);
    let prepared = prepare_multi(&pcfg);
    let tasks = &prepared.scenario.tasks;
    let cost = EuclideanCost::default();
    let mcfg = MultiTaskConfig::new(overhead_tasks as f64 * 0.2)
        .with_refresh(tcsc_assign::RefreshStrategy::Incremental);
    let noop_ms = best_of(runs, || {
        AssignmentEngine::borrowed(&prepared.index, &cost, mcfg)
            .assign_batch(tasks, Objective::SumQuality)
    });
    let session = ObsSession::wall();
    let recorded_ms = best_of(runs, || {
        AssignmentEngine::borrowed(&prepared.index, &cost, mcfg)
            .with_recorder(&session)
            .assign_batch(tasks, Objective::SumQuality)
    });
    let overhead_ratio = recorded_ms / noop_ms.max(f64::MIN_POSITIVE);
    // Within noise: a live session appends one buffered event per span —
    // nanoseconds against a millisecond-scale batch.  The bound is generous
    // (1.5x + 1ms) because CI machines preempt; it exists to catch a
    // recorder that accidentally becomes O(events) per record.
    let overhead_ok = recorded_ms <= noop_ms * 1.5 + 1.0;

    Fig9oMeasurements {
        scale: label,
        rows,
        digest_uniform,
        digest_match,
        noop_ms,
        recorded_ms,
        overhead_ratio,
        overhead_ok,
        trace_jsonl,
        summary,
    }
}

/// Fig. 9obs (repo extension): digest stability of the observability layer
/// across cluster layouts, plus recorder overhead against the no-op default.
pub fn fig9obs(scale: Scale) -> Experiment {
    fig9obs_measurements(scale).to_experiment()
}

// ---------------------------------------------------------------------------
// Figure 9svc (repo extension): service-mode SLOs — the streaming engine fed
// by a heavy-tailed arrival process with rush-hour bursts, windowed latency
// percentiles per phase, span-tree profile and retired-task GC
// ---------------------------------------------------------------------------

/// Slots per service task (kept small: the service figure measures latency
/// under load, not assignment quality).
const SVC_NUM_SLOTS: usize = 2;
/// The service drains its queue every `DRAIN` microseconds of virtual time.
const SVC_DRAIN_EVERY_US: u64 = 5_000;
/// A committed plan occupies its workers for this long before the
/// retired-task GC releases them back to the pool.
const SVC_SERVICE_US: u64 = 20_000;
/// Per-phase submit→commit latency windows installed on the virtual-clock
/// session (indexed by phase position in the rush-hour schedule).
const SVC_WINDOWS: [&str; 3] = [
    "svc.latency_us.calm",
    "svc.latency_us.rush",
    "svc.latency_us.recovery",
];
/// Window slice width (virtual nanoseconds): two drain ticks per slice.
const SVC_WINDOW_SLICE_NANOS: u64 = 2 * SVC_DRAIN_EVERY_US * 1_000;
/// Slices per window: the windowed SLO spans the last 16 drain ticks.
const SVC_WINDOW_SLICES: usize = 8;

/// One phase of the fig9svc SLO table: submit→commit latency (virtual
/// microseconds) for tasks that *arrived* during the phase, plus committed
/// throughput per virtual second of phase time.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig9svcPhaseRow {
    /// Phase label (`calm` / `rush` / `recovery`).
    pub label: &'static str,
    /// Tasks that arrived while the phase was active (all cycles).
    pub arrivals: u64,
    /// Tasks committed whose arrival fell in the phase.
    pub commits: u64,
    /// Median submit→commit latency, virtual µs.
    pub p50_us: u64,
    /// 99th-percentile submit→commit latency, virtual µs.
    pub p99_us: u64,
    /// Worst submit→commit latency, virtual µs.
    pub max_us: u64,
    /// p99 of the *sliding window* at stream end (the recent-SLO view; 0
    /// when the window has fully rotated past the phase's last samples).
    pub window_p99_us: u64,
    /// Commits per virtual second of phase time.
    pub throughput_per_s: f64,
}

/// The raw measurements behind [`fig9svc`]: a long task stream served by the
/// batched engine under a rush-hour arrival schedule, with per-phase latency
/// SLOs, the obs-on/obs-off plan-hash identity, the retired-task-GC memory
/// bound and the span-tree profile reconciliation.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig9svcMeasurements {
    /// Scale label (`"quick"` / `"full"`).
    pub scale: &'static str,
    /// Tasks streamed through the service (per pass).
    pub tasks_streamed: usize,
    /// Worker-pool size.
    pub workers: usize,
    /// Per-drain submission capacity (the modelled server drain rate).
    pub capacity: usize,
    /// Total committed executions (slot grants) in the observed pass.
    pub executions: u64,
    /// Drain rounds executed.
    pub drains: u64,
    /// Virtual time at stream end, µs.
    pub virtual_end_us: u64,
    /// The per-phase SLO rows.
    pub phases: Vec<Fig9svcPhaseRow>,
    /// Gate: every phase committed tasks and reports a finite, positive p99.
    pub p99_finite: bool,
    /// Gate: every phase sustained positive committed throughput.
    pub throughput_positive: bool,
    /// Folded per-drain plan hash of the unobserved (NoopRecorder) pass.
    pub noop_plan_hash: u64,
    /// Folded per-drain plan hash of the recorded pass.
    pub obs_plan_hash: u64,
    /// Gate: the two passes decided bit-identical plans.
    pub plan_hash_match: bool,
    /// Peak engine queue depth sampled by the `engine.queue_depth` gauge.
    pub peak_queue_depth: u64,
    /// Peak driver-side backlog (arrivals waiting for drain capacity).
    pub peak_backlog: u64,
    /// Peak occupancy-ledger size across the stream.
    pub peak_ledger: u64,
    /// Occupancies returned to the pool by the retired-task GC.
    pub released: u64,
    /// Ledger size after the final GC flush (must be 0).
    pub final_ledger: usize,
    /// Gate: the ledger stayed proportional to live commitments (peak below
    /// the worker pool and the lifetime execution count, empty at the end,
    /// every execution released).
    pub ledger_bounded: bool,
    /// Wall-clock milliseconds measured around every `drain` call.
    pub drain_wall_ms: f64,
    /// Span-tree profile self-time total over the same drains, ms.
    pub profile_self_ms: f64,
    /// Gate: profile self-time reconciles with the measured drain wall
    /// clock within 5%.
    pub profile_within_bound: bool,
    /// Collapsed-stack (flamegraph.pl) rendering of the span-tree profile.
    pub collapsed: String,
    /// chrome://tracing dump of the engine's wall-clock session.
    pub trace_jsonl: String,
    /// Plain-text summary (phase table + gates + metrics registries).
    pub summary: String,
}

impl Fig9svcMeasurements {
    /// Renders the measurements as an [`Experiment`] table.
    pub fn to_experiment(&self) -> Experiment {
        let mut rows = vec![
            Row::new(
                "locks",
                vec![
                    (
                        "PlanHashMatch".into(),
                        f64::from(u8::from(self.plan_hash_match)),
                    ),
                    (
                        "LedgerBounded".into(),
                        f64::from(u8::from(self.ledger_bounded)),
                    ),
                    (
                        "ProfileWithin5".into(),
                        f64::from(u8::from(self.profile_within_bound)),
                    ),
                    ("P99Finite".into(), f64::from(u8::from(self.p99_finite))),
                    (
                        "ThroughputPos".into(),
                        f64::from(u8::from(self.throughput_positive)),
                    ),
                ],
            ),
            Row::new(
                "service",
                vec![
                    ("Tasks".into(), self.tasks_streamed as f64),
                    ("Drains".into(), self.drains as f64),
                    ("Execs".into(), self.executions as f64),
                    ("PeakLedger".into(), self.peak_ledger as f64),
                    ("PeakBacklog".into(), self.peak_backlog as f64),
                ],
            ),
            Row::new(
                "profile",
                vec![
                    ("DrainMs".into(), self.drain_wall_ms),
                    ("SelfMs".into(), self.profile_self_ms),
                ],
            ),
        ];
        for phase in &self.phases {
            rows.push(Row::new(
                phase.label,
                vec![
                    ("Arrivals".into(), phase.arrivals as f64),
                    ("P50us".into(), phase.p50_us as f64),
                    ("P99us".into(), phase.p99_us as f64),
                    ("WinP99us".into(), phase.window_p99_us as f64),
                    ("PerSec".into(), phase.throughput_per_s),
                ],
            ));
        }
        Experiment {
            id: "fig9svc",
            caption: "Service-mode SLOs: streaming engine under rush-hour bursts — \
                      windowed latency percentiles per phase, retired-task GC, \
                      span profile vs measured drain time",
            rows,
        }
    }

    /// Serialises the measurements as the `BENCH_svc.json` artifact
    /// (hand-rolled JSON; no serde in the hermetic build).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"figure\": \"fig9svc\",\n");
        out.push_str(&format!("  \"scale\": \"{}\",\n", self.scale));
        out.push_str(&format!(
            "  \"tasks_streamed\": {},\n  \"workers\": {},\n  \"capacity\": {},\n",
            self.tasks_streamed, self.workers, self.capacity
        ));
        out.push_str(&format!(
            "  \"executions\": {},\n  \"drains\": {},\n  \"virtual_end_us\": {},\n",
            self.executions, self.drains, self.virtual_end_us
        ));
        out.push_str(&format!(
            "  \"noop_plan_hash\": \"{:#018x}\",\n  \"obs_plan_hash\": \"{:#018x}\",\n",
            self.noop_plan_hash, self.obs_plan_hash
        ));
        out.push_str(&format!(
            "  \"plan_hash_match\": {},\n  \"p99_finite\": {},\n  \
             \"throughput_positive\": {},\n  \"ledger_bounded\": {},\n  \
             \"profile_within_bound\": {},\n",
            self.plan_hash_match,
            self.p99_finite,
            self.throughput_positive,
            self.ledger_bounded,
            self.profile_within_bound
        ));
        out.push_str(&format!(
            "  \"peak_queue_depth\": {},\n  \"peak_backlog\": {},\n  \
             \"peak_ledger\": {},\n  \"released\": {},\n  \"final_ledger\": {},\n",
            self.peak_queue_depth,
            self.peak_backlog,
            self.peak_ledger,
            self.released,
            self.final_ledger
        ));
        out.push_str(&format!(
            "  \"drain_wall_ms\": {:.4},\n  \"profile_self_ms\": {:.4},\n",
            self.drain_wall_ms, self.profile_self_ms
        ));
        out.push_str("  \"phases\": [\n");
        for (i, p) in self.phases.iter().enumerate() {
            out.push_str(&format!(
                "    {{ \"label\": \"{}\", \"arrivals\": {}, \"commits\": {}, \
                 \"p50_us\": {}, \"p99_us\": {}, \"max_us\": {}, \
                 \"window_p99_us\": {}, \"throughput_per_s\": {:.4} }}{}\n",
                p.label,
                p.arrivals,
                p.commits,
                p.p50_us,
                p.p99_us,
                p.max_us,
                p.window_p99_us,
                p.throughput_per_s,
                if i + 1 < self.phases.len() { "," } else { "" }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// The outcome of one service pass (shared by the obs-off and obs-on runs).
struct SvcRun {
    plan_hash: u64,
    commits: u64,
    executions: u64,
    drains: u64,
    drain_wall_ms: f64,
    peak_backlog: usize,
    peak_ledger: usize,
    released: u64,
    final_ledger: usize,
    virtual_end_us: u64,
    phase_arrivals: Vec<u64>,
    phase_commits: Vec<u64>,
    phase_time_us: Vec<u64>,
    phase_hist: Vec<tcsc_obs::Histogram>,
}

/// Folds one drain's plan hash into the running stream hash (order matters:
/// the same plans in a different drain order must produce a different fold).
fn fold_plan_hash(acc: u64, h: u64) -> u64 {
    (acc.rotate_left(7) ^ h).wrapping_mul(0x0100_0000_01b3)
}

/// Drives one full service pass: a virtual clock ticking every
/// [`SVC_DRAIN_EVERY_US`], arrivals pulled from the heavy-tailed sampler
/// into a driver-side backlog, at most `capacity` tasks submitted per tick
/// (the modelled drain rate — rush-hour arrivals outpace it, so the backlog
/// and the latency tail grow), and committed plans retired back to the pool
/// [`SVC_SERVICE_US`] later.  Submit→commit latency is the virtual time from
/// arrival to the end of the drain that served the task; when a virtual
/// session is supplied, every latency feeds its phase's sliding window and
/// the backlog depth is emitted as a counter track.
fn fig9svc_service_run<R: tcsc_obs::Recorder>(
    engine: &mut AssignmentEngine<'_, R>,
    arrivals: &tcsc_workload::HeavyTailedArrivals,
    total_tasks: usize,
    capacity: usize,
    latency: Option<&tcsc_obs::ObsSession>,
) -> SvcRun {
    use std::collections::VecDeque;

    use tcsc_obs::Recorder as _;

    let nphases = arrivals.schedule.phases().len();
    let mut run = SvcRun {
        plan_hash: 0xcbf2_9ce4_8422_2325,
        commits: 0,
        executions: 0,
        drains: 0,
        drain_wall_ms: 0.0,
        peak_backlog: 0,
        peak_ledger: 0,
        released: 0,
        final_ledger: 0,
        virtual_end_us: 0,
        phase_arrivals: vec![0; nphases],
        phase_commits: vec![0; nphases],
        phase_time_us: vec![0; nphases],
        phase_hist: vec![tcsc_obs::Histogram::default(); nphases],
    };
    let mut sampler = arrivals.sampler();
    let mut next = sampler.next_arrival();
    let mut backlog: VecDeque<(u64, usize, tcsc_core::Task)> = VecDeque::new();
    let mut retire: VecDeque<(u64, tcsc_core::AssignmentPlan)> = VecDeque::new();
    let mut streamed = 0usize;
    let mut tick_us = 0u64;

    while streamed < total_tasks || !backlog.is_empty() || !retire.is_empty() {
        tick_us += SVC_DRAIN_EVERY_US;

        // Arrivals up to the tick join the backlog (O(1) memory upstream:
        // the sampler is an infinite iterator, nothing is materialised).
        while streamed < total_tasks && next.at_us < tick_us {
            let arrival = std::mem::replace(&mut next, sampler.next_arrival());
            let phase = arrival.round % nphases;
            run.phase_arrivals[phase] += 1;
            backlog.push_back((arrival.at_us, phase, arrival.task));
            streamed += 1;
        }
        run.peak_backlog = run.peak_backlog.max(backlog.len());

        // Retired-task GC: plans whose service window elapsed release their
        // workers, keeping the ledger proportional to live commitments.
        while retire.front().is_some_and(|(at, _)| *at <= tick_us) {
            let (_, plan) = retire.pop_front().expect("front checked");
            run.released += engine.release_plan(&plan) as u64;
        }

        // Serve up to `capacity` backlog tasks this tick.
        let take = backlog.len().min(capacity);
        if take > 0 {
            let mut meta = Vec::with_capacity(take);
            let mut batch = Vec::with_capacity(take);
            for _ in 0..take {
                let (at, phase, task) = backlog.pop_front().expect("take <= len");
                meta.push((at, phase));
                batch.push(task);
            }
            engine.submit(batch);
            let (outcome, ms) = timed(|| engine.drain(Objective::SumQuality));
            run.drain_wall_ms += ms;
            run.drains += 1;
            run.commits += take as u64;
            run.executions += outcome.executions as u64;
            run.plan_hash = fold_plan_hash(run.plan_hash, tcsc_sim::plan_hash(&outcome.assignment));
            if let Some(session) = latency {
                session.set_virtual_nanos(tick_us.saturating_mul(1_000));
                session.gauge("svc.backlog", backlog.len() as u64);
            }
            for (at, phase) in meta {
                let lat_us = tick_us - at;
                run.phase_hist[phase].record(lat_us);
                run.phase_commits[phase] += 1;
                if let Some(session) = latency {
                    session.value(SVC_WINDOWS[phase.min(SVC_WINDOWS.len() - 1)], lat_us);
                }
            }
            for plan in outcome.assignment.plans {
                if !plan.executions.is_empty() {
                    retire.push_back((tick_us + SVC_SERVICE_US, plan));
                }
            }
        }

        let (segment, _) = arrivals.schedule.segment_at(tick_us - SVC_DRAIN_EVERY_US);
        run.phase_time_us[segment % nphases] += SVC_DRAIN_EVERY_US;
        run.peak_ledger = run.peak_ledger.max(engine.ledger().len());
    }
    run.final_ledger = engine.ledger().len();
    run.virtual_end_us = tick_us;
    run
}

/// Measures fig9svc: streams the heavy-tailed rush-hour workload through the
/// batched engine twice — once unobserved (NoopRecorder), once with a
/// wall-clock session on the engine plus a virtual-clock session holding the
/// per-phase latency windows — then reconciles the span-tree profile against
/// the measured drain wall clock and checks every service gate.
pub fn fig9svc_measurements(scale: Scale) -> Fig9svcMeasurements {
    use tcsc_obs::{profile_spans, ObsSession};
    use tcsc_workload::{BoundedPareto, HeavyTailedArrivals, PhaseSchedule};

    let (label, total_tasks, workers) = match scale {
        Scale::Quick => ("quick", 30_000usize, 800usize),
        Scale::Full => ("full", 1_000_000, 2_000),
    };

    let cfg = ScenarioConfig::small()
        .with_num_slots(SVC_NUM_SLOTS)
        .with_num_workers(workers);
    let scenario = cfg.build();
    let index = WorkerIndex::build(&scenario.workers, SVC_NUM_SLOTS, &scenario.domain);
    let cost = EuclideanCost::default();

    // Bounded-Pareto inter-arrivals (mean ≈ 57 µs) under the canonical
    // calm → rush(×4) → recovery schedule.  The per-tick capacity sits
    // between the calm and rush arrival rates, so the backlog — and the
    // latency tail — grows during every rush and drains during recovery.
    let inter = BoundedPareto::new(1.5, 20.0, 10_000.0);
    let arrivals = HeavyTailedArrivals {
        seed: 4242,
        inter_arrival_us: inter,
        schedule: PhaseSchedule::rush_hour(200_000, 50_000, 4.0),
        num_slots: SVC_NUM_SLOTS,
        distribution: SpatialDistribution::Uniform,
        domain: scenario.domain,
    };
    let capacity = ((SVC_DRAIN_EVERY_US as f64 / inter.mean()) * 1.7).ceil() as usize;
    let mcfg = MultiTaskConfig::new(capacity as f64 * 2.0);

    // Pass 1: unobserved — the NoopRecorder default compiles every hook away.
    let mut plain = AssignmentEngine::borrowed(&index, &cost, mcfg);
    let off = fig9svc_service_run(&mut plain, &arrivals, total_tasks, capacity, None);

    // Pass 2: observed — wall-clock session on the engine (spans, gauges),
    // virtual-clock session owning the per-phase latency windows.
    let wall = ObsSession::wall();
    let virt = ObsSession::virtual_time();
    for name in SVC_WINDOWS {
        virt.install_window(name, SVC_WINDOW_SLICE_NANOS, SVC_WINDOW_SLICES);
    }
    let mut engine = AssignmentEngine::borrowed(&index, &cost, mcfg).with_recorder(&wall);
    let on = fig9svc_service_run(&mut engine, &arrivals, total_tasks, capacity, Some(&virt));

    let plan_hash_match = off.plan_hash == on.plan_hash;

    // Span-tree profile over the engine's wall session: every root span is
    // an `engine.drain`, so total self-time telescopes to the summed drain
    // time and must reconcile with the stopwatch around the same calls.
    let events = wall.merged_events();
    let profile = profile_spans(&events);
    let profile_self_ms = profile.total_self_nanos() as f64 / 1e6;
    let drain_wall_ms = on.drain_wall_ms;
    let profile_within_bound = (profile_self_ms - drain_wall_ms).abs() <= drain_wall_ms * 0.05;

    let virt_metrics = virt.metrics();
    let phases = arrivals.schedule.phases();
    let mut phase_rows = Vec::new();
    for (i, phase) in phases.iter().enumerate() {
        let hist = &on.phase_hist[i];
        let window_p99 = virt_metrics
            .window(SVC_WINDOWS[i])
            .map_or(0, |w| w.windowed().quantile(0.99));
        phase_rows.push(Fig9svcPhaseRow {
            label: phase.label,
            arrivals: on.phase_arrivals[i],
            commits: on.phase_commits[i],
            p50_us: hist.quantile(0.50),
            p99_us: hist.quantile(0.99),
            max_us: hist.max(),
            window_p99_us: window_p99,
            throughput_per_s: on.phase_commits[i] as f64 * 1e6 / on.phase_time_us[i].max(1) as f64,
        });
    }
    let p99_finite = phase_rows
        .iter()
        .all(|r| r.commits > 0 && (r.p99_us as f64).is_finite() && r.p99_us > 0);
    let throughput_positive = phase_rows.iter().all(|r| r.throughput_per_s > 0.0);
    let ledger_bounded = on.final_ledger == 0
        && on.released == on.executions
        && on.peak_ledger <= workers
        && (on.peak_ledger as u64) < on.executions;

    let peak_queue_depth = wall.metrics().gauge_peak("engine.queue_depth");
    let collapsed = profile.collapsed_stacks();
    let trace_jsonl = wall.chrome_trace();
    let mut summary = format!(
        "fig9svc ({label}): {} tasks over {} drains, {:.1} virtual s, \
         plan hash {:#018x} (obs-off match: {plan_hash_match})\n\
         drain wall {:.2} ms vs profile self {:.2} ms (within 5%: \
         {profile_within_bound}); peak ledger {} of {} workers, released {} \
         of {} executions (bounded: {ledger_bounded})\n\nphases:\n",
        on.commits,
        on.drains,
        on.virtual_end_us as f64 / 1e6,
        on.plan_hash,
        drain_wall_ms,
        profile_self_ms,
        on.peak_ledger,
        workers,
        on.released,
        on.executions,
    );
    for row in &phase_rows {
        summary.push_str(&format!(
            "  {:<9} arrivals={:<8} p50={:<7} p99={:<7} max={:<8} winP99={:<7} \
             {:.0}/s\n",
            row.label,
            row.arrivals,
            row.p50_us,
            row.p99_us,
            row.max_us,
            row.window_p99_us,
            row.throughput_per_s,
        ));
    }
    summary.push_str("\nspan-tree profile:\n");
    summary.push_str(&profile.render());
    summary.push_str("\nvirtual-session registry (latency windows):\n");
    summary.push_str(&virt_metrics.render());
    summary.push_str("\nengine-session registry (index churn counters, gauges):\n");
    summary.push_str(&wall.metrics().render());

    Fig9svcMeasurements {
        scale: label,
        tasks_streamed: total_tasks,
        workers,
        capacity,
        executions: on.executions,
        drains: on.drains,
        virtual_end_us: on.virtual_end_us,
        phases: phase_rows,
        p99_finite,
        throughput_positive,
        noop_plan_hash: off.plan_hash,
        obs_plan_hash: on.plan_hash,
        plan_hash_match,
        peak_queue_depth,
        peak_backlog: on.peak_backlog as u64,
        peak_ledger: on.peak_ledger as u64,
        released: on.released,
        final_ledger: on.final_ledger,
        ledger_bounded,
        drain_wall_ms,
        profile_self_ms,
        profile_within_bound,
        collapsed,
        trace_jsonl,
        summary,
    }
}

/// Fig. 9svc (repo extension): service-mode SLO observability — the
/// streaming engine under heavy-tailed rush-hour arrivals with windowed
/// latency percentiles, retired-task GC and the span-tree profile.
pub fn fig9svc(scale: Scale) -> Experiment {
    fig9svc_measurements(scale).to_experiment()
}

// ---------------------------------------------------------------------------
// Figure 9mob (repo extension): mobile workers on the mutable sharded index
// ---------------------------------------------------------------------------

/// Drain interval of the mobile-worker service loop, virtual µs (one motion
/// tick per drain tick).
const MOB_DRAIN_EVERY_US: u64 = 5_000;

/// How the mobile-worker pass keeps its index current between drains.
enum MobMaintenance {
    /// Apply each motion event through the engine's mutation API
    /// (tile-local splice + worker-scoped cache invalidation).
    Mutate,
    /// Track the fleet in a mirror pool and rebuild the sharded index from
    /// scratch before every drain that saw motion — the pre-mutable-index
    /// baseline.
    Rebuild,
}

/// One pass of the fig9mob service loop.
struct MobRun {
    plan_hash: u64,
    executions: u64,
    drains: u64,
    maintenance_ms: f64,
    rebuilds: u64,
    moves: u64,
    offline: u64,
    online: u64,
    entries_spliced: u64,
    rebuild_equiv: u64,
    final_ledger: usize,
    final_imbalance_milli: u64,
}

/// The raw measurements behind [`fig9mob`]: the fig9svc-style service loop
/// with per-tick worker motion, run twice over identical arrival and motion
/// tapes — mutate-in-place vs rebuild-per-drain — comparing index
/// maintenance cost under the identical-plans gate.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig9mMeasurements {
    /// Scale label (`"quick"` / `"full"`).
    pub scale: &'static str,
    /// Tasks streamed through the service (per pass).
    pub tasks_streamed: usize,
    /// Initial worker-pool size (churn keeps it stable).
    pub workers: usize,
    /// Per-drain submission capacity.
    pub capacity: usize,
    /// Drain rounds executed (identical across passes).
    pub drains: u64,
    /// Committed executions of the mutate pass.
    pub executions: u64,
    /// Motion events applied: waypoint-drift moves.
    pub moves: u64,
    /// Motion events applied: sessions retired.
    pub offline: u64,
    /// Motion events applied: fresh sessions admitted.
    pub online: u64,
    /// Index entries spliced by the mutate pass (sum of
    /// `IndexMutation::entries_touched`).
    pub entries_spliced: u64,
    /// Entries a rebuild would have re-inserted per mutation, summed — the
    /// work the mutate pass avoided.
    pub rebuild_equiv: u64,
    /// Index rebuilds performed by the rebuild pass.
    pub rebuilds: u64,
    /// Total index-maintenance wall time of the mutate pass, ms.
    pub mutate_maintenance_ms: f64,
    /// Total index-maintenance wall time of the rebuild pass, ms.
    pub rebuild_maintenance_ms: f64,
    /// `rebuild_maintenance_ms / mutate_maintenance_ms`.
    pub maintenance_speedup: f64,
    /// Gate: in-place maintenance is ≥5× cheaper than rebuild-per-drain.
    pub speedup_ok: bool,
    /// Folded per-drain plan hash of the mutate pass.
    pub mutate_plan_hash: u64,
    /// Folded per-drain plan hash of the rebuild pass.
    pub rebuild_plan_hash: u64,
    /// Gate: the two passes decided bit-identical plans in every drain.
    pub plan_hash_match: bool,
    /// Occupancy-ledger size at stream end (identical across passes).
    pub final_ledger: usize,
    /// Tile-occupancy imbalance (max/mean bucket length ×1000) at stream
    /// end.
    pub final_imbalance_milli: u64,
}

impl Fig9mMeasurements {
    /// Renders the measurements as an [`Experiment`] table.
    pub fn to_experiment(&self) -> Experiment {
        Experiment {
            id: "fig9mob",
            caption: "Mobile workers: mutate-in-place sharded index vs rebuild-per-drain \
                      — maintenance cost under the identical-plans gate",
            rows: vec![
                Row::new(
                    "locks",
                    vec![
                        (
                            "PlanHashMatch".into(),
                            f64::from(u8::from(self.plan_hash_match)),
                        ),
                        ("SpeedupOk".into(), f64::from(u8::from(self.speedup_ok))),
                    ],
                ),
                Row::new(
                    "maintenance",
                    vec![
                        ("MutateMs".into(), self.mutate_maintenance_ms),
                        ("RebuildMs".into(), self.rebuild_maintenance_ms),
                        ("Speedup".into(), self.maintenance_speedup),
                        ("Rebuilds".into(), self.rebuilds as f64),
                    ],
                ),
                Row::new(
                    "motion",
                    vec![
                        ("Moves".into(), self.moves as f64),
                        ("Offline".into(), self.offline as f64),
                        ("Online".into(), self.online as f64),
                        ("Spliced".into(), self.entries_spliced as f64),
                        ("RebuildEquiv".into(), self.rebuild_equiv as f64),
                    ],
                ),
                Row::new(
                    "service",
                    vec![
                        ("Tasks".into(), self.tasks_streamed as f64),
                        ("Drains".into(), self.drains as f64),
                        ("Execs".into(), self.executions as f64),
                        ("ImbalanceMilli".into(), self.final_imbalance_milli as f64),
                    ],
                ),
            ],
        }
    }

    /// Serialises the measurements as the `BENCH_fig9m.json` artifact
    /// (hand-rolled JSON; no serde in the hermetic build).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str("  \"figure\": \"fig9mob\",\n");
        out.push_str(&format!("  \"scale\": \"{}\",\n", self.scale));
        out.push_str(&format!(
            "  \"tasks_streamed\": {},\n  \"workers\": {},\n  \"capacity\": {},\n",
            self.tasks_streamed, self.workers, self.capacity
        ));
        out.push_str(&format!(
            "  \"drains\": {},\n  \"executions\": {},\n",
            self.drains, self.executions
        ));
        out.push_str(&format!(
            "  \"moves\": {},\n  \"offline\": {},\n  \"online\": {},\n",
            self.moves, self.offline, self.online
        ));
        out.push_str(&format!(
            "  \"entries_spliced\": {},\n  \"rebuild_equiv\": {},\n  \"rebuilds\": {},\n",
            self.entries_spliced, self.rebuild_equiv, self.rebuilds
        ));
        out.push_str(&format!(
            "  \"mutate_maintenance_ms\": {:.4},\n  \"rebuild_maintenance_ms\": {:.4},\n  \
             \"maintenance_speedup\": {:.4},\n  \"maintenance_speedup_ok\": {},\n",
            self.mutate_maintenance_ms,
            self.rebuild_maintenance_ms,
            self.maintenance_speedup,
            self.speedup_ok
        ));
        out.push_str(&format!(
            "  \"mutate_plan_hash\": \"{:#018x}\",\n  \"rebuild_plan_hash\": \"{:#018x}\",\n  \
             \"plan_hash_match\": {},\n",
            self.mutate_plan_hash, self.rebuild_plan_hash, self.plan_hash_match
        ));
        out.push_str(&format!(
            "  \"final_ledger\": {},\n  \"final_imbalance_milli\": {}\n",
            self.final_ledger, self.final_imbalance_milli
        ));
        out.push_str("}\n");
        out
    }
}

/// Drives one mobile-worker service pass.  Arrivals join a backlog per tick
/// and at most `capacity` are drained; motion events with `at_us` up to the
/// tick are applied first (fleet state precedes planning, matching
/// [`tcsc_workload::interleave`]'s tie order).  Under
/// [`MobMaintenance::Mutate`] each event goes through the engine's mutation
/// API as it arrives; under [`MobMaintenance::Rebuild`] events update a
/// mirror pool and the sharded index is rebuilt before the next drain — so
/// both passes plan every drain against the same fleet state, and the timed
/// maintenance regions are exactly the work each strategy does to get there.
#[allow(clippy::too_many_arguments)]
fn fig9mob_service_run(
    mode: MobMaintenance,
    pool: &tcsc_core::WorkerPool,
    arrivals: &tcsc_workload::HeavyTailedArrivals,
    tape: &tcsc_workload::MotionTape,
    total_tasks: usize,
    capacity: usize,
    grid: ShardGridConfig,
    threads: usize,
) -> MobRun {
    use std::collections::VecDeque;

    use tcsc_index::MutableSpatialIndex as _;
    use tcsc_workload::WorkerMotion;

    let cost = EuclideanCost::default();
    let domain = arrivals.domain;
    let num_slots = arrivals.num_slots;
    let cfg = MultiTaskConfig::new(capacity as f64 * 2.0).with_accounting(ConflictAccounting::V1);
    let mut engine = ConcurrentAssignmentEngine::new(
        ShardedWorkerIndex::build(pool, num_slots, &domain, grid),
        &cost,
        cfg,
        threads,
    );
    // Service tasks are one-shot: cap each shard cache at roughly two
    // drains' per-shard share so worker-scoped invalidation scans stay
    // proportional to live tasks instead of growing with the whole stream.
    let shards = engine.index().num_spatial_shards().max(1);
    engine.set_cache_capacity(Some((2 * capacity / shards).max(16)));
    let mut mirror: Vec<tcsc_core::Worker> = pool.workers().to_vec();

    let mut run = MobRun {
        plan_hash: 0xcbf2_9ce4_8422_2325,
        executions: 0,
        drains: 0,
        maintenance_ms: 0.0,
        rebuilds: 0,
        moves: 0,
        offline: 0,
        online: 0,
        entries_spliced: 0,
        rebuild_equiv: 0,
        final_ledger: 0,
        final_imbalance_milli: 0,
    };
    let mut sampler = arrivals.sampler();
    let mut next = sampler.next_arrival();
    let mut events = tape.events.iter().peekable();
    let mut backlog: VecDeque<tcsc_core::Task> = VecDeque::new();
    let mut streamed = 0usize;
    let mut tick_us = 0u64;
    let mut stale = false;

    while streamed < total_tasks || !backlog.is_empty() {
        tick_us += MOB_DRAIN_EVERY_US;
        while streamed < total_tasks && next.at_us < tick_us {
            let arrival = std::mem::replace(&mut next, sampler.next_arrival());
            backlog.push_back(arrival.task);
            streamed += 1;
        }

        // Fleet motion up to the tick.
        let mut due = Vec::new();
        while events.peek().is_some_and(|e| e.at_us <= tick_us) {
            due.push(&events.next().expect("peeked").motion);
        }
        for motion in &due {
            match motion {
                WorkerMotion::Move { .. } => run.moves += 1,
                WorkerMotion::Offline { .. } => run.offline += 1,
                WorkerMotion::Online { .. } => run.online += 1,
            }
        }
        match mode {
            MobMaintenance::Mutate => {
                let (mutations, ms) = timed(|| {
                    due.iter()
                        .map(|motion| match motion {
                            WorkerMotion::Move { id, to } => engine.move_worker(*id, *to),
                            WorkerMotion::Offline { id } => engine.remove_worker(*id),
                            WorkerMotion::Online { worker } => engine.insert_worker(worker),
                        })
                        .collect::<Vec<_>>()
                });
                run.maintenance_ms += ms;
                for m in mutations {
                    assert!(m.applied, "motion tapes only target live sessions");
                    run.entries_spliced += m.entries_touched as u64;
                    run.rebuild_equiv += m.rebuild_equiv_entries as u64;
                }
            }
            MobMaintenance::Rebuild => {
                let (_, ms) = timed(|| {
                    for motion in &due {
                        match motion {
                            WorkerMotion::Move { id, to } => {
                                let at = mirror
                                    .iter()
                                    .position(|w| w.id == *id)
                                    .expect("move targets a live session");
                                let old = &mirror[at];
                                let slots = old
                                    .availability()
                                    .iter()
                                    .map(|ws| tcsc_core::WorkerSlot {
                                        slot: ws.slot,
                                        location: *to,
                                    })
                                    .collect();
                                mirror[at] = tcsc_core::Worker::with_reliability(
                                    *id,
                                    slots,
                                    old.reliability,
                                );
                            }
                            WorkerMotion::Offline { id } => {
                                mirror.retain(|w| w.id != *id);
                            }
                            WorkerMotion::Online { worker } => mirror.push((*worker).clone()),
                        }
                    }
                });
                run.maintenance_ms += ms;
                stale = stale || !due.is_empty();
            }
        }

        let take = backlog.len().min(capacity);
        if take > 0 {
            if let (MobMaintenance::Rebuild, true) = (&mode, stale) {
                let (_, ms) = timed(|| {
                    let rebuilt = tcsc_core::WorkerPool::new(mirror.clone());
                    engine.rebuild_index(ShardedWorkerIndex::build(
                        &rebuilt, num_slots, &domain, grid,
                    ));
                });
                run.maintenance_ms += ms;
                run.rebuilds += 1;
                stale = false;
            }
            engine.submit(backlog.drain(..take));
            let outcome = engine.drain_parallel(Objective::SumQuality);
            run.drains += 1;
            run.executions += outcome.executions as u64;
            run.plan_hash = fold_plan_hash(run.plan_hash, tcsc_sim::plan_hash(&outcome.assignment));
        }
    }
    run.final_ledger = engine.ledger().len();
    run.final_imbalance_milli = engine.index().occupancy_imbalance_milli();
    run
}

/// Measures fig9mob: the heavy-tailed service stream with per-tick worker
/// motion (waypoint drift + session churn), served by the concurrent sharded
/// engine twice over identical tapes — mutate-in-place vs rebuild-per-drain
/// — with the plan-hash identity and the ≥5× maintenance-speedup gate.
pub fn fig9mob_measurements(scale: Scale) -> Fig9mMeasurements {
    use tcsc_workload::{
        BoundedPareto, HeavyTailedArrivals, MotionTape, PhaseSchedule, WorkerChurnConfig,
    };

    // The worker pool is deliberately large relative to the task stream:
    // the rebuild baseline pays O(workers) per drain while a tile-local
    // splice pays O(bucket), so the fleet size is what separates the two
    // maintenance strategies (mobile fleets are big; drains are frequent).
    let (label, total_tasks, workers, grid, threads) = match scale {
        Scale::Quick => (
            "quick",
            6_000usize,
            2_400usize,
            ShardGridConfig::new(5, 5),
            4,
        ),
        Scale::Full => ("full", 200_000, 10_000, ShardGridConfig::new(8, 8), 8),
    };

    let cfg = ScenarioConfig::small()
        .with_num_slots(SVC_NUM_SLOTS)
        .with_num_workers(workers);
    let scenario = cfg.build();
    let inter = BoundedPareto::new(1.5, 20.0, 10_000.0);
    let arrivals = HeavyTailedArrivals {
        seed: 4242,
        inter_arrival_us: inter,
        schedule: PhaseSchedule::rush_hour(200_000, 50_000, 4.0),
        num_slots: SVC_NUM_SLOTS,
        distribution: SpatialDistribution::Uniform,
        domain: scenario.domain,
    };
    let capacity = ((MOB_DRAIN_EVERY_US as f64 / inter.mean()) * 1.7).ceil() as usize;

    // One motion tick per drain tick, generously over-provisioned past the
    // expected stream duration (leftover events are simply never due).
    let churn = WorkerChurnConfig {
        seed: 77,
        tick_us: MOB_DRAIN_EVERY_US,
        moves_per_tick: 6,
        churn_prob: 0.3,
        drift_fraction: 0.25,
        num_slots: SVC_NUM_SLOTS,
        domain: scenario.domain,
    };
    let ticks = (total_tasks as f64 * inter.mean() / MOB_DRAIN_EVERY_US as f64 * 2.0) as usize + 50;
    let tape = MotionTape::generate(&churn, &scenario.workers, ticks);

    let mutate = fig9mob_service_run(
        MobMaintenance::Mutate,
        &scenario.workers,
        &arrivals,
        &tape,
        total_tasks,
        capacity,
        grid,
        threads,
    );
    let rebuild = fig9mob_service_run(
        MobMaintenance::Rebuild,
        &scenario.workers,
        &arrivals,
        &tape,
        total_tasks,
        capacity,
        grid,
        threads,
    );

    let maintenance_speedup = rebuild.maintenance_ms / mutate.maintenance_ms.max(1e-9);
    Fig9mMeasurements {
        scale: label,
        tasks_streamed: total_tasks,
        workers,
        capacity,
        drains: mutate.drains,
        executions: mutate.executions,
        moves: mutate.moves,
        offline: mutate.offline,
        online: mutate.online,
        entries_spliced: mutate.entries_spliced,
        rebuild_equiv: mutate.rebuild_equiv,
        rebuilds: rebuild.rebuilds,
        mutate_maintenance_ms: mutate.maintenance_ms,
        rebuild_maintenance_ms: rebuild.maintenance_ms,
        maintenance_speedup,
        speedup_ok: maintenance_speedup >= 5.0,
        mutate_plan_hash: mutate.plan_hash,
        rebuild_plan_hash: rebuild.plan_hash,
        plan_hash_match: mutate.plan_hash == rebuild.plan_hash
            && mutate.final_ledger == rebuild.final_ledger,
        final_ledger: mutate.final_ledger,
        final_imbalance_milli: mutate.final_imbalance_milli,
    }
}

/// Fig. 9mob (repo extension): mobile workers on the mutable sharded index —
/// in-place move/insert/remove vs rebuild-per-drain.
pub fn fig9mob(scale: Scale) -> Experiment {
    fig9mob_measurements(scale).to_experiment()
}

// ---------------------------------------------------------------------------
// Figure 11: spatiotemporal interpolation (appendix)
// ---------------------------------------------------------------------------

fn st_scenario(p: &Params, placement: TaskPlacement) -> ScenarioConfig {
    ScenarioConfig::small()
        .with_num_tasks(p.tasks.min(6))
        .with_num_slots(p.opt_slots)
        .with_num_workers(p.workers.min(2000))
        .with_placement(placement)
}

/// Fig. 11(a): quality per distribution with spatiotemporal interpolation
/// (RandMin, RandMax, Approx, SApprox, Opt — Opt reported per-task averaged).
pub fn fig11a(scale: Scale) -> Experiment {
    let p = params(scale);
    let cost_model = EuclideanCost::default();
    let mut rows = Vec::new();
    for placement in synthetic_placements() {
        let prepared = prepare_multi(&st_scenario(&p, placement.clone()));
        let budget = budget_for_multi(&prepared, 0.25);
        let cfg = MultiTaskConfig::new(budget);
        let (rand_min, rand_max, _, _) = multi_rand_baseline(&prepared, &cfg, 5);
        let temporal = builder(&cfg)
            .with_objective(SolveObjective::SpatioTemporal {
                weights: InterpolationWeights::temporal_only(),
                objective: SpatioTemporalObjective::Sum,
            })
            .solve_indexed(
                &prepared.scenario.tasks,
                &prepared.index,
                &prepared.scenario.domain,
                &cost_model,
            );
        let spatiotemporal = builder(&cfg)
            .with_objective(SolveObjective::SpatioTemporal {
                weights: InterpolationWeights::paper_default(),
                objective: SpatioTemporalObjective::Sum,
            })
            .solve_indexed(
                &prepared.scenario.tasks,
                &prepared.index,
                &prepared.scenario.domain,
                &cost_model,
            );
        // Per-task OPT (temporal metric) with an even budget split serves as
        // the optimal yardstick of the appendix figure.
        let per_task_budget = budget / prepared.scenario.tasks.len() as f64;
        let opt_sum: f64 = prepared
            .scenario
            .tasks
            .iter()
            .map(|task| {
                let candidates = SlotCandidates::compute(task, &prepared.index, &cost_model);
                optimal(task, &candidates, &SingleTaskConfig::new(per_task_budget)).quality
            })
            .sum();
        let n = prepared.scenario.tasks.len() as f64;
        rows.push(Row::new(
            placement.label(),
            vec![
                ("RandMin".into(), rand_min / n),
                ("RandMax".into(), rand_max / n),
                ("Approx".into(), temporal.sum_quality() / n),
                ("SApprox".into(), spatiotemporal.sum_quality() / n),
                ("Opt".into(), opt_sum / n),
            ],
        ));
    }
    Experiment {
        id: "fig11a",
        caption: "Average quality vs distribution with spatiotemporal interpolation",
        rows,
    }
}

/// Fig. 11(b): quality vs budget with spatiotemporal interpolation.
pub fn fig11b(scale: Scale) -> Experiment {
    let p = params(scale);
    let cost_model = EuclideanCost::default();
    let prepared = prepare_multi(&st_scenario(
        &p,
        TaskPlacement::Synthetic(SpatialDistribution::Uniform),
    ));
    let mut rows = Vec::new();
    for fraction in [0.15, 0.25, 0.35] {
        let budget = budget_for_multi(&prepared, fraction);
        let cfg = MultiTaskConfig::new(budget);
        let (rand_min, rand_max, _, _) = multi_rand_baseline(&prepared, &cfg, 3);
        let n = prepared.scenario.tasks.len() as f64;
        let temporal = builder(&cfg)
            .with_objective(SolveObjective::SpatioTemporal {
                weights: InterpolationWeights::temporal_only(),
                objective: SpatioTemporalObjective::Sum,
            })
            .solve_indexed(
                &prepared.scenario.tasks,
                &prepared.index,
                &prepared.scenario.domain,
                &cost_model,
            );
        let spatiotemporal = builder(&cfg)
            .with_objective(SolveObjective::SpatioTemporal {
                weights: InterpolationWeights::paper_default(),
                objective: SpatioTemporalObjective::Sum,
            })
            .solve_indexed(
                &prepared.scenario.tasks,
                &prepared.index,
                &prepared.scenario.domain,
                &cost_model,
            );
        rows.push(Row::new(
            format!("b={:.0}%", fraction * 100.0),
            vec![
                ("Approx".into(), temporal.sum_quality() / n),
                ("SApprox".into(), spatiotemporal.sum_quality() / n),
                ("RandAvg".into(), (rand_min + rand_max) / (2.0 * n)),
            ],
        ));
    }
    Experiment {
        id: "fig11b",
        caption: "Average quality vs budget with spatiotemporal interpolation",
        rows,
    }
}

/// Fig. 11(c): quality vs the temporal weight `w_t` (Gaussian distribution).
pub fn fig11c(scale: Scale) -> Experiment {
    let p = params(scale);
    let cost_model = EuclideanCost::default();
    let prepared = prepare_multi(&st_scenario(
        &p,
        TaskPlacement::Synthetic(SpatialDistribution::Gaussian),
    ));
    let budget = budget_for_multi(&prepared, 0.25);
    let cfg = MultiTaskConfig::new(budget);
    let n = prepared.scenario.tasks.len() as f64;
    let mut rows = Vec::new();
    for wt in [0.0, 0.1, 0.3, 0.5, 0.7, 0.9, 1.0] {
        let outcome = builder(&cfg)
            .with_objective(SolveObjective::SpatioTemporal {
                weights: InterpolationWeights::from_temporal_ratio(wt),
                objective: SpatioTemporalObjective::Sum,
            })
            .solve_indexed(
                &prepared.scenario.tasks,
                &prepared.index,
                &prepared.scenario.domain,
                &cost_model,
            );
        rows.push(Row::new(
            format!("wt={wt:.1}"),
            vec![("SApprox".into(), outcome.sum_quality() / n)],
        ));
    }
    Experiment {
        id: "fig11c",
        caption: "Average quality vs temporal weight w_t (Gaussian)",
        rows,
    }
}

/// Every figure id, in figure order (the `experiments` binary iterates this
/// so special-cased figures like `fig9s` keep a single dispatch table).
pub const ALL_IDS: &[&str] = &[
    "fig6a", "fig6b", "fig7a", "fig7b", "fig7c", "fig7d", "fig8a", "fig8b", "fig8c", "fig8d",
    "fig8e", "fig8f", "fig8g", "fig8h", "fig9a", "fig9b", "fig9c", "fig9d", "fig9e", "fig9f",
    "fig9g", "fig9h", "fig9i", "fig9s", "fig9p", "fig9celf", "fig9dist", "fig9obs", "fig9svc",
    "fig9mob", "fig11a", "fig11b", "fig11c",
];

/// Every experiment, in figure order (derived from [`ALL_IDS`] so the id
/// table exists exactly once).
pub fn all(scale: Scale) -> Vec<Experiment> {
    ALL_IDS.iter().filter_map(|id| by_id(id, scale)).collect()
}

/// Runs one experiment by id (`"fig6a"`, `"fig9c"`, ...).
pub fn by_id(id: &str, scale: Scale) -> Option<Experiment> {
    let experiment = match id {
        "fig6a" => fig6a(scale),
        "fig6b" => fig6b(scale),
        "fig7a" => fig7a(scale),
        "fig7b" => fig7b(scale),
        "fig7c" => fig7c(scale),
        "fig7d" => fig7d(scale),
        "fig8a" => fig8a(scale),
        "fig8b" => fig8b(scale),
        "fig8c" => fig8c(scale),
        "fig8d" => fig8d(scale),
        "fig8e" => fig8e(scale),
        "fig8f" => fig8f(scale),
        "fig8g" => fig8g(scale),
        "fig8h" => fig8h(scale),
        "fig9a" => fig9a(scale),
        "fig9b" => fig9b(scale),
        "fig9c" => fig9c(scale),
        "fig9d" => fig9d(scale),
        "fig9e" => fig9e(scale),
        "fig9f" => fig9f(scale),
        "fig9g" => fig9g(scale),
        "fig9h" => fig9h(scale),
        "fig9i" => fig9i(scale),
        "fig9s" => fig9s(scale),
        "fig9p" => fig9p(scale),
        "fig9celf" => fig9celf(scale),
        "fig9dist" => fig9dist(scale),
        "fig9obs" => fig9obs(scale),
        "fig9svc" => fig9svc(scale),
        "fig9mob" => fig9mob(scale),
        "fig11a" => fig11a(scale),
        "fig11b" => fig11b(scale),
        "fig11c" => fig11c(scale),
        _ => return None,
    };
    Some(experiment)
}

#[cfg(test)]
mod tests {
    use super::*;

    // The figure drivers are exercised end-to-end by the benches and the
    // `experiments` binary; here we only smoke-test the cheapest quality
    // figures so `cargo test` stays fast.

    #[test]
    fn fig6a_quick_produces_four_rows_with_expected_ordering() {
        let exp = fig6a(Scale::Quick);
        assert_eq!(exp.rows.len(), 4);
        for row in &exp.rows {
            let get = |name: &str| {
                row.values
                    .iter()
                    .find(|(n, _)| n == name)
                    .map(|(_, v)| *v)
                    .unwrap()
            };
            assert!(
                get("Opt") + 1e-9 >= get("Approx"),
                "OPT must dominate Approx"
            );
            assert!(get("RandMax") + 1e-9 >= get("RandMin"));
            assert!(
                get("Approx") + 1e-9 >= get("RandMin"),
                "Approx must beat RandMin"
            );
        }
    }

    #[test]
    fn by_id_knows_every_figure() {
        // Only check the dispatcher's id table, not the (expensive) runs:
        // ids must be unique, fig9s must be present, and unknown ids must be
        // rejected.  (`all()` is derived from ALL_IDS, so ALL_IDS and the
        // by_id match are the only two places an id lives; by_id falls back
        // to None, which `all()` would silently drop — hence the length
        // check against the match arms is exercised by the binary smoke.)
        let unique: std::collections::HashSet<_> = ALL_IDS.iter().collect();
        assert_eq!(unique.len(), ALL_IDS.len());
        assert_eq!(ALL_IDS.len(), 33);
        assert!(ALL_IDS.contains(&"fig9s"));
        assert!(ALL_IDS.contains(&"fig9p"));
        assert!(ALL_IDS.contains(&"fig9celf"));
        assert!(ALL_IDS.contains(&"fig9dist"));
        assert!(ALL_IDS.contains(&"fig9obs"));
        assert!(ALL_IDS.contains(&"fig9svc"));
        assert!(ALL_IDS.contains(&"fig9mob"));
        assert!(by_id("nonexistent", Scale::Quick).is_none());
    }

    #[test]
    fn fig9s_json_is_well_formed() {
        // A hand-rolled serialiser deserves a shape check; keep the workload
        // tiny by reusing the quick measurements' serialisation only.
        let m = Fig9sMeasurements {
            scale: "quick",
            hardware_threads: 1,
            num_tasks: 24,
            dense_knn_ms: 1.5,
            sharded_knn_ms: 0.5,
            threads: vec![Fig9sThreadRow {
                threads: 4,
                serial_ms: 10.0,
                concurrent_ms: 4.0,
                speedup: 2.5,
                throughput_tasks_per_s: 6000.0,
            }],
        };
        let json = m.to_json();
        assert!(json.contains("\"figure\": \"fig9s\""));
        assert!(json.contains("\"threads\": 4"));
        assert!(json.contains("\"speedup\": 2.5000"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn fig9p_json_is_well_formed() {
        let row = |strategy: &'static str, per_grant: f64| Fig9pStrategyRow {
            strategy,
            batch_ms: 10.0,
            refresh_ms: 4.0,
            per_grant_refresh_us: per_grant,
            commit_tail_share: 0.4,
            full_refreshes: 12,
            incremental_patches: 3,
            stale_pops: 7,
        };
        let m = Fig9pMeasurements {
            scale: "quick",
            num_tasks: 48,
            executions: 120,
            conflicts: 5,
            plans_match: true,
            refresh_speedup: 6.25,
            full: row("full", 25.0),
            incremental: row("incremental", 4.0),
        };
        let json = m.to_json();
        assert!(json.contains("\"figure\": \"fig9p\""));
        assert!(json.contains("\"plans_match\": true"));
        assert!(json.contains("\"refresh_speedup\": 6.2500"));
        assert!(json.contains("\"strategy\": \"incremental\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn fig9celf_json_is_well_formed() {
        let m = Fig9cMeasurements {
            scale: "quick",
            num_tasks: 72,
            budget: 43.2,
            executions: 60,
            v1_commit_rescores: 900,
            v2_commit_rescores: 120,
            lazy_rescore_ratio: 120.0 / 900.0,
            v1_sum_quality: 12.5,
            v2_sum_quality: 12.5,
            quality_delta: 0.0,
            v1_plan_hash_match: true,
            v2_lazy_below_eager: true,
            regions_overlapped: true,
            threads: vec![Fig9cThreadRow {
                threads: 4,
                drain_ms: 7.5,
                regions_used: 5,
                interior_tasks: 60,
                boundary_tasks: 12,
                deferred_slots: 1,
                boundary_conflict_rate: 0.25,
            }],
            drains: vec![Fig9cDrainRow {
                drain: 0,
                regions_used: 3,
                interior_tasks: 9,
                boundary_tasks: 3,
                deferred_slots: 0,
            }],
        };
        let json = m.to_json();
        assert!(json.contains("\"figure\": \"fig9celf\""));
        assert!(json.contains("\"v1_plan_hash_match\": true"));
        assert!(json.contains("\"v2_lazy_below_eager\": true"));
        assert!(json.contains("\"regions_overlapped\": true"));
        assert!(json.contains("\"regions_used\": 5"));
        assert!(json.contains("\"drains\": ["));
        assert!(json.contains("\"interior_tasks\": 9"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn fig9mob_json_is_well_formed() {
        let m = Fig9mMeasurements {
            scale: "quick",
            tasks_streamed: 6_000,
            workers: 800,
            capacity: 100,
            drains: 70,
            executions: 9_000,
            moves: 700,
            offline: 20,
            online: 20,
            entries_spliced: 1_500,
            rebuild_equiv: 60_000,
            rebuilds: 68,
            mutate_maintenance_ms: 3.0,
            rebuild_maintenance_ms: 45.0,
            maintenance_speedup: 15.0,
            speedup_ok: true,
            mutate_plan_hash: 0x1234,
            rebuild_plan_hash: 0x1234,
            plan_hash_match: true,
            final_ledger: 320,
            final_imbalance_milli: 2_400,
        };
        let json = m.to_json();
        assert!(json.contains("\"figure\": \"fig9mob\""));
        assert!(json.contains("\"plan_hash_match\": true"));
        assert!(json.contains("\"maintenance_speedup_ok\": true"));
        assert!(json.contains("\"maintenance_speedup\": 15.0000"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn fig9dist_json_is_well_formed() {
        let m = Fig9dMeasurements {
            scale: "quick",
            num_tasks: 18,
            rounds: 3,
            conflicts: 2,
            executions: 30,
            sim_plan_hash: 0xabcd,
            engine_plan_hash: 0xabcd,
            plan_hash_matches: true,
            speculation: {
                let mut reg = tcsc_obs::MetricsRegistry::new();
                reg.counter("fig9d.rollbacks", 7);
                reg.counter("fig9d.supersedes", 3);
                reg.value("fig9d.cell_rollbacks", 7);
                reg
            },
            rows: vec![Fig9dRow {
                nodes: 2,
                latency: "fixed:200us".into(),
                latency_mean_us: 200.0,
                barrier_virtual_ms: 12.5,
                optimistic_virtual_ms: 11.25,
                barrier_events: 400,
                optimistic_events: 450,
                optimistic_rollbacks: 7,
                optimistic_supersedes: 3,
                wall_ms: 3.0,
            }],
        };
        let json = m.to_json();
        assert!(json.contains("\"figure\": \"fig9d\""));
        assert!(json.contains("\"plan_hash_matches\": true"));
        assert!(json.contains("\"optimistic_rollbacks\": 7"));
        assert!(json.contains("\"optimistic_supersedes\": 3"));
        assert!(json.contains("\"speculation\": { \"total_rollbacks\": 7, \"total_supersedes\": 3"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn fig9obs_json_is_well_formed() {
        let m = Fig9oMeasurements {
            scale: "quick",
            rows: vec![Fig9oRow {
                nodes: 2,
                latency: "zero".into(),
                policy: "optimistic",
                digest: 0xabcd,
                events: 321,
            }],
            digest_uniform: true,
            digest_match: true,
            noop_ms: 10.0,
            recorded_ms: 10.2,
            overhead_ratio: 1.02,
            overhead_ok: true,
            trace_jsonl: "[\n]\n".into(),
            summary: "fig9obs".into(),
        };
        let json = m.to_json();
        assert!(json.contains("\"figure\": \"fig9obs\""));
        assert!(json.contains("\"digest_uniform\": true"));
        assert!(json.contains("\"digest_match\": true"));
        assert!(json.contains("\"overhead_ok\": true"));
        assert!(json.contains("\"policy\": \"optimistic\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        let exp = m.to_experiment();
        assert_eq!(exp.id, "fig9obs");
        assert!(exp.rows.len() >= 3);
    }

    #[test]
    fn fig9svc_json_is_well_formed() {
        let phase = |label: &'static str, p99: u64| Fig9svcPhaseRow {
            label,
            arrivals: 1000,
            commits: 1000,
            p50_us: 2500,
            p99_us: p99,
            max_us: p99 * 2,
            window_p99_us: p99,
            throughput_per_s: 17_000.0,
        };
        let m = Fig9svcMeasurements {
            scale: "quick",
            tasks_streamed: 3000,
            workers: 800,
            capacity: 148,
            executions: 5600,
            drains: 40,
            virtual_end_us: 400_000,
            phases: vec![phase("calm", 8191), phase("rush", 65_535)],
            p99_finite: true,
            throughput_positive: true,
            noop_plan_hash: 0xabcd,
            obs_plan_hash: 0xabcd,
            plan_hash_match: true,
            peak_queue_depth: 148,
            peak_backlog: 2048,
            peak_ledger: 700,
            released: 5600,
            final_ledger: 0,
            ledger_bounded: true,
            drain_wall_ms: 120.0,
            profile_self_ms: 118.5,
            profile_within_bound: true,
            collapsed: "engine.drain 100\n".into(),
            trace_jsonl: "[\n]\n".into(),
            summary: "fig9svc".into(),
        };
        let json = m.to_json();
        assert!(json.contains("\"figure\": \"fig9svc\""));
        assert!(json.contains("\"plan_hash_match\": true"));
        assert!(json.contains("\"ledger_bounded\": true"));
        assert!(json.contains("\"profile_within_bound\": true"));
        assert!(json.contains("\"p99_finite\": true"));
        assert!(json.contains("\"throughput_positive\": true"));
        assert!(json.contains("\"label\": \"rush\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        let exp = m.to_experiment();
        assert_eq!(exp.id, "fig9svc");
        assert_eq!(exp.rows.len(), 3 + 2);
    }

    #[test]
    fn fig9svc_service_run_is_deterministic_and_gc_empties_the_ledger() {
        // A miniature stream (short phases, ~1.2k tasks) through the real
        // service loop: two unobserved passes must fold the identical plan
        // hash, the retired-task GC must release every execution, and the
        // rush phase must see a worse latency tail than calm.
        use tcsc_workload::{BoundedPareto, HeavyTailedArrivals, PhaseSchedule};
        let cfg = ScenarioConfig::small()
            .with_num_slots(SVC_NUM_SLOTS)
            .with_num_workers(300);
        let scenario = cfg.build();
        let index = WorkerIndex::build(&scenario.workers, SVC_NUM_SLOTS, &scenario.domain);
        let cost = EuclideanCost::default();
        let inter = BoundedPareto::new(1.5, 20.0, 10_000.0);
        let arrivals = HeavyTailedArrivals {
            seed: 7,
            inter_arrival_us: inter,
            schedule: PhaseSchedule::rush_hour(40_000, 15_000, 4.0),
            num_slots: SVC_NUM_SLOTS,
            distribution: SpatialDistribution::Uniform,
            domain: scenario.domain,
        };
        let capacity = ((SVC_DRAIN_EVERY_US as f64 / inter.mean()) * 1.7).ceil() as usize;
        let mcfg = MultiTaskConfig::new(capacity as f64 * 2.0);

        let mut a = AssignmentEngine::borrowed(&index, &cost, mcfg);
        let run_a = fig9svc_service_run(&mut a, &arrivals, 1200, capacity, None);
        let mut b = AssignmentEngine::borrowed(&index, &cost, mcfg);
        let run_b = fig9svc_service_run(&mut b, &arrivals, 1200, capacity, None);

        assert_eq!(
            run_a.plan_hash, run_b.plan_hash,
            "the service loop is seeded"
        );
        assert_eq!(run_a.commits, 1200);
        assert_eq!(run_a.commits, run_b.commits);
        assert_eq!(run_a.executions, run_b.executions);
        assert!(run_a.executions > 0);
        assert_eq!(
            run_a.released, run_a.executions,
            "the GC must return every committed occupancy"
        );
        assert_eq!(run_a.final_ledger, 0, "the ledger drains to empty");
        assert!(run_a.peak_ledger > 0);
        assert!(
            (run_a.peak_ledger as u64) < run_a.executions,
            "GC keeps the peak ledger below the lifetime execution count"
        );
        // The rush backlog stretches the tail: rush-arrived tasks wait
        // longer than calm-arrived ones at the 99th percentile.
        let calm_p99 = run_a.phase_hist[0].quantile(0.99);
        let rush_p99 = run_a.phase_hist[1].quantile(0.99);
        assert!(
            rush_p99 > calm_p99,
            "rush p99 ({rush_p99}us) must exceed calm p99 ({calm_p99}us)"
        );
    }

    #[test]
    fn fig9i_engine_never_recomputes_more_than_the_rebuild_baseline() {
        let exp = fig9i(Scale::Quick);
        assert!(!exp.rows.is_empty());
        for row in &exp.rows {
            let get = |name: &str| {
                row.values
                    .iter()
                    .find(|(n, _)| n == name)
                    .map(|(_, v)| *v)
                    .unwrap()
            };
            assert!(
                get("EngineSlotComps") < get("RebuildSlotComps"),
                "engine must amortise candidate computations across the sweep ({})",
                row.label
            );
        }
    }
}
