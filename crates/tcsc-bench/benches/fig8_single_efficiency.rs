//! Figure 8 bench: single-task efficiency — Approx vs Approx* scaling with
//! `m`, `|W|`, `k`, `ts`, budgets and distributions, plus the time breakdown
//! and pruning-ratio analyses.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

use tcsc_assign::{approx, approx_star, SingleTaskConfig};
use tcsc_bench::figures::{fig8a, fig8b, fig8c, fig8d, fig8e, fig8f, fig8g, fig8h};
use tcsc_bench::{prepare_single, Scale};
use tcsc_workload::ScenarioConfig;

fn bench_fig8(c: &mut Criterion) {
    for experiment in [
        fig8a(Scale::Quick),
        fig8b(Scale::Quick),
        fig8c(Scale::Quick),
        fig8d(Scale::Quick),
        fig8e(Scale::Quick),
        fig8f(Scale::Quick),
        fig8g(Scale::Quick),
        fig8h(Scale::Quick),
    ] {
        println!("{}", experiment.render());
    }

    let mut group = c.benchmark_group("fig8_single_efficiency");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for m in [100usize, 200] {
        let prepared = prepare_single(
            &ScenarioConfig::small()
                .with_num_slots(m)
                .with_num_workers(1000),
        );
        let budget: f64 = (0..m)
            .filter_map(|j| prepared.candidates.cost(j))
            .sum::<f64>()
            * 0.25;
        let cfg = SingleTaskConfig::new(budget);
        group.bench_with_input(BenchmarkId::new("approx", m), &m, |b, _| {
            b.iter(|| approx(&prepared.task, &prepared.candidates, &cfg))
        });
        group.bench_with_input(BenchmarkId::new("approx_star", m), &m, |b, _| {
            b.iter(|| approx_star(&prepared.task, &prepared.candidates, &cfg))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig8);
criterion_main!(benches);
