//! Figure 6 bench: single-task quality (Opt / Approx / Rand) and the latency
//! of the competing solvers on an OPT-feasible instance.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

use tcsc_assign::{approx, approx_star, optimal, SingleTaskConfig};
use tcsc_bench::figures::{fig6a, fig6b};
use tcsc_bench::{prepare_single, Scale};
use tcsc_workload::ScenarioConfig;

fn bench_fig6(c: &mut Criterion) {
    // Print the reproduced figure rows once so `cargo bench` output contains
    // the paper-style tables.
    println!("{}", fig6a(Scale::Quick).render());
    println!("{}", fig6b(Scale::Quick).render());

    let prepared = prepare_single(
        &ScenarioConfig::small()
            .with_num_slots(14)
            .with_num_workers(800),
    );
    let budget: f64 = (0..14)
        .filter_map(|j| prepared.candidates.cost(j))
        .sum::<f64>()
        * 0.25;
    let cfg = SingleTaskConfig::new(budget);

    let mut group = c.benchmark_group("fig6_single_quality");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    group.bench_function("approx_m14", |b| {
        b.iter(|| approx(&prepared.task, &prepared.candidates, &cfg))
    });
    group.bench_function("approx_star_m14", |b| {
        b.iter(|| approx_star(&prepared.task, &prepared.candidates, &cfg))
    });
    group.bench_function("opt_m14", |b| {
        b.iter(|| optimal(&prepared.task, &prepared.candidates, &cfg))
    });
    group.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
