//! Figure 7 bench: multi-task quality (q_sum and q_min) and the latency of
//! the serial MSQM / MMQM solvers.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

use tcsc::solver::{SolveObjective, SolverBuilder};
use tcsc_assign::MultiTaskConfig;
use tcsc_bench::figures::{fig7a, fig7b, fig7c, fig7d};
use tcsc_bench::{prepare_multi, Scale};
use tcsc_core::EuclideanCost;
use tcsc_workload::ScenarioConfig;

fn bench_fig7(c: &mut Criterion) {
    println!("{}", fig7a(Scale::Quick).render());
    println!("{}", fig7b(Scale::Quick).render());
    println!("{}", fig7c(Scale::Quick).render());
    println!("{}", fig7d(Scale::Quick).render());

    let prepared = prepare_multi(
        &ScenarioConfig::small()
            .with_num_tasks(6)
            .with_num_slots(40)
            .with_num_workers(600),
    );
    let cfg = MultiTaskConfig::new(40.0);
    let cost = EuclideanCost::default();

    let mut group = c.benchmark_group("fig7_multi_quality");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    group.bench_function("msqm_serial_6x40", |b| {
        b.iter(|| {
            SolverBuilder::new(cfg.budget)
                .with_config(cfg)
                .solve_indexed(
                    &prepared.scenario.tasks,
                    &prepared.index,
                    &prepared.scenario.domain,
                    &cost,
                )
        })
    });
    group.bench_function("mmqm_6x40", |b| {
        b.iter(|| {
            SolverBuilder::new(cfg.budget)
                .with_config(cfg)
                .with_objective(SolveObjective::MinQuality)
                .solve_indexed(
                    &prepared.scenario.tasks,
                    &prepared.index,
                    &prepared.scenario.domain,
                    &cost,
                )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig7);
criterion_main!(benches);
