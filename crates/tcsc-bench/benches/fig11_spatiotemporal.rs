//! Figure 11 bench: the spatiotemporal interpolation extension (SApprox vs
//! Approx) and the sensitivity to the temporal weight `w_t`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

use tcsc::solver::{SolveObjective, SolverBuilder};
use tcsc_assign::{MultiTaskConfig, SpatioTemporalObjective};
use tcsc_bench::figures::{fig11a, fig11b, fig11c};
use tcsc_bench::{prepare_multi, Scale};
use tcsc_core::{EuclideanCost, InterpolationWeights};
use tcsc_workload::ScenarioConfig;

fn bench_fig11(c: &mut Criterion) {
    println!("{}", fig11a(Scale::Quick).render());
    println!("{}", fig11b(Scale::Quick).render());
    println!("{}", fig11c(Scale::Quick).render());

    let prepared = prepare_multi(
        &ScenarioConfig::small()
            .with_num_tasks(5)
            .with_num_slots(20)
            .with_num_workers(400),
    );
    let cfg = MultiTaskConfig::new(25.0);
    let cost = EuclideanCost::default();

    let mut group = c.benchmark_group("fig11_spatiotemporal");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    group.bench_function("sapprox_temporal_only", |b| {
        b.iter(|| {
            SolverBuilder::new(cfg.budget)
                .with_config(cfg)
                .with_objective(SolveObjective::SpatioTemporal {
                    weights: InterpolationWeights::temporal_only(),
                    objective: SpatioTemporalObjective::Sum,
                })
                .solve_indexed(
                    &prepared.scenario.tasks,
                    &prepared.index,
                    &prepared.scenario.domain,
                    &cost,
                )
        })
    });
    group.bench_function("sapprox_weighted", |b| {
        b.iter(|| {
            SolverBuilder::new(cfg.budget)
                .with_config(cfg)
                .with_objective(SolveObjective::SpatioTemporal {
                    weights: InterpolationWeights::paper_default(),
                    objective: SpatioTemporalObjective::Sum,
                })
                .solve_indexed(
                    &prepared.scenario.tasks,
                    &prepared.index,
                    &prepared.scenario.domain,
                    &cost,
                )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig11);
criterion_main!(benches);
