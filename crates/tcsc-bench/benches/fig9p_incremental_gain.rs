//! Figure 9p bench (repo extension): the incremental-gain commit engine
//! against the recompute-per-grant full-refresh path — the same cold-cache
//! batch under both `RefreshStrategy` settings, plus a streaming-drain
//! variant where the ledger survives nothing but still amortises every
//! round's commit tail.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

use tcsc_assign::{AssignmentEngine, MultiTaskConfig, Objective, RefreshStrategy};
use tcsc_bench::figures::fig9p;
use tcsc_bench::{prepare_multi, Scale};
use tcsc_core::EuclideanCost;
use tcsc_workload::ScenarioConfig;

fn bench_incremental_gain(c: &mut Criterion) {
    println!("{}", fig9p(Scale::Quick).render());

    let prepared = prepare_multi(
        &ScenarioConfig::small()
            .with_num_tasks(24)
            .with_num_slots(64)
            .with_num_workers(1500),
    );
    let tasks = &prepared.scenario.tasks;
    let cost = EuclideanCost::default();
    let budget = tasks.len() as f64 * 2.5;

    let mut group = c.benchmark_group("fig9p_incremental_gain");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for (name, strategy) in [
        ("full_refresh_batch", RefreshStrategy::Full),
        ("incremental_gain_batch", RefreshStrategy::Incremental),
    ] {
        let cfg = MultiTaskConfig::new(budget).with_refresh(strategy);
        group.bench_function(name, |b| {
            b.iter(|| {
                AssignmentEngine::borrowed(&prepared.index, &cost, cfg)
                    .assign_batch(tasks, Objective::SumQuality)
            })
        });
    }
    for (name, strategy) in [
        ("full_refresh_drains", RefreshStrategy::Full),
        ("incremental_gain_drains", RefreshStrategy::Incremental),
    ] {
        let cfg = MultiTaskConfig::new(budget / 4.0).with_refresh(strategy);
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut engine = AssignmentEngine::borrowed(&prepared.index, &cost, cfg);
                for round in tasks.chunks(6) {
                    engine.submit(round.to_vec());
                    engine.drain(Objective::SumQuality);
                }
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_incremental_gain);
criterion_main!(benches);
