//! Figure 9(i) bench (repo extension): batched engine vs rebuild-per-call
//! throughput — re-planning budget sweeps over one task batch, and streaming
//! `submit`/`drain` rounds against per-round rebuilds.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

use tcsc_assign::{msqm_rebuild, AssignmentEngine, MultiTaskConfig, Objective};
use tcsc_bench::figures::fig9i;
use tcsc_bench::{prepare_multi, Scale};
use tcsc_core::EuclideanCost;
use tcsc_index::WorkerIndex;
use tcsc_workload::{ScenarioConfig, StreamingConfig};

fn bench_batched_engine(c: &mut Criterion) {
    println!("{}", fig9i(Scale::Quick).render());

    let prepared = prepare_multi(
        &ScenarioConfig::small()
            .with_num_tasks(8)
            .with_num_slots(40)
            .with_num_workers(600),
    );
    let tasks = &prepared.scenario.tasks;
    let cost = EuclideanCost::default();
    let budgets = [20.0, 40.0, 60.0];

    let streaming = StreamingConfig::small(3, 4).build();
    let stream_index = WorkerIndex::build(
        &streaming.workers,
        streaming.config.base.num_slots,
        &streaming.domain,
    );

    let mut group = c.benchmark_group("fig9_batched_engine");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    group.bench_function("rebuild_budget_sweep", |b| {
        b.iter(|| {
            for &budget in &budgets {
                msqm_rebuild(tasks, &prepared.index, &cost, &MultiTaskConfig::new(budget));
            }
        })
    });
    group.bench_function("engine_budget_sweep", |b| {
        b.iter(|| {
            let mut engine = AssignmentEngine::borrowed(
                &prepared.index,
                &cost,
                MultiTaskConfig::new(budgets[0]),
            );
            for &budget in &budgets {
                engine.release_all();
                engine.set_budget(budget);
                engine.assign_batch(tasks, Objective::SumQuality);
            }
        })
    });
    group.bench_function("engine_streaming_drains", |b| {
        b.iter(|| {
            let mut engine =
                AssignmentEngine::borrowed(&stream_index, &cost, MultiTaskConfig::new(25.0));
            for round in &streaming.rounds {
                engine.submit(round.clone());
                engine.drain(Objective::SumQuality);
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_batched_engine);
criterion_main!(benches);
