//! Figure 9d bench (repo extension): the discrete-event distributed runtime
//! — how fast the simulator itself replays a region-partitioned arrival
//! trace through the dispatcher/region-node cluster, per grant policy.

use std::rc::Rc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};

use tcsc_core::EuclideanCost;
use tcsc_sim::{run_cluster, GrantPolicy, LatencyModel, SimBatch, SimClusterConfig};
use tcsc_workload::{ArrivalTrace, ScenarioConfig, StreamingConfig};

fn bench_sim_runtime(c: &mut Criterion) {
    let streaming = StreamingConfig::region_partitioned(
        ScenarioConfig::small()
            .with_num_slots(24)
            .with_num_workers(300),
        3,
        3,
        5,
    )
    .build();
    let slots = streaming.config.base.num_slots;
    let trace = ArrivalTrace::from_streaming(&streaming, 50_000);
    let budget = trace.len() as f64 * 2.0;
    let batches: Vec<SimBatch> = trace
        .batches()
        .into_iter()
        .map(|(at_us, tasks)| SimBatch { at_us, tasks })
        .collect();

    let mut group = c.benchmark_group("fig9d_sim_runtime");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for (name, policy) in [
        ("barrier", GrantPolicy::Barrier),
        ("optimistic", GrantPolicy::Optimistic),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                run_cluster(
                    &streaming.workers,
                    slots,
                    &streaming.domain,
                    batches.clone(),
                    Rc::new(EuclideanCost::default()),
                    &SimClusterConfig::new(4, 3, budget, LatencyModel::Fixed(200))
                        .with_policy(policy),
                )
                .executions
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sim_runtime);
criterion_main!(benches);
