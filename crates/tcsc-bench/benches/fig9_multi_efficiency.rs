//! Figure 9 bench: multi-task efficiency — serial vs group-level vs
//! task-level parallelization, conflict counts and MMQM scaling.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

use tcsc::solver::{Runtime, SolverBuilder};
use tcsc_assign::MultiTaskConfig;
use tcsc_bench::figures::{fig9a, fig9b, fig9c, fig9d, fig9e, fig9f, fig9g, fig9h};
use tcsc_bench::{prepare_multi, Scale};
use tcsc_core::EuclideanCost;
use tcsc_workload::ScenarioConfig;

fn bench_fig9(c: &mut Criterion) {
    for experiment in [
        fig9a(Scale::Quick),
        fig9b(Scale::Quick),
        fig9c(Scale::Quick),
        fig9d(Scale::Quick),
        fig9e(Scale::Quick),
        fig9f(Scale::Quick),
        fig9g(Scale::Quick),
        fig9h(Scale::Quick),
    ] {
        println!("{}", experiment.render());
    }

    let prepared = prepare_multi(
        &ScenarioConfig::small()
            .with_num_tasks(6)
            .with_num_slots(40)
            .with_num_workers(600),
    );
    let cfg = MultiTaskConfig::new(40.0);
    let cost = EuclideanCost::default();

    let mut group = c.benchmark_group("fig9_multi_efficiency");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    group.bench_function("serial", |b| {
        b.iter(|| {
            SolverBuilder::new(cfg.budget)
                .with_config(cfg)
                .solve_indexed(
                    &prepared.scenario.tasks,
                    &prepared.index,
                    &prepared.scenario.domain,
                    &cost,
                )
        })
    });
    group.bench_function("group_parallel_4", |b| {
        b.iter(|| {
            SolverBuilder::new(cfg.budget)
                .with_config(cfg)
                .with_runtime(Runtime::GroupParallel)
                .with_threads(4)
                .solve_indexed(
                    &prepared.scenario.tasks,
                    &prepared.index,
                    &prepared.scenario.domain,
                    &cost,
                )
        })
    });
    group.bench_function("task_parallel_4", |b| {
        b.iter(|| {
            SolverBuilder::new(cfg.budget)
                .with_config(cfg)
                .with_runtime(Runtime::TaskParallel)
                .with_threads(4)
                .solve_indexed(
                    &prepared.scenario.tasks,
                    &prepared.index,
                    &prepared.scenario.domain,
                    &cost,
                )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fig9);
criterion_main!(benches);
