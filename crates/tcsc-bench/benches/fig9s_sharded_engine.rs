//! Figure 9s bench (repo extension): the sharded spatial index against the
//! dense grid, and the concurrent region-parallel engine against the serial
//! engine, on the region-partitioned streaming preset.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

use tcsc_assign::{AssignmentEngine, ConcurrentAssignmentEngine, MultiTaskConfig, Objective};
use tcsc_bench::figures::fig9s;
use tcsc_bench::Scale;
use tcsc_core::EuclideanCost;
use tcsc_index::{ShardGridConfig, ShardedWorkerIndex, WorkerIndex};
use tcsc_workload::{ScenarioConfig, StreamingConfig};

fn bench_sharded_engine(c: &mut Criterion) {
    println!("{}", fig9s(Scale::Quick).render());

    // A CI-sized slice of the fig9s preset (smaller than the driver's, so
    // the criterion samples stay fast).
    let base = ScenarioConfig::small()
        .with_num_slots(60)
        .with_num_workers(1500);
    let streaming = StreamingConfig::region_partitioned(base, 4, 3, 8).build();
    let tasks = streaming.concatenated();
    let num_slots = streaming.config.base.num_slots;
    let dense = WorkerIndex::build(&streaming.workers, num_slots, &streaming.domain);
    let sharded = ShardedWorkerIndex::build(
        &streaming.workers,
        num_slots,
        &streaming.domain,
        ShardGridConfig::new(4, 4),
    );
    let cost = EuclideanCost::default();
    let cfg = MultiTaskConfig::new(tasks.len() as f64 * 0.25);

    let mut group = c.benchmark_group("fig9s_sharded_engine");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    group.bench_function("dense_knn_queries", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for task in &tasks {
                for slot in (0..num_slots).step_by(5) {
                    acc += dense.k_nearest(slot, &task.location, 8).len();
                }
            }
            acc
        })
    });
    group.bench_function("sharded_knn_queries", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for task in &tasks {
                for slot in (0..num_slots).step_by(5) {
                    acc += sharded.k_nearest(slot, &task.location, 8).len();
                }
            }
            acc
        })
    });
    group.bench_function("serial_engine_batch", |b| {
        b.iter(|| {
            AssignmentEngine::borrowed(&dense, &cost, cfg)
                .assign_batch(&tasks, Objective::SumQuality)
        })
    });
    group.bench_function("concurrent_engine_batch_4t", |b| {
        b.iter(|| {
            ConcurrentAssignmentEngine::new(sharded.clone(), &cost, cfg, 4)
                .assign_batch_parallel(&tasks, Objective::SumQuality)
        })
    });
    group.bench_function("concurrent_engine_streaming_drains_4t", |b| {
        b.iter(|| {
            let mut engine = ConcurrentAssignmentEngine::new(sharded.clone(), &cost, cfg, 4);
            for round in &streaming.rounds {
                engine.submit(round.clone());
                engine.drain_parallel(Objective::SumQuality);
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_sharded_engine);
criterion_main!(benches);
