//! Property lock for the power-of-two histogram quantile error bound.
//!
//! [`tcsc_obs::Histogram`] keeps bucket counts, not samples, so quantiles
//! resolve to the upper bound of the power-of-two bucket containing the
//! rank.  The documented bound on `MetricsRegistry`'s quantile surface is:
//! the true `q`-quantile `x` satisfies `x <= quantile(q) < 2 * x` for
//! `x >= 1` (never an underestimate, strictly less than 2× over), and
//! `quantile(q) == 0` exactly when `x == 0`.  This test checks the bound
//! against exact quantiles computed from the retained samples, across
//! seeded distributions spanning the bucket range.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tcsc_obs::Histogram;

/// The exact `q`-quantile under the same rank convention the histogram
/// uses: the `ceil(q * n)`-th smallest sample (1-based, floor of 1).
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty());
    let rank = ((q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank - 1]
}

fn assert_bound(samples: &[u64], context: &str) {
    let mut h = Histogram::default();
    for &v in samples {
        h.record(v);
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    for q in [0.0, 0.25, 0.50, 0.90, 0.99, 0.999, 1.0] {
        let exact = exact_quantile(&sorted, q);
        let bucketed = h.quantile(q);
        assert!(
            bucketed >= exact,
            "{context}: q={q} underestimated: exact {exact}, bucketed {bucketed}"
        );
        if exact == 0 {
            assert_eq!(
                bucketed, 0,
                "{context}: q={q} nonzero estimate for a zero quantile"
            );
        } else {
            assert!(
                bucketed < 2 * exact,
                "{context}: q={q} over 2x: exact {exact}, bucketed {bucketed}"
            );
        }
    }
}

#[test]
fn bucketed_quantiles_never_underestimate_and_stay_under_2x() {
    for seed in 0..20u64 {
        let mut rng = StdRng::seed_from_u64(seed);

        // Small values exercise the exact low buckets (0, 1, 2, 3).
        let small: Vec<u64> = (0..500).map(|_| rng.gen_range(0..8u64)).collect();
        assert_bound(&small, "small uniform");

        // Wide uniform range crosses many buckets.
        let wide: Vec<u64> = (0..500).map(|_| rng.gen_range(1..1_000_000u64)).collect();
        assert_bound(&wide, "wide uniform");

        // Heavy tail: most samples tiny, a few enormous — the shape the
        // latency windows actually see.
        let tailed: Vec<u64> = (0..500)
            .map(|_| {
                if rng.gen_bool(0.05) {
                    rng.gen_range(1_000_000..1_000_000_000u64)
                } else {
                    rng.gen_range(100..10_000u64)
                }
            })
            .collect();
        assert_bound(&tailed, "heavy tail");
    }
}

#[test]
fn degenerate_distributions_hit_the_bound_exactly() {
    // A constant distribution clamps to min == max: zero error.
    for value in [0u64, 1, 7, 1 << 40, u64::MAX] {
        let mut h = Histogram::default();
        for _ in 0..10 {
            h.record(value);
        }
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(h.quantile(q), value, "constant {value} q={q}");
        }
    }
    // A single sample is its own every-quantile.
    let mut h = Histogram::default();
    h.record(12_345);
    assert_eq!(h.p50(), 12_345);
    assert_eq!(h.p99(), 12_345);
}

#[test]
fn worst_case_error_approaches_but_never_reaches_2x() {
    // 2^k is the first value of its bucket; with a larger max present the
    // reported upper bound 2^(k+1)-1 is the worst case: ratio (2 - 2^-k)x.
    let mut h = Histogram::default();
    for _ in 0..99 {
        h.record(1 << 20); // bucket 21 lower edge
    }
    h.record(u64::MAX); // keeps the max clamp out of the way
    let reported = h.quantile(0.5);
    let exact = 1u64 << 20;
    assert_eq!(reported, (1 << 21) - 1);
    assert!(reported >= exact && reported < 2 * exact);
}
