//! Property lock for sliding-window eviction: advancing the window by
//! exactly one slice drops precisely the oldest slice's samples — no more,
//! no fewer — and the windowed count/total stay conserved across the
//! eviction.  Checked on the clock-agnostic [`SlidingWindow`] driven by
//! explicit nanos (the wall clock's code path), and end-to-end through
//! [`ObsSession`]'s virtual clock and wall clock.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tcsc_obs::{ObsSession, Recorder, SlidingWindow};

#[test]
fn one_slice_advance_evicts_exactly_the_oldest_slice() {
    for seed in 0..25u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let slice_nanos = rng.gen_range(100..10_000u64);
        let slices = rng.gen_range(2..12usize);
        let mut w = SlidingWindow::new(slice_nanos, slices);

        // Fill a random number of slices with random sample counts at
        // monotone times, shadow-tracking per-slice sums and counts.
        let filled = rng.gen_range(slices..slices * 3);
        let mut per_slice_sum = vec![0u64; filled];
        let mut per_slice_count = vec![0u64; filled];
        for s in 0..filled {
            let base = s as u64 * slice_nanos;
            for _ in 0..rng.gen_range(0..6u32) {
                let v = rng.gen_range(1..1_000u64);
                w.record(base + rng.gen_range(0..slice_nanos), v);
                per_slice_sum[s] += v;
                per_slice_count[s] += 1;
            }
        }
        // Pin the clock to the last filled slice (the fill may have left
        // trailing slices empty, in which case no record advanced into
        // them), then the live slices are the last `slices` filled ones.
        w.advance((filled as u64 - 1) * slice_nanos);
        let lo = filled - slices;
        let before_counts = w.slice_counts();
        assert_eq!(before_counts, per_slice_count[lo..], "seed {seed}");
        assert_eq!(
            w.windowed_sum(),
            per_slice_sum[lo..].iter().sum::<u64>(),
            "seed {seed}"
        );
        let before_lifetime = w.lifetime_count();

        // Advance to the start of the next slice: exactly one rotation.
        w.advance(filled as u64 * slice_nanos);

        // The oldest live slice fell out; everything else shifted intact
        // and the incoming slice starts empty.
        let after_counts = w.slice_counts();
        assert_eq!(&after_counts[..slices - 1], &before_counts[1..]);
        assert_eq!(after_counts[slices - 1], 0, "the new slice starts empty");
        assert_eq!(
            w.windowed_count(),
            per_slice_count[lo + 1..].iter().sum::<u64>(),
            "seed {seed}: count must drop by exactly the oldest slice"
        );
        assert_eq!(
            w.windowed_sum(),
            per_slice_sum[lo + 1..].iter().sum::<u64>(),
            "seed {seed}: sum must drop by exactly the oldest slice"
        );
        assert_eq!(w.lifetime_count(), before_lifetime, "lifetime never evicts");
    }
}

#[test]
fn windowed_totals_are_conserved_across_single_slice_advances() {
    // Stronger conservation property: walking the clock slice by slice,
    // each advance removes exactly the per-slice recorded sum of the slice
    // that fell out (tracked independently here).
    for seed in 100..110u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let slice_nanos = 1_000u64;
        let slices = 4usize;
        let mut w = SlidingWindow::new(slice_nanos, slices);
        let total_slices = 20u64;
        let mut per_slice_sum = vec![0u64; total_slices as usize];
        let mut per_slice_count = vec![0u64; total_slices as usize];

        for s in 0..total_slices {
            // Advance to the slice boundary first (also exercises advances
            // with no interleaved records).
            w.advance(s * slice_nanos);
            if s >= slices as u64 {
                // Everything inside the window now is the last `slices`
                // slices' worth, exactly.
                let lo = (s + 1 - slices as u64) as usize;
                let expect_sum: u64 = per_slice_sum[lo..=s as usize - 1].iter().sum();
                let expect_count: u64 = per_slice_count[lo..=s as usize - 1].iter().sum();
                assert_eq!(w.windowed_sum(), expect_sum, "seed {seed} slice {s}");
                assert_eq!(w.windowed_count(), expect_count, "seed {seed} slice {s}");
            }
            for _ in 0..rng.gen_range(0..5u32) {
                let at = s * slice_nanos + rng.gen_range(0..slice_nanos);
                let v = rng.gen_range(1..100u64);
                w.record(at, v);
                per_slice_sum[s as usize] += v;
                per_slice_count[s as usize] += 1;
            }
        }
        let total: u64 = per_slice_count.iter().sum();
        assert_eq!(w.lifetime_count(), total);
    }
}

#[test]
fn virtual_clock_sessions_evict_one_slice_at_a_time() {
    let session = ObsSession::virtual_time();
    session.install_window("svc.latency_ns", 1_000, 3);
    // One sample per slice, slices 0..=2.
    for s in 0..3u64 {
        session.set_virtual_nanos(s * 1_000 + 500);
        session.value("svc.latency_ns", 10 + s);
    }
    let full = session.metrics();
    assert_eq!(full.window("svc.latency_ns").unwrap().windowed_count(), 3);
    // Advancing the virtual clock into slice 3 — with no new observation —
    // must evict exactly the slice-0 sample.
    session.set_virtual_nanos(3_000);
    let after = session.metrics();
    let w = after.window("svc.latency_ns").unwrap();
    assert_eq!(w.windowed_count(), 2);
    assert_eq!(w.windowed_sum(), 11 + 12);
    assert_eq!(w.lifetime_count(), 3);
    // One more slice: the slice-1 sample goes too.
    session.set_virtual_nanos(4_000);
    let after = session.metrics();
    assert_eq!(
        after.window("svc.latency_ns").unwrap().windowed_sum(),
        12,
        "second advance evicts the second slice"
    );
}

#[test]
fn wall_clock_sessions_window_at_wall_time() {
    // Wall time cannot be forced across slice boundaries deterministically,
    // so the wall-path check uses slices far wider than the test runtime:
    // every observation must stay live, proving records land in the window
    // at the session's wall reading without spurious eviction.
    let session = ObsSession::wall();
    session.install_window("svc.latency_ns", u64::MAX / 8, 4);
    for v in 1..=50u64 {
        session.value("svc.latency_ns", v);
    }
    let metrics = session.metrics();
    let w = metrics.window("svc.latency_ns").unwrap();
    assert_eq!(w.windowed_count(), 50);
    assert_eq!(w.windowed_sum(), (1..=50).sum::<u64>());
    assert_eq!(w.lifetime_count(), 50);
    // The lifetime histogram saw the same stream.
    assert_eq!(metrics.histogram("svc.latency_ns").unwrap().count(), 50);
}
