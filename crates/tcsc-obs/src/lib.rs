//! # tcsc-obs
//!
//! Zero-dependency tracing and metrics for the TCSC runtimes.  The build
//! environment is hermetic (no `tracing` / `metrics` crates), so this crate
//! reimplements the minimal subset the repository needs:
//!
//! * a clock abstraction over **wall time** (a monotonic [`Stopwatch`]
//!   epoch) and **virtual time** (the discrete-event simulator's clock,
//!   driven externally via [`ObsSession::set_virtual_nanos`]);
//! * lightweight **spans and events** ([`TraceEvent`]) recorded into
//!   per-thread buffers ([`ThreadBuffer`]) and merged deterministically by
//!   `(time, thread, seq)` ([`ObsSession::merged_events`]);
//! * a [`MetricsRegistry`] of named counters and fixed-bucket power-of-two
//!   [`Histogram`]s (p50/p99 assignment latency, per-grant refresh cost,
//!   rollback/supersede counts, shard-router tile visits, cache hit/miss);
//! * exporters: a chrome://tracing-compatible JSONL dump
//!   ([`chrome_trace_jsonl`]), a plain-text summary table
//!   ([`ObsSession::summary`]), and a stable [`obs_digest`] hash over the
//!   **logical** (policy- and transport-invariant) projection of the
//!   virtual-time event stream.
//!
//! ## The `Recorder` trait and the no-op default
//!
//! Every instrumented runtime is generic over `R:`[`Recorder`] with a
//! [`NoopRecorder`] default.  `Recorder::IS_ENABLED` is an associated
//! `const`, so instrumentation sites are written
//!
//! ```ignore
//! if R::IS_ENABLED {
//!     self.obs.begin("commit", tasks as u64);
//! }
//! ```
//!
//! and compile to **nothing** under the default — the disabled overhead is
//! not a branch but dead code, which is what keeps the fig9p per-grant
//! refresh cost identical with observability compiled in.  The bit-identity
//! of plans/conflicts/executions with observability *on vs. off* is locked
//! by `tcsc-assign/tests/obs_noop_equivalence.rs`.
//!
//! ## The digest as an equivalence lock
//!
//! Virtual-time transport events (message send/recv) depend on the node
//! layout and latency model, and policy events (grants, rollbacks,
//! supersedes) depend on the grant policy.  The **logical** events — the
//! committed executions and the conflict totals — are bit-identical across
//! all of those by the engine-equivalence guarantees, so [`obs_digest`]
//! hashes only [`Scope::Logical`] events: same seed ⇒ identical digest
//! across node counts, latency models and grant policies.  Locked by
//! `tcsc-sim/tests/obs_trace.rs` and gated in CI by the `fig9obs` driver.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod export;
mod metrics;
mod profile;
mod session;
mod slo;

pub use export::{
    chrome_trace_jsonl, obs_digest, obs_digest_parts, parse_chrome_trace_jsonl, replay_digest,
    ReplayedEvent,
};
pub use metrics::{Gauge, Histogram, MetricsRegistry};
pub use profile::{profile_spans, PathStat, SpanProfile};
pub use session::{ObsReport, ObsSession, ThreadBuffer};
pub use slo::SlidingWindow;

use std::time::Instant;

/// Which projection of the stream an event belongs to.
///
/// The [`obs_digest`] equivalence lock hashes only [`Scope::Logical`]
/// events; the other scopes legitimately differ across node layouts,
/// latency models and grant policies and are "modulo"-ed out.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Scope {
    /// Policy- and layout-invariant protocol outcomes (committed executions,
    /// conflict totals).  The digest hashes exactly these.
    Logical,
    /// Grant-policy-dependent events: provisional grants, rollbacks,
    /// supersedes, heartbeat arbitration.
    Policy,
    /// Network/transport events: message send/recv, node hops.
    Transport,
    /// Pure measurement (span timings, wave sizes); never part of any
    /// equivalence comparison.
    Perf,
}

impl Scope {
    /// Stable short name used by the exporters.
    pub fn name(self) -> &'static str {
        match self {
            Scope::Logical => "logical",
            Scope::Policy => "policy",
            Scope::Transport => "transport",
            Scope::Perf => "perf",
        }
    }

    /// Parses [`Scope::name`] back (trace replay).
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "logical" => Some(Scope::Logical),
            "policy" => Some(Scope::Policy),
            "transport" => Some(Scope::Transport),
            "perf" => Some(Scope::Perf),
            _ => None,
        }
    }
}

/// Span/event phase, mirroring the chrome://tracing `ph` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// Span begin (`"B"`).
    Begin,
    /// Span end (`"E"`).
    End,
    /// Instantaneous event (`"i"`).
    Instant,
    /// Counter sample (`"C"`): a gauge or rate reading whose `a` payload is
    /// the sampled value.  chrome://tracing plots these as counter tracks.
    Counter,
}

impl Phase {
    /// The chrome://tracing phase letter.
    pub fn letter(self) -> &'static str {
        match self {
            Phase::Begin => "B",
            Phase::End => "E",
            Phase::Instant => "i",
            Phase::Counter => "C",
        }
    }

    /// Parses [`Phase::letter`] back (trace replay).
    pub fn from_letter(letter: &str) -> Option<Self> {
        match letter {
            "B" => Some(Phase::Begin),
            "E" => Some(Phase::End),
            "i" => Some(Phase::Instant),
            "C" => Some(Phase::Counter),
            _ => None,
        }
    }
}

/// One recorded trace event.
///
/// `time` is nanoseconds — since the session epoch under the wall clock,
/// or virtual-simulation nanoseconds under the virtual clock.  `seq` is the
/// per-buffer record sequence; the deterministic merge key is
/// `(time, tid, seq)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Event time in nanoseconds (wall-since-epoch or virtual).
    pub time: u64,
    /// Per-buffer monotone sequence number.
    pub seq: u64,
    /// Logical thread id of the recording buffer (0 = session owner).
    pub tid: u32,
    /// Stream projection (see [`Scope`]).
    pub scope: Scope,
    /// Span phase.
    pub phase: Phase,
    /// Event label (static: recording never allocates for the name).
    pub label: &'static str,
    /// First payload word (meaning is per-label).
    pub a: u64,
    /// Second payload word.
    pub b: u64,
    /// Third payload word (e.g. an `f64::to_bits` cost).
    pub c: u64,
}

/// The recording interface every instrumented runtime is generic over.
///
/// All methods take `&self` (the live implementations use interior
/// mutability) so a shared `&ObsSession` handle can be held by several
/// runtimes at once.  The [`NoopRecorder`] default has
/// [`Recorder::IS_ENABLED`]` == false` and empty bodies; instrumentation
/// sites guard on the const so the disabled path compiles away entirely.
pub trait Recorder {
    /// Statically-known enablement: `false` compiles instrumentation out.
    const IS_ENABLED: bool;

    /// Records a span begin at the current clock reading.
    fn begin(&self, label: &'static str, a: u64);
    /// Records a span end at the current clock reading.
    fn end(&self, label: &'static str, a: u64);
    /// Records an instantaneous event.
    fn instant(&self, scope: Scope, label: &'static str, a: u64, b: u64, c: u64);
    /// Adds `delta` to the named counter.
    fn counter(&self, name: &'static str, delta: u64);
    /// Sets the named gauge to `value` (a point-in-time level: queue depth,
    /// ledger size, live cache entries).  Live implementations also emit a
    /// [`Phase::Counter`] trace event so the level is plottable over time.
    fn gauge(&self, name: &'static str, value: u64);
    /// Records one observation into the named histogram.
    fn value(&self, name: &'static str, value: u64);
    /// Merges a drained per-thread buffer into the session stream.
    fn absorb_events(&self, events: Vec<TraceEvent>);
    /// A per-thread buffer sharing this recorder's wall epoch, or `None`
    /// when recording is disabled.  Created on the coordinating thread and
    /// moved into workers; the drained events come back through
    /// [`Recorder::absorb_events`].
    fn thread_buffer(&self, tid: u32) -> Option<ThreadBuffer>;
}

/// The statically-dispatched disabled recorder: every instrumented runtime
/// defaults to it, and every method body is empty.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    const IS_ENABLED: bool = false;

    #[inline(always)]
    fn begin(&self, _label: &'static str, _a: u64) {}
    #[inline(always)]
    fn end(&self, _label: &'static str, _a: u64) {}
    #[inline(always)]
    fn instant(&self, _scope: Scope, _label: &'static str, _a: u64, _b: u64, _c: u64) {}
    #[inline(always)]
    fn counter(&self, _name: &'static str, _delta: u64) {}
    #[inline(always)]
    fn gauge(&self, _name: &'static str, _value: u64) {}
    #[inline(always)]
    fn value(&self, _name: &'static str, _value: u64) {}
    #[inline(always)]
    fn absorb_events(&self, _events: Vec<TraceEvent>) {}
    #[inline(always)]
    fn thread_buffer(&self, _tid: u32) -> Option<ThreadBuffer> {
        None
    }
}

/// Shared references record through the referent, so runtimes can hold
/// `&ObsSession` while the caller keeps the session.
impl<R: Recorder> Recorder for &R {
    const IS_ENABLED: bool = R::IS_ENABLED;

    #[inline]
    fn begin(&self, label: &'static str, a: u64) {
        (**self).begin(label, a)
    }
    #[inline]
    fn end(&self, label: &'static str, a: u64) {
        (**self).end(label, a)
    }
    #[inline]
    fn instant(&self, scope: Scope, label: &'static str, a: u64, b: u64, c: u64) {
        (**self).instant(scope, label, a, b, c)
    }
    #[inline]
    fn counter(&self, name: &'static str, delta: u64) {
        (**self).counter(name, delta)
    }
    #[inline]
    fn gauge(&self, name: &'static str, value: u64) {
        (**self).gauge(name, value)
    }
    #[inline]
    fn value(&self, name: &'static str, value: u64) {
        (**self).value(name, value)
    }
    #[inline]
    fn absorb_events(&self, events: Vec<TraceEvent>) {
        (**self).absorb_events(events)
    }
    #[inline]
    fn thread_buffer(&self, tid: u32) -> Option<ThreadBuffer> {
        (**self).thread_buffer(tid)
    }
}

/// `Option<Rc<ObsSession>>`-style dynamic recorders: `Some` records, `None`
/// is a cheap branch.  Used where a generic parameter cannot reach (the
/// simulation components share one `Rc` session); the hot solver paths use
/// the statically-dispatched generic instead.
impl<R: Recorder> Recorder for Option<R> {
    const IS_ENABLED: bool = true;

    #[inline]
    fn begin(&self, label: &'static str, a: u64) {
        if let Some(r) = self {
            r.begin(label, a)
        }
    }
    #[inline]
    fn end(&self, label: &'static str, a: u64) {
        if let Some(r) = self {
            r.end(label, a)
        }
    }
    #[inline]
    fn instant(&self, scope: Scope, label: &'static str, a: u64, b: u64, c: u64) {
        if let Some(r) = self {
            r.instant(scope, label, a, b, c)
        }
    }
    #[inline]
    fn counter(&self, name: &'static str, delta: u64) {
        if let Some(r) = self {
            r.counter(name, delta)
        }
    }
    #[inline]
    fn gauge(&self, name: &'static str, value: u64) {
        if let Some(r) = self {
            r.gauge(name, value)
        }
    }
    #[inline]
    fn value(&self, name: &'static str, value: u64) {
        if let Some(r) = self {
            r.value(name, value)
        }
    }
    #[inline]
    fn absorb_events(&self, events: Vec<TraceEvent>) {
        if let Some(r) = self {
            r.absorb_events(events)
        }
    }
    #[inline]
    fn thread_buffer(&self, tid: u32) -> Option<ThreadBuffer> {
        self.as_ref().and_then(|r| r.thread_buffer(tid))
    }
}

/// RAII span: begins on creation, ends on drop.  Convenient where no `&mut
/// self` borrows overlap the span; the engines' commit loops use explicit
/// `begin`/`end` pairs instead.
pub struct SpanGuard<'r, R: Recorder> {
    obs: &'r R,
    label: &'static str,
    a: u64,
}

impl<'r, R: Recorder> SpanGuard<'r, R> {
    /// Opens the span.
    pub fn enter(obs: &'r R, label: &'static str, a: u64) -> Self {
        if R::IS_ENABLED {
            obs.begin(label, a);
        }
        Self { obs, label, a }
    }
}

impl<R: Recorder> Drop for SpanGuard<'_, R> {
    fn drop(&mut self) {
        if R::IS_ENABLED {
            self.obs.end(self.label, self.a);
        }
    }
}

/// The one wall-clock timing primitive of the repository: a monotonic
/// stopwatch.  Every hand-rolled `Instant::now()` pair (the bench drivers'
/// `timed`, the single-task solvers' phase timings, the gain ledger's
/// `refresh_nanos`) routes through it, so there is exactly one timing path.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Starts the stopwatch.
    pub fn start() -> Self {
        Self {
            start: Instant::now(),
        }
    }

    /// Elapsed nanoseconds (saturating at `u64::MAX`).
    pub fn elapsed_nanos(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Elapsed milliseconds as a float.
    pub fn elapsed_ms(&self) -> f64 {
        self.start.elapsed().as_secs_f64() * 1000.0
    }

    /// Elapsed seconds as a float.
    pub fn elapsed_secs(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// The underlying epoch instant (shared with [`ThreadBuffer`]s).
    pub fn epoch(&self) -> Instant {
        self.start
    }
}

/// Times a closure on the wall clock, returning `(result, elapsed ms)`.
pub fn time_closure<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let sw = Stopwatch::start();
    let result = f();
    (result, sw.elapsed_ms())
}

#[cfg(test)]
mod tests {
    use super::*;

    // The IS_ENABLED consts are checked at compile time — a non-constant
    // assert would trip clippy::assertions_on_constants.
    const _: () = assert!(!NoopRecorder::IS_ENABLED);
    const _: () = assert!(!<&NoopRecorder as Recorder>::IS_ENABLED);

    #[test]
    fn noop_is_statically_disabled() {
        let noop = NoopRecorder;
        noop.begin("x", 0);
        noop.end("x", 0);
        noop.counter("c", 1);
        assert!(noop.thread_buffer(1).is_none());
    }

    #[test]
    fn scope_and_phase_round_trip() {
        for scope in [Scope::Logical, Scope::Policy, Scope::Transport, Scope::Perf] {
            assert_eq!(Scope::from_name(scope.name()), Some(scope));
        }
        for phase in [Phase::Begin, Phase::End, Phase::Instant, Phase::Counter] {
            assert_eq!(Phase::from_letter(phase.letter()), Some(phase));
        }
        assert_eq!(Scope::from_name("bogus"), None);
        assert_eq!(Phase::from_letter("X"), None);
    }

    #[test]
    fn stopwatch_measures_and_time_closure_returns_result() {
        let sw = Stopwatch::start();
        let (value, ms) = time_closure(|| 41 + 1);
        assert_eq!(value, 42);
        assert!(ms >= 0.0);
        assert!(sw.elapsed_nanos() > 0 || sw.elapsed_ms() >= 0.0);
    }

    #[test]
    fn span_guard_brackets_events() {
        let session = ObsSession::wall();
        {
            let _span = SpanGuard::enter(&session, "work", 7);
        }
        let events = session.merged_events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].phase, Phase::Begin);
        assert_eq!(events[1].phase, Phase::End);
        assert_eq!(events[0].label, "work");
        assert_eq!(events[0].a, 7);
    }
}
