//! Sliding-window SLO metrics: windowed latency percentiles and rates.
//!
//! Whole-run aggregates answer "how did the run go"; a service gets asked
//! "what is p99 assignment latency *right now*".  A [`SlidingWindow`] keeps a
//! ring of the registry's power-of-two [`Histogram`]s, one per **slice** of
//! the window, and rotates the ring as the clock advances: recording is one
//! histogram increment, windowed queries merge the live slices, and samples
//! older than `slices × slice_nanos` fall out exactly one slice at a time.
//!
//! The window is clock-agnostic — every operation takes an explicit `now` in
//! nanoseconds, so the same code serves the wall clock (the service drivers)
//! and the virtual clock (the discrete-event simulation, which advances the
//! window through [`crate::ObsSession::set_virtual_nanos`]).  Eviction is
//! deterministic: advancing `now` by exactly one slice drops precisely the
//! oldest slice's samples, a property locked by
//! `tests/window_eviction.rs`.

use crate::metrics::Histogram;

/// A sliding window over `u64` observations: a ring of per-slice
/// [`Histogram`]s rotated by the clock.
///
/// Slice `k` (absolute index `now / slice_nanos`) lives in ring position
/// `k % slices`; advancing the clock clears every ring position whose slice
/// has fallen out of the window.  Windowed statistics
/// ([`SlidingWindow::windowed`]) merge the live slices; lifetime counters
/// ([`SlidingWindow::lifetime_count`]) are never evicted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlidingWindow {
    slice_nanos: u64,
    ring: Vec<Histogram>,
    /// Absolute index of the newest slice the window has seen.
    current_slice: u64,
    /// Whether any observation or advancement happened yet (slice 0 is only
    /// live once touched).
    touched: bool,
    lifetime_count: u64,
    lifetime_sum: u64,
}

impl SlidingWindow {
    /// A window of `slices` slices of `slice_nanos` each.
    ///
    /// # Panics
    /// Panics when `slice_nanos` is zero or `slices` is zero.
    pub fn new(slice_nanos: u64, slices: usize) -> Self {
        assert!(slice_nanos > 0, "a window slice must have positive width");
        assert!(slices > 0, "a window needs at least one slice");
        Self {
            slice_nanos,
            ring: vec![Histogram::default(); slices],
            current_slice: 0,
            touched: false,
            lifetime_count: 0,
            lifetime_sum: 0,
        }
    }

    /// The configured slice width in nanoseconds.
    pub fn slice_nanos(&self) -> u64 {
        self.slice_nanos
    }

    /// The configured number of slices.
    pub fn slices(&self) -> usize {
        self.ring.len()
    }

    /// The full window span (`slices × slice_nanos`) in nanoseconds.
    pub fn span_nanos(&self) -> u64 {
        self.slice_nanos * self.ring.len() as u64
    }

    /// Rotates the ring so that `now` falls in the current slice, clearing
    /// every slice that left the window.  Clocks are monotone; a `now`
    /// before the current slice records into the current slice instead of
    /// time-travelling.
    pub fn advance(&mut self, now: u64) {
        let target = now / self.slice_nanos;
        if !self.touched {
            self.touched = true;
            self.current_slice = target;
            return;
        }
        if target <= self.current_slice {
            return;
        }
        let steps = target - self.current_slice;
        let slices = self.ring.len() as u64;
        if steps >= slices {
            // The whole window fell out of scope.
            for h in &mut self.ring {
                *h = Histogram::default();
            }
        } else {
            for s in self.current_slice + 1..=target {
                self.ring[(s % slices) as usize] = Histogram::default();
            }
        }
        self.current_slice = target;
    }

    /// Records one observation at `now` (advancing the window first).
    pub fn record(&mut self, now: u64, value: u64) {
        self.advance(now);
        let slices = self.ring.len() as u64;
        self.ring[(self.current_slice % slices) as usize].record(value);
        self.lifetime_count += 1;
        self.lifetime_sum = self.lifetime_sum.saturating_add(value);
    }

    /// The merged histogram over every live slice — the windowed view.
    pub fn windowed(&self) -> Histogram {
        let mut merged = Histogram::default();
        for h in &self.ring {
            merged.merge(h);
        }
        merged
    }

    /// Number of observations currently inside the window.
    pub fn windowed_count(&self) -> u64 {
        self.ring.iter().map(Histogram::count).sum()
    }

    /// Sum of the observations currently inside the window (saturating).
    pub fn windowed_sum(&self) -> u64 {
        self.ring
            .iter()
            .fold(0u64, |acc, h| acc.saturating_add(h.sum()))
    }

    /// Windowed observation rate in events per second: the windowed count
    /// over the covered span.  Until the clock has crossed a full window,
    /// the covered span is the slices elapsed so far (so a fresh window does
    /// not under-report); afterwards it is the full window span.
    pub fn rate_per_sec(&self) -> f64 {
        let slices_elapsed = (self.current_slice + 1).min(self.ring.len() as u64);
        let span = self.slice_nanos * slices_elapsed;
        if span == 0 {
            return 0.0;
        }
        self.windowed_count() as f64 * 1e9 / span as f64
    }

    /// Observations recorded over the window's whole lifetime (never
    /// evicted).
    pub fn lifetime_count(&self) -> u64 {
        self.lifetime_count
    }

    /// Sum of every observation ever recorded (saturating).
    pub fn lifetime_sum(&self) -> u64 {
        self.lifetime_sum
    }

    /// Per-slice observation counts in ring order, oldest slice first — the
    /// observable surface of the eviction property tests.
    pub fn slice_counts(&self) -> Vec<u64> {
        let slices = self.ring.len() as u64;
        let newest = self.current_slice % slices;
        (1..=slices)
            .map(|back| {
                let pos = (newest + back) % slices;
                self.ring[pos as usize].count()
            })
            .collect()
    }

    /// Merges another window into this one (slice-by-ring-position; both
    /// windows must share the same spec).
    ///
    /// # Panics
    /// Panics when the windows' slice width or count differ.
    pub fn merge(&mut self, other: &SlidingWindow) {
        assert!(
            self.slice_nanos == other.slice_nanos && self.ring.len() == other.ring.len(),
            "merging sliding windows requires identical specs"
        );
        self.current_slice = self.current_slice.max(other.current_slice);
        self.touched |= other.touched;
        for (a, b) in self.ring.iter_mut().zip(other.ring.iter()) {
            a.merge(b);
        }
        self.lifetime_count += other.lifetime_count;
        self.lifetime_sum = self.lifetime_sum.saturating_add(other.lifetime_sum);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_land_in_the_current_slice() {
        let mut w = SlidingWindow::new(1_000, 4);
        w.record(100, 7);
        w.record(900, 9);
        assert_eq!(w.windowed_count(), 2);
        assert_eq!(w.windowed_sum(), 16);
        assert_eq!(w.lifetime_count(), 2);
        assert_eq!(w.slice_counts(), vec![0, 0, 0, 2]);
    }

    #[test]
    fn one_slice_advance_drops_exactly_the_oldest_slice() {
        let mut w = SlidingWindow::new(1_000, 3);
        w.record(500, 1); // slice 0
        w.record(1_500, 2); // slice 1
        w.record(2_500, 3); // slice 2
        assert_eq!(w.windowed_count(), 3);
        // Entering slice 3 evicts slice 0 and nothing else.
        w.advance(3_000);
        assert_eq!(w.windowed_count(), 2);
        assert_eq!(w.windowed_sum(), 5);
        assert_eq!(w.lifetime_count(), 3, "lifetime counters never evict");
    }

    #[test]
    fn a_large_jump_clears_the_whole_window() {
        let mut w = SlidingWindow::new(1_000, 3);
        for t in 0..3 {
            w.record(t * 1_000, t);
        }
        w.advance(1_000_000);
        assert_eq!(w.windowed_count(), 0);
        assert_eq!(w.rate_per_sec(), 0.0);
        assert_eq!(w.lifetime_count(), 3);
    }

    #[test]
    fn windowed_percentiles_track_recent_samples_only() {
        let mut w = SlidingWindow::new(1_000, 2);
        // Old slice: large values.
        for _ in 0..100 {
            w.record(0, 1_000_000);
        }
        // Two slices later the spike is gone.
        for _ in 0..100 {
            w.record(2_500, 10);
        }
        let h = w.windowed();
        assert!(
            h.p99() <= 15,
            "p99={} should reflect the calm slice",
            h.p99()
        );
        assert_eq!(h.count(), 100);
    }

    #[test]
    fn rate_uses_elapsed_slices_until_the_window_fills() {
        let mut w = SlidingWindow::new(1_000_000_000, 4); // 1s slices
        w.record(0, 1);
        w.record(1, 1);
        // Two samples in the first second of a still-filling window.
        assert!((w.rate_per_sec() - 2.0).abs() < 1e-9);
        // Slice 3 is the last position at which slice 0 is still live: the
        // same two samples now spread over the full 4s span.
        w.advance(3_999_999_999);
        assert_eq!(w.windowed_count(), 2);
        assert!((w.rate_per_sec() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn merge_requires_matching_specs_and_adds_counts() {
        let mut a = SlidingWindow::new(1_000, 2);
        let mut b = SlidingWindow::new(1_000, 2);
        a.record(100, 5);
        b.record(1_100, 7);
        a.merge(&b);
        assert_eq!(a.windowed_count(), 2);
        assert_eq!(a.lifetime_count(), 2);
    }

    #[test]
    #[should_panic(expected = "identical specs")]
    fn merge_rejects_mismatched_specs() {
        let mut a = SlidingWindow::new(1_000, 2);
        let b = SlidingWindow::new(2_000, 2);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "positive width")]
    fn zero_slice_width_is_rejected() {
        let _ = SlidingWindow::new(0, 2);
    }
}
