//! Counters and fixed-bucket histograms.
//!
//! The registry is deliberately tiny: names are `&'static str`, storage is a
//! sorted association list (the workspace records a few dozen distinct
//! names), and histograms use 64 fixed power-of-two buckets so recording is
//! one index computation and one increment — no allocation after the first
//! observation of a name.

/// A fixed-bucket histogram over `u64` observations.
///
/// Bucket `i` holds values whose bit length is `i` (i.e. value 0 → bucket 0,
/// value `v > 0` → bucket `64 - v.leading_zeros()`), so percentile queries
/// resolve to a power-of-two band; `min`/`max`/`sum` are tracked exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    fn bucket_of(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest observation.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The upper bound of the bucket containing the `q`-quantile
    /// (`0.0 ..= 1.0`), clamped to the exact observed `max`.  Exact values
    /// are not retained, so this is a power-of-two-resolution estimate —
    /// plenty for p50/p99 latency reporting.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let upper = if i == 0 {
                    0
                } else {
                    (1u64 << i).saturating_sub(1)
                };
                return upper.min(self.max).max(self.min());
            }
        }
        self.max
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Named counters plus named histograms, in deterministic (sorted-name)
/// order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsRegistry {
    counters: Vec<(&'static str, u64)>,
    histograms: Vec<(&'static str, Histogram)>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the named counter (creating it at 0).
    pub fn counter(&mut self, name: &'static str, delta: u64) {
        match self.counters.binary_search_by_key(&name, |(n, _)| n) {
            Ok(i) => self.counters[i].1 += delta,
            Err(i) => self.counters.insert(i, (name, delta)),
        }
    }

    /// Records one observation into the named histogram (creating it empty).
    pub fn value(&mut self, name: &'static str, value: u64) {
        match self.histograms.binary_search_by_key(&name, |(n, _)| n) {
            Ok(i) => self.histograms[i].1.record(value),
            Err(i) => {
                let mut h = Histogram::default();
                h.record(value);
                self.histograms.insert(i, (name, h));
            }
        }
    }

    /// The named counter's value (0 when never touched).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// The named histogram, if any observation was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, h)| h)
    }

    /// All counters in sorted-name order.
    pub fn counters(&self) -> &[(&'static str, u64)] {
        &self.counters
    }

    /// All histograms in sorted-name order.
    pub fn histograms(&self) -> &[(&'static str, Histogram)] {
        &self.histograms
    }

    /// Merges another registry into this one.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, delta) in &other.counters {
            self.counter(name, *delta);
        }
        for (name, hist) in &other.histograms {
            match self.histograms.binary_search_by_key(name, |(n, _)| n) {
                Ok(i) => self.histograms[i].1.merge(hist),
                Err(i) => self.histograms.insert(i, (name, hist.clone())),
            }
        }
    }

    /// The plain-text summary table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            out.push_str(&format!("  counter {name:<34} {value}\n"));
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!(
                "  hist    {name:<34} n={} mean={:.0} p50<={} p99<={} max={}\n",
                h.count(),
                h.mean(),
                h.p50(),
                h.p99(),
                h.max()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_percentiles_bracket_the_data() {
        let mut h = Histogram::default();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1000);
        // p50 of 1..=1000 is 500; the bucket upper bound 511 brackets it.
        assert!(h.p50() >= 500 && h.p50() <= 1023, "p50={}", h.p50());
        assert!(h.p99() >= 990, "p99={}", h.p99());
        assert!((h.mean() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn histogram_zero_and_empty() {
        let mut h = Histogram::default();
        assert_eq!(h.p50(), 0);
        assert_eq!(h.min(), 0);
        h.record(0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.p99(), 0);
    }

    #[test]
    fn registry_counters_and_merge() {
        let mut a = MetricsRegistry::new();
        a.counter("z", 1);
        a.counter("a", 2);
        a.counter("z", 1);
        a.value("lat", 10);
        let mut b = MetricsRegistry::new();
        b.counter("z", 5);
        b.value("lat", 20);
        b.value("other", 1);
        a.merge(&b);
        assert_eq!(a.counter_value("z"), 7);
        assert_eq!(a.counter_value("a"), 2);
        assert_eq!(a.counter_value("missing"), 0);
        assert_eq!(a.histogram("lat").unwrap().count(), 2);
        assert_eq!(a.histogram("other").unwrap().count(), 1);
        // Sorted-name order is deterministic.
        let names: Vec<_> = a.counters().iter().map(|(n, _)| *n).collect();
        assert_eq!(names, vec!["a", "z"]);
        assert!(a.render().contains("counter a"));
        assert!(a.render().contains("hist    lat"));
    }
}
