//! Counters, gauges, fixed-bucket histograms and sliding SLO windows.
//!
//! The registry is deliberately tiny: names are `&'static str`, storage is a
//! sorted association list (the workspace records a few dozen distinct
//! names), and histograms use 64 fixed power-of-two buckets so recording is
//! one index computation and one increment — no allocation after the first
//! observation of a name.
//!
//! # Quantile error bound
//!
//! Histograms retain bucket counts, not samples, so quantiles resolve to the
//! power-of-two bucket containing the rank: [`Histogram::quantile`] returns
//! the bucket's upper bound, clamped to the exact observed `min`/`max`.  The
//! true `q`-quantile `x` lives in the same bucket `(2^(i-1), 2^i]`, so the
//! reported value overestimates by **strictly less than 2×** (and never
//! underestimates): `x <= reported < 2x` for `x > 1`, exact for `x <= 1` and
//! whenever the rank falls in the min or max bucket ends clamped.  That is
//! plenty for p50/p99 SLO reporting, where the question is "which latency
//! band", not "which nanosecond" — the bound is locked by the exact-vs-
//! bucketed property test in `tests/quantile_error.rs`.

use crate::slo::SlidingWindow;

/// A fixed-bucket histogram over `u64` observations.
///
/// Bucket `i` holds values whose bit length is `i` (i.e. value 0 → bucket 0,
/// value `v > 0` → bucket `64 - v.leading_zeros()`), so percentile queries
/// resolve to a power-of-two band; `min`/`max`/`sum` are tracked exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    fn bucket_of(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest observation.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean observation (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The upper bound of the bucket containing the `q`-quantile
    /// (`0.0 ..= 1.0`), clamped to the exact observed `min`/`max`.  Exact
    /// values are not retained, so this is a power-of-two-resolution
    /// estimate: the true quantile `x` satisfies `x <= quantile(q) < 2 * x`
    /// (never an underestimate, less than 2× over — see the module docs for
    /// the derivation and `tests/quantile_error.rs` for the property lock).
    /// Plenty for p50/p99 latency reporting.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // Bucket i > 0 holds bit-length-i values, upper bound
                // 2^i - 1; bucket 64 (values >= 2^63) tops out at u64::MAX,
                // which `1 << 64` would overflow.
                let upper = if i == 0 { 0 } else { u64::MAX >> (64 - i) };
                return upper.min(self.max).max(self.min());
            }
        }
        self.max
    }

    /// Median estimate.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// One gauge: the latest set value plus the observed peak (the peak is what
/// bounded-memory gates read — "what did the retired ledger grow to").
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Gauge {
    /// Most recently set value.
    pub last: u64,
    /// Largest value ever set.
    pub max: u64,
    /// Number of samples set.
    pub samples: u64,
}

/// Named counters, gauges, histograms and sliding SLO windows, each in
/// deterministic (sorted-name) order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsRegistry {
    counters: Vec<(&'static str, u64)>,
    gauges: Vec<(&'static str, Gauge)>,
    histograms: Vec<(&'static str, Histogram)>,
    windows: Vec<(&'static str, SlidingWindow)>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the named counter (creating it at 0).
    pub fn counter(&mut self, name: &'static str, delta: u64) {
        match self.counters.binary_search_by_key(&name, |(n, _)| n) {
            Ok(i) => self.counters[i].1 += delta,
            Err(i) => self.counters.insert(i, (name, delta)),
        }
    }

    /// Records one observation into the named histogram (creating it empty).
    pub fn value(&mut self, name: &'static str, value: u64) {
        match self.histograms.binary_search_by_key(&name, |(n, _)| n) {
            Ok(i) => self.histograms[i].1.record(value),
            Err(i) => {
                let mut h = Histogram::default();
                h.record(value);
                self.histograms.insert(i, (name, h));
            }
        }
    }

    /// Sets the named gauge to `value` (tracking the peak alongside).
    pub fn gauge_set(&mut self, name: &'static str, value: u64) {
        match self.gauges.binary_search_by_key(&name, |(n, _)| n) {
            Ok(i) => {
                let g = &mut self.gauges[i].1;
                g.last = value;
                g.max = g.max.max(value);
                g.samples += 1;
            }
            Err(i) => self.gauges.insert(
                i,
                (
                    name,
                    Gauge {
                        last: value,
                        max: value,
                        samples: 1,
                    },
                ),
            ),
        }
    }

    /// The named gauge, if it was ever set.
    pub fn gauge(&self, name: &str) -> Option<&Gauge> {
        self.gauges.iter().find(|(n, _)| *n == name).map(|(_, g)| g)
    }

    /// The named gauge's latest value (0 when never set).
    pub fn gauge_value(&self, name: &str) -> u64 {
        self.gauge(name).map_or(0, |g| g.last)
    }

    /// The named gauge's peak value (0 when never set).
    pub fn gauge_peak(&self, name: &str) -> u64 {
        self.gauge(name).map_or(0, |g| g.max)
    }

    /// All gauges in sorted-name order.
    pub fn gauges(&self) -> &[(&'static str, Gauge)] {
        &self.gauges
    }

    /// Installs a sliding SLO window under `name`: `slices` ring slices of
    /// `slice_nanos` each.  Re-installing an existing name resets it to the
    /// new (empty) spec.  Once installed, [`MetricsRegistry::window_record`]
    /// feeds it — and [`Recorder::value`](crate::Recorder::value) on an
    /// [`ObsSession`](crate::ObsSession) routes same-named
    /// histogram observations into it automatically.
    pub fn install_window(&mut self, name: &'static str, slice_nanos: u64, slices: usize) {
        let window = SlidingWindow::new(slice_nanos, slices);
        match self.windows.binary_search_by_key(&name, |(n, _)| n) {
            Ok(i) => self.windows[i].1 = window,
            Err(i) => self.windows.insert(i, (name, window)),
        }
    }

    /// Records one observation at `now` into the named window.  Returns
    /// `false` (and records nothing) when no window of that name is
    /// installed, so callers can share one code path with plain histograms.
    pub fn window_record(&mut self, name: &str, now: u64, value: u64) -> bool {
        match self.windows.binary_search_by_key(&name, |(n, _)| n) {
            Ok(i) => {
                self.windows[i].1.record(now, value);
                true
            }
            Err(_) => false,
        }
    }

    /// Rotates every installed window to `now` (evicting expired slices).
    /// The virtual clock calls this from
    /// [`crate::ObsSession::set_virtual_nanos`] so simulated time advances
    /// windows even between observations.
    pub fn advance_windows(&mut self, now: u64) {
        for (_, w) in &mut self.windows {
            w.advance(now);
        }
    }

    /// The named sliding window, if installed.
    pub fn window(&self, name: &str) -> Option<&SlidingWindow> {
        self.windows
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, w)| w)
    }

    /// All sliding windows in sorted-name order.
    pub fn windows(&self) -> &[(&'static str, SlidingWindow)] {
        &self.windows
    }

    /// The named counter's value (0 when never touched).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// The named histogram, if any observation was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, h)| h)
    }

    /// All counters in sorted-name order.
    pub fn counters(&self) -> &[(&'static str, u64)] {
        &self.counters
    }

    /// All histograms in sorted-name order.
    pub fn histograms(&self) -> &[(&'static str, Histogram)] {
        &self.histograms
    }

    /// Merges another registry into this one.  Counters add, histograms
    /// merge bucket-wise, gauges keep the larger peak (and the other's last
    /// value, it being the newer write), and windows merge slice-wise when
    /// their specs match — a mismatched spec keeps this registry's window
    /// (merging rings of different granularity has no meaningful result).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (name, delta) in &other.counters {
            self.counter(name, *delta);
        }
        for (name, hist) in &other.histograms {
            match self.histograms.binary_search_by_key(name, |(n, _)| n) {
                Ok(i) => self.histograms[i].1.merge(hist),
                Err(i) => self.histograms.insert(i, (name, hist.clone())),
            }
        }
        for (name, gauge) in &other.gauges {
            match self.gauges.binary_search_by_key(name, |(n, _)| n) {
                Ok(i) => {
                    let g = &mut self.gauges[i].1;
                    g.last = gauge.last;
                    g.max = g.max.max(gauge.max);
                    g.samples += gauge.samples;
                }
                Err(i) => self.gauges.insert(i, (name, *gauge)),
            }
        }
        for (name, window) in &other.windows {
            match self.windows.binary_search_by_key(name, |(n, _)| n) {
                Ok(i) => {
                    let w = &mut self.windows[i].1;
                    if w.slice_nanos() == window.slice_nanos() && w.slices() == window.slices() {
                        w.merge(window);
                    }
                }
                Err(i) => self.windows.insert(i, (name, window.clone())),
            }
        }
    }

    /// The plain-text summary table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.counters {
            out.push_str(&format!("  counter {name:<34} {value}\n"));
        }
        for (name, g) in &self.gauges {
            out.push_str(&format!(
                "  gauge   {name:<34} last={} peak={}\n",
                g.last, g.max
            ));
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!(
                "  hist    {name:<34} n={} mean={:.0} p50<={} p99<={} max={}\n",
                h.count(),
                h.mean(),
                h.p50(),
                h.p99(),
                h.max()
            ));
        }
        for (name, w) in &self.windows {
            let h = w.windowed();
            out.push_str(&format!(
                "  window  {name:<34} n={} p50<={} p99<={} max={} rate={:.1}/s\n",
                h.count(),
                h.p50(),
                h.p99(),
                h.max(),
                w.rate_per_sec()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_percentiles_bracket_the_data() {
        let mut h = Histogram::default();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 1000);
        // p50 of 1..=1000 is 500; the bucket upper bound 511 brackets it.
        assert!(h.p50() >= 500 && h.p50() <= 1023, "p50={}", h.p50());
        assert!(h.p99() >= 990, "p99={}", h.p99());
        assert!((h.mean() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn histogram_zero_and_empty() {
        let mut h = Histogram::default();
        assert_eq!(h.p50(), 0);
        assert_eq!(h.min(), 0);
        h.record(0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.p99(), 0);
    }

    #[test]
    fn registry_counters_and_merge() {
        let mut a = MetricsRegistry::new();
        a.counter("z", 1);
        a.counter("a", 2);
        a.counter("z", 1);
        a.value("lat", 10);
        let mut b = MetricsRegistry::new();
        b.counter("z", 5);
        b.value("lat", 20);
        b.value("other", 1);
        a.merge(&b);
        assert_eq!(a.counter_value("z"), 7);
        assert_eq!(a.counter_value("a"), 2);
        assert_eq!(a.counter_value("missing"), 0);
        assert_eq!(a.histogram("lat").unwrap().count(), 2);
        assert_eq!(a.histogram("other").unwrap().count(), 1);
        // Sorted-name order is deterministic.
        let names: Vec<_> = a.counters().iter().map(|(n, _)| *n).collect();
        assert_eq!(names, vec!["a", "z"]);
        assert!(a.render().contains("counter a"));
        assert!(a.render().contains("hist    lat"));
    }

    #[test]
    fn registry_gauges_track_last_and_peak_across_merge() {
        let mut a = MetricsRegistry::new();
        a.gauge_set("depth", 5);
        a.gauge_set("depth", 2);
        assert_eq!(a.gauge_value("depth"), 2);
        assert_eq!(a.gauge_peak("depth"), 5);
        assert_eq!(a.gauge_value("missing"), 0);
        let mut b = MetricsRegistry::new();
        b.gauge_set("depth", 9);
        b.gauge_set("other", 1);
        a.merge(&b);
        let g = a.gauge("depth").unwrap();
        assert_eq!(g.last, 9, "merge takes the newer write");
        assert_eq!(g.max, 9);
        assert_eq!(g.samples, 3);
        assert_eq!(a.gauge_peak("other"), 1);
        assert!(a.render().contains("gauge   depth"));
    }

    #[test]
    fn registry_windows_install_record_and_merge() {
        let mut a = MetricsRegistry::new();
        assert!(!a.window_record("lat", 0, 1), "uninstalled window rejects");
        a.install_window("lat", 1_000, 4);
        assert!(a.window_record("lat", 100, 7));
        assert_eq!(a.window("lat").unwrap().windowed_count(), 1);
        // Re-install resets.
        a.install_window("lat", 1_000, 4);
        assert_eq!(a.window("lat").unwrap().windowed_count(), 0);
        a.window_record("lat", 100, 7);
        let mut b = MetricsRegistry::new();
        b.install_window("lat", 1_000, 4);
        b.window_record("lat", 200, 9);
        b.install_window("fresh", 500, 2);
        b.window_record("fresh", 10, 3);
        a.merge(&b);
        assert_eq!(a.window("lat").unwrap().windowed_count(), 2);
        assert_eq!(a.window("fresh").unwrap().windowed_count(), 1);
        assert!(a.render().contains("window  lat"));
        // advance_windows rotates every installed window.
        a.advance_windows(10_000_000);
        assert_eq!(a.window("lat").unwrap().windowed_count(), 0);
        assert_eq!(a.window("fresh").unwrap().windowed_count(), 0);
    }

    #[test]
    fn mismatched_window_specs_survive_merge_unchanged() {
        let mut a = MetricsRegistry::new();
        a.install_window("lat", 1_000, 4);
        a.window_record("lat", 100, 7);
        let mut b = MetricsRegistry::new();
        b.install_window("lat", 2_000, 4);
        b.window_record("lat", 100, 9);
        a.merge(&b);
        let w = a.window("lat").unwrap();
        assert_eq!(w.slice_nanos(), 1_000);
        assert_eq!(w.windowed_count(), 1);
    }
}
