//! Exporters: chrome://tracing JSONL, trace replay, and the stable digest.

use crate::{Phase, Scope, TraceEvent};

/// FNV-1a offset basis / prime (the same stable hash family the sim's
/// `plan_hash` uses — no dependency on `std::hash`'s unstable default).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_bytes(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

fn fold_event(hash: u64, label: &str, phase: Phase, a: u64, b: u64, c: u64) -> u64 {
    let mut h = fnv_bytes(hash, label.as_bytes());
    h = fnv_bytes(h, &[0xff, phase.letter().as_bytes()[0]]);
    h = fnv_bytes(h, &a.to_le_bytes());
    h = fnv_bytes(h, &b.to_le_bytes());
    fnv_bytes(h, &c.to_le_bytes())
}

/// The stable 64-bit digest over the **logical projection** of an event
/// stream: FNV-1a folded over `(label, phase, a, b, c)` of every
/// [`Scope::Logical`] event, in stream order.
///
/// Timestamps and sequence numbers are deliberately excluded — they encode
/// the node layout and latency model — and non-logical scopes are the
/// "modulo policy-tagged events" of the equivalence lock: transport events
/// differ per layout, policy events per grant policy, but the logical
/// stream (committed executions, conflict totals) is bit-identical for the
/// same seeded workload, so same seed ⇒ same digest across node counts,
/// latency models and grant policies.
pub fn obs_digest(events: &[TraceEvent]) -> u64 {
    obs_digest_parts(
        events
            .iter()
            .filter(|e| e.scope == Scope::Logical)
            .map(|e| (e.label, e.phase, e.a, e.b, e.c)),
    )
}

/// [`obs_digest`] over pre-projected parts — the entry point trace *replay*
/// uses, where labels are owned strings parsed back out of a JSONL dump.
pub fn obs_digest_parts<'a>(
    parts: impl IntoIterator<Item = (&'a str, Phase, u64, u64, u64)>,
) -> u64 {
    let mut hash = FNV_OFFSET;
    for (label, phase, a, b, c) in parts {
        hash = fold_event(hash, label, phase, a, b, c);
    }
    hash
}

fn escape(label: &str) -> String {
    label.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Serialises an event stream as chrome://tracing "JSON Array Format" lines:
/// one event object per line, wrapped in `[` ... `]` so the file loads
/// directly in `chrome://tracing` / Perfetto.  `ts` is microseconds (the
/// tool's native unit); sub-microsecond precision is kept as a fraction.
///
/// [`Phase::Counter`] samples (gauges, rates) use the tool's counter-event
/// convention: the sampled value is the sole `args` series (`"value"`), so
/// chrome://tracing plots the event name as a counter track.  The value is
/// written as an exact integer — the same no-`f64`-round-trip discipline the
/// payload words follow.
pub fn chrome_trace_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 2);
    out.push_str("[\n");
    for (i, e) in events.iter().enumerate() {
        let ts = e.time as f64 / 1000.0;
        let comma = if i + 1 == events.len() { "" } else { "," };
        if e.phase == Phase::Counter {
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"C\",\"ts\":{ts:.3},\"pid\":0,\
                 \"tid\":{},\"args\":{{\"seq\":{},\"value\":{}}}}}{comma}\n",
                escape(e.label),
                e.scope.name(),
                e.tid,
                e.seq,
                e.a,
            ));
        } else {
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"{}\",\"ts\":{ts:.3},\"pid\":0,\
                 \"tid\":{},\"args\":{{\"seq\":{},\"a\":{},\"b\":{},\"c\":{}}}}}{comma}\n",
                escape(e.label),
                e.scope.name(),
                e.phase.letter(),
                e.tid,
                e.seq,
                e.a,
                e.b,
                e.c,
            ));
        }
    }
    out.push_str("]\n");
    out
}

/// One event parsed back out of a [`chrome_trace_jsonl`] dump (labels are
/// owned — replay cannot reference the original `&'static str`s).
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayedEvent {
    /// Event time in nanoseconds.
    pub time: u64,
    /// Per-buffer sequence number.
    pub seq: u64,
    /// Recording thread id.
    pub tid: u32,
    /// Stream projection.
    pub scope: Scope,
    /// Span phase.
    pub phase: Phase,
    /// Event label.
    pub label: String,
    /// Payload words.
    pub a: u64,
    /// Payload words.
    pub b: u64,
    /// Payload words.
    pub c: u64,
}

fn str_field<'l>(line: &'l str, key: &str) -> Option<&'l str> {
    let pat = format!("\"{key}\":\"");
    let start = line.find(&pat)? + pat.len();
    // Scan for the closing quote, skipping backslash-escaped characters.
    let bytes = line.as_bytes();
    let mut i = start;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return Some(&line[start..i]),
            _ => i += 1,
        }
    }
    None
}

fn num_field(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|ch: char| !(ch.is_ascii_digit() || ch == '.' || ch == '-' || ch == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Exact u64 field parse — the payload words carry raw `f64::to_bits()`
/// values above 2^53, which a round trip through `f64` would corrupt.
fn int_field(line: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let end = rest
        .find(|ch: char| !ch.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Parses a [`chrome_trace_jsonl`] dump back into events.  Only the
/// format this crate emits is supported (one object per line); lines that
/// are not event objects (the array brackets) are skipped.  Used by the
/// CI `fig9obs` gate to prove the digest survives an export → replay round
/// trip.
pub fn parse_chrome_trace_jsonl(dump: &str) -> Vec<ReplayedEvent> {
    let mut events = Vec::new();
    for line in dump.lines() {
        let Some(label) = str_field(line, "name") else {
            continue;
        };
        let (Some(scope), Some(phase)) = (
            str_field(line, "cat").and_then(Scope::from_name),
            str_field(line, "ph").and_then(Phase::from_letter),
        ) else {
            continue;
        };
        let ts = num_field(line, "ts").unwrap_or(0.0);
        // Counter events carry their sample in the "value" series; all other
        // phases use the three payload words.
        let (a, b, c) = if phase == Phase::Counter {
            (int_field(line, "value").unwrap_or(0), 0, 0)
        } else {
            (
                int_field(line, "a").unwrap_or(0),
                int_field(line, "b").unwrap_or(0),
                int_field(line, "c").unwrap_or(0),
            )
        };
        events.push(ReplayedEvent {
            time: (ts * 1000.0).round() as u64,
            seq: int_field(line, "seq").unwrap_or(0),
            tid: int_field(line, "tid").unwrap_or(0) as u32,
            scope,
            phase,
            label: label.replace("\\\"", "\"").replace("\\\\", "\\"),
            a,
            b,
            c,
        });
    }
    events
}

/// [`obs_digest`] recomputed from a replayed dump.
pub fn replay_digest(events: &[ReplayedEvent]) -> u64 {
    obs_digest_parts(
        events
            .iter()
            .filter(|e| e.scope == Scope::Logical)
            .map(|e| (e.label.as_str(), e.phase, e.a, e.b, e.c)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(scope: Scope, label: &'static str, a: u64) -> TraceEvent {
        TraceEvent {
            time: 1_500,
            seq: a,
            tid: 0,
            scope,
            phase: Phase::Instant,
            label,
            a,
            b: a + 1,
            c: a + 2,
        }
    }

    #[test]
    fn digest_hashes_only_logical_events() {
        let logical = vec![event(Scope::Logical, "execute", 1)];
        let mut with_noise = logical.clone();
        with_noise.push(event(Scope::Transport, "send", 9));
        with_noise.push(event(Scope::Policy, "rollback", 9));
        with_noise.push(event(Scope::Perf, "span", 9));
        assert_eq!(obs_digest(&logical), obs_digest(&with_noise));
        let different = vec![event(Scope::Logical, "execute", 2)];
        assert_ne!(obs_digest(&logical), obs_digest(&different));
    }

    #[test]
    fn digest_is_stable_across_processes() {
        // Golden value: the digest is part of the CI artifact contract, so a
        // hash-function change must be deliberate.
        let events = vec![event(Scope::Logical, "execute", 7)];
        assert_eq!(obs_digest(&events), obs_digest(&events));
        assert_eq!(obs_digest(&[]), FNV_OFFSET);
    }

    #[test]
    fn chrome_export_replay_round_trip() {
        let events = vec![
            event(Scope::Logical, "execute", 3),
            event(Scope::Transport, "send", 4),
            event(Scope::Policy, "grant", 5),
        ];
        let dump = chrome_trace_jsonl(&events);
        assert!(dump.starts_with("[\n"));
        assert!(dump.trim_end().ends_with(']'));
        assert!(dump.contains("\"ph\":\"i\""));
        let replayed = parse_chrome_trace_jsonl(&dump);
        assert_eq!(replayed.len(), events.len());
        assert_eq!(replayed[0].label, "execute");
        assert_eq!(replayed[0].time, 1_500);
        assert_eq!(replayed[1].scope, Scope::Transport);
        assert_eq!(replay_digest(&replayed), obs_digest(&events));
    }

    #[test]
    fn payload_words_above_f64_precision_survive_round_trip() {
        // Logical events carry raw `f64::to_bits()` words; a parse through
        // `f64` would silently round them and break the digest lock.
        let mut e = event(Scope::Logical, "execute", 1);
        e.a = 1.5f64.to_bits();
        e.b = u64::MAX;
        e.c = (1u64 << 53) + 1;
        let dump = chrome_trace_jsonl(&[e]);
        let replayed = parse_chrome_trace_jsonl(&dump);
        assert_eq!(replayed[0].a, e.a);
        assert_eq!(replayed[0].b, e.b);
        assert_eq!(replayed[0].c, e.c);
        assert_eq!(replay_digest(&replayed), obs_digest(&[e]));
    }

    #[test]
    fn counter_events_round_trip_with_exact_values() {
        let mut e = event(Scope::Perf, "engine.queue_depth", 0);
        e.phase = Phase::Counter;
        // A value above 2^53 must survive exactly (no f64 round trip).
        e.a = (1u64 << 60) + 7;
        e.b = 0;
        e.c = 0;
        let dump = chrome_trace_jsonl(&[e]);
        assert!(dump.contains("\"ph\":\"C\""));
        assert!(dump.contains(&format!("\"value\":{}", e.a)));
        // Counter lines carry a value series, not payload words.
        assert!(!dump.contains("\"a\":"));
        let replayed = parse_chrome_trace_jsonl(&dump);
        assert_eq!(replayed.len(), 1);
        assert_eq!(replayed[0].phase, Phase::Counter);
        assert_eq!(replayed[0].label, "engine.queue_depth");
        assert_eq!(replayed[0].a, e.a);
        assert_eq!(replayed[0].time, e.time);
    }

    #[test]
    fn labels_with_quotes_survive_round_trip() {
        let mut e = event(Scope::Logical, "exec", 1);
        e.label = "a\"b";
        let dump = chrome_trace_jsonl(&[e]);
        let replayed = parse_chrome_trace_jsonl(&dump);
        assert_eq!(replayed[0].label, "a\"b");
    }
}
