//! The live recorder: a session owning the clock, the event buffers and the
//! metrics registry.

use std::cell::{Cell, RefCell};
use std::time::Instant;

use crate::metrics::MetricsRegistry;
use crate::{chrome_trace_jsonl, obs_digest, Phase, Recorder, Scope, TraceEvent};

/// Which clock stamps the events.
#[derive(Debug)]
enum ClockKind {
    /// Monotonic wall time, nanoseconds since the session epoch.
    Wall,
    /// Externally-driven virtual time (the simulation kernel sets it via
    /// [`ObsSession::set_virtual_nanos`] before delivering each event).
    Virtual(Cell<u64>),
}

/// A live observability session: one clock, one merged event stream, one
/// metrics registry.  Implements [`Recorder`]; runtimes hold it by shared
/// reference (`&ObsSession`) or `Rc` and the caller extracts the
/// [`ObsReport`] when the run finishes.
#[derive(Debug)]
pub struct ObsSession {
    epoch: Instant,
    clock: ClockKind,
    seq: Cell<u64>,
    events: RefCell<Vec<TraceEvent>>,
    metrics: RefCell<MetricsRegistry>,
}

impl ObsSession {
    /// A wall-clock session (the bench drivers and in-process engines).
    pub fn wall() -> Self {
        Self::with_clock(ClockKind::Wall)
    }

    /// A virtual-time session (the discrete-event simulation): time stands
    /// at 0 until [`ObsSession::set_virtual_nanos`] advances it.
    pub fn virtual_time() -> Self {
        Self::with_clock(ClockKind::Virtual(Cell::new(0)))
    }

    fn with_clock(clock: ClockKind) -> Self {
        Self {
            epoch: Instant::now(),
            clock,
            seq: Cell::new(0),
            events: RefCell::new(Vec::new()),
            metrics: RefCell::new(MetricsRegistry::new()),
        }
    }

    /// Advances the virtual clock (no-op on wall-clock sessions).  The
    /// simulation kernel calls this with the event-queue time before any
    /// component runs, so every event recorded while handling a message is
    /// stamped with the message's virtual delivery time.  Installed sliding
    /// windows rotate with the clock, so windowed SLOs evict on virtual
    /// time exactly as wall-clock windows evict on wall time.
    pub fn set_virtual_nanos(&self, nanos: u64) {
        if let ClockKind::Virtual(cell) = &self.clock {
            cell.set(nanos);
            self.metrics.borrow_mut().advance_windows(nanos);
        }
    }

    /// Installs (or resets) a sliding window on the named series: subsequent
    /// [`Recorder::value`] observations with this name also land in the
    /// window at the session's current clock reading, giving windowed
    /// p50/p99/rate next to the lifetime histogram.
    pub fn install_window(&self, name: &'static str, slice_nanos: u64, slices: usize) {
        self.metrics
            .borrow_mut()
            .install_window(name, slice_nanos, slices);
    }

    /// The current clock reading in nanoseconds.
    pub fn now_nanos(&self) -> u64 {
        match &self.clock {
            ClockKind::Wall => u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX),
            ClockKind::Virtual(cell) => cell.get(),
        }
    }

    fn push(&self, scope: Scope, phase: Phase, label: &'static str, a: u64, b: u64, c: u64) {
        let seq = self.seq.get();
        self.seq.set(seq + 1);
        self.events.borrow_mut().push(TraceEvent {
            time: self.now_nanos(),
            seq,
            tid: 0,
            scope,
            phase,
            label,
            a,
            b,
            c,
        });
    }

    /// The merged event stream, sorted deterministically by
    /// `(time, tid, seq)` — session-owner events and absorbed per-thread
    /// buffers interleave in one total order.
    pub fn merged_events(&self) -> Vec<TraceEvent> {
        let mut events = self.events.borrow().clone();
        events.sort_by_key(|e| (e.time, e.tid, e.seq));
        events
    }

    /// Snapshot of the metrics registry.
    pub fn metrics(&self) -> MetricsRegistry {
        self.metrics.borrow().clone()
    }

    /// The stable digest over the logical projection of the merged stream
    /// (see [`obs_digest`]).
    pub fn digest(&self) -> u64 {
        obs_digest(&self.merged_events())
    }

    /// The chrome://tracing JSONL dump of the merged stream.
    pub fn chrome_trace(&self) -> String {
        chrome_trace_jsonl(&self.merged_events())
    }

    /// The plain-text summary table: counters, histogram percentiles and the
    /// digest.
    pub fn summary(&self) -> String {
        let events = self.merged_events();
        let mut out = String::new();
        out.push_str(&format!(
            "obs summary: {} events, digest {:#018x}\n",
            events.len(),
            obs_digest(&events)
        ));
        out.push_str(&self.metrics.borrow().render());
        out
    }

    /// Everything a caller keeps after the run: the merged stream, its
    /// digest and the metrics snapshot.
    pub fn report(&self) -> ObsReport {
        let events = self.merged_events();
        let digest = obs_digest(&events);
        ObsReport {
            events,
            digest,
            metrics: self.metrics.borrow().clone(),
        }
    }
}

impl Recorder for ObsSession {
    const IS_ENABLED: bool = true;

    #[inline]
    fn begin(&self, label: &'static str, a: u64) {
        self.push(Scope::Perf, Phase::Begin, label, a, 0, 0);
    }

    #[inline]
    fn end(&self, label: &'static str, a: u64) {
        self.push(Scope::Perf, Phase::End, label, a, 0, 0);
    }

    #[inline]
    fn instant(&self, scope: Scope, label: &'static str, a: u64, b: u64, c: u64) {
        self.push(scope, Phase::Instant, label, a, b, c);
    }

    #[inline]
    fn counter(&self, name: &'static str, delta: u64) {
        self.metrics.borrow_mut().counter(name, delta);
    }

    fn gauge(&self, name: &'static str, value: u64) {
        self.push(Scope::Perf, Phase::Counter, name, value, 0, 0);
        self.metrics.borrow_mut().gauge_set(name, value);
    }

    #[inline]
    fn value(&self, name: &'static str, value: u64) {
        let now = self.now_nanos();
        let mut metrics = self.metrics.borrow_mut();
        metrics.value(name, value);
        metrics.window_record(name, now, value);
    }

    fn absorb_events(&self, events: Vec<TraceEvent>) {
        self.events.borrow_mut().extend(events);
    }

    fn thread_buffer(&self, tid: u32) -> Option<ThreadBuffer> {
        Some(ThreadBuffer::new(self.epoch, tid))
    }
}

/// `Rc` handles record through the shared session (the simulation
/// components all hold one).
impl Recorder for std::rc::Rc<ObsSession> {
    const IS_ENABLED: bool = true;

    #[inline]
    fn begin(&self, label: &'static str, a: u64) {
        (**self).begin(label, a)
    }
    #[inline]
    fn end(&self, label: &'static str, a: u64) {
        (**self).end(label, a)
    }
    #[inline]
    fn instant(&self, scope: Scope, label: &'static str, a: u64, b: u64, c: u64) {
        (**self).instant(scope, label, a, b, c)
    }
    #[inline]
    fn counter(&self, name: &'static str, delta: u64) {
        (**self).counter(name, delta)
    }
    #[inline]
    fn gauge(&self, name: &'static str, value: u64) {
        (**self).gauge(name, value)
    }
    #[inline]
    fn value(&self, name: &'static str, value: u64) {
        (**self).value(name, value)
    }
    #[inline]
    fn absorb_events(&self, events: Vec<TraceEvent>) {
        (**self).absorb_events(events)
    }
    #[inline]
    fn thread_buffer(&self, tid: u32) -> Option<ThreadBuffer> {
        (**self).thread_buffer(tid)
    }
}

/// A per-thread wall-clock event buffer: created on the coordinating thread
/// via [`Recorder::thread_buffer`], moved into a worker (it is `Send`),
/// recorded into without any synchronisation, and drained back into the
/// session with [`Recorder::absorb_events`] after the join.
#[derive(Debug)]
pub struct ThreadBuffer {
    epoch: Instant,
    tid: u32,
    seq: u64,
    events: Vec<TraceEvent>,
}

impl ThreadBuffer {
    /// A buffer stamping times against `epoch` and tagging events `tid`.
    pub fn new(epoch: Instant, tid: u32) -> Self {
        Self {
            epoch,
            tid,
            seq: 0,
            events: Vec::new(),
        }
    }

    fn push(&mut self, scope: Scope, phase: Phase, label: &'static str, a: u64, b: u64, c: u64) {
        let time = u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let seq = self.seq;
        self.seq += 1;
        self.events.push(TraceEvent {
            time,
            seq,
            tid: self.tid,
            scope,
            phase,
            label,
            a,
            b,
            c,
        });
    }

    /// Records a span begin.
    pub fn begin(&mut self, label: &'static str, a: u64) {
        self.push(Scope::Perf, Phase::Begin, label, a, 0, 0);
    }

    /// Records a span end.
    pub fn end(&mut self, label: &'static str, a: u64) {
        self.push(Scope::Perf, Phase::End, label, a, 0, 0);
    }

    /// Records an instantaneous event.
    pub fn instant(&mut self, scope: Scope, label: &'static str, a: u64, b: u64, c: u64) {
        self.push(scope, Phase::Instant, label, a, b, c);
    }

    /// Drains the recorded events for [`Recorder::absorb_events`].
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events
    }
}

/// The keepable output of a session: merged events, digest, metrics.
#[derive(Debug, Clone)]
pub struct ObsReport {
    /// The merged `(time, tid, seq)`-ordered event stream.
    pub events: Vec<TraceEvent>,
    /// [`obs_digest`] over the stream's logical projection.
    pub digest: u64,
    /// The metrics snapshot.
    pub metrics: MetricsRegistry,
}

impl ObsReport {
    /// The chrome://tracing JSONL dump of the stream.
    pub fn chrome_trace(&self) -> String {
        chrome_trace_jsonl(&self.events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_stamps_events() {
        let session = ObsSession::virtual_time();
        session.set_virtual_nanos(5_000);
        session.instant(Scope::Transport, "send", 1, 2, 0);
        session.set_virtual_nanos(9_000);
        session.instant(Scope::Transport, "recv", 1, 2, 0);
        let events = session.merged_events();
        assert_eq!(events[0].time, 5_000);
        assert_eq!(events[1].time, 9_000);
    }

    #[test]
    fn thread_buffers_merge_deterministically() {
        let session = ObsSession::wall();
        let mut buf1 = session.thread_buffer(1).unwrap();
        let mut buf2 = session.thread_buffer(2).unwrap();
        buf1.begin("region", 0);
        buf1.end("region", 0);
        buf2.begin("region", 1);
        buf2.end("region", 1);
        session.absorb_events(buf1.into_events());
        session.absorb_events(buf2.into_events());
        let merged = session.merged_events();
        assert_eq!(merged.len(), 4);
        // The merge is a total order: re-merging yields the same sequence.
        let again = session.merged_events();
        assert_eq!(merged, again);
        // Within one thread, seq order is preserved.
        let t1: Vec<_> = merged.iter().filter(|e| e.tid == 1).collect();
        assert!(t1[0].seq < t1[1].seq);
    }

    #[test]
    fn counters_and_values_land_in_metrics() {
        let session = ObsSession::wall();
        session.counter("engine.conflicts", 3);
        session.counter("engine.conflicts", 2);
        session.value("engine.batch_ns", 1_000);
        let metrics = session.metrics();
        assert_eq!(metrics.counter_value("engine.conflicts"), 5);
        assert_eq!(metrics.histogram("engine.batch_ns").unwrap().count(), 1);
        assert!(session.summary().contains("engine.conflicts"));
    }

    #[test]
    fn gauges_emit_counter_events_and_track_peaks() {
        let session = ObsSession::virtual_time();
        session.set_virtual_nanos(10);
        session.gauge("engine.queue_depth", 4);
        session.set_virtual_nanos(20);
        session.gauge("engine.queue_depth", 9);
        session.set_virtual_nanos(30);
        session.gauge("engine.queue_depth", 2);
        let metrics = session.metrics();
        let g = metrics.gauge("engine.queue_depth").unwrap();
        assert_eq!(g.last, 2);
        assert_eq!(g.max, 9);
        assert_eq!(g.samples, 3);
        let events = session.merged_events();
        let samples: Vec<_> = events
            .iter()
            .filter(|e| e.phase == Phase::Counter)
            .collect();
        assert_eq!(samples.len(), 3);
        assert_eq!(samples[1].a, 9);
        assert_eq!(samples[1].time, 20);
    }

    #[test]
    fn values_feed_installed_windows_on_the_virtual_clock() {
        let session = ObsSession::virtual_time();
        session.install_window("svc.latency_ns", 1_000, 4);
        session.set_virtual_nanos(100);
        session.value("svc.latency_ns", 50);
        session.set_virtual_nanos(1_100);
        session.value("svc.latency_ns", 70);
        let metrics = session.metrics();
        let w = metrics.window("svc.latency_ns").unwrap();
        assert_eq!(w.windowed_count(), 2);
        // Jumping the virtual clock past the window span evicts everything,
        // while the lifetime histogram keeps both observations.
        session.set_virtual_nanos(1_000_000);
        let metrics = session.metrics();
        assert_eq!(
            metrics.window("svc.latency_ns").unwrap().windowed_count(),
            0
        );
        assert_eq!(metrics.histogram("svc.latency_ns").unwrap().count(), 2);
    }
}
