//! Span-tree profiler: folds a recorded span stream into per-path self/total
//! times and exports collapsed stacks.
//!
//! The [`crate::Recorder`] span stream (`Begin`/`End` pairs) already carries
//! everything a profiler needs; this module folds it into a call tree keyed
//! by **path** — the `;`-joined label stack, e.g.
//! `engine.drain;engine.assign_batch;engine.commit` — accumulating per path:
//!
//! * `calls` — how many spans closed at this path,
//! * `total_nanos` — wall (or virtual) time inside the span, children
//!   included,
//! * `self_nanos` — `total` minus the time spent in child spans.
//!
//! Self times telescope: summed over every path they equal the summed total
//! of the root spans, so "where does a drain's time go" is answered without
//! double counting — the acceptance bar of the `fig9svc` driver is that the
//! profile's self-time sum stays within 5% of the separately measured drain
//! wall time.
//!
//! [`SpanProfile::collapsed_stacks`] renders the classic flamegraph.pl
//! collapsed format (`path self_weight` per line, weights in nanoseconds),
//! loadable by any flamegraph viewer (inferno, speedscope, flamegraph.pl).

use std::collections::HashMap;

use crate::{Phase, TraceEvent};

/// Aggregated statistics of one span path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathStat {
    /// The `;`-joined label stack, root first.
    pub path: String,
    /// Stack depth (1 = root span).
    pub depth: usize,
    /// Number of spans that closed at this path.
    pub calls: u64,
    /// Nanoseconds inside the span, children included.
    pub total_nanos: u64,
    /// Nanoseconds inside the span minus its child spans.
    pub self_nanos: u64,
}

/// The folded span tree of one recorded event stream.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanProfile {
    stats: Vec<PathStat>,
}

/// One open frame while folding a thread's span stream.
struct Frame {
    label: &'static str,
    start: u64,
    child_nanos: u64,
}

/// Folds the span events of a merged stream into a [`SpanProfile`].
///
/// Only `Begin`/`End` phases participate; instants and counter samples are
/// ignored.  Each thread id is folded as its own stack (per-thread buffers
/// interleave in the merged stream).  Malformed streams degrade rather than
/// panic: an `End` with no matching open frame on its thread is dropped, and
/// frames still open when the stream finishes are discarded (their time was
/// never measured to completion).
pub fn profile_spans(events: &[TraceEvent]) -> SpanProfile {
    // Per-tid event sequences in deterministic (time, seq) order.
    let mut ordered: Vec<&TraceEvent> = events
        .iter()
        .filter(|e| matches!(e.phase, Phase::Begin | Phase::End))
        .collect();
    ordered.sort_by_key(|e| (e.tid, e.time, e.seq));

    let mut paths: HashMap<String, PathStat> = HashMap::new();
    let mut stack: Vec<Frame> = Vec::new();
    let mut current_tid: Option<u32> = None;
    for event in ordered {
        if current_tid != Some(event.tid) {
            // A new thread's stream begins; open frames of the previous
            // thread can never close.
            stack.clear();
            current_tid = Some(event.tid);
        }
        match event.phase {
            Phase::Begin => stack.push(Frame {
                label: event.label,
                start: event.time,
                child_nanos: 0,
            }),
            Phase::End => {
                // Unwind to the matching label (a missing End mid-stack
                // would otherwise poison everything after it).
                let Some(pos) = stack.iter().rposition(|f| f.label == event.label) else {
                    continue;
                };
                stack.truncate(pos + 1);
                let frame = stack.pop().expect("rposition found a frame");
                let total = event.time.saturating_sub(frame.start);
                let self_nanos = total.saturating_sub(frame.child_nanos);
                if let Some(parent) = stack.last_mut() {
                    parent.child_nanos = parent.child_nanos.saturating_add(total);
                }
                let mut path = String::new();
                for f in &stack {
                    path.push_str(f.label);
                    path.push(';');
                }
                path.push_str(frame.label);
                let depth = stack.len() + 1;
                let entry = paths.entry(path.clone()).or_insert(PathStat {
                    path,
                    depth,
                    calls: 0,
                    total_nanos: 0,
                    self_nanos: 0,
                });
                entry.calls += 1;
                entry.total_nanos = entry.total_nanos.saturating_add(total);
                entry.self_nanos = entry.self_nanos.saturating_add(self_nanos);
            }
            _ => {}
        }
    }

    let mut stats: Vec<PathStat> = paths.into_values().collect();
    stats.sort_by(|a, b| a.path.cmp(&b.path));
    SpanProfile { stats }
}

impl SpanProfile {
    /// The per-path statistics, sorted by path.
    pub fn stats(&self) -> &[PathStat] {
        &self.stats
    }

    /// The statistics of one exact path, if it closed at least once.
    pub fn get(&self, path: &str) -> Option<&PathStat> {
        self.stats.iter().find(|s| s.path == path)
    }

    /// Sum of every path's self time — equal, by telescoping, to
    /// [`SpanProfile::root_total_nanos`].
    pub fn total_self_nanos(&self) -> u64 {
        self.stats.iter().map(|s| s.self_nanos).sum()
    }

    /// Sum of the root (depth-1) spans' total time.
    pub fn root_total_nanos(&self) -> u64 {
        self.stats
            .iter()
            .filter(|s| s.depth == 1)
            .map(|s| s.total_nanos)
            .sum()
    }

    /// The flamegraph.pl collapsed-stack dump: one `path weight` line per
    /// path, weights in self-nanoseconds, sorted by path.  Feed it to any
    /// flamegraph renderer (`flamegraph.pl`, inferno, speedscope).
    pub fn collapsed_stacks(&self) -> String {
        let mut out = String::new();
        for s in &self.stats {
            out.push_str(&format!("{} {}\n", s.path, s.self_nanos));
        }
        out
    }

    /// A plain-text profile table: indented tree with calls, total, self.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for s in &self.stats {
            let label = s.path.rsplit(';').next().unwrap_or(&s.path);
            out.push_str(&format!(
                "  {:indent$}{label:<32} calls={:<8} total={:>12}ns self={:>12}ns\n",
                "",
                s.calls,
                s.total_nanos,
                s.self_nanos,
                indent = (s.depth - 1) * 2,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scope;

    fn span(tid: u32, seq: u64, time: u64, phase: Phase, label: &'static str) -> TraceEvent {
        TraceEvent {
            time,
            seq,
            tid,
            scope: Scope::Perf,
            phase,
            label,
            a: 0,
            b: 0,
            c: 0,
        }
    }

    #[test]
    fn nested_spans_fold_into_paths_with_self_times() {
        let events = vec![
            span(0, 0, 0, Phase::Begin, "drain"),
            span(0, 1, 10, Phase::Begin, "checkout"),
            span(0, 2, 40, Phase::End, "checkout"),
            span(0, 3, 50, Phase::Begin, "commit"),
            span(0, 4, 90, Phase::End, "commit"),
            span(0, 5, 100, Phase::End, "drain"),
        ];
        let profile = profile_spans(&events);
        let drain = profile.get("drain").unwrap();
        assert_eq!(drain.calls, 1);
        assert_eq!(drain.total_nanos, 100);
        assert_eq!(drain.self_nanos, 30); // 100 - 30 (checkout) - 40 (commit)
        let checkout = profile.get("drain;checkout").unwrap();
        assert_eq!(checkout.total_nanos, 30);
        assert_eq!(checkout.self_nanos, 30);
        assert_eq!(checkout.depth, 2);
        // Self times telescope to the root total.
        assert_eq!(profile.total_self_nanos(), profile.root_total_nanos());
        assert_eq!(profile.root_total_nanos(), 100);
    }

    #[test]
    fn repeated_calls_accumulate() {
        let mut events = Vec::new();
        for i in 0..3u64 {
            events.push(span(0, i * 2, i * 100, Phase::Begin, "work"));
            events.push(span(0, i * 2 + 1, i * 100 + 20, Phase::End, "work"));
        }
        let profile = profile_spans(&events);
        let work = profile.get("work").unwrap();
        assert_eq!(work.calls, 3);
        assert_eq!(work.total_nanos, 60);
    }

    #[test]
    fn threads_fold_as_independent_stacks() {
        let events = vec![
            span(1, 0, 0, Phase::Begin, "region"),
            span(2, 0, 5, Phase::Begin, "region"),
            span(1, 1, 10, Phase::End, "region"),
            span(2, 1, 25, Phase::End, "region"),
        ];
        let profile = profile_spans(&events);
        let region = profile.get("region").unwrap();
        assert_eq!(region.calls, 2);
        assert_eq!(region.total_nanos, 10 + 20);
    }

    #[test]
    fn malformed_streams_degrade_gracefully() {
        let events = vec![
            // End with no Begin: dropped.
            span(0, 0, 5, Phase::End, "ghost"),
            // Begin that never closes: discarded.
            span(0, 1, 10, Phase::Begin, "open"),
            // A clean span inside the dangling one still folds.
            span(0, 2, 20, Phase::Begin, "inner"),
            span(0, 3, 30, Phase::End, "inner"),
        ];
        let profile = profile_spans(&events);
        assert!(profile.get("ghost").is_none());
        assert!(profile.get("open").is_none());
        assert_eq!(profile.get("open;inner").unwrap().total_nanos, 10);
    }

    #[test]
    fn collapsed_stacks_render_path_and_weight() {
        let events = vec![
            span(0, 0, 0, Phase::Begin, "a"),
            span(0, 1, 10, Phase::Begin, "b"),
            span(0, 2, 30, Phase::End, "b"),
            span(0, 3, 50, Phase::End, "a"),
        ];
        let profile = profile_spans(&events);
        let collapsed = profile.collapsed_stacks();
        assert!(collapsed.contains("a 30\n"));
        assert!(collapsed.contains("a;b 20\n"));
        assert!(profile.render().contains("calls=1"));
    }
}
