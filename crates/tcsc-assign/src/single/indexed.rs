//! `Approx*`: the index-accelerated greedy single-task assignment
//! (Section III-C of the paper).
//!
//! `Approx*` follows the same greedy framework as [`super::greedy::approx`]
//! but replaces the two expensive ingredients of each iteration:
//!
//! 1. the exhaustive enumeration of all remaining subtasks is replaced by the
//!    best-first search over the aggregated Voronoi tree with upper-bound
//!    pruning ([`tcsc_index::VTree::best_slot`]);
//! 2. the `O(m)` heuristic-value computation per tentative subtask is
//!    replaced by [`tcsc_index::VTree::gain`], which reuses the stored
//!    partial-quality aggregates of every tree node whose influence range
//!    excludes the tentative slot (the locality of k-NN interpolation).
//!
//! The run also records a wall-clock breakdown (tree construction / index
//! maintenance / best-first search) and the pruning statistics that feed
//! Fig. 8(c)–(e).

use tcsc_obs::Stopwatch;

use tcsc_core::{AssignmentPlan, Budget, ExecutedSubtask, QualityEvaluator, QualityParams, Task};
use tcsc_index::{SearchStats, VTree, VTreeConfig};

use crate::candidates::SlotCandidates;
use crate::single::{best_single_slot, execute_slot, plan_from_executions, SingleTaskConfig};

/// Wall-clock breakdown of one `Approx*` run, in seconds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct IndexedTimings {
    /// Initial construction of the aggregated tree.
    pub tree_construction: f64,
    /// Incremental maintenance of the tree after each execution.
    pub tree_maintenance: f64,
    /// Best-first search (heuristic-value calculation with pruning).
    pub search: f64,
}

impl IndexedTimings {
    /// Total indexing + search time.
    pub fn total(&self) -> f64 {
        self.tree_construction + self.tree_maintenance + self.search
    }
}

/// Result of an `Approx*` run.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexedOutcome {
    /// The assignment plan.
    pub plan: AssignmentPlan,
    /// Pruning statistics accumulated over all greedy iterations.
    pub search_stats: SearchStats,
    /// Wall-clock breakdown.
    pub timings: IndexedTimings,
    /// Number of tree nodes after the final iteration.
    pub tree_nodes: usize,
    /// Number of greedy iterations (executed subtasks).
    pub iterations: usize,
}

/// Runs `Approx*` on one task.
pub fn approx_star(
    task: &Task,
    candidates: &SlotCandidates,
    config: &SingleTaskConfig,
) -> IndexedOutcome {
    assert_eq!(
        candidates.len(),
        task.num_slots,
        "candidates must cover every slot of the task"
    );
    let params = QualityParams::new(task.num_slots, config.k);
    let mut evaluator = QualityEvaluator::new(params);
    let mut budget = Budget::new(config.budget);
    let mut executions: Vec<ExecutedSubtask> = Vec::new();
    let mut stats = SearchStats::default();
    let mut timings = IndexedTimings::default();

    let construction_start = Stopwatch::start();
    let mut tree = VTree::build(&evaluator, candidates.costs(), VTreeConfig::new(config.ts));
    timings.tree_construction = construction_start.elapsed_secs();

    let single_seed = best_single_slot(candidates, task.num_slots, config.budget);

    loop {
        let search_start = Stopwatch::start();
        let best = tree.best_slot(&evaluator, budget.remaining(), &mut stats);
        timings.search += search_start.elapsed_secs();

        let Some(best) = best else { break };
        let candidate = candidates
            .get(best.slot)
            .expect("best-first search only returns slots with candidates");
        if !budget.charge(best.cost) {
            break;
        }
        execute_slot(
            &mut evaluator,
            best.slot,
            candidate.reliability,
            config.use_reliability,
        );
        let maintain_start = Stopwatch::start();
        tree.notify_executed(&evaluator, best.slot);
        timings.tree_maintenance += maintain_start.elapsed_secs();
        executions.push(ExecutedSubtask {
            slot: best.slot,
            worker: candidate.worker,
            cost: best.cost,
            reliability: candidate.reliability,
        });
    }

    let iterations = executions.len();
    let greedy_plan = plan_from_executions(task, &evaluator, executions);

    // Keep the better of the greedy plan and the single-subtask seed plan.
    let plan = match single_seed {
        Some(slot) => {
            let mut single_eval = QualityEvaluator::new(params);
            let candidate = *candidates.get(slot).expect("seed slot has a candidate");
            execute_slot(
                &mut single_eval,
                slot,
                candidate.reliability,
                config.use_reliability,
            );
            if single_eval.quality() > greedy_plan.quality {
                plan_from_executions(
                    task,
                    &single_eval,
                    vec![ExecutedSubtask {
                        slot,
                        worker: candidate.worker,
                        cost: candidate.cost,
                        reliability: candidate.reliability,
                    }],
                )
            } else {
                greedy_plan
            }
        }
        None => greedy_plan,
    };

    IndexedOutcome {
        plan,
        search_stats: stats,
        timings,
        tree_nodes: tree.node_count(),
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::single::greedy::approx;
    use crate::single::test_support::{gappy_instance, line_instance};

    #[test]
    fn approx_star_matches_approx_quality() {
        // Both algorithms follow the same greedy rule; with exact gains and an
        // admissible bound the plans must achieve the same quality.
        for m in [16, 40, 75] {
            let (task, candidates) = line_instance(m);
            for budget in [3.0, 10.0, 40.0] {
                let cfg = SingleTaskConfig::new(budget);
                let plain = approx(&task, &candidates, &cfg);
                let fast = approx_star(&task, &candidates, &cfg);
                assert!(
                    (plain.plan.quality - fast.plan.quality).abs() < 1e-6,
                    "m={m} b={budget}: Approx {} vs Approx* {}",
                    plain.plan.quality,
                    fast.plan.quality
                );
            }
        }
    }

    #[test]
    fn budget_is_respected() {
        let (task, candidates) = line_instance(50);
        for budget in [2.0, 9.0, 31.0] {
            let outcome = approx_star(&task, &candidates, &SingleTaskConfig::new(budget));
            assert!(outcome.plan.total_cost() <= budget + 1e-9);
        }
    }

    #[test]
    fn unlimited_budget_reaches_full_quality() {
        let (task, candidates) = line_instance(32);
        let outcome = approx_star(&task, &candidates, &SingleTaskConfig::new(1e9));
        assert_eq!(outcome.plan.executed_count(), 32);
        assert!((outcome.plan.quality - 5.0).abs() < 1e-9);
    }

    #[test]
    fn zero_budget_executes_nothing() {
        let (task, candidates) = line_instance(20);
        let outcome = approx_star(&task, &candidates, &SingleTaskConfig::new(0.0));
        assert_eq!(outcome.plan.executed_count(), 0);
    }

    #[test]
    fn gaps_are_skipped() {
        let (task, candidates) = gappy_instance(24);
        let outcome = approx_star(&task, &candidates, &SingleTaskConfig::new(1e6));
        for exec in &outcome.plan.executions {
            assert_ne!(exec.slot % 3, 2);
        }
    }

    #[test]
    fn stats_and_timings_are_populated() {
        let (task, candidates) = line_instance(64);
        let outcome = approx_star(&task, &candidates, &SingleTaskConfig::new(20.0));
        assert!(outcome.iterations > 0);
        assert!(outcome.search_stats.candidate_slots > 0);
        assert!(outcome.tree_nodes > 0);
        assert!(outcome.timings.total() >= 0.0);
        assert!(outcome.timings.tree_construction > 0.0);
    }

    #[test]
    fn ts_variations_keep_the_result_quality() {
        let (task, candidates) = line_instance(60);
        let reference = approx_star(&task, &candidates, &SingleTaskConfig::new(15.0))
            .plan
            .quality;
        for ts in [2, 6, 10] {
            let q = approx_star(&task, &candidates, &SingleTaskConfig::new(15.0).with_ts(ts))
                .plan
                .quality;
            assert!((q - reference).abs() < 1e-6, "ts={ts}: {q} vs {reference}");
        }
    }

    #[test]
    fn approx_star_fewer_gain_evaluations_than_approx() {
        // Approx evaluates every remaining slot each iteration; Approx* only
        // evaluates slots the bound cannot prune.  On an instance with a wide
        // cost spread the indexed variant must do strictly less work.
        let (task, candidates) = line_instance(200);
        let cfg = SingleTaskConfig::new(25.0);
        let plain = approx(&task, &candidates, &cfg);
        let fast = approx_star(&task, &candidates, &cfg);
        assert!(
            fast.search_stats.evaluated_slots < plain.stats.gain_evaluations,
            "Approx*: {} exact evaluations, Approx: {}",
            fast.search_stats.evaluated_slots,
            plain.stats.gain_evaluations
        );
    }
}
