//! `Approx`: the greedy single-task assignment of Algorithm 1.
//!
//! At every iteration the algorithm tentatively executes every remaining
//! subtask, computes the quality increment per unit cost (the *heuristic
//! value*), and executes the subtask with the largest value that still fits
//! the budget.  The quality metric is submodular and non-decreasing
//! (Lemma 2), so the greedy plan — combined with the best single subtask
//! (`T′_cur`) — achieves the `(1 − 1/√e)` approximation of budgeted
//! submodular maximisation.
//!
//! This is the *unaccelerated* reference implementation: every iteration
//! enumerates all remaining slots and recomputes the quality gain from the
//! plain [`QualityEvaluator`], which is what the paper's efficiency plots call
//! `Approx`.  The index-accelerated variant lives in [`super::indexed`].

use tcsc_obs::Stopwatch;

use tcsc_core::{AssignmentPlan, Budget, ExecutedSubtask, QualityEvaluator, QualityParams, Task};

use crate::candidates::SlotCandidates;
use crate::single::{best_single_slot, execute_slot, plan_from_executions, SingleTaskConfig};

/// Instrumentation counters of one `Approx` run (feeds the Fig. 8(c) time
/// breakdown).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct GreedyStats {
    /// Number of exact heuristic-value evaluations (tentative executions).
    pub gain_evaluations: usize,
    /// Number of greedy iterations (executed subtasks).
    pub iterations: usize,
    /// Wall time spent computing heuristic values, in seconds.
    pub heuristic_seconds: f64,
}

/// Result of an `Approx` run.
#[derive(Debug, Clone, PartialEq)]
pub struct GreedyOutcome {
    /// The assignment plan.
    pub plan: AssignmentPlan,
    /// Instrumentation counters.
    pub stats: GreedyStats,
}

/// Runs Algorithm 1 on one task.
///
/// `candidates` must hold the per-slot candidate assignments (nearest
/// available worker per slot); slots without candidates are never executed.
pub fn approx(
    task: &Task,
    candidates: &SlotCandidates,
    config: &SingleTaskConfig,
) -> GreedyOutcome {
    assert_eq!(
        candidates.len(),
        task.num_slots,
        "candidates must cover every slot of the task"
    );
    let params = QualityParams::new(task.num_slots, config.k);
    let mut evaluator = QualityEvaluator::new(params);
    let mut budget = Budget::new(config.budget);
    let mut executions: Vec<ExecutedSubtask> = Vec::new();
    let mut stats = GreedyStats::default();

    // Line 3 of Algorithm 1: remember the best single affordable subtask.
    let single_seed = best_single_slot(candidates, task.num_slots, config.budget);

    loop {
        // Find the affordable subtask with the maximum heuristic value.
        let heuristic_start = Stopwatch::start();
        let mut best: Option<(usize, f64, f64)> = None; // (slot, gain, cost)
        for slot in 0..task.num_slots {
            if evaluator.is_executed(slot) {
                continue;
            }
            let Some(candidate) = candidates.get(slot) else {
                continue;
            };
            if !budget.can_afford(candidate.cost) {
                continue;
            }
            stats.gain_evaluations += 1;
            let gain = if config.use_reliability {
                evaluator.gain_if_executed_with_reliability(slot, candidate.reliability)
            } else {
                evaluator.gain_if_executed(slot)
            };
            let heuristic = if candidate.cost > 0.0 {
                gain / candidate.cost
            } else {
                f64::INFINITY
            };
            let better = match best {
                None => true,
                Some((best_slot, best_gain, best_cost)) => {
                    let best_h = if best_cost > 0.0 {
                        best_gain / best_cost
                    } else {
                        f64::INFINITY
                    };
                    heuristic > best_h || (heuristic == best_h && slot < best_slot)
                }
            };
            if better {
                best = Some((slot, gain, candidate.cost));
            }
        }
        stats.heuristic_seconds += heuristic_start.elapsed_secs();

        let Some((slot, _gain, cost)) = best else {
            break;
        };
        let candidate = candidates
            .get(slot)
            .expect("candidate exists for chosen slot");
        if !budget.charge(cost) {
            break;
        }
        execute_slot(
            &mut evaluator,
            slot,
            candidate.reliability,
            config.use_reliability,
        );
        executions.push(ExecutedSubtask {
            slot,
            worker: candidate.worker,
            cost,
            reliability: candidate.reliability,
        });
        stats.iterations += 1;
    }

    let greedy_plan = plan_from_executions(task, &evaluator, executions);

    // Compare against the single-subtask seed plan and keep the better one.
    let plan = match single_seed {
        Some(slot)
            if greedy_plan.executions.is_empty() || {
                // Evaluate the single-slot plan's quality.
                let mut single_eval = QualityEvaluator::new(params);
                let candidate = candidates.get(slot).expect("seed slot has a candidate");
                execute_slot(
                    &mut single_eval,
                    slot,
                    candidate.reliability,
                    config.use_reliability,
                );
                single_eval.quality() > greedy_plan.quality
            } =>
        {
            let mut single_eval = QualityEvaluator::new(params);
            let candidate = *candidates.get(slot).expect("seed slot has a candidate");
            execute_slot(
                &mut single_eval,
                slot,
                candidate.reliability,
                config.use_reliability,
            );
            plan_from_executions(
                task,
                &single_eval,
                vec![ExecutedSubtask {
                    slot,
                    worker: candidate.worker,
                    cost: candidate.cost,
                    reliability: candidate.reliability,
                }],
            )
        }
        _ => greedy_plan,
    };

    GreedyOutcome { plan, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::single::test_support::{gappy_instance, line_instance};

    #[test]
    fn empty_budget_executes_nothing() {
        let (task, candidates) = line_instance(20);
        let outcome = approx(&task, &candidates, &SingleTaskConfig::new(0.0));
        assert_eq!(outcome.plan.executed_count(), 0);
        assert_eq!(outcome.plan.quality, 0.0);
    }

    #[test]
    fn budget_is_never_exceeded() {
        let (task, candidates) = line_instance(30);
        for budget in [1.0, 3.0, 7.5, 20.0] {
            let outcome = approx(&task, &candidates, &SingleTaskConfig::new(budget));
            assert!(
                outcome.plan.total_cost() <= budget + 1e-9,
                "budget {budget} exceeded: {}",
                outcome.plan.total_cost()
            );
        }
    }

    #[test]
    fn unlimited_budget_executes_every_available_slot() {
        let (task, candidates) = line_instance(16);
        let outcome = approx(&task, &candidates, &SingleTaskConfig::new(1e9));
        assert_eq!(outcome.plan.executed_count(), 16);
        assert!(
            (outcome.plan.quality - 4.0).abs() < 1e-9,
            "full quality is log2(16)"
        );
    }

    #[test]
    fn quality_grows_with_budget() {
        let (task, candidates) = line_instance(40);
        let mut last = -1.0;
        for budget in [2.0, 5.0, 10.0, 25.0, 60.0] {
            let outcome = approx(&task, &candidates, &SingleTaskConfig::new(budget));
            assert!(
                outcome.plan.quality >= last - 1e-9,
                "quality decreased when the budget grew"
            );
            last = outcome.plan.quality;
        }
    }

    #[test]
    fn slots_without_workers_are_never_selected() {
        let (task, candidates) = gappy_instance(30);
        let outcome = approx(&task, &candidates, &SingleTaskConfig::new(1e6));
        for exec in &outcome.plan.executions {
            assert_ne!(exec.slot % 3, 2, "slot {} has no worker", exec.slot);
        }
        assert_eq!(outcome.plan.executed_count(), 20);
    }

    #[test]
    fn executions_record_worker_and_cost() {
        let (task, candidates) = line_instance(10);
        let outcome = approx(&task, &candidates, &SingleTaskConfig::new(5.0));
        for exec in &outcome.plan.executions {
            let cand = candidates.get(exec.slot).unwrap();
            assert_eq!(exec.worker, cand.worker);
            assert!((exec.cost - cand.cost).abs() < 1e-12);
        }
    }

    #[test]
    fn stats_count_iterations_and_evaluations() {
        let (task, candidates) = line_instance(12);
        let outcome = approx(&task, &candidates, &SingleTaskConfig::new(6.0));
        assert_eq!(outcome.stats.iterations, outcome.plan.executed_count());
        assert!(outcome.stats.gain_evaluations >= outcome.stats.iterations);
    }

    #[test]
    fn greedy_beats_worst_single_slot_choice() {
        // With a tight budget the plan must at least match the single best
        // affordable subtask (the T'_cur seed of Algorithm 1).
        let (task, candidates) = line_instance(25);
        let outcome = approx(&task, &candidates, &SingleTaskConfig::new(1.0));
        assert!(outcome.plan.executed_count() >= 1);
        assert!(outcome.plan.quality > 0.0);
    }

    #[test]
    fn reliability_mode_runs_and_reduces_quality_for_unreliable_workers() {
        use tcsc_core::{
            Domain, EuclideanCost, Location, Task, TaskId, Worker, WorkerId, WorkerPool, WorkerSlot,
        };
        use tcsc_index::WorkerIndex;

        let task = Task::new(TaskId(0), Location::new(0.0, 0.0), 10);
        let workers: WorkerPool = (0..10)
            .map(|j| {
                Worker::with_reliability(
                    WorkerId(j as u32),
                    vec![WorkerSlot {
                        slot: j,
                        location: Location::new(1.0, 0.0),
                    }],
                    0.5,
                )
            })
            .collect();
        let index = WorkerIndex::build(&workers, 10, &Domain::square(10.0));
        let candidates =
            crate::candidates::SlotCandidates::compute(&task, &index, &EuclideanCost::default());

        let with = approx(
            &task,
            &candidates,
            &SingleTaskConfig::new(1e6).with_reliability(),
        );
        let without = approx(&task, &candidates, &SingleTaskConfig::new(1e6));
        assert!(with.plan.quality < without.plan.quality);
    }
}
