//! `Rand`: the randomized baseline of the paper's quality experiments.
//!
//! The baseline repeatedly picks a random remaining subtask (that has an
//! available worker and still fits the budget), assigns it to its nearest
//! worker and continues until the budget is exhausted.  Because the output is
//! not deterministic, the paper reports `RandMin`, `RandMax` and `RandAvg`
//! over repeated runs; [`RandSummary`] aggregates those statistics.

use rand::Rng;

use tcsc_core::{AssignmentPlan, Budget, ExecutedSubtask, QualityEvaluator, QualityParams, Task};

use crate::candidates::SlotCandidates;
use crate::single::{execute_slot, plan_from_executions, SingleTaskConfig};

/// Runs one randomized assignment.
pub fn random_assignment<R: Rng + ?Sized>(
    rng: &mut R,
    task: &Task,
    candidates: &SlotCandidates,
    config: &SingleTaskConfig,
) -> AssignmentPlan {
    let params = QualityParams::new(task.num_slots, config.k);
    let mut evaluator = QualityEvaluator::new(params);
    let mut budget = Budget::new(config.budget);
    let mut executions: Vec<ExecutedSubtask> = Vec::new();

    // Pool of candidate slots, consumed in random order.
    let mut remaining: Vec<usize> = (0..task.num_slots)
        .filter(|&j| candidates.get(j).is_some())
        .collect();

    while !remaining.is_empty() {
        let pick = rng.gen_range(0..remaining.len());
        let slot = remaining.swap_remove(pick);
        let candidate = candidates.get(slot).expect("filtered to available slots");
        if !budget.can_afford(candidate.cost) {
            continue;
        }
        budget.charge(candidate.cost);
        execute_slot(
            &mut evaluator,
            slot,
            candidate.reliability,
            config.use_reliability,
        );
        executions.push(ExecutedSubtask {
            slot,
            worker: candidate.worker,
            cost: candidate.cost,
            reliability: candidate.reliability,
        });
    }

    plan_from_executions(task, &evaluator, executions)
}

/// Aggregated quality statistics over repeated randomized runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandSummary {
    /// Lowest quality observed (`RandMin`).
    pub min: f64,
    /// Highest quality observed (`RandMax`).
    pub max: f64,
    /// Average quality (`RandAvg`).
    pub avg: f64,
    /// Number of runs.
    pub runs: usize,
}

/// Runs the randomized baseline `runs` times and summarises the qualities.
pub fn random_summary<R: Rng + ?Sized>(
    rng: &mut R,
    task: &Task,
    candidates: &SlotCandidates,
    config: &SingleTaskConfig,
    runs: usize,
) -> RandSummary {
    assert!(runs > 0, "at least one randomized run is required");
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    let mut sum = 0.0;
    for _ in 0..runs {
        let q = random_assignment(rng, task, candidates, config).quality;
        min = min.min(q);
        max = max.max(q);
        sum += q;
    }
    RandSummary {
        min,
        max,
        avg: sum / runs as f64,
        runs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::single::greedy::approx;
    use crate::single::test_support::line_instance;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_assignment_respects_budget() {
        let (task, candidates) = line_instance(30);
        let mut rng = StdRng::seed_from_u64(1);
        for budget in [2.0, 8.0, 20.0] {
            let plan =
                random_assignment(&mut rng, &task, &candidates, &SingleTaskConfig::new(budget));
            assert!(plan.total_cost() <= budget + 1e-9);
        }
    }

    #[test]
    fn summary_orders_min_avg_max() {
        let (task, candidates) = line_instance(40);
        let mut rng = StdRng::seed_from_u64(2);
        let summary = random_summary(
            &mut rng,
            &task,
            &candidates,
            &SingleTaskConfig::new(10.0),
            20,
        );
        assert!(summary.min <= summary.avg + 1e-12);
        assert!(summary.avg <= summary.max + 1e-12);
        assert_eq!(summary.runs, 20);
    }

    #[test]
    fn greedy_beats_the_random_average() {
        // The core quality claim of Fig. 6: Approx clearly outperforms Rand,
        // especially under tight budgets.
        let (task, candidates) = line_instance(50);
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = SingleTaskConfig::new(6.0);
        let summary = random_summary(&mut rng, &task, &candidates, &cfg, 20);
        let greedy = approx(&task, &candidates, &cfg);
        assert!(
            greedy.plan.quality > summary.avg,
            "Approx {} should beat RandAvg {}",
            greedy.plan.quality,
            summary.avg
        );
    }

    #[test]
    fn unlimited_budget_executes_everything_even_randomly() {
        let (task, candidates) = line_instance(16);
        let mut rng = StdRng::seed_from_u64(4);
        let plan = random_assignment(&mut rng, &task, &candidates, &SingleTaskConfig::new(1e9));
        assert_eq!(plan.executed_count(), 16);
    }

    #[test]
    fn determinism_per_seed() {
        let (task, candidates) = line_instance(25);
        let cfg = SingleTaskConfig::new(7.0);
        let a = random_assignment(&mut StdRng::seed_from_u64(9), &task, &candidates, &cfg);
        let b = random_assignment(&mut StdRng::seed_from_u64(9), &task, &candidates, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn summary_requires_runs() {
        let (task, candidates) = line_instance(10);
        let mut rng = StdRng::seed_from_u64(1);
        let _ = random_summary(&mut rng, &task, &candidates, &SingleTaskConfig::new(1.0), 0);
    }
}
