//! `OPT`: exhaustive single-task assignment.
//!
//! Enumerates every subset of executable slots whose total cost fits the
//! budget and returns the best quality.  The sQM problem is NP-hard, so this
//! is only feasible for small `m`; the paper (and our Fig. 6 reproduction)
//! uses it as the quality yardstick that `Approx` is compared against.

use tcsc_core::{AssignmentPlan, ExecutedSubtask, QualityEvaluator, QualityParams, Task};

use crate::candidates::SlotCandidates;
use crate::single::{execute_slot, plan_from_executions, SingleTaskConfig};

/// Hard cap on the instance size accepted by [`optimal`]: the search space is
/// `2^(executable slots)`.
pub const MAX_OPT_SLOTS: usize = 24;

/// Exhaustively searches for the quality-optimal assignment.
///
/// # Panics
/// Panics if the task has more than [`MAX_OPT_SLOTS`] executable slots, since
/// the exhaustive search would not terminate in reasonable time.
pub fn optimal(
    task: &Task,
    candidates: &SlotCandidates,
    config: &SingleTaskConfig,
) -> AssignmentPlan {
    let executable: Vec<usize> = (0..task.num_slots)
        .filter(|&j| candidates.get(j).is_some())
        .collect();
    assert!(
        executable.len() <= MAX_OPT_SLOTS,
        "OPT is exponential; refusing {} executable slots (max {MAX_OPT_SLOTS})",
        executable.len()
    );

    let params = QualityParams::new(task.num_slots, config.k);
    let mut best_plan = AssignmentPlan::empty(task.id, task.num_slots);
    let mut chosen: Vec<usize> = Vec::new();

    // Depth-first enumeration with budget pruning.  The parameter list mirrors
    // the paper's recurrence state; bundling it into a struct would only
    // obscure the correspondence.
    #[allow(clippy::too_many_arguments)]
    fn recurse(
        idx: usize,
        executable: &[usize],
        candidates: &SlotCandidates,
        config: &SingleTaskConfig,
        params: QualityParams,
        task: &Task,
        spent: f64,
        chosen: &mut Vec<usize>,
        best_plan: &mut AssignmentPlan,
    ) {
        if idx == executable.len() {
            let mut evaluator = QualityEvaluator::new(params);
            let mut executions = Vec::with_capacity(chosen.len());
            for &slot in chosen.iter() {
                let c = candidates.get(slot).expect("chosen slots have candidates");
                execute_slot(&mut evaluator, slot, c.reliability, config.use_reliability);
                executions.push(ExecutedSubtask {
                    slot,
                    worker: c.worker,
                    cost: c.cost,
                    reliability: c.reliability,
                });
            }
            let plan = plan_from_executions(task, &evaluator, executions);
            if plan.quality > best_plan.quality {
                *best_plan = plan;
            }
            return;
        }
        let slot = executable[idx];
        let cost = candidates.cost(slot).expect("executable slots have costs");
        // Branch 1: include the slot if affordable.
        if spent + cost <= config.budget + 1e-9 {
            chosen.push(slot);
            recurse(
                idx + 1,
                executable,
                candidates,
                config,
                params,
                task,
                spent + cost,
                chosen,
                best_plan,
            );
            chosen.pop();
        }
        // Branch 2: skip the slot.
        recurse(
            idx + 1,
            executable,
            candidates,
            config,
            params,
            task,
            spent,
            chosen,
            best_plan,
        );
    }

    recurse(
        0,
        &executable,
        candidates,
        config,
        params,
        task,
        0.0,
        &mut chosen,
        &mut best_plan,
    );
    best_plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::single::greedy::approx;
    use crate::single::indexed::approx_star;
    use crate::single::test_support::line_instance;

    #[test]
    fn opt_with_unlimited_budget_executes_everything() {
        let (task, candidates) = line_instance(10);
        let plan = optimal(&task, &candidates, &SingleTaskConfig::new(1e9));
        assert_eq!(plan.executed_count(), 10);
        assert!((plan.quality - 10f64.log2()).abs() < 1e-9);
    }

    #[test]
    fn opt_respects_budget() {
        let (task, candidates) = line_instance(12);
        for budget in [1.0, 4.0, 9.0] {
            let plan = optimal(&task, &candidates, &SingleTaskConfig::new(budget));
            assert!(plan.total_cost() <= budget + 1e-9);
        }
    }

    #[test]
    fn opt_dominates_approx_and_rand() {
        let (task, candidates) = line_instance(14);
        for budget in [3.0, 6.0, 12.0] {
            let cfg = SingleTaskConfig::new(budget);
            let opt = optimal(&task, &candidates, &cfg);
            let greedy = approx(&task, &candidates, &cfg);
            let indexed = approx_star(&task, &candidates, &cfg);
            assert!(
                opt.quality + 1e-9 >= greedy.plan.quality,
                "b={budget}: OPT {} < Approx {}",
                opt.quality,
                greedy.plan.quality
            );
            assert!(opt.quality + 1e-9 >= indexed.plan.quality);
        }
    }

    #[test]
    fn approx_is_within_the_theoretical_ratio_of_opt() {
        // Algorithm 1 guarantees (1 - 1/sqrt(e)) ≈ 0.393 of the optimum; in
        // practice it is far closer (Fig. 6 of the paper).
        let (task, candidates) = line_instance(14);
        let ratio_floor = 1.0 - 1.0 / std::f64::consts::E.sqrt();
        for budget in [3.0, 6.0, 12.0] {
            let cfg = SingleTaskConfig::new(budget);
            let opt = optimal(&task, &candidates, &cfg);
            let greedy = approx(&task, &candidates, &cfg);
            assert!(
                greedy.plan.quality >= ratio_floor * opt.quality - 1e-9,
                "b={budget}: Approx {} below {} of OPT {}",
                greedy.plan.quality,
                ratio_floor,
                opt.quality
            );
        }
    }

    #[test]
    fn zero_budget_yields_empty_plan() {
        let (task, candidates) = line_instance(8);
        let plan = optimal(&task, &candidates, &SingleTaskConfig::new(0.0));
        assert_eq!(plan.executed_count(), 0);
        assert_eq!(plan.quality, 0.0);
    }

    #[test]
    #[should_panic(expected = "exponential")]
    fn opt_refuses_large_instances() {
        let (task, candidates) = line_instance(30);
        let _ = optimal(&task, &candidates, &SingleTaskConfig::new(5.0));
    }
}
