//! The dual problem: minimise the budget needed to reach a target quality.
//!
//! Section IV of the paper notes that the dual of quality maximisation under
//! a budget — cost minimisation under a quality constraint — can be handled
//! with the primal solver (a primal–dual style reduction).  We implement it
//! as a monotone search over budgets: the achievable quality is non-decreasing
//! in the budget, so a bisection over the budget axis using `Approx*` as the
//! primal oracle converges to (approximately) the least budget that reaches
//! the target.

use tcsc_core::{AssignmentPlan, Task};

use crate::candidates::SlotCandidates;
use crate::single::indexed::approx_star;
use crate::single::SingleTaskConfig;

/// Result of the dual search.
#[derive(Debug, Clone, PartialEq)]
pub struct DualOutcome {
    /// The smallest budget found that reaches the target quality (within the
    /// bisection tolerance), or `None` if even the full-completion budget is
    /// insufficient.
    pub budget: Option<f64>,
    /// The plan achieved at that budget (empty when `budget` is `None`).
    pub plan: AssignmentPlan,
}

/// Finds (approximately) the minimum budget whose `Approx*` plan reaches
/// `target_quality`.
///
/// `tolerance` is the absolute budget tolerance of the bisection.
pub fn min_budget_for_quality(
    task: &Task,
    candidates: &SlotCandidates,
    base_config: &SingleTaskConfig,
    target_quality: f64,
    tolerance: f64,
) -> DualOutcome {
    assert!(tolerance > 0.0, "tolerance must be positive");
    // Upper bound: the cost of executing every available slot.
    let full_budget: f64 = (0..task.num_slots).filter_map(|j| candidates.cost(j)).sum();
    let solve = |budget: f64| {
        let cfg = SingleTaskConfig {
            budget,
            ..*base_config
        };
        approx_star(task, candidates, &cfg).plan
    };

    let full_plan = solve(full_budget);
    if full_plan.quality + 1e-12 < target_quality {
        return DualOutcome {
            budget: None,
            plan: AssignmentPlan::empty(task.id, task.num_slots),
        };
    }

    let (mut lo, mut hi) = (0.0f64, full_budget);
    let mut best_plan = full_plan;
    while hi - lo > tolerance {
        let mid = (lo + hi) / 2.0;
        let plan = solve(mid);
        if plan.quality + 1e-12 >= target_quality {
            hi = mid;
            best_plan = plan;
        } else {
            lo = mid;
        }
    }
    DualOutcome {
        budget: Some(hi),
        plan: best_plan,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::single::test_support::line_instance;

    #[test]
    fn dual_finds_a_budget_for_achievable_targets() {
        let (task, candidates) = line_instance(20);
        let cfg = SingleTaskConfig::new(0.0);
        let outcome = min_budget_for_quality(&task, &candidates, &cfg, 2.0, 0.05);
        let budget = outcome.budget.expect("target quality 2.0 is achievable");
        assert!(budget > 0.0);
        assert!(outcome.plan.quality + 1e-9 >= 2.0);
        // The found budget should be (near-)minimal: lowering it noticeably
        // must break the target.
        let smaller = SingleTaskConfig::new((budget - 1.0).max(0.0));
        let plan = crate::single::indexed::approx_star(&task, &candidates, &smaller).plan;
        assert!(plan.quality < 2.0 + 1e-6);
    }

    #[test]
    fn dual_reports_unachievable_targets() {
        let (task, candidates) = line_instance(8);
        let cfg = SingleTaskConfig::new(0.0);
        // log2(8) = 3 is the ceiling; 5.0 cannot be reached.
        let outcome = min_budget_for_quality(&task, &candidates, &cfg, 5.0, 0.1);
        assert!(outcome.budget.is_none());
        assert_eq!(outcome.plan.executed_count(), 0);
    }

    #[test]
    fn zero_target_needs_zero_budget() {
        let (task, candidates) = line_instance(8);
        let cfg = SingleTaskConfig::new(0.0);
        let outcome = min_budget_for_quality(&task, &candidates, &cfg, 0.0, 0.01);
        assert!(outcome.budget.unwrap() <= 0.01 + 1e-9);
    }

    #[test]
    #[should_panic(expected = "tolerance")]
    fn tolerance_must_be_positive() {
        let (task, candidates) = line_instance(8);
        let cfg = SingleTaskConfig::new(0.0);
        let _ = min_budget_for_quality(&task, &candidates, &cfg, 1.0, 0.0);
    }
}
