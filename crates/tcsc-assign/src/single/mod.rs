//! Single-task assignment: the sQM problem (Section III of the paper).
//!
//! Given one TCSC task, a budget `b` and the per-slot candidate assignments
//! (nearest available worker and its cost), maximise the entropy quality
//! `q(τ)` without exceeding the budget.  The problem is NP-hard (Lemma 3);
//! the module provides:
//!
//! * [`greedy::approx`] — the polynomial greedy Algorithm 1 (`Approx`),
//!   selecting at every step the subtask with the largest quality increment
//!   per unit cost;
//! * [`indexed::approx_star`] — `Approx*`, the same greedy framework
//!   accelerated by the aggregated Voronoi tree index and best-first
//!   upper-bound pruning (Section III-C);
//! * [`opt::optimal`] — exhaustive search, feasible for small `m`, used as the
//!   quality yardstick of Fig. 6;
//! * [`baseline::random_assignment`] — the randomized baseline (`Rand`) and
//!   its aggregated `RandMin` / `RandMax` / `RandAvg` statistics;
//! * [`dual`] — the dual problem (minimum budget for a target quality),
//!   solved by searching over budgets with the primal solver.

pub mod baseline;
pub mod dual;
pub mod greedy;
pub mod indexed;
pub mod opt;

use tcsc_core::{AssignmentPlan, ExecutedSubtask, QualityEvaluator, SlotIndex, Task};

use crate::candidates::SlotCandidates;

/// Parameters shared by all single-task solvers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SingleTaskConfig {
    /// Budget `b` for this task.
    pub budget: f64,
    /// Interpolation parameter `k` of the quality metric (paper default 3).
    pub k: usize,
    /// Split threshold `ts` of the tree index (paper default 4); only used by
    /// `Approx*`.
    pub ts: usize,
    /// Whether to weight finishing probabilities by worker reliability
    /// (Eq. 4–5).  With fully reliable workers this has no effect.
    pub use_reliability: bool,
}

impl SingleTaskConfig {
    /// Configuration with the paper's default `k = 3`, `ts = 4`.
    pub fn new(budget: f64) -> Self {
        Self {
            budget,
            k: 3,
            ts: 4,
            use_reliability: false,
        }
    }

    /// Overrides `k`.
    pub fn with_k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Overrides `ts`.
    pub fn with_ts(mut self, ts: usize) -> Self {
        self.ts = ts;
        self
    }

    /// Enables reliability weighting.
    pub fn with_reliability(mut self) -> Self {
        self.use_reliability = true;
        self
    }
}

/// Builds an [`AssignmentPlan`] from an evaluator's executed slots and the
/// candidates that were charged for them.
pub(crate) fn plan_from_executions(
    task: &Task,
    evaluator: &QualityEvaluator,
    executions: Vec<ExecutedSubtask>,
) -> AssignmentPlan {
    AssignmentPlan {
        task: task.id,
        num_slots: task.num_slots,
        quality: evaluator.quality(),
        executions,
    }
}

/// Executes one slot on the evaluator, honouring the reliability switch.
pub(crate) fn execute_slot(
    evaluator: &mut QualityEvaluator,
    slot: SlotIndex,
    reliability: f64,
    use_reliability: bool,
) {
    if use_reliability {
        evaluator.execute_with_reliability(slot, reliability);
    } else {
        evaluator.execute(slot);
    }
}

/// The slot that, executed alone, yields the highest single-subtask quality
/// among the affordable candidates (line 3 of Algorithm 1, the `T′_cur` seed).
///
/// With a single executed slot the quality is a decreasing function of the
/// total temporal distance to the other slots, which is minimised by the slot
/// closest to the centre of the timeline; among affordable slots we therefore
/// pick the one nearest to `m / 2`.
pub(crate) fn best_single_slot(
    candidates: &SlotCandidates,
    num_slots: usize,
    budget: f64,
) -> Option<SlotIndex> {
    let center = (num_slots.saturating_sub(1)) as f64 / 2.0;
    (0..num_slots)
        .filter(|&j| candidates.cost(j).is_some_and(|c| c <= budget))
        .min_by(|&a, &b| {
            (a as f64 - center)
                .abs()
                .total_cmp(&(b as f64 - center).abs())
                .then(a.cmp(&b))
        })
}

#[cfg(test)]
pub(crate) mod test_support {
    //! Shared fixtures for the single-task solver tests.

    use tcsc_core::{
        Domain, EuclideanCost, Location, Task, TaskId, Worker, WorkerId, WorkerPool, WorkerSlot,
    };
    use tcsc_index::WorkerIndex;

    use crate::candidates::SlotCandidates;

    /// A deterministic small instance: a task with `m` slots at the origin and
    /// one worker per slot at a varying distance (slot `j`'s worker sits at
    /// distance `1 + (j % 5)`).
    pub fn line_instance(m: usize) -> (Task, SlotCandidates) {
        let task = Task::new(TaskId(0), Location::new(0.0, 0.0), m);
        let workers: WorkerPool = (0..m)
            .map(|j| {
                Worker::new(
                    WorkerId(j as u32),
                    vec![WorkerSlot {
                        slot: j,
                        location: Location::new(1.0 + (j % 5) as f64, 0.0),
                    }],
                )
            })
            .collect();
        let domain = Domain::square(100.0);
        let index = WorkerIndex::build(&workers, m, &domain);
        let candidates = SlotCandidates::compute(&task, &index, &EuclideanCost::default());
        (task, candidates)
    }

    /// An instance where some slots have no worker at all.
    pub fn gappy_instance(m: usize) -> (Task, SlotCandidates) {
        let task = Task::new(TaskId(0), Location::new(0.0, 0.0), m);
        let workers: WorkerPool = (0..m)
            .filter(|j| j % 3 != 2)
            .map(|j| {
                Worker::new(
                    WorkerId(j as u32),
                    vec![WorkerSlot {
                        slot: j,
                        location: Location::new(2.0, 0.0),
                    }],
                )
            })
            .collect();
        let domain = Domain::square(100.0);
        let index = WorkerIndex::build(&workers, m, &domain);
        let candidates = SlotCandidates::compute(&task, &index, &EuclideanCost::default());
        (task, candidates)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use test_support::line_instance;

    #[test]
    fn config_builders() {
        let cfg = SingleTaskConfig::new(10.0)
            .with_k(5)
            .with_ts(8)
            .with_reliability();
        assert_eq!(cfg.budget, 10.0);
        assert_eq!(cfg.k, 5);
        assert_eq!(cfg.ts, 8);
        assert!(cfg.use_reliability);
        let default = SingleTaskConfig::new(1.0);
        assert_eq!(default.k, 3);
        assert_eq!(default.ts, 4);
        assert!(!default.use_reliability);
    }

    #[test]
    fn best_single_slot_prefers_the_center() {
        let (_, candidates) = line_instance(11);
        let slot = best_single_slot(&candidates, 11, f64::INFINITY).unwrap();
        assert_eq!(slot, 5);
    }

    #[test]
    fn best_single_slot_respects_budget() {
        let (_, candidates) = line_instance(11);
        // Slot 5's worker sits at distance 1 + (5 % 5) = 1, so even a budget
        // of 1 affords the centre; a budget below 1 affords nothing.
        assert_eq!(best_single_slot(&candidates, 11, 1.0), Some(5));
        assert_eq!(best_single_slot(&candidates, 11, 0.5), None);
    }
}
