//! The batched / streaming multi-task assignment engine.
//!
//! The per-call solvers of [`crate::multi`] rebuild every piece of per-task
//! candidate state from scratch on each invocation: `TaskState::new` runs one
//! index query per slot, and nothing survives between calls even when the
//! same tasks are solved again (budget sweeps, objective comparisons,
//! re-planning).  [`AssignmentEngine`] is the long-lived alternative: it owns
//! (or borrows) the [`WorkerIndex`], a persistent occupancy
//! [`WorkerLedger`], and an incremental [`CandidateCache`] keyed by task, so
//! that repeated and streaming solves amortise the worker-cost-retrieval work
//! across calls.
//!
//! # Cache invalidation protocol
//!
//! * The cache stores, per task, the *base* per-slot candidates — the nearest
//!   worker per slot under an **empty** ledger.  The base depends only on the
//!   index, and the index only changes through the engine's own mutation API
//!   ([`AssignmentEngine::insert_worker`] / [`AssignmentEngine::remove_worker`]
//!   / [`AssignmentEngine::move_worker`]), which invalidates exactly the
//!   affected cached slots through a persistent **worker → holder-tasks map**
//!   — so the base is always exact with respect to the current index.
//! * At checkout the base is cloned and reconciled with the engine's current
//!   ledger: only slots whose base candidate is occupied are recomputed
//!   (invalidation-driven refresh); every other slot is served without
//!   touching the index.
//! * During a solve, a **reverse holder map** `(slot, worker) -> tasks whose
//!   best pending candidate targets that worker` is maintained.  Occupying a
//!   worker then refreshes exactly the affected tasks' slots instead of
//!   re-scanning (or worse, recomputing) every task.
//!
//! # Determinism
//!
//! The engine's greedy loops are ports of the serial solvers with the holder
//! map replacing the serial `O(|T|)` invalidation scan.  A task is in the
//! holder set of `(slot, worker)` if and only if its cached best candidate
//! targets `(slot, worker)` — exactly the predicate of the serial scan — so
//! the engine performs the *same* candidate refreshes, counts the *same*
//! conflicts and executes the *same* subtasks in the same order.  On a fresh
//! engine, [`AssignmentEngine::assign_batch`] is bit-identical to
//! [`crate::multi::rebuild::msqm_rebuild`] / [`crate::multi::rebuild::mmqm_rebuild`]
//! (the pre-engine solvers, kept as the rebuild-per-call baseline); the
//! equivalence is locked in by `tests/engine_equivalence.rs`.

pub(crate) mod commit;
pub mod concurrent;

use std::borrow::Cow;
use std::collections::{BTreeSet, HashMap};

use tcsc_core::{
    CostModel, Domain, ExecutedSubtask, InterpolationWeights, Location, MultiAssignment,
    QualityParams, SpatioTemporalEvaluator, Task, TaskId, Worker, WorkerId,
};
use tcsc_index::{IndexMutation, MutableSpatialIndex, SpatialQuery, WorkerIndex, WorkerProfile};
use tcsc_obs::{NoopRecorder, Recorder, Stopwatch};

use crate::candidates::{SlotCandidates, WorkerLedger};
use crate::engine::commit::{inline_wave, msqm_commit_loop, msqm_commit_loop_celf, DenseBackend};
use crate::multi::sapprox::SpatioTemporalObjective;
use crate::multi::{ConflictAccounting, MultiOutcome, MultiTaskConfig, TaskState};
pub use crate::multi::{RefreshStats, RefreshStrategy};

/// Which aggregate objective a batch solve maximises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// Maximise the summation quality `q_sum` (MSQM, Problem 2).
    SumQuality,
    /// Maximise the minimum quality `q_min` (MMQM, Problem 3).
    MinQuality,
}

/// Candidate-computation counters of one solve (and, accumulated, of an
/// engine's lifetime).
///
/// `slot_computations` counts actual index-backed candidate computations
/// (initial builds plus refreshes); `rebuild_slot_computations` counts what a
/// rebuild-per-call strategy — recomputing every task's candidates from
/// scratch, as the pre-engine solvers do — would have performed for the same
/// work.  The difference is the engine's saving.
///
/// The refresh-accounting block (`full_refreshes`, `incremental_patches`,
/// `stale_pops`, `refresh_nanos`) measures the *commit-tail* best-candidate
/// work of the run — the cost the [`RefreshStrategy::Incremental`] gain
/// ledger attacks.  Those four fields are **measurement, not behaviour**:
/// different drivers of the same plan (engine greedy vs task-parallel master
/// vs simulated cluster) legitimately issue different best-candidate request
/// sequences, so the refresh block is excluded from `PartialEq` and from
/// every bit-identity contract.
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheStats {
    /// Tasks whose candidates were computed from scratch (cache misses).
    pub tasks_computed: usize,
    /// Tasks whose candidates were served from the cache (cache hits).
    pub tasks_reused: usize,
    /// Per-slot candidate computations actually performed against the index.
    pub slot_computations: usize,
    /// Subset of `slot_computations` that were occupancy-driven refreshes
    /// (checkout reconciliation and in-run worker conflicts).
    pub slot_refreshes: usize,
    /// Per-slot computations a rebuild-per-call strategy would have performed
    /// for the same solves.
    pub rebuild_slot_computations: usize,
    /// Full best-candidate searches beyond each task's warm start (the
    /// commit-tail recomputes; `0` in steady state on the incremental path).
    pub full_refreshes: usize,
    /// Gain-ledger entries patched (re-keyed) after candidate refreshes and
    /// rollback undos.
    pub incremental_patches: usize,
    /// Stale gain-ledger entries re-scored on pop (the lazy-greedy work).
    pub stale_pops: usize,
    /// Per-task best-candidate re-scores the MSQM commit loop issued beyond
    /// the warm start: under [`crate::multi::ConflictAccounting::V1`] every
    /// eagerly refreshed task per grant, under
    /// [`crate::multi::ConflictAccounting::V2`] only the tasks whose lazy
    /// upper bound actually bound the selection.  Like the rest of the
    /// refresh block this is measurement, not behaviour (excluded from
    /// `PartialEq`).
    pub commit_rescores: usize,
    /// Nanoseconds spent in commit-tail refresh work (searches beyond the
    /// warm start, ledger pops and patches).
    pub refresh_nanos: u64,
}

/// Equality covers the candidate-computation counters only; the refresh
/// accounting is a per-driver measurement (see the struct docs).
impl PartialEq for CacheStats {
    fn eq(&self, other: &Self) -> bool {
        self.tasks_computed == other.tasks_computed
            && self.tasks_reused == other.tasks_reused
            && self.slot_computations == other.slot_computations
            && self.slot_refreshes == other.slot_refreshes
            && self.rebuild_slot_computations == other.rebuild_slot_computations
    }
}
impl Eq for CacheStats {}

impl CacheStats {
    /// Accumulates another stats block into this one.
    pub fn merge(&mut self, other: &CacheStats) {
        self.tasks_computed += other.tasks_computed;
        self.tasks_reused += other.tasks_reused;
        self.slot_computations += other.slot_computations;
        self.slot_refreshes += other.slot_refreshes;
        self.rebuild_slot_computations += other.rebuild_slot_computations;
        self.full_refreshes += other.full_refreshes;
        self.incremental_patches += other.incremental_patches;
        self.stale_pops += other.stale_pops;
        self.commit_rescores += other.commit_rescores;
        self.refresh_nanos += other.refresh_nanos;
    }

    /// Counts one conflict-driven slot refresh (a real index-backed
    /// recompute that the rebuild baseline would also have performed) — the
    /// single site of this accounting convention, shared by every commit
    /// backend and the rebuild solvers.
    pub(crate) fn count_conflict_refresh(&mut self) {
        self.slot_computations += 1;
        self.slot_refreshes += 1;
        self.rebuild_slot_computations += 1;
    }

    /// Folds one task state's refresh accounting into the run's counters.
    pub fn absorb_refresh(&mut self, refresh: &RefreshStats) {
        self.full_refreshes += refresh.full_refreshes;
        self.incremental_patches += refresh.incremental_patches;
        self.stale_pops += refresh.stale_pops;
        self.refresh_nanos += refresh.refresh_nanos;
    }

    /// Slot computations saved relative to the rebuild-per-call baseline.
    pub fn saved_slot_computations(&self) -> usize {
        self.rebuild_slot_computations
            .saturating_sub(self.slot_computations)
    }
}

/// Per-drain index-churn accounting of the mutable-index service mode:
/// what the engine's worker mutations cost since the last drain, and what a
/// rebuild-per-mutation strategy would have paid instead.  Published into the
/// recorder's metrics registry on every drain and then reset.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChurnCounters {
    /// Worker mutations (insert/remove/move) applied since the last drain.
    pub ops: u64,
    /// Index entries actually re-gridded by those mutations (the tile-local
    /// splice cost).
    pub entries_touched: u64,
    /// Index entries a from-scratch rebuild after each mutation would have
    /// re-gridded (the cost the in-place mutations avoided).
    pub rebuild_equiv: u64,
    /// Cached candidate slots refreshed by worker-scoped invalidation.
    pub cache_refreshes: u64,
}

impl ChurnCounters {
    fn note(&mut self, mutation: &IndexMutation, cache_refreshes: usize) {
        self.ops += 1;
        self.entries_touched += mutation.entries_touched as u64;
        self.rebuild_equiv += mutation.rebuild_equiv_entries as u64;
        self.cache_refreshes += cache_refreshes as u64;
    }

    /// Publishes the counters (plus the index's current bucket-imbalance
    /// gauge) into a recorder and resets them.  Emitted even when zero, so a
    /// service dashboard always sees the churn keys.
    fn publish_and_reset(&mut self, obs: &impl Recorder, imbalance_milli: u64) {
        obs.counter("index.moves", self.ops);
        obs.counter("index.entries_spliced", self.entries_touched);
        obs.counter("index.rebuild_equiv_cost", self.rebuild_equiv);
        obs.counter("index.cache_refreshes", self.cache_refreshes);
        obs.gauge("index.occupancy_imbalance_milli", imbalance_milli);
        *self = Self::default();
    }
}

/// One cached task: the task identity (to detect id reuse), its base
/// candidates and the LRU stamp of its last checkout.
#[derive(Debug, Clone)]
struct CacheEntry {
    task: Task,
    base: SlotCandidates,
    /// `(arrival round, checkout tick)`: eviction is keyed on the round first
    /// so entries from older streaming rounds always leave before entries the
    /// current round touched, with the per-checkout tick breaking ties.
    last_used: (u64, u64),
}

/// Incremental per-task candidate cache.
///
/// Maps a task to its *base* [`SlotCandidates`] — the per-slot nearest
/// workers under an empty ledger.  Occupancy is reconciled at checkout by
/// refreshing only the slots whose base candidate is currently occupied.
///
/// # Worker-scoped invalidation
///
/// The cache maintains a reverse **worker → holder-tasks** map: which cached
/// tasks currently hold a given worker as a base candidate of at least one
/// slot.  When the index mutates underneath the cache
/// ([`MutableSpatialIndex`]), the engine calls the matching invalidation:
///
/// * [`CandidateCache::invalidate_removed`] — only the holder tasks of the
///   removed worker can lose a candidate; exactly their holding slots are
///   recomputed.
/// * [`CandidateCache::invalidate_inserted`] — a new worker can only *win* a
///   slot, so a cached slot is recomputed iff it is empty or the new worker's
///   distance beats (or ties) the current candidate's — a cheap arithmetic
///   ring bound per slot, no index query unless the slot can actually change.
/// * [`CandidateCache::invalidate_moved`] — the union of both rules: every
///   holding slot (the worker may have moved away, or just needs its cached
///   location refreshed) plus every slot the new location can now win.
///
/// Every refresh recomputes the slot with the same empty-ledger
/// `candidate_for_slot` a cold computation uses, so an invalidated cache is
/// bit-identical to a cache rebuilt from scratch against the mutated index —
/// locked in by `tests/mutation_equivalence.rs`.
///
/// # Eviction
///
/// By default the cache is unbounded (every distinct task seen is retained).
/// [`CandidateCache::with_capacity`] bounds it: when an insert pushes the
/// cache past its capacity, the least-recently-used entries are evicted,
/// ordered by `(arrival round, checkout tick)`.  Rounds advance via
/// [`CandidateCache::advance_round`] (the engine does this on every
/// [`AssignmentEngine::drain`]), so a streaming deployment evicts the tasks
/// of long-gone rounds first.  Eviction never affects correctness — an
/// evicted task is simply recomputed on its next checkout.
#[derive(Debug, Default)]
pub struct CandidateCache {
    base: HashMap<TaskId, CacheEntry>,
    /// Reverse map: worker -> cached tasks holding it as a base candidate of
    /// at least one slot.  Kept exactly in sync with `base` (registered on
    /// insert/refresh, unregistered on evict/replace), it turns a worker
    /// removal into an `O(|holders|)` refresh instead of a full-cache scan.
    holders: HashMap<WorkerId, BTreeSet<TaskId>>,
    capacity: Option<usize>,
    round: u64,
    tick: u64,
}

/// Registers every base-candidate worker of `base` as held by `task`.
fn register_holders(
    holders: &mut HashMap<WorkerId, BTreeSet<TaskId>>,
    task: TaskId,
    base: &SlotCandidates,
) {
    for slot in 0..base.len() {
        if let Some(c) = base.get(slot) {
            holders.entry(c.worker).or_default().insert(task);
        }
    }
}

/// Removes `task` from the holder sets of every base-candidate worker of
/// `base`, dropping sets that become empty.
fn unregister_holders(
    holders: &mut HashMap<WorkerId, BTreeSet<TaskId>>,
    task: TaskId,
    base: &SlotCandidates,
) {
    for slot in 0..base.len() {
        if let Some(c) = base.get(slot) {
            if let Some(set) = holders.get_mut(&c.worker) {
                set.remove(&task);
                if set.is_empty() {
                    holders.remove(&c.worker);
                }
            }
        }
    }
}

impl CandidateCache {
    /// An empty, unbounded cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache retaining at most `capacity` tasks (LRU eviction).
    ///
    /// # Panics
    /// Panics when `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "a bounded candidate cache needs capacity > 0");
        Self {
            capacity: Some(capacity),
            ..Self::default()
        }
    }

    /// The configured capacity (`None` = unbounded).
    pub fn capacity(&self) -> Option<usize> {
        self.capacity
    }

    /// Re-bounds the cache, evicting LRU entries if the new capacity is
    /// already exceeded (`None` removes the bound).
    ///
    /// # Panics
    /// Panics when `capacity` is `Some(0)`.
    pub fn set_capacity(&mut self, capacity: Option<usize>) {
        assert!(
            capacity != Some(0),
            "a bounded candidate cache needs capacity > 0"
        );
        self.capacity = capacity;
        self.enforce_capacity();
    }

    /// Advances the arrival-round clock used by the LRU eviction order.
    pub fn advance_round(&mut self) {
        self.round += 1;
    }

    /// The current arrival round.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Number of cached tasks.
    pub fn len(&self) -> usize {
        self.base.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.base.is_empty()
    }

    /// Drops every cached entry (e.g. after swapping the worker index).
    pub fn clear(&mut self) {
        self.base.clear();
        self.holders.clear();
    }

    /// Evicts one task's entry, returning whether it was present.
    pub fn evict(&mut self, task: TaskId) -> bool {
        match self.base.remove(&task) {
            Some(entry) => {
                unregister_holders(&mut self.holders, task, &entry.base);
                true
            }
            None => false,
        }
    }

    /// Number of cached tasks currently holding `worker` as a base candidate
    /// of at least one slot (the invalidation fan-out of removing or moving
    /// that worker).
    pub fn holding_tasks(&self, worker: WorkerId) -> usize {
        self.holders.get(&worker).map_or(0, BTreeSet::len)
    }

    /// Evicts least-recently-used entries until the capacity bound holds.
    fn enforce_capacity(&mut self) {
        let Some(capacity) = self.capacity else {
            return;
        };
        while self.base.len() > capacity {
            let lru = self
                .base
                .iter()
                .min_by_key(|(id, e)| (e.last_used, id.0))
                .map(|(id, _)| *id)
                .expect("a non-empty cache has an LRU entry");
            self.evict(lru);
        }
    }

    /// Refreshes the cache after `id` was **removed** from the index: every
    /// slot whose base candidate was the removed worker is recomputed with
    /// empty-ledger semantics.  Only the holder tasks of `id` are touched.
    /// Returns the number of slot refreshes performed.
    pub fn invalidate_removed(
        &mut self,
        id: WorkerId,
        index: &dyn SpatialQuery,
        cost_model: &dyn CostModel,
    ) -> usize {
        let Some(tasks) = self.holders.get(&id) else {
            return 0;
        };
        let tasks: Vec<TaskId> = tasks.iter().copied().collect();
        let empty = WorkerLedger::new();
        let mut refreshed = 0;
        for tid in tasks {
            let Some(entry) = self.base.get_mut(&tid) else {
                continue;
            };
            unregister_holders(&mut self.holders, tid, &entry.base);
            for slot in 0..entry.base.len() {
                if entry.base.get(slot).is_some_and(|c| c.worker == id) {
                    entry
                        .base
                        .refresh_slot(&entry.task, slot, index, cost_model, &empty);
                    refreshed += 1;
                }
            }
            register_holders(&mut self.holders, tid, &entry.base);
        }
        refreshed
    }

    /// Refreshes the cache after a worker was **inserted** into the index at
    /// `profile`'s locations.  A fresh worker can only *win* a slot, so a
    /// cached slot is recomputed iff it has no candidate, or the new worker's
    /// distance beats (or ties) the current candidate's distance — checked by
    /// arithmetic alone, with an index query only for slots that can change.
    /// Returns the number of slot refreshes performed.
    pub fn invalidate_inserted(
        &mut self,
        id: WorkerId,
        profile: &WorkerProfile,
        index: &dyn SpatialQuery,
        cost_model: &dyn CostModel,
    ) -> usize {
        self.invalidate_upsert(id, profile, false, index, cost_model)
    }

    /// Refreshes the cache after a worker **moved** to `profile`'s (new)
    /// locations: the union of the removal rule (every slot holding the
    /// worker — it may have moved away, and its cached location must stay
    /// current) and the insertion rule (every slot the new location can now
    /// win).  Returns the number of slot refreshes performed.
    pub fn invalidate_moved(
        &mut self,
        id: WorkerId,
        profile: &WorkerProfile,
        index: &dyn SpatialQuery,
        cost_model: &dyn CostModel,
    ) -> usize {
        self.invalidate_upsert(id, profile, true, index, cost_model)
    }

    fn invalidate_upsert(
        &mut self,
        id: WorkerId,
        profile: &WorkerProfile,
        include_holding_slots: bool,
        index: &dyn SpatialQuery,
        cost_model: &dyn CostModel,
    ) -> usize {
        let empty = WorkerLedger::new();
        let mut refreshed = 0;
        // The win check scans every cached task, but it is pure arithmetic
        // (two distances per in-horizon profile entry); the expensive index
        // query runs only for slots that can actually change.
        let ids: Vec<TaskId> = self.base.keys().copied().collect();
        for tid in ids {
            let entry = self.base.get_mut(&tid).expect("the id was just listed");
            let mut slots: BTreeSet<usize> = BTreeSet::new();
            if include_holding_slots {
                for slot in 0..entry.base.len() {
                    if entry.base.get(slot).is_some_and(|c| c.worker == id) {
                        slots.insert(slot);
                    }
                }
            }
            for (slot, loc) in &profile.entries {
                if *slot >= entry.base.len() {
                    continue;
                }
                let wins = match entry.base.get(*slot) {
                    // An empty slot gains its first candidate.
                    None => true,
                    // Already covered by the holding-slot rule above.
                    Some(cur) if cur.worker == id => false,
                    // Recompute on a tie as well: the index's own tie-break
                    // decides, and a spurious refresh is merely redundant
                    // work, never a wrong candidate.
                    Some(cur) => {
                        let d_new = entry.task.location.distance(loc);
                        let d_cur = entry.task.location.distance(&cur.worker_location);
                        d_new <= d_cur
                    }
                };
                if wins {
                    slots.insert(*slot);
                }
            }
            if slots.is_empty() {
                continue;
            }
            unregister_holders(&mut self.holders, tid, &entry.base);
            for slot in slots {
                entry
                    .base
                    .refresh_slot(&entry.task, slot, index, cost_model, &empty);
                refreshed += 1;
            }
            register_holders(&mut self.holders, tid, &entry.base);
        }
        refreshed
    }

    /// Checks a task's *base* candidates out of the cache: a clone of the
    /// per-slot nearest workers under an empty ledger, computed (and
    /// retained) on a miss.  A cached entry is only reused when the stored
    /// task is identical to the queried one, so id reuse across different
    /// tasks falls back to a recompute instead of serving wrong candidates.
    pub fn checkout_base(
        &mut self,
        task: &Task,
        index: &dyn SpatialQuery,
        cost_model: &dyn CostModel,
        stats: &mut CacheStats,
    ) -> SlotCandidates {
        // What a rebuild-per-call strategy would pay for this task.
        stats.rebuild_slot_computations += task.num_slots;
        let hit = matches!(self.base.get(&task.id), Some(e) if e.task == *task);
        if !hit {
            stats.tasks_computed += 1;
            stats.slot_computations += task.num_slots;
            // Id reuse across different task identities: the stale entry's
            // holder registrations must leave *before* the new ones arrive
            // (the two bases may share workers).
            if let Some(old) = self.base.remove(&task.id) {
                unregister_holders(&mut self.holders, task.id, &old.base);
            }
            let base = SlotCandidates::compute(task, index, cost_model);
            register_holders(&mut self.holders, task.id, &base);
            self.base.insert(
                task.id,
                CacheEntry {
                    task: task.clone(),
                    base,
                    last_used: (self.round, self.tick),
                },
            );
            self.enforce_capacity();
        } else {
            stats.tasks_reused += 1;
        }
        let stamp = (self.round, self.tick);
        self.tick += 1;
        let entry = self
            .base
            .get_mut(&task.id)
            .expect("the entry was just inserted or verified present");
        entry.last_used = stamp;
        entry.base.clone()
    }

    /// Checks a task's working candidates out of the cache: the base
    /// candidates of [`CandidateCache::checkout_base`], reconciled against
    /// `ledger` by refreshing exactly the slots whose base candidate is
    /// occupied.
    pub fn checkout(
        &mut self,
        task: &Task,
        index: &dyn SpatialQuery,
        cost_model: &dyn CostModel,
        ledger: &WorkerLedger,
        stats: &mut CacheStats,
    ) -> SlotCandidates {
        let mut working = self.checkout_base(task, index, cost_model, stats);
        if !ledger.is_empty() {
            for slot in 0..working.len() {
                // A `None` base candidate means the slot has no worker at all;
                // occupancy can only shrink availability, so it stays `None`.
                let occupied = working
                    .get(slot)
                    .is_some_and(|c| ledger.is_occupied(slot, c.worker));
                if occupied {
                    working.refresh_slot(task, slot, index, cost_model, ledger);
                    stats.slot_computations += 1;
                    stats.slot_refreshes += 1;
                }
            }
        }
        working
    }
}

/// The serial MSQM greedy over already-checked-out task states against a
/// dense ledger: a thin wrapper binding [`commit::msqm_commit_loop`] to the
/// dense backend with the inline candidate wave.  Returns
/// `(conflicts, executions)`.
///
/// [`AssignmentEngine::assign_batch`], the cache-sharing group-parallel
/// variant and (through the sharded backend) the concurrent engine all
/// commit through the same loop, so their results can only differ through
/// the candidates they feed in — the equivalence suites
/// (`engine_equivalence.rs`, `concurrent_equivalence.rs`) are the tripwire.
pub(crate) fn msqm_greedy_core(
    states: &mut [TaskState],
    budget: f64,
    index: &dyn SpatialQuery,
    cost_model: &dyn CostModel,
    ledger: &mut WorkerLedger,
    accounting: ConflictAccounting,
    stats: &mut CacheStats,
) -> (usize, usize) {
    let mut backend = DenseBackend {
        index,
        cost_model,
        ledger,
    };
    match accounting {
        ConflictAccounting::V1 => {
            msqm_commit_loop(states, budget, &mut backend, stats, &mut inline_wave)
        }
        ConflictAccounting::V2 => {
            msqm_commit_loop_celf(states, budget, &mut backend, stats, &mut inline_wave)
        }
    }
}

/// Long-lived batched / streaming multi-task assignment engine.
///
/// Owns (or borrows) the worker index, a persistent occupancy ledger and the
/// incremental [`CandidateCache`]; see the [module docs](self) for the
/// invalidation protocol and the determinism argument.
///
/// * [`AssignmentEngine::assign_batch`] solves one task batch against the
///   current ledger and commits the resulting occupancy.
/// * [`AssignmentEngine::submit`] / [`AssignmentEngine::drain`] accept task
///   arrivals across rounds and solve them batch-wise; occupancy persists
///   between rounds so a worker granted in round `r` is unavailable in round
///   `r + 1`.
/// * [`AssignmentEngine::release_all`] frees every commitment (re-planning),
///   while the candidate cache keeps amortising index lookups.
///
/// The engine is generic over a [`Recorder`]; the default
/// [`NoopRecorder`] compiles every instrumentation site away
/// (`R::IS_ENABLED` is a `const`), so observability is free unless a live
/// session is attached via [`AssignmentEngine::with_recorder`].
pub struct AssignmentEngine<'a, R: Recorder = NoopRecorder> {
    index: Cow<'a, WorkerIndex>,
    cost_model: &'a dyn CostModel,
    config: MultiTaskConfig,
    ledger: WorkerLedger,
    cache: CandidateCache,
    pending: Vec<Task>,
    lifetime_stats: CacheStats,
    churn: ChurnCounters,
    obs: R,
}

impl<'a> AssignmentEngine<'a> {
    /// An engine owning its worker index (the long-lived serving setup).
    pub fn new(index: WorkerIndex, cost_model: &'a dyn CostModel, config: MultiTaskConfig) -> Self {
        Self::from_cow(Cow::Owned(index), cost_model, config)
    }

    /// An engine borrowing a caller-owned worker index (the cheap,
    /// per-call construction used by the [`crate::multi`] solver wrappers).
    pub fn borrowed(
        index: &'a WorkerIndex,
        cost_model: &'a dyn CostModel,
        config: MultiTaskConfig,
    ) -> Self {
        Self::from_cow(Cow::Borrowed(index), cost_model, config)
    }

    fn from_cow(
        index: Cow<'a, WorkerIndex>,
        cost_model: &'a dyn CostModel,
        config: MultiTaskConfig,
    ) -> Self {
        Self {
            index,
            cost_model,
            config,
            ledger: WorkerLedger::new(),
            cache: CandidateCache::new(),
            pending: Vec::new(),
            lifetime_stats: CacheStats::default(),
            churn: ChurnCounters::default(),
            obs: NoopRecorder,
        }
    }
}

impl<'a, R: Recorder> AssignmentEngine<'a, R> {
    /// Rebinds the engine to a live recorder (checkout/commit spans, cache
    /// and refresh counters, batch-latency histograms).  The committed
    /// plans/conflicts/executions are bit-identical with any recorder —
    /// locked by `tests/obs_noop_equivalence.rs`.
    pub fn with_recorder<R2: Recorder>(self, obs: R2) -> AssignmentEngine<'a, R2> {
        AssignmentEngine {
            index: self.index,
            cost_model: self.cost_model,
            config: self.config,
            ledger: self.ledger,
            cache: self.cache,
            pending: self.pending,
            lifetime_stats: self.lifetime_stats,
            churn: self.churn,
            obs,
        }
    }

    /// Publishes one solve's counters/latency into the attached recorder's
    /// metrics registry — the registry view superseding ad-hoc
    /// [`CacheStats`] plumbing for reporting (the struct itself remains the
    /// equivalence-contract carrier).
    fn publish_metrics(&self, outcome: &MultiOutcome, batch_nanos: u64) {
        let stats = &outcome.stats;
        self.obs.counter("cache.hits", stats.tasks_reused as u64);
        self.obs
            .counter("cache.misses", stats.tasks_computed as u64);
        self.obs
            .counter("engine.slot_computations", stats.slot_computations as u64);
        self.obs
            .counter("engine.slot_refreshes", stats.slot_refreshes as u64);
        self.obs
            .counter("engine.commit_rescores", stats.commit_rescores as u64);
        self.obs
            .counter("engine.full_refreshes", stats.full_refreshes as u64);
        self.obs.counter(
            "engine.incremental_patches",
            stats.incremental_patches as u64,
        );
        self.obs
            .counter("engine.stale_pops", stats.stale_pops as u64);
        self.obs
            .counter("engine.conflicts", outcome.conflicts as u64);
        self.obs
            .counter("engine.executions", outcome.executions as u64);
        self.obs.value("engine.batch_ns", batch_nanos);
        if outcome.executions > 0 {
            self.obs.value(
                "engine.grant_refresh_ns",
                stats.refresh_nanos / outcome.executions as u64,
            );
        }
    }

    /// The engine's worker index.
    pub fn index(&self) -> &WorkerIndex {
        &self.index
    }

    /// The engine's configuration.
    pub fn config(&self) -> &MultiTaskConfig {
        &self.config
    }

    /// Overrides the budget used by subsequent solves.
    pub fn set_budget(&mut self, budget: f64) {
        self.config.budget = budget;
    }

    /// The persistent occupancy ledger.
    pub fn ledger(&self) -> &WorkerLedger {
        &self.ledger
    }

    /// The candidate cache (size inspection / manual eviction).
    pub fn cache(&mut self) -> &mut CandidateCache {
        &mut self.cache
    }

    /// Accumulated candidate-computation counters over the engine's lifetime.
    pub fn stats(&self) -> CacheStats {
        self.lifetime_stats
    }

    /// Releases every occupancy commitment while keeping the candidate cache
    /// warm (re-planning the same scenario under a different budget or
    /// objective).
    pub fn release_all(&mut self) {
        self.ledger.clear();
    }

    /// Releases one committed plan's worker occupancies — the retired-task
    /// GC of a long-running service: once a task's subtasks have finished
    /// executing, its workers return to the pool and the persistent ledger
    /// stays proportional to the *live* commitments instead of growing with
    /// every task ever served.  Returns the number of occupancies released
    /// (executions whose worker was still held).
    pub fn release_plan(&mut self, plan: &tcsc_core::AssignmentPlan) -> usize {
        let released = plan
            .executions
            .iter()
            .filter(|exec| self.ledger.release(exec.slot, exec.worker))
            .count();
        if R::IS_ENABLED && released > 0 {
            self.obs.counter("engine.released", released as u64);
            self.obs
                .gauge("engine.ledger_size", self.ledger.len() as u64);
        }
        released
    }

    /// Inserts a worker into the engine's index (an offline worker coming
    /// online), invalidating exactly the cached candidate slots the new
    /// worker can win.  Rejected (`applied == false`) and a no-op when a
    /// worker with the same id is already registered.
    pub fn insert_worker(&mut self, worker: &Worker) -> IndexMutation {
        let mutation = self.index.to_mut().insert_worker(worker);
        if mutation.applied {
            let profile = self
                .index
                .worker_profile(worker.id)
                .expect("the worker was just inserted");
            let refreshed = self.cache.invalidate_inserted(
                worker.id,
                &profile,
                self.index.as_ref(),
                self.cost_model,
            );
            self.churn.note(&mutation, refreshed);
        }
        mutation
    }

    /// Removes a worker from the engine's index (going offline), releasing
    /// its ledger commitments at every in-horizon slot and refreshing exactly
    /// the cached tasks that held it as a candidate.  Rejected and a no-op
    /// for an unknown id.
    pub fn remove_worker(&mut self, id: WorkerId) -> IndexMutation {
        let profile = self.index.worker_profile(id);
        let mutation = self.index.to_mut().remove_worker(id);
        if mutation.applied {
            if let Some(profile) = &profile {
                for (slot, _) in &profile.entries {
                    self.ledger.release(*slot, id);
                }
            }
            let refreshed = self
                .cache
                .invalidate_removed(id, self.index.as_ref(), self.cost_model);
            self.churn.note(&mutation, refreshed);
        }
        mutation
    }

    /// Moves a worker: every availability entry relocates to `to` inside the
    /// index (a tile-local splice, not a rebuild), and the cache refreshes
    /// the slots that held the worker plus the slots its new position can
    /// win.  Ledger commitments are unaffected — the dense ledger keys on
    /// `(slot, worker)` only.  Rejected and a no-op for an unknown id.
    pub fn move_worker(&mut self, id: WorkerId, to: Location) -> IndexMutation {
        let mutation = self.index.to_mut().move_worker(id, to);
        if mutation.applied {
            let profile = self
                .index
                .worker_profile(id)
                .expect("a moved worker stays registered");
            let refreshed =
                self.cache
                    .invalidate_moved(id, &profile, self.index.as_ref(), self.cost_model);
            self.churn.note(&mutation, refreshed);
        }
        mutation
    }

    /// Swaps in a freshly built index — the rebuild-per-drain baseline the
    /// mutation API above replaces.  The candidate cache is dropped cold, and
    /// ledger commitments the new index no longer supports (worker absent, or
    /// no longer available at the slot) are released, matching what the
    /// in-place path's `remove_worker` releases.  (An id removed and later
    /// re-registered *with the same slot* is indistinguishable from one that
    /// never left — avoid recycling worker ids across a rebuild.)
    pub fn replace_index(&mut self, index: WorkerIndex) {
        self.index = Cow::Owned(index);
        self.cache.clear();
        let retained: Vec<(usize, WorkerId)> = self
            .ledger
            .commitments()
            .into_iter()
            .filter(|(slot, worker)| {
                self.index
                    .worker_profile(*worker)
                    .is_some_and(|p| p.entries.iter().any(|(s, _)| s == slot))
            })
            .collect();
        self.ledger.clear();
        for (slot, worker) in retained {
            self.ledger.occupy(slot, worker);
        }
    }

    /// The index-churn counters accumulated since the last drain.
    pub fn churn(&self) -> ChurnCounters {
        self.churn
    }

    /// Queues task arrivals for the next [`AssignmentEngine::drain`].
    pub fn submit(&mut self, tasks: impl IntoIterator<Item = Task>) {
        self.pending.extend(tasks);
        if R::IS_ENABLED {
            self.obs
                .gauge("engine.queue_depth", self.pending.len() as u64);
        }
    }

    /// Number of submitted-but-not-yet-drained tasks.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Solves every pending task as one batch (in submission order) against
    /// the current ledger and commits the resulting occupancy.  Draining k
    /// submission rounds at once is equivalent to one
    /// [`AssignmentEngine::assign_batch`] call on the concatenated tasks.
    ///
    /// Streamed arrivals are one-shot: their plans are final, they never
    /// re-arrive, so their cache entries are evicted after the solve and a
    /// long-running stream holds memory proportional to one round, not to
    /// every task ever served.  (Re-planning workloads that *do* re-solve the
    /// same tasks should use [`AssignmentEngine::assign_batch`], which keeps
    /// the cache warm.)
    pub fn drain(&mut self, objective: Objective) -> MultiOutcome {
        let tasks = std::mem::take(&mut self.pending);
        if R::IS_ENABLED {
            self.obs.begin("engine.drain", tasks.len() as u64);
        }
        let outcome = self.assign_batch(&tasks, objective);
        if R::IS_ENABLED {
            self.obs.end("engine.drain", tasks.len() as u64);
        }
        for task in &tasks {
            self.cache.evict(task.id);
        }
        self.cache.advance_round();
        if R::IS_ENABLED {
            // Post-drain service levels: what is queued, held and cached
            // *now* — the SLO gauges a live dashboard samples per drain.
            self.obs
                .gauge("engine.queue_depth", self.pending.len() as u64);
            self.obs
                .gauge("engine.ledger_size", self.ledger.len() as u64);
            self.obs
                .gauge("engine.cache_entries", self.cache.len() as u64);
            let imbalance = self.index.occupancy_imbalance_milli();
            self.churn.publish_and_reset(&self.obs, imbalance);
        } else {
            self.churn = ChurnCounters::default();
        }
        outcome
    }

    /// Solves one task batch under the configured budget and objective
    /// against the current ledger, committing the resulting occupancy.
    ///
    /// On a fresh engine this is bit-identical (plans, conflicts, executions)
    /// to the rebuild-per-call solvers
    /// [`crate::multi::rebuild::msqm_rebuild`] /
    /// [`crate::multi::rebuild::mmqm_rebuild`]; the candidate cache only
    /// changes *how* candidates are obtained, never *which* candidates the
    /// greedy sees.
    pub fn assign_batch(&mut self, tasks: &[Task], objective: Objective) -> MultiOutcome {
        if R::IS_ENABLED {
            self.obs.begin("engine.assign_batch", tasks.len() as u64);
        }
        let sw = R::IS_ENABLED.then(Stopwatch::start);
        let outcome = match objective {
            Objective::SumQuality => self.run_msqm(tasks),
            Objective::MinQuality => self.run_mmqm(tasks),
        };
        self.lifetime_stats.merge(&outcome.stats);
        if R::IS_ENABLED {
            self.publish_metrics(&outcome, sw.map_or(0, |s| s.elapsed_nanos()));
            self.obs.end("engine.assign_batch", tasks.len() as u64);
        }
        outcome
    }

    /// Checks the working states of a batch out of the candidate cache.
    fn checkout_states(&mut self, tasks: &[Task], stats: &mut CacheStats) -> Vec<TaskState> {
        tasks
            .iter()
            .map(|task| {
                let candidates = self.cache.checkout(
                    task,
                    self.index.as_ref(),
                    self.cost_model,
                    &self.ledger,
                    stats,
                );
                TaskState::from_candidates(task, candidates, &self.config)
            })
            .collect()
    }

    /// MSQM greedy (port of the serial rebuild solver; the holder map
    /// replaces its `O(|T|)` invalidation scan).
    fn run_msqm(&mut self, tasks: &[Task]) -> MultiOutcome {
        let mut stats = CacheStats::default();
        if R::IS_ENABLED {
            self.obs.begin("engine.checkout", tasks.len() as u64);
        }
        let mut states = self.checkout_states(tasks, &mut stats);
        if R::IS_ENABLED {
            self.obs.end("engine.checkout", tasks.len() as u64);
            self.obs.begin("engine.commit", tasks.len() as u64);
        }
        let (conflicts, executions) = msqm_greedy_core(
            &mut states,
            self.config.budget,
            self.index.as_ref(),
            self.cost_model,
            &mut self.ledger,
            self.config.accounting,
            &mut stats,
        );
        if R::IS_ENABLED {
            self.obs.end("engine.commit", tasks.len() as u64);
        }

        let assignment =
            MultiAssignment::new(states.into_iter().map(TaskState::into_plan).collect());
        MultiOutcome {
            assignment,
            conflicts,
            executions,
            stats,
        }
    }

    /// MMQM greedy (reinforce the weakest task, candidates served through the
    /// cache), committing through the shared lazy-heap loop.
    fn run_mmqm(&mut self, tasks: &[Task]) -> MultiOutcome {
        let mut stats = CacheStats::default();
        if R::IS_ENABLED {
            self.obs.begin("engine.checkout", tasks.len() as u64);
        }
        let mut states = self.checkout_states(tasks, &mut stats);
        if R::IS_ENABLED {
            self.obs.end("engine.checkout", tasks.len() as u64);
            self.obs.begin("engine.commit", tasks.len() as u64);
        }
        let mut backend = DenseBackend {
            index: self.index.as_ref(),
            cost_model: self.cost_model,
            ledger: &mut self.ledger,
        };
        let (conflicts, executions) =
            commit::mmqm_commit_loop(&mut states, self.config.budget, &mut backend, &mut stats);
        if R::IS_ENABLED {
            self.obs.end("engine.commit", tasks.len() as u64);
        }

        let assignment =
            MultiAssignment::new(states.into_iter().map(TaskState::into_plan).collect());
        MultiOutcome {
            assignment,
            conflicts,
            executions,
            stats,
        }
    }

    /// `SApprox` under the engine: the spatiotemporal greedy of
    /// [`crate::multi::sapprox`] with candidates served through the cache and
    /// occupancy committed to the persistent ledger.
    ///
    /// All tasks must share the same number of slots (as in the paper's
    /// setup).
    pub fn assign_spatiotemporal(
        &mut self,
        tasks: &[Task],
        domain: &Domain,
        weights: InterpolationWeights,
        objective: SpatioTemporalObjective,
    ) -> MultiOutcome {
        if R::IS_ENABLED {
            self.obs.begin("engine.assign_batch", tasks.len() as u64);
        }
        let sw = R::IS_ENABLED.then(Stopwatch::start);
        let outcome = self.run_spatiotemporal(tasks, domain, weights, objective);
        self.lifetime_stats.merge(&outcome.stats);
        if R::IS_ENABLED {
            self.publish_metrics(&outcome, sw.map_or(0, |s| s.elapsed_nanos()));
            self.obs.end("engine.assign_batch", tasks.len() as u64);
        }
        outcome
    }

    fn run_spatiotemporal(
        &mut self,
        tasks: &[Task],
        domain: &Domain,
        weights: InterpolationWeights,
        objective: SpatioTemporalObjective,
    ) -> MultiOutcome {
        let mut stats = CacheStats::default();
        if tasks.is_empty() {
            return MultiOutcome {
                assignment: MultiAssignment::default(),
                conflicts: 0,
                executions: 0,
                stats,
            };
        }
        let num_slots = tasks[0].num_slots;
        assert!(
            tasks.iter().all(|t| t.num_slots == num_slots),
            "SApprox requires tasks with a uniform number of slots"
        );

        let config = self.config;
        let mut evaluator = SpatioTemporalEvaluator::new(
            tasks.iter().map(|t| t.location).collect(),
            QualityParams::new(num_slots, config.k),
            *domain,
            weights,
        );
        let mut candidates: Vec<SlotCandidates> = tasks
            .iter()
            .map(|t| {
                self.cache.checkout(
                    t,
                    self.index.as_ref(),
                    self.cost_model,
                    &self.ledger,
                    &mut stats,
                )
            })
            .collect();
        let mut executions_log: Vec<Vec<ExecutedSubtask>> = vec![Vec::new(); tasks.len()];
        let mut remaining = config.budget;
        let mut conflicts = 0usize;
        let mut executions = 0usize;

        loop {
            // Candidate search: the (task, slot) pair maximising the
            // objective increase per unit cost among affordable pairs.
            let mut best: Option<(usize, usize, f64, f64)> = None; // (task, slot, gain, cost)
            let task_range: Vec<usize> = match objective {
                SpatioTemporalObjective::Sum => (0..tasks.len()).collect(),
                SpatioTemporalObjective::Min => {
                    // Reinforce the currently weakest task that still has
                    // affordable candidates.
                    let mut order: Vec<usize> = (0..tasks.len()).collect();
                    order.sort_by(|&a, &b| {
                        evaluator
                            .task_quality(a)
                            .total_cmp(&evaluator.task_quality(b))
                    });
                    order
                }
            };
            'outer: for &task_idx in &task_range {
                for slot in 0..num_slots {
                    if evaluator.is_executed(task_idx, slot) {
                        continue;
                    }
                    let Some(candidate) = candidates[task_idx].get(slot) else {
                        continue;
                    };
                    if candidate.cost > remaining {
                        continue;
                    }
                    let reliability = if config.use_reliability {
                        candidate.reliability
                    } else {
                        1.0
                    };
                    let gain = match objective {
                        SpatioTemporalObjective::Sum => {
                            evaluator.sum_gain_if_executed(task_idx, slot, reliability)
                        }
                        SpatioTemporalObjective::Min => {
                            evaluator.task_gain_if_executed(task_idx, slot, reliability)
                        }
                    };
                    let heuristic = if candidate.cost > 0.0 {
                        gain / candidate.cost
                    } else {
                        f64::INFINITY
                    };
                    let better = match &best {
                        None => true,
                        Some((_, _, bg, bc)) => {
                            let bh = if *bc > 0.0 { bg / bc } else { f64::INFINITY };
                            heuristic > bh
                        }
                    };
                    if better {
                        best = Some((task_idx, slot, gain, candidate.cost));
                    }
                }
                // For the min objective only the weakest task with any
                // affordable candidate is reinforced, mirroring the MMQM
                // loop.
                if matches!(objective, SpatioTemporalObjective::Min) && best.is_some() {
                    break 'outer;
                }
            }

            let Some((task_idx, slot, _gain, cost)) = best else {
                break;
            };
            let candidate = *candidates[task_idx]
                .get(slot)
                .expect("selected candidate exists");
            // Worker conflict: fall back to the next nearest worker.
            if self.ledger.is_occupied(slot, candidate.worker) {
                conflicts += 1;
                candidates[task_idx].refresh_slot(
                    &tasks[task_idx],
                    slot,
                    self.index.as_ref(),
                    self.cost_model,
                    &self.ledger,
                );
                stats.slot_computations += 1;
                stats.slot_refreshes += 1;
                stats.rebuild_slot_computations += 1;
                continue;
            }
            remaining -= cost;
            self.ledger.occupy(slot, candidate.worker);
            let reliability = if config.use_reliability {
                candidate.reliability
            } else {
                1.0
            };
            evaluator.execute(task_idx, slot, reliability);
            executions_log[task_idx].push(ExecutedSubtask {
                slot,
                worker: candidate.worker,
                cost,
                reliability: candidate.reliability,
            });
            executions += 1;
        }

        let plans = tasks
            .iter()
            .enumerate()
            .map(|(i, task)| tcsc_core::AssignmentPlan {
                task: task.id,
                num_slots,
                quality: evaluator.task_quality(i),
                executions: std::mem::take(&mut executions_log[i]),
            })
            .collect();

        MultiOutcome {
            assignment: MultiAssignment::new(plans),
            conflicts,
            executions,
            stats,
        }
    }
}

impl<R: Recorder> std::fmt::Debug for AssignmentEngine<'_, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AssignmentEngine")
            .field("config", &self.config)
            .field("ledger_commitments", &self.ledger.len())
            .field("cached_tasks", &self.cache.len())
            .field("pending", &self.pending.len())
            .field("lifetime_stats", &self.lifetime_stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multi::test_support::small_instance;
    use tcsc_core::EuclideanCost;

    #[test]
    fn batch_respects_the_budget_and_commits_occupancy() {
        let (tasks, index, cost) = small_instance(70, 5, 25, 150);
        let mut engine = AssignmentEngine::borrowed(&index, &cost, MultiTaskConfig::new(40.0));
        let outcome = engine.assign_batch(&tasks, Objective::SumQuality);
        assert!(outcome.assignment.total_cost() <= 40.0 + 1e-6);
        assert_eq!(engine.ledger().len(), outcome.executions);
    }

    #[test]
    fn second_solve_reuses_the_cache() {
        let (tasks, index, cost) = small_instance(71, 4, 20, 120);
        let mut engine = AssignmentEngine::borrowed(&index, &cost, MultiTaskConfig::new(30.0));
        let first = engine.assign_batch(&tasks, Objective::SumQuality);
        assert_eq!(first.stats.tasks_computed, tasks.len());
        assert_eq!(first.stats.tasks_reused, 0);
        engine.release_all();
        let second = engine.assign_batch(&tasks, Objective::SumQuality);
        assert_eq!(second.stats.tasks_computed, 0);
        assert_eq!(second.stats.tasks_reused, tasks.len());
        // After releasing the occupancy the cached base candidates are valid
        // again, so the second run performs no initial slot computations.
        assert!(second.stats.slot_computations < first.stats.slot_computations);
        assert_eq!(
            first.assignment, second.assignment,
            "re-planning the same batch must reproduce the same plans"
        );
    }

    #[test]
    fn cache_detects_task_identity_changes() {
        let (tasks, index, cost) = small_instance(72, 2, 15, 80);
        let mut engine = AssignmentEngine::borrowed(&index, &cost, MultiTaskConfig::new(20.0));
        engine.assign_batch(&tasks, Objective::SumQuality);
        engine.release_all();
        // Same ids, different locations: the cache must recompute.
        let mut moved = tasks.clone();
        for t in &mut moved {
            t.location = tcsc_core::Location::new(t.location.x + 1.0, t.location.y);
        }
        let outcome = engine.assign_batch(&moved, Objective::SumQuality);
        assert_eq!(outcome.stats.tasks_computed, moved.len());
        assert_eq!(outcome.stats.tasks_reused, 0);
    }

    #[test]
    fn drains_share_occupancy_across_rounds() {
        let (tasks, index, cost) = small_instance(73, 8, 20, 40);
        let mut engine = AssignmentEngine::borrowed(&index, &cost, MultiTaskConfig::new(100.0));
        let (first_half, second_half) = tasks.split_at(4);
        engine.submit(first_half.to_vec());
        let round1 = engine.drain(Objective::SumQuality);
        engine.submit(second_half.to_vec());
        let round2 = engine.drain(Objective::SumQuality);
        assert_eq!(engine.pending(), 0);
        // A worker granted in round 1 must not be re-granted in round 2.
        let mut seen = std::collections::HashSet::new();
        for plan in round1
            .assignment
            .plans
            .iter()
            .chain(&round2.assignment.plans)
        {
            for exec in &plan.executions {
                assert!(
                    seen.insert((exec.slot, exec.worker)),
                    "worker {:?} double-booked at slot {} across rounds",
                    exec.worker,
                    exec.slot
                );
            }
        }
    }

    #[test]
    fn drained_tasks_are_evicted_from_the_cache() {
        // Streamed arrivals are one-shot; a long-running stream must not
        // accumulate cache entries for every task ever served.
        let (tasks, index, cost) = small_instance(76, 9, 15, 120);
        let mut engine = AssignmentEngine::borrowed(&index, &cost, MultiTaskConfig::new(50.0));
        for round in tasks.chunks(3) {
            engine.submit(round.to_vec());
            engine.drain(Objective::SumQuality);
            assert!(engine.cache().is_empty(), "drain must evict its arrivals");
        }
        // assign_batch keeps entries (the re-planning path).
        engine.assign_batch(&tasks[..3], Objective::SumQuality);
        assert_eq!(engine.cache().len(), 3);
    }

    #[test]
    fn bounded_cache_evicts_lru_and_recomputes_correctly() {
        let (tasks, index, cost) = small_instance(80, 5, 12, 100);
        let mut stats = CacheStats::default();
        let mut bounded = CandidateCache::with_capacity(2);
        assert_eq!(bounded.capacity(), Some(2));
        for t in &tasks[..3] {
            bounded.checkout_base(t, &index, &cost, &mut stats);
        }
        assert_eq!(bounded.len(), 2, "capacity bound must hold");
        assert_eq!(stats.tasks_computed, 3);
        // Task 0 was the least recently used, so it was evicted; tasks 1 and
        // 2 are still served from the cache.
        let mut probe = CacheStats::default();
        bounded.checkout_base(&tasks[1], &index, &cost, &mut probe);
        bounded.checkout_base(&tasks[2], &index, &cost, &mut probe);
        assert_eq!(probe.tasks_reused, 2);
        // Re-checkout of the evicted task recomputes — and the recomputed
        // candidates are identical to a fresh computation.
        let mut recompute = CacheStats::default();
        let evicted = bounded.checkout_base(&tasks[0], &index, &cost, &mut recompute);
        assert_eq!(recompute.tasks_computed, 1);
        let fresh = SlotCandidates::compute(&tasks[0], &index, &cost);
        assert_eq!(evicted.costs(), fresh.costs());
        for slot in 0..evicted.len() {
            assert_eq!(
                evicted.get(slot).map(|c| c.worker),
                fresh.get(slot).map(|c| c.worker)
            );
        }
    }

    #[test]
    fn touching_an_entry_protects_it_from_eviction() {
        let (tasks, index, cost) = small_instance(81, 3, 10, 80);
        let mut stats = CacheStats::default();
        let mut cache = CandidateCache::with_capacity(2);
        cache.checkout_base(&tasks[0], &index, &cost, &mut stats);
        cache.checkout_base(&tasks[1], &index, &cost, &mut stats);
        // Touch task 0 so task 1 becomes the LRU entry.
        cache.checkout_base(&tasks[0], &index, &cost, &mut stats);
        cache.checkout_base(&tasks[2], &index, &cost, &mut stats);
        let mut probe = CacheStats::default();
        cache.checkout_base(&tasks[0], &index, &cost, &mut probe);
        assert_eq!(probe.tasks_reused, 1, "task 0 must have survived");
        cache.checkout_base(&tasks[1], &index, &cost, &mut probe);
        assert_eq!(probe.tasks_computed, 1, "task 1 must have been evicted");
    }

    #[test]
    fn eviction_prefers_entries_from_older_rounds() {
        let (tasks, index, cost) = small_instance(82, 3, 10, 80);
        let mut stats = CacheStats::default();
        let mut cache = CandidateCache::with_capacity(2);
        cache.checkout_base(&tasks[0], &index, &cost, &mut stats);
        cache.advance_round();
        assert_eq!(cache.round(), 1);
        cache.checkout_base(&tasks[1], &index, &cost, &mut stats);
        cache.checkout_base(&tasks[2], &index, &cost, &mut stats);
        let mut probe = CacheStats::default();
        cache.checkout_base(&tasks[1], &index, &cost, &mut probe);
        cache.checkout_base(&tasks[2], &index, &cost, &mut probe);
        assert_eq!(probe.tasks_reused, 2, "round-1 arrivals must survive");
        cache.checkout_base(&tasks[0], &index, &cost, &mut probe);
        assert_eq!(
            probe.tasks_computed, 1,
            "the round-0 arrival must have been evicted first"
        );
    }

    #[test]
    fn set_capacity_shrinks_and_unbounds() {
        let (tasks, index, cost) = small_instance(83, 4, 10, 80);
        let mut stats = CacheStats::default();
        let mut cache = CandidateCache::new();
        for t in &tasks {
            cache.checkout_base(t, &index, &cost, &mut stats);
        }
        assert_eq!(cache.len(), 4);
        cache.set_capacity(Some(2));
        assert_eq!(cache.len(), 2);
        cache.set_capacity(None);
        for t in &tasks {
            cache.checkout_base(t, &index, &cost, &mut stats);
        }
        assert_eq!(cache.len(), 4);
    }

    #[test]
    #[should_panic(expected = "capacity > 0")]
    fn zero_capacity_is_rejected() {
        let _ = CandidateCache::with_capacity(0);
    }

    #[test]
    fn bounded_engine_cache_reproduces_unbounded_plans() {
        // Eviction may cost recomputation but must never change a plan.
        let (tasks, index, cost) = small_instance(84, 6, 20, 120);
        let cfg = MultiTaskConfig::new(35.0);
        let mut unbounded = AssignmentEngine::borrowed(&index, &cost, cfg);
        let mut bounded = AssignmentEngine::borrowed(&index, &cost, cfg);
        bounded.cache().set_capacity(Some(2));
        for _ in 0..3 {
            let a = unbounded.assign_batch(&tasks, Objective::SumQuality);
            let b = bounded.assign_batch(&tasks, Objective::SumQuality);
            assert_eq!(a.assignment, b.assignment);
            assert_eq!(a.conflicts, b.conflicts);
            assert_eq!(a.executions, b.executions);
            unbounded.release_all();
            bounded.release_all();
        }
        assert!(bounded.cache().len() <= 2);
    }

    #[test]
    fn owned_engine_works_without_an_external_index() {
        let (tasks, index, _) = small_instance(74, 3, 15, 90);
        let cost = EuclideanCost::default();
        let mut engine = AssignmentEngine::new(index, &cost, MultiTaskConfig::new(25.0));
        let outcome = engine.assign_batch(&tasks, Objective::MinQuality);
        assert!(outcome.assignment.total_cost() <= 25.0 + 1e-6);
    }

    #[test]
    fn release_plan_returns_workers_to_the_pool() {
        let (tasks, index, cost) = small_instance(85, 6, 20, 120);
        let mut engine = AssignmentEngine::borrowed(&index, &cost, MultiTaskConfig::new(60.0));
        engine.submit(tasks.clone());
        let outcome = engine.drain(Objective::SumQuality);
        assert_eq!(engine.ledger().len(), outcome.executions);
        // Retire every plan: the ledger must drain back to empty, releasing
        // exactly the committed executions.
        let mut released = 0;
        for plan in &outcome.assignment.plans {
            released += engine.release_plan(plan);
        }
        assert_eq!(released, outcome.executions);
        assert!(engine.ledger().is_empty());
        // Releasing an already-retired plan is a no-op.
        assert_eq!(engine.release_plan(&outcome.assignment.plans[0]), 0);
        // With the pool restored, the same arrivals get the same plans.
        engine.submit(tasks);
        let again = engine.drain(Objective::SumQuality);
        assert_eq!(again.assignment, outcome.assignment);
    }

    /// Asserts that every cached base is bit-identical to a from-scratch
    /// computation against the current index.
    fn assert_cache_exact(
        cache: &mut CandidateCache,
        tasks: &[Task],
        index: &WorkerIndex,
        cost: &EuclideanCost,
    ) {
        for t in tasks {
            let mut probe = CacheStats::default();
            let cached = cache.checkout_base(t, index, cost, &mut probe);
            assert_eq!(probe.tasks_reused, 1, "task {:?} must stay cached", t.id);
            let fresh = SlotCandidates::compute(t, index, cost);
            for slot in 0..cached.len() {
                let (a, b) = (cached.get(slot), fresh.get(slot));
                assert_eq!(
                    a.map(|c| c.worker),
                    b.map(|c| c.worker),
                    "task {:?} slot {slot}",
                    t.id
                );
                assert_eq!(a.map(|c| c.cost.to_bits()), b.map(|c| c.cost.to_bits()));
                assert_eq!(
                    a.map(|c| (c.worker_location.x.to_bits(), c.worker_location.y.to_bits())),
                    b.map(|c| (c.worker_location.x.to_bits(), c.worker_location.y.to_bits())),
                    "cached worker locations must track moves (task {:?} slot {slot})",
                    t.id
                );
            }
        }
    }

    #[test]
    fn worker_mutations_keep_cached_bases_exact() {
        use tcsc_core::{Location, Worker, WorkerId, WorkerSlot};
        let (tasks, index, cost) = small_instance(86, 6, 12, 60);
        let mut index = index;
        let mut cache = CandidateCache::new();
        let mut stats = CacheStats::default();
        for t in &tasks {
            cache.checkout_base(t, &index, &cost, &mut stats);
        }

        // Move a worker right onto a task: it must win that task's slots.
        let moved = WorkerId(3);
        assert!(index.move_worker(moved, tasks[0].location).applied);
        let profile = index.worker_profile(moved).unwrap();
        cache.invalidate_moved(moved, &profile, &index, &cost);
        assert_cache_exact(&mut cache, &tasks, &index, &cost);

        // Insert a fresh worker between two tasks.
        let newcomer = Worker::new(
            WorkerId(1000),
            [0usize, 3, 7]
                .into_iter()
                .map(|slot| WorkerSlot {
                    slot,
                    location: Location::new(tasks[1].location.x + 0.5, tasks[1].location.y),
                })
                .collect(),
        );
        assert!(index.insert_worker(&newcomer).applied);
        let profile = index.worker_profile(newcomer.id).unwrap();
        cache.invalidate_inserted(newcomer.id, &profile, &index, &cost);
        assert_cache_exact(&mut cache, &tasks, &index, &cost);

        // Remove workers until some cached slot actually loses its holder.
        for id in [WorkerId(3), WorkerId(1000), WorkerId(0), WorkerId(7)] {
            if index.remove_worker(id).applied {
                cache.invalidate_removed(id, &index, &cost);
                assert_cache_exact(&mut cache, &tasks, &index, &cost);
            }
        }

        // Move a worker far away: holder slots must fall back correctly.
        let far = WorkerId(11);
        assert!(index.move_worker(far, Location::new(250.0, -40.0)).applied);
        let profile = index.worker_profile(far).unwrap();
        cache.invalidate_moved(far, &profile, &index, &cost);
        assert_cache_exact(&mut cache, &tasks, &index, &cost);
    }

    #[test]
    fn holder_map_follows_evictions_and_clears() {
        let (tasks, index, cost) = small_instance(87, 4, 10, 50);
        let mut cache = CandidateCache::new();
        let mut stats = CacheStats::default();
        for t in &tasks {
            cache.checkout_base(t, &index, &cost, &mut stats);
        }
        let base = SlotCandidates::compute(&tasks[0], &index, &cost);
        let held = base.get(0).expect("slot 0 has a candidate").worker;
        assert!(cache.holding_tasks(held) >= 1);
        // Evicting every task must leave no registration behind.
        for t in &tasks {
            cache.evict(t.id);
        }
        assert_eq!(cache.holding_tasks(held), 0);
        // Re-checkout and clear: same outcome.
        for t in &tasks {
            cache.checkout_base(t, &index, &cost, &mut stats);
        }
        assert!(cache.holding_tasks(held) >= 1);
        cache.clear();
        assert_eq!(cache.holding_tasks(held), 0);
    }

    #[test]
    fn remove_worker_releases_its_ledger_commitments() {
        use tcsc_index::MutableSpatialIndex;
        let (tasks, index, cost) = small_instance(88, 6, 20, 50);
        let mut engine = AssignmentEngine::new(index, &cost, MultiTaskConfig::new(60.0));
        let outcome = engine.assign_batch(&tasks, Objective::SumQuality);
        let exec = *outcome
            .assignment
            .plans
            .iter()
            .flat_map(|p| &p.executions)
            .next()
            .expect("the batch committed at least one execution");
        assert!(engine.ledger().is_occupied(exec.slot, exec.worker));
        let before = engine.ledger().len();
        assert!(engine.remove_worker(exec.worker).applied);
        assert!(!engine.ledger().is_occupied(exec.slot, exec.worker));
        assert!(engine.ledger().len() < before);
        assert!(engine.index().worker_profile(exec.worker).is_none());
    }

    #[test]
    fn churn_counters_accumulate_and_reset_on_drain() {
        use tcsc_core::{Location, Worker, WorkerId, WorkerSlot};
        let (tasks, index, cost) = small_instance(89, 4, 10, 40);
        let mut engine = AssignmentEngine::new(index, &cost, MultiTaskConfig::new(25.0));
        assert!(
            engine
                .move_worker(WorkerId(1), Location::new(10.0, 10.0))
                .applied
        );
        let fresh = Worker::new(
            WorkerId(500),
            vec![WorkerSlot {
                slot: 0,
                location: Location::new(1.0, 1.0),
            }],
        );
        assert!(engine.insert_worker(&fresh).applied);
        assert!(engine.remove_worker(WorkerId(2)).applied);
        // Rejected mutations leave the counters alone.
        assert!(!engine.remove_worker(WorkerId(2)).applied);
        let churn = engine.churn();
        assert_eq!(churn.ops, 3);
        assert!(churn.entries_touched > 0);
        assert!(churn.rebuild_equiv >= churn.entries_touched);
        engine.submit(tasks);
        engine.drain(Objective::SumQuality);
        assert_eq!(engine.churn(), ChurnCounters::default());
    }

    #[test]
    fn replace_index_prunes_unsupported_commitments() {
        use tcsc_core::WorkerPool;
        use tcsc_index::MutableSpatialIndex;
        let (tasks, workers, domain) = crate::multi::test_support::small_world(90, 6, 15, 60);
        let index = WorkerIndex::build(&workers, 15, &domain);
        let cost = EuclideanCost::default();
        let mut engine = AssignmentEngine::new(index, &cost, MultiTaskConfig::new(60.0));
        let outcome = engine.assign_batch(&tasks, Objective::SumQuality);
        let victim = outcome
            .assignment
            .plans
            .iter()
            .flat_map(|p| &p.executions)
            .next()
            .expect("at least one execution")
            .worker;
        let before = engine.ledger().len();
        // Rebuild from a pool without the victim: its commitments must go.
        let pruned: Vec<_> = workers
            .workers()
            .iter()
            .filter(|w| w.id != victim)
            .cloned()
            .collect();
        engine.replace_index(WorkerIndex::build(&WorkerPool::new(pruned), 15, &domain));
        assert!(engine.ledger().len() < before);
        assert!(engine.index().worker_profile(victim).is_none());
        assert!(
            engine.cache().is_empty(),
            "replace_index drops the cache cold"
        );
    }

    #[test]
    fn stats_accumulate_over_the_engine_lifetime() {
        let (tasks, index, cost) = small_instance(75, 4, 20, 100);
        let mut engine = AssignmentEngine::borrowed(&index, &cost, MultiTaskConfig::new(30.0));
        let a = engine.assign_batch(&tasks, Objective::SumQuality);
        engine.release_all();
        let b = engine.assign_batch(&tasks, Objective::MinQuality);
        let total = engine.stats();
        assert_eq!(
            total.slot_computations,
            a.stats.slot_computations + b.stats.slot_computations
        );
        assert!(total.saved_slot_computations() > 0);
    }
}
