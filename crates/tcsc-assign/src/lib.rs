//! # tcsc-assign
//!
//! Quality-aware task assignment for Time-Continuous Spatial Crowdsourcing:
//! the algorithmic core of the paper.
//!
//! * [`candidates`] — per-slot worker candidates ("worker cost retrieval") and
//!   the worker-occupancy ledger used for conflict arbitration;
//! * [`single`] — the sQM problem: greedy `Approx` (Algorithm 1),
//!   index-accelerated `Approx*`, exhaustive `OPT`, the randomized baselines
//!   and the dual (min-budget) search;
//! * [`multi`] — the MSQM / MMQM problems, worker-conflict analysis, the
//!   group-level and task-level parallel frameworks, and the spatiotemporal
//!   `SApprox` extension;
//! * [`engine`] — the long-lived batched / streaming assignment engine: a
//!   shared incremental candidate cache with invalidation-driven refresh that
//!   all multi-task solvers route through, plus the `assign_batch` and
//!   `submit`/`drain` APIs that amortise index lookups across calls;
//! * [`engine::concurrent`] — the region-parallel engine over a sharded
//!   worker index: per-shard ledgers and caches behind per-shard locks, with
//!   `assign_batch_parallel` / `drain_parallel` running checkout and
//!   candidate waves on a scoped thread pool, bit-identical to the serial
//!   engine for any shard grid and thread count.
//!
//! ## Quick example
//!
//! ```
//! use tcsc_core::{Domain, EuclideanCost, Location, Task, TaskId, Worker, WorkerId, WorkerSlot, WorkerPool};
//! use tcsc_index::WorkerIndex;
//! use tcsc_assign::candidates::SlotCandidates;
//! use tcsc_assign::single::{greedy::approx, SingleTaskConfig};
//!
//! // One task with 8 slots and one worker available at every slot.
//! let task = Task::new(TaskId(0), Location::new(0.0, 0.0), 8);
//! let pool: WorkerPool = (0..8)
//!     .map(|j| Worker::new(WorkerId(j as u32), vec![WorkerSlot { slot: j, location: Location::new(1.0, 0.0) }]))
//!     .collect();
//! let index = WorkerIndex::build(&pool, 8, &Domain::square(10.0));
//! let candidates = SlotCandidates::compute(&task, &index, &EuclideanCost::default());
//!
//! let outcome = approx(&task, &candidates, &SingleTaskConfig::new(4.0));
//! assert!(outcome.plan.quality > 0.0);
//! assert!(outcome.plan.total_cost() <= 4.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod candidates;
pub mod engine;
pub mod multi;
pub mod single;

pub use candidates::{SlotCandidates, WorkerLedger};
pub use engine::concurrent::{ConcurrentAssignmentEngine, DisjointDrainReport, ShardedLedger};
pub use engine::{AssignmentEngine, CacheStats, CandidateCache, ChurnCounters, Objective};
pub use multi::conflict::{independence_graph, IndependenceGraph};
pub use multi::gain::GainLedger;
pub use multi::group_parallel::GroupParallelOutcome;
#[allow(deprecated)]
pub use multi::group_parallel::{msqm_group_parallel, msqm_group_parallel_cached};
#[allow(deprecated)]
pub use multi::mmqm::mmqm;
#[allow(deprecated)]
pub use multi::msqm::msqm_serial;
pub use multi::protocol::{
    CommittedExecution, GrantPolicy, MasterCommand, TaskMaster, TaskOwner, WorkerEvent,
};
pub use multi::rebuild::{mmqm_rebuild, msqm_rebuild, msqm_rebuild_v2};
#[allow(deprecated)]
pub use multi::sapprox::sapprox;
pub use multi::sapprox::SpatioTemporalObjective;
pub use multi::task_parallel::TaskParallelOutcome;
#[allow(deprecated)]
pub use multi::task_parallel::{msqm_task_parallel, msqm_task_parallel_optimistic};
pub use multi::{
    ConflictAccounting, MultiOutcome, MultiTaskConfig, RefreshStats, RefreshStrategy,
    TaskCandidate, TaskState,
};
pub use single::baseline::{random_assignment, random_summary, RandSummary};
pub use single::dual::{min_budget_for_quality, DualOutcome};
pub use single::greedy::{approx, GreedyOutcome, GreedyStats};
pub use single::indexed::{approx_star, IndexedOutcome, IndexedTimings};
pub use single::opt::optimal;
pub use single::SingleTaskConfig;
