//! MSQM: multi-task *summation* quality maximisation (Problem 2), serial
//! greedy solver.
//!
//! The summation quality `q_sum` is submodular and non-decreasing (Lemma 4),
//! so the single-task greedy framework extends directly: at every iteration
//! the algorithm retrieves, from *all* tasks, the subtask with the maximum
//! quality increment per unit cost, and executes it if the shared budget
//! allows.  Because subtasks of different tasks can compete for the same
//! worker at the same time slot, a [`crate::candidates::WorkerLedger`]
//! arbitrates conflicts: the
//! loser falls back to its next-nearest worker (Section IV-A), and every such
//! event is counted as a *worker conflict* (Fig. 9(b)(c)).
//!
//! This serial solver is the "Without Parallelization" baseline of Fig. 9(a)
//! and the reference plan that both parallel frameworks must reproduce.
//!
//! The greedy itself lives in [`crate::engine::AssignmentEngine`]; this entry
//! point wraps a per-call engine around the caller's index so existing users
//! keep their signature while routing through the shared candidate cache.
//! The pre-engine implementation survives as
//! [`crate::multi::rebuild::msqm_rebuild`], the rebuild-per-call baseline.

use tcsc_core::{CostModel, Task};
use tcsc_index::WorkerIndex;

use crate::engine::{AssignmentEngine, Objective};
use crate::multi::{MultiOutcome, MultiTaskConfig};

/// Runs the serial MSQM greedy.
#[deprecated(note = "use tcsc::solver::SolverBuilder with Runtime::Serial and \
            SolveObjective::SumQuality, or AssignmentEngine directly")]
pub fn msqm_serial(
    tasks: &[Task],
    index: &WorkerIndex,
    cost_model: &dyn CostModel,
    config: &MultiTaskConfig,
) -> MultiOutcome {
    AssignmentEngine::borrowed(index, cost_model, *config)
        .assign_batch(tasks, Objective::SumQuality)
}

#[cfg(test)]
// The unit tests keep exercising the deprecated free-function wrappers on
// purpose: they are the advertised migration shims and must stay correct.
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::multi::test_support::small_instance;

    #[test]
    fn respects_the_global_budget() {
        let (tasks, index, cost) = small_instance(1, 4, 30, 200);
        for budget in [5.0, 20.0, 60.0] {
            let outcome = msqm_serial(&tasks, &index, &cost, &MultiTaskConfig::new(budget));
            assert!(outcome.assignment.total_cost() <= budget + 1e-6);
        }
    }

    #[test]
    fn sum_quality_grows_with_budget() {
        let (tasks, index, cost) = small_instance(2, 4, 30, 200);
        let mut last = -1.0;
        for budget in [5.0, 15.0, 40.0, 100.0] {
            let outcome = msqm_serial(&tasks, &index, &cost, &MultiTaskConfig::new(budget));
            assert!(outcome.sum_quality() >= last - 1e-9);
            last = outcome.sum_quality();
        }
    }

    #[test]
    fn every_plan_belongs_to_its_task() {
        let (tasks, index, cost) = small_instance(3, 5, 20, 150);
        let outcome = msqm_serial(&tasks, &index, &cost, &MultiTaskConfig::new(30.0));
        assert_eq!(outcome.assignment.plans.len(), 5);
        for (task, plan) in tasks.iter().zip(&outcome.assignment.plans) {
            assert_eq!(task.id, plan.task);
            assert_eq!(task.num_slots, plan.num_slots);
        }
    }

    #[test]
    fn no_worker_serves_two_tasks_in_the_same_slot() {
        let (tasks, index, cost) = small_instance(4, 6, 25, 60);
        let outcome = msqm_serial(&tasks, &index, &cost, &MultiTaskConfig::new(200.0));
        let mut seen = std::collections::HashSet::new();
        for plan in &outcome.assignment.plans {
            for exec in &plan.executions {
                assert!(
                    seen.insert((exec.slot, exec.worker)),
                    "worker {:?} double-booked at slot {}",
                    exec.worker,
                    exec.slot
                );
            }
        }
    }

    #[test]
    fn conflicts_arise_when_workers_are_scarce() {
        // Few workers, many co-located tasks: tasks must compete.
        let (tasks, index, cost) = small_instance(5, 8, 20, 25);
        let outcome = msqm_serial(&tasks, &index, &cost, &MultiTaskConfig::new(500.0));
        assert!(outcome.executions > 0);
        assert!(
            outcome.conflicts > 0,
            "expected at least one worker conflict with 8 tasks over 25 workers"
        );
    }

    #[test]
    fn indexed_and_plain_variants_reach_the_same_quality() {
        let (tasks, index, cost) = small_instance(6, 3, 30, 150);
        let with_index = msqm_serial(&tasks, &index, &cost, &MultiTaskConfig::new(40.0));
        let without = msqm_serial(
            &tasks,
            &index,
            &cost,
            &MultiTaskConfig::new(40.0).with_index(false),
        );
        assert!((with_index.sum_quality() - without.sum_quality()).abs() < 1e-6);
    }

    #[test]
    fn zero_budget_executes_nothing() {
        let (tasks, index, cost) = small_instance(7, 3, 20, 100);
        let outcome = msqm_serial(&tasks, &index, &cost, &MultiTaskConfig::new(0.0));
        assert_eq!(outcome.executions, 0);
        assert_eq!(outcome.sum_quality(), 0.0);
    }
}
