//! MSQM: multi-task *summation* quality maximisation (Problem 2), serial
//! greedy solver.
//!
//! The summation quality `q_sum` is submodular and non-decreasing (Lemma 4),
//! so the single-task greedy framework extends directly: at every iteration
//! the algorithm retrieves, from *all* tasks, the subtask with the maximum
//! quality increment per unit cost, and executes it if the shared budget
//! allows.  Because subtasks of different tasks can compete for the same
//! worker at the same time slot, a [`WorkerLedger`] arbitrates conflicts: the
//! loser falls back to its next-nearest worker (Section IV-A), and every such
//! event is counted as a *worker conflict* (Fig. 9(b)(c)).
//!
//! This serial solver is the "Without Parallelization" baseline of Fig. 9(a)
//! and the reference plan that both parallel frameworks must reproduce.

use tcsc_core::{CostModel, MultiAssignment, Task};
use tcsc_index::WorkerIndex;

use crate::candidates::WorkerLedger;
use crate::multi::{MultiOutcome, MultiTaskConfig, TaskState};

/// Runs the serial MSQM greedy.
pub fn msqm_serial(
    tasks: &[Task],
    index: &WorkerIndex,
    cost_model: &dyn CostModel,
    config: &MultiTaskConfig,
) -> MultiOutcome {
    let mut states: Vec<TaskState> = tasks
        .iter()
        .map(|t| TaskState::new(t, index, cost_model, config))
        .collect();
    let mut ledger = WorkerLedger::new();
    let mut remaining = config.budget;
    let mut conflicts = 0usize;
    let mut executions = 0usize;

    // Cached best candidate per task; recomputed lazily when invalidated.
    let mut cached: Vec<Option<Option<crate::multi::TaskCandidate>>> = vec![None; states.len()];

    loop {
        // Refresh stale candidate caches.  A cached candidate computed under a
        // larger remaining budget may have become unaffordable; recompute it
        // with the current budget so that cheaper slots of the same task are
        // still considered.
        for (i, state) in states.iter_mut().enumerate() {
            if let Some(Some(c)) = &cached[i] {
                if c.cost > remaining {
                    cached[i] = None;
                }
            }
            if cached[i].is_none() {
                cached[i] = Some(state.best_candidate(remaining));
            }
        }
        // Pick the task with the globally maximal heuristic value among the
        // affordable candidates.
        let mut best: Option<(usize, crate::multi::TaskCandidate)> = None;
        for (i, entry) in cached.iter().enumerate() {
            let Some(Some(candidate)) = entry else {
                continue;
            };
            if candidate.cost > remaining {
                continue;
            }
            let better = match &best {
                None => true,
                Some((bi, b)) => {
                    candidate.heuristic > b.heuristic
                        || (candidate.heuristic == b.heuristic && i < *bi)
                }
            };
            if better {
                best = Some((i, *candidate));
            }
        }
        let Some((task_idx, candidate)) = best else {
            break;
        };

        // Worker-conflict check: the planned worker may have been taken by
        // another task since this candidate was computed.
        let worker = states[task_idx]
            .planned_worker(candidate.slot)
            .expect("candidate slot has a planned worker");
        if ledger.is_occupied(candidate.slot, worker) {
            // Conflict: fall back to the next nearest worker and retry.
            conflicts += 1;
            states[task_idx].refresh_slot(candidate.slot, index, cost_model, &ledger);
            cached[task_idx] = None;
            continue;
        }

        // Execute.
        remaining -= candidate.cost;
        ledger.occupy(candidate.slot, worker);
        states[task_idx].execute(candidate.slot);
        executions += 1;
        cached[task_idx] = None;
        // Invalidate cached candidates of tasks that planned to use the same
        // worker at the same slot (they must fall back on their next try).
        for (i, entry) in cached.iter_mut().enumerate() {
            if i == task_idx {
                continue;
            }
            if let Some(Some(c)) = entry {
                if c.slot == candidate.slot && states[i].planned_worker(c.slot) == Some(worker) {
                    conflicts += 1;
                    states[i].refresh_slot(c.slot, index, cost_model, &ledger);
                    *entry = None;
                }
            }
        }
    }

    let assignment = MultiAssignment::new(states.into_iter().map(TaskState::into_plan).collect());
    MultiOutcome {
        assignment,
        conflicts,
        executions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multi::test_support::small_instance;

    #[test]
    fn respects_the_global_budget() {
        let (tasks, index, cost) = small_instance(1, 4, 30, 200);
        for budget in [5.0, 20.0, 60.0] {
            let outcome = msqm_serial(&tasks, &index, &cost, &MultiTaskConfig::new(budget));
            assert!(outcome.assignment.total_cost() <= budget + 1e-6);
        }
    }

    #[test]
    fn sum_quality_grows_with_budget() {
        let (tasks, index, cost) = small_instance(2, 4, 30, 200);
        let mut last = -1.0;
        for budget in [5.0, 15.0, 40.0, 100.0] {
            let outcome = msqm_serial(&tasks, &index, &cost, &MultiTaskConfig::new(budget));
            assert!(outcome.sum_quality() >= last - 1e-9);
            last = outcome.sum_quality();
        }
    }

    #[test]
    fn every_plan_belongs_to_its_task() {
        let (tasks, index, cost) = small_instance(3, 5, 20, 150);
        let outcome = msqm_serial(&tasks, &index, &cost, &MultiTaskConfig::new(30.0));
        assert_eq!(outcome.assignment.plans.len(), 5);
        for (task, plan) in tasks.iter().zip(&outcome.assignment.plans) {
            assert_eq!(task.id, plan.task);
            assert_eq!(task.num_slots, plan.num_slots);
        }
    }

    #[test]
    fn no_worker_serves_two_tasks_in_the_same_slot() {
        let (tasks, index, cost) = small_instance(4, 6, 25, 60);
        let outcome = msqm_serial(&tasks, &index, &cost, &MultiTaskConfig::new(200.0));
        let mut seen = std::collections::HashSet::new();
        for plan in &outcome.assignment.plans {
            for exec in &plan.executions {
                assert!(
                    seen.insert((exec.slot, exec.worker)),
                    "worker {:?} double-booked at slot {}",
                    exec.worker,
                    exec.slot
                );
            }
        }
    }

    #[test]
    fn conflicts_arise_when_workers_are_scarce() {
        // Few workers, many co-located tasks: tasks must compete.
        let (tasks, index, cost) = small_instance(5, 8, 20, 25);
        let outcome = msqm_serial(&tasks, &index, &cost, &MultiTaskConfig::new(500.0));
        assert!(outcome.executions > 0);
        assert!(
            outcome.conflicts > 0,
            "expected at least one worker conflict with 8 tasks over 25 workers"
        );
    }

    #[test]
    fn indexed_and_plain_variants_reach_the_same_quality() {
        let (tasks, index, cost) = small_instance(6, 3, 30, 150);
        let with_index = msqm_serial(&tasks, &index, &cost, &MultiTaskConfig::new(40.0));
        let without = msqm_serial(
            &tasks,
            &index,
            &cost,
            &MultiTaskConfig::new(40.0).with_index(false),
        );
        assert!((with_index.sum_quality() - without.sum_quality()).abs() < 1e-6);
    }

    #[test]
    fn zero_budget_executes_nothing() {
        let (tasks, index, cost) = small_instance(7, 3, 20, 100);
        let outcome = msqm_serial(&tasks, &index, &cost, &MultiTaskConfig::new(0.0));
        assert_eq!(outcome.executions, 0);
        assert_eq!(outcome.sum_quality(), 0.0);
    }
}
