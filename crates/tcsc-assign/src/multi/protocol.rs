//! Message protocol and master state machine of the task-level parallel
//! framework.
//!
//! The master of [`super::task_parallel`] is factored out here as a pure,
//! driver-agnostic state machine: [`TaskMaster`] consumes [`WorkerEvent`]s
//! (heartbeats and execution confirmations from the task owners) and emits
//! [`MasterCommand`]s (compute / refresh / execute / undo requests).  Two
//! drivers exist:
//!
//! * the **thread driver** of [`super::task_parallel`], where commands travel
//!   over `std::sync::mpsc` channels to worker threads;
//! * the **simulation driver** of the `tcsc-sim` crate, where the same
//!   commands travel as discrete-event messages with modeled network latency
//!   between a dispatcher and region-node components.
//!
//! Because the machine is pure, the committed behaviour can be verified once
//! (against the serial greedy) and reused by both drivers.
//!
//! # Grant policies
//!
//! [`GrantPolicy::Barrier`] reproduces the paper's deterministic master: a
//! grant is only decided when **every** outstanding heartbeat has arrived, so
//! each selection sees the complete heartbeat table.
//!
//! [`GrantPolicy::Optimistic`] removes the barrier with a **versioned
//! heartbeat table and provisional grants**:
//!
//! * every compute / refresh request carries a per-task *version*; heartbeats
//!   echo it, and a heartbeat whose version does not match the task's current
//!   version is discarded (it belongs to a rolled-back timeline);
//! * the master grants the current global-max execution as soon as it is
//!   known, even while heartbeats are outstanding — the grant is
//!   **provisional**: budget and worker occupancy are applied speculatively
//!   and the conflict-loser refreshes are issued immediately (that is the
//!   overlap the barrier forfeits), but the irreversible `Execute` command is
//!   deferred;
//! * each provisional grant remembers which tasks were outstanding at its
//!   decision.  When such a late heartbeat arrives, it is checked against the
//!   grant: if the late candidate is unaffordable at the grant's budget (the
//!   barrier master would have recomputed it first) or *supersedes* the
//!   granted candidate (strictly higher heuristic, or equal heuristic and
//!   lower task index — the serial tie-break), the grant **rolls back**: the
//!   speculative budget/occupancy are restored, speculative refreshes are
//!   undone on the owner side ([`MasterCommand::UndoRefresh`], version bumps
//!   discard their in-flight heartbeats), and the selection is re-run with
//!   the late information incorporated;
//! * a provisional grant **finalizes** — `Execute` is sent and the grant
//!   becomes permanent — once every heartbeat outstanding at its decision has
//!   arrived without superseding it.
//!
//! Rolled-back work is exactly the work the barrier master would not have
//! done; surviving grants are exactly the barrier's grants.  The committed
//! execution sequence of the optimistic master is therefore identical to the
//! barrier master's on every input — locked in by
//! `tests/optimistic_equivalence.rs`.

use std::collections::{BTreeSet, HashMap, VecDeque};

use tcsc_core::{AssignmentPlan, CandidateAssignment, CostModel, SlotIndex, WorkerId};
use tcsc_index::SpatialQuery;
use tcsc_obs::{NoopRecorder, Recorder, Scope};

use crate::candidates::WorkerLedger;
use crate::multi::task_parallel::{ConflictRecord, LogEntry};
use crate::multi::{TaskCandidate, TaskState};

/// A per-task heartbeat version.  Compute / refresh commands carry the
/// version the master expects; heartbeats echo it, and mismatches are
/// discarded as belonging to a rolled-back timeline.
pub type Version = u64;

/// A command from the master to the owner (thread or region node) of a task.
#[derive(Debug, Clone, PartialEq)]
pub enum MasterCommand {
    /// Compute the task's best candidate under the given budget and report a
    /// heartbeat echoing `version`.
    Compute {
        /// Task index.
        task: usize,
        /// Version the heartbeat must echo.
        version: Version,
        /// Budget bound for the candidate search.
        max_cost: f64,
    },
    /// Recompute the candidate of one slot excluding the occupied workers,
    /// remember the replaced candidate for a potential
    /// [`MasterCommand::UndoRefresh`], then report a heartbeat with the
    /// task's new best candidate.
    Refresh {
        /// Task index.
        task: usize,
        /// Version the heartbeat must echo.
        version: Version,
        /// The slot whose candidate must be recomputed.
        slot: SlotIndex,
        /// Workers occupied at the slot (the exclusion set).
        occupied: Vec<WorkerId>,
        /// Budget bound for the follow-up candidate search.
        max_cost: f64,
    },
    /// Undo the most recent not-yet-undone [`MasterCommand::Refresh`] of the
    /// task (restore the replaced slot candidate).  Only emitted by the
    /// optimistic master's rollback; expects no reply.
    UndoRefresh {
        /// Task index.
        task: usize,
        /// The slot whose previous candidate must be restored (sanity check
        /// against the owner's undo stack).
        slot: SlotIndex,
    },
    /// Execute a slot of the task with its current candidate worker.  Only
    /// emitted for committed grants — never speculatively.
    Execute {
        /// Task index.
        task: usize,
        /// The granted slot.
        slot: SlotIndex,
    },
}

impl MasterCommand {
    /// The task the command addresses.
    pub fn task(&self) -> usize {
        match self {
            Self::Compute { task, .. }
            | Self::Refresh { task, .. }
            | Self::UndoRefresh { task, .. }
            | Self::Execute { task, .. } => *task,
        }
    }
}

/// An event from a task owner back to the master.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkerEvent {
    /// The task's best candidate under the requested budget (`None` when no
    /// affordable candidate remains), echoing the request's version.
    Heartbeat {
        /// Task index.
        task: usize,
        /// Version echoed from the triggering command.
        version: Version,
        /// The best candidate, or `None`.
        candidate: Option<TaskCandidate>,
        /// The worker currently planned for the candidate's slot.
        planned_worker: Option<WorkerId>,
    },
    /// Confirmation that a granted slot was executed.
    Executed {
        /// Task index.
        task: usize,
        /// Executed slot.
        slot: SlotIndex,
        /// The worker that served it.
        worker: WorkerId,
        /// The charged cost.
        cost: f64,
    },
}

/// How the master decides grants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GrantPolicy {
    /// Wait for every outstanding heartbeat before each grant (the paper's
    /// deterministic full barrier).
    Barrier,
    /// Grant the current global max immediately; roll a provisional grant
    /// back when a late heartbeat supersedes it.
    Optimistic,
}

/// One committed execution, in grant order (the sequence the equivalence
/// tests compare between policies).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CommittedExecution {
    /// Task index.
    pub task: usize,
    /// Granted slot.
    pub slot: SlotIndex,
    /// Granted worker.
    pub worker: WorkerId,
    /// Charged cost.
    pub cost: f64,
}

/// The owner side of the protocol: the mutable [`TaskState`]s of the tasks a
/// worker thread (or a simulated region node) owns, plus the per-task undo
/// stacks that make speculative refreshes reversible.
///
/// [`TaskOwner::handle`] executes one [`MasterCommand`] and returns the
/// [`WorkerEvent`] to send back (if the command expects a reply).  The same
/// executor backs the thread driver of [`super::task_parallel`] and the
/// region-node components of `tcsc-sim`, so the two runtimes cannot drift.
#[derive(Debug, Default)]
pub struct TaskOwner {
    states: HashMap<usize, TaskState>,
    undo: HashMap<usize, Vec<(SlotIndex, Option<CandidateAssignment>)>>,
}

impl TaskOwner {
    /// An owner over the given `(task index, state)` pairs.
    pub fn new(states: impl IntoIterator<Item = (usize, TaskState)>) -> Self {
        Self {
            states: states.into_iter().collect(),
            undo: HashMap::new(),
        }
    }

    /// Number of owned tasks.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Adds one task's state (the region-node checkout path of `tcsc-sim`).
    pub fn insert(&mut self, task_idx: usize, state: TaskState) {
        self.states.insert(task_idx, state);
    }

    /// The location of the worker currently planned for a task's slot (used
    /// by the simulated runtime to route claim replication to the worker's
    /// owning shard).
    pub fn planned_location(&self, task: usize, slot: SlotIndex) -> Option<tcsc_core::Location> {
        self.states
            .get(&task)
            .and_then(|s| s.candidates.get(slot))
            .map(|c| c.worker_location)
    }

    /// Whether no task is owned.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// The summed refresh accounting of every owned task state (merged into
    /// the run's [`crate::engine::CacheStats`] by the drivers when the
    /// protocol finishes).
    pub fn refresh_stats(&self) -> crate::multi::RefreshStats {
        let mut total = crate::multi::RefreshStats::default();
        for state in self.states.values() {
            total.merge(&state.refresh_stats());
        }
        total
    }

    /// Executes one command against the owned states, returning the reply
    /// event (`None` for [`MasterCommand::UndoRefresh`], which is
    /// fire-and-forget).
    pub fn handle(
        &mut self,
        command: MasterCommand,
        index: &dyn SpatialQuery,
        cost_model: &dyn CostModel,
    ) -> Option<WorkerEvent> {
        match command {
            MasterCommand::Compute {
                task,
                version,
                max_cost,
            } => {
                let state = self.states.get_mut(&task).expect("task owned here");
                let candidate = state.best_candidate(max_cost);
                let planned_worker = candidate.and_then(|c| state.planned_worker(c.slot));
                Some(WorkerEvent::Heartbeat {
                    task,
                    version,
                    candidate,
                    planned_worker,
                })
            }
            MasterCommand::Refresh {
                task,
                version,
                slot,
                occupied,
                max_cost,
            } => {
                let state = self.states.get_mut(&task).expect("task owned here");
                self.undo
                    .entry(task)
                    .or_default()
                    .push((slot, state.candidates.get(slot).copied()));
                let mut ledger = WorkerLedger::new();
                for w in occupied {
                    ledger.occupy(slot, w);
                }
                state.refresh_slot(slot, index, cost_model, &ledger);
                let candidate = state.best_candidate(max_cost);
                let planned_worker = candidate.and_then(|c| state.planned_worker(c.slot));
                Some(WorkerEvent::Heartbeat {
                    task,
                    version,
                    candidate,
                    planned_worker,
                })
            }
            MasterCommand::UndoRefresh { task, slot } => {
                let state = self.states.get_mut(&task).expect("task owned here");
                let (saved_slot, saved) = self
                    .undo
                    .get_mut(&task)
                    .and_then(Vec::pop)
                    .expect("an undo must match a prior speculative refresh");
                assert_eq!(saved_slot, slot, "undo order must mirror refresh order");
                state.set_candidate(slot, saved);
                None
            }
            MasterCommand::Execute { task, slot } => {
                let state = self.states.get_mut(&task).expect("task owned here");
                let candidate = *state
                    .candidates
                    .get(slot)
                    .expect("granted slot has a candidate");
                state.execute(slot);
                Some(WorkerEvent::Executed {
                    task,
                    slot,
                    worker: candidate.worker,
                    cost: candidate.cost,
                })
            }
        }
    }

    /// Finalises every owned task's plan.
    pub fn into_plans(self) -> Vec<(usize, AssignmentPlan)> {
        self.states
            .into_iter()
            .map(|(task_idx, state)| (task_idx, state.into_plan()))
            .collect()
    }
}

/// Per-task heartbeat-table entry.
#[derive(Debug, Clone, PartialEq)]
enum Entry {
    /// A compute / refresh request is outstanding for the current version.
    Pending,
    /// The latest heartbeat for the current version.  `bound` is the budget
    /// the candidate search ran under: the entry is only trustworthy while
    /// `remaining <= bound` (a rollback that restores a larger budget must
    /// recompute it, since candidates costing more than `bound` were never
    /// considered).
    Known {
        candidate: Option<TaskCandidate>,
        worker: Option<WorkerId>,
        bound: f64,
    },
    /// The task is the winner of a provisional grant (not selectable).
    Granted,
}

/// One step of the speculation journal.  Steps after (and including) a
/// superseded grant are undone in reverse order.
#[derive(Debug)]
enum Step {
    /// A provisional grant.
    Grant {
        task: usize,
        candidate: TaskCandidate,
        worker: WorkerId,
        /// The entry the winner held before the grant.
        old_entry: Entry,
        /// `remaining` before this grant's subtraction (the budget the
        /// barrier master would see at this selection).
        budget_before: f64,
        /// The slot's occupancy right after this grant (the exclusion set a
        /// barrier master would hand this grant's losers).
        occupied_after: Vec<WorkerId>,
        /// Conflict losers invalidated by this grant, with their replaced
        /// entries (refreshes for them were emitted speculatively).  Grows
        /// when a late heartbeat turns out to target the granted worker.
        losers: Vec<(usize, Entry)>,
        /// Tasks whose heartbeats were outstanding at the decision; the grant
        /// finalizes when this set empties.
        waiting_on: BTreeSet<usize>,
    },
    /// A selection-time worker conflict (the picked candidate's worker was
    /// already occupied): counted, recorded and refreshed speculatively.
    /// Like a grant, the *selection* that derived it may be superseded by a
    /// late heartbeat, so it carries the same validation state.
    Conflict {
        task: usize,
        /// The conflicted candidate (supersede checks compare against its
        /// heuristic).
        candidate: TaskCandidate,
        old_entry: Entry,
        /// `remaining` at the selection (the barrier's staleness bound).
        budget_at: f64,
        /// Tasks whose heartbeats were outstanding at the selection.
        waiting_on: BTreeSet<usize>,
    },
    /// A budget-staleness invalidation (the cached candidate became
    /// unaffordable): a recompute was requested speculatively.
    Invalidate { task: usize, old_entry: Entry },
}

/// The master state machine of the task-level parallel framework.  Feed it
/// [`WorkerEvent`]s via [`TaskMaster::handle`]; dispatch the returned
/// [`MasterCommand`]s to the task owners; broadcast the finish signal when
/// [`TaskMaster::is_done`] turns true.
pub struct TaskMaster<R: Recorder = NoopRecorder> {
    policy: GrantPolicy,
    use_priorities: bool,
    remaining: f64,
    ledger: WorkerLedger,
    versions: Vec<Version>,
    table: Vec<Entry>,
    /// The budget bound of the latest command issued per task (stamped onto
    /// the entry its heartbeat installs).
    issued_bound: Vec<f64>,
    /// Outstanding replies (heartbeats and execution confirmations),
    /// including replies that will arrive stale.
    pending: usize,
    journal: VecDeque<Step>,
    conflicts: usize,
    executions: usize,
    rollbacks: usize,
    /// Provisional grants rolled back because a late heartbeat won the serial
    /// tie-break against them (a strict subset of `rollbacks`, which also
    /// counts budget-staleness rollbacks).
    supersedes: usize,
    committed: Vec<CommittedExecution>,
    conflict_table: Vec<ConflictRecord>,
    conflict_ranks: HashMap<(SlotIndex, WorkerId), usize>,
    log: Vec<LogEntry>,
    /// Last reported heuristic per task (the priority-ordering key), kept in
    /// step with the log so the sort never re-scans it.
    last_heuristic: Vec<Option<f64>>,
    done: bool,
    /// Event recorder (statically dispatched; `NoopRecorder` by default, so
    /// un-instrumented drivers pay nothing).
    obs: R,
}

impl<R: Recorder> std::fmt::Debug for TaskMaster<R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskMaster")
            .field("policy", &self.policy)
            .field("remaining", &self.remaining)
            .field("pending", &self.pending)
            .field("journal", &self.journal.len())
            .field("executions", &self.executions)
            .field("rollbacks", &self.rollbacks)
            .field("supersedes", &self.supersedes)
            .field("done", &self.done)
            .finish_non_exhaustive()
    }
}

impl TaskMaster {
    /// A master over `num_tasks` tasks with budget `budget` under `policy`,
    /// starting from `ledger` (empty for a fresh batch; the committed
    /// occupancy of earlier rounds for streaming drains).  Returns the
    /// machine and the initial compute commands (one per task, version 0).
    pub fn new(
        num_tasks: usize,
        budget: f64,
        ledger: WorkerLedger,
        policy: GrantPolicy,
        use_priorities: bool,
    ) -> (Self, Vec<MasterCommand>) {
        let master = Self {
            policy,
            use_priorities,
            remaining: budget,
            ledger,
            versions: vec![0; num_tasks],
            table: vec![Entry::Pending; num_tasks],
            issued_bound: vec![budget; num_tasks],
            pending: num_tasks,
            journal: VecDeque::new(),
            conflicts: 0,
            executions: 0,
            rollbacks: 0,
            supersedes: 0,
            committed: Vec::new(),
            conflict_table: Vec::new(),
            conflict_ranks: HashMap::new(),
            log: Vec::new(),
            last_heuristic: vec![None; num_tasks],
            done: num_tasks == 0,
            obs: NoopRecorder,
        };
        let commands = (0..num_tasks)
            .map(|task| MasterCommand::Compute {
                task,
                version: 0,
                max_cost: master.remaining,
            })
            .collect();
        (master, commands)
    }
}

impl<R: Recorder> TaskMaster<R> {
    /// Rebinds the master to a different recorder (typically from the
    /// `NoopRecorder` default to a live session handle).  The machine state
    /// is carried over unchanged, so this is free to call right after
    /// [`TaskMaster::new`].
    pub fn with_recorder<R2: Recorder>(self, obs: R2) -> TaskMaster<R2> {
        TaskMaster {
            policy: self.policy,
            use_priorities: self.use_priorities,
            remaining: self.remaining,
            ledger: self.ledger,
            versions: self.versions,
            table: self.table,
            issued_bound: self.issued_bound,
            pending: self.pending,
            journal: self.journal,
            conflicts: self.conflicts,
            executions: self.executions,
            rollbacks: self.rollbacks,
            supersedes: self.supersedes,
            committed: self.committed,
            conflict_table: self.conflict_table,
            conflict_ranks: self.conflict_ranks,
            log: self.log,
            last_heuristic: self.last_heuristic,
            done: self.done,
            obs,
        }
    }

    /// Whether every grant is committed and no reply is outstanding.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Number of worker conflicts recorded so far (committed timeline only
    /// once the run is done).
    pub fn conflicts(&self) -> usize {
        self.conflicts
    }

    /// Number of committed executions so far.
    pub fn executions(&self) -> usize {
        self.executions
    }

    /// Number of provisional grants that were rolled back.
    pub fn rollbacks(&self) -> usize {
        self.rollbacks
    }

    /// Number of provisional grants superseded by a late heartbeat winning
    /// the serial tie-break (a subset of [`TaskMaster::rollbacks`]).
    pub fn supersedes(&self) -> usize {
        self.supersedes
    }

    /// The committed execution sequence, in grant order.
    pub fn committed(&self) -> &[CommittedExecution] {
        &self.committed
    }

    /// The master's occupancy ledger (committed plus provisional grants).
    pub fn ledger(&self) -> &WorkerLedger {
        &self.ledger
    }

    /// Consumes the machine, returning its tables:
    /// `(conflict_table, log, committed, conflicts, executions, rollbacks,
    /// supersedes)`.
    #[allow(clippy::type_complexity)]
    pub fn into_tables(
        self,
    ) -> (
        Vec<ConflictRecord>,
        Vec<LogEntry>,
        Vec<CommittedExecution>,
        usize,
        usize,
        usize,
        usize,
    ) {
        (
            self.conflict_table,
            self.log,
            self.committed,
            self.conflicts,
            self.executions,
            self.rollbacks,
            self.supersedes,
        )
    }

    /// Feeds one worker event into the machine, returning the commands it
    /// triggers (in emission order).
    pub fn handle(&mut self, event: WorkerEvent) -> Vec<MasterCommand> {
        let mut out = Vec::new();
        match event {
            WorkerEvent::Heartbeat {
                task,
                version,
                candidate,
                planned_worker,
            } => {
                self.pending -= 1;
                if R::IS_ENABLED {
                    let stale = u64::from(version != self.versions[task]);
                    self.obs.instant(
                        Scope::Policy,
                        "master.heartbeat",
                        task as u64,
                        version,
                        stale,
                    );
                }
                if version != self.versions[task] {
                    // A reply from a rolled-back timeline; drop it.
                    return self.attempt(out);
                }
                self.log.push(LogEntry::Heartbeat {
                    task,
                    heuristic: candidate.map(|c| c.heuristic),
                });
                if let Some(c) = &candidate {
                    self.last_heuristic[task] = Some(c.heuristic);
                }
                if self.incorporate_late_heartbeat(task, candidate, planned_worker, &mut out) {
                    self.table[task] = Entry::Known {
                        candidate,
                        worker: planned_worker,
                        bound: self.issued_bound[task],
                    };
                }
            }
            WorkerEvent::Executed {
                task,
                slot,
                worker,
                cost,
            } => {
                self.pending -= 1;
                self.log.push(LogEntry::Execution {
                    task,
                    slot,
                    worker,
                    cost,
                });
                self.executions += 1;
                if R::IS_ENABLED {
                    self.obs.instant(
                        Scope::Policy,
                        "master.executed",
                        task as u64,
                        slot as u64,
                        u64::from(worker.0),
                    );
                    self.obs.counter("master.executions", 1);
                }
            }
        }
        self.attempt(out)
    }

    /// Checks an arriving current-version heartbeat against the provisional
    /// grants in decision order; rolls back when it supersedes one (or when
    /// the barrier master would have recomputed the task before the grant).
    /// Returns whether the heartbeat should be installed in the table
    /// (`false` when it was consumed — by the staleness recompute or by
    /// becoming a late conflict loser of a standing grant).
    fn incorporate_late_heartbeat(
        &mut self,
        task: usize,
        candidate: Option<TaskCandidate>,
        planned_worker: Option<WorkerId>,
        out: &mut Vec<MasterCommand>,
    ) -> bool {
        // Walk the speculative steps oldest-first; only steps whose decision
        // predates this heartbeat (the task is in their waiting set)
        // participate.
        let positions: Vec<usize> = self
            .journal
            .iter()
            .enumerate()
            .filter(|(_, step)| match step {
                Step::Grant { waiting_on, .. } | Step::Conflict { waiting_on, .. } => {
                    waiting_on.contains(&task)
                }
                Step::Invalidate { .. } => false,
            })
            .map(|(pos, _)| pos)
            .collect();
        for pos in positions {
            // The selection that produced this step compared against some
            // candidate under some budget; extract both.
            let (sel_task, sel_candidate, budget_at) = match &self.journal[pos] {
                Step::Grant {
                    task: winner,
                    candidate,
                    budget_before,
                    ..
                } => (*winner, *candidate, *budget_before),
                Step::Conflict {
                    task: conflicted,
                    candidate,
                    budget_at,
                    ..
                } => (*conflicted, *candidate, *budget_at),
                Step::Invalidate { .. } => unreachable!("filtered out above"),
            };
            match candidate {
                Some(c) if c.cost > budget_at => {
                    // The barrier master would have invalidated and
                    // recomputed this task before this selection: the step
                    // was decided on incomplete information.  Roll back and
                    // re-request the compute under the restored budget.
                    self.rollback_from(pos, out);
                    self.versions[task] += 1;
                    self.table[task] = Entry::Pending;
                    self.pending += 1;
                    self.issued_bound[task] = self.remaining;
                    out.push(MasterCommand::Compute {
                        task,
                        version: self.versions[task],
                        max_cost: self.remaining,
                    });
                    return false;
                }
                Some(c)
                    if c.heuristic > sel_candidate.heuristic
                        || (c.heuristic == sel_candidate.heuristic && task < sel_task) =>
                {
                    // The late candidate wins the serial tie-break: the
                    // selection is superseded.  Roll back; the heartbeat is
                    // installed and the re-run selection picks the true max.
                    self.supersedes += 1;
                    if R::IS_ENABLED {
                        self.obs.instant(
                            Scope::Policy,
                            "master.supersede",
                            task as u64,
                            sel_task as u64,
                            0,
                        );
                        self.obs.counter("master.supersedes", 1);
                    }
                    self.rollback_from(pos, out);
                    return true;
                }
                _ => {}
            }
            // The selection stands with respect to this task.  For a grant,
            // an entry targeting the granted worker becomes a late conflict
            // loser (in the barrier timeline it would have been present at
            // the grant and lost the worker to it).
            if let Step::Grant {
                candidate: granted,
                worker: granted_worker,
                budget_before,
                ..
            } = &self.journal[pos]
            {
                let (granted, granted_worker, budget_before) =
                    (*granted, *granted_worker, *budget_before);
                if let Some(c) = candidate {
                    if c.slot == granted.slot && planned_worker == Some(granted_worker) {
                        self.conflicts += 1;
                        let rank = self
                            .conflict_ranks
                            .entry((granted.slot, granted_worker))
                            .and_modify(|r| *r += 1)
                            .or_insert(2);
                        self.conflict_table.push(ConflictRecord {
                            tasks: vec![task],
                            slot: granted.slot,
                            worker: granted_worker,
                            next_rank: *rank,
                        });
                        let Step::Grant {
                            losers,
                            waiting_on,
                            occupied_after,
                            ..
                        } = &mut self.journal[pos]
                        else {
                            unreachable!("the step was just matched as a grant");
                        };
                        waiting_on.remove(&task);
                        losers.push((
                            task,
                            Entry::Known {
                                candidate,
                                worker: planned_worker,
                                bound: self.issued_bound[task],
                            },
                        ));
                        let occupied = occupied_after.clone();
                        self.versions[task] += 1;
                        self.table[task] = Entry::Pending;
                        self.pending += 1;
                        self.issued_bound[task] = budget_before - granted.cost;
                        out.push(MasterCommand::Refresh {
                            task,
                            version: self.versions[task],
                            slot: granted.slot,
                            occupied,
                            max_cost: budget_before - granted.cost,
                        });
                        return false;
                    }
                }
            }
            match &mut self.journal[pos] {
                Step::Grant { waiting_on, .. } | Step::Conflict { waiting_on, .. } => {
                    waiting_on.remove(&task);
                }
                Step::Invalidate { .. } => unreachable!("filtered out above"),
            }
        }
        true
    }

    /// Undoes journal steps from the top down to (and including) `from`, in
    /// reverse order, emitting the owner-side undo commands.
    fn rollback_from(&mut self, from: usize, out: &mut Vec<MasterCommand>) {
        while self.journal.len() > from {
            let step = self
                .journal
                .pop_back()
                .expect("journal has steps beyond `from`");
            match step {
                Step::Grant {
                    task,
                    candidate,
                    worker,
                    old_entry,
                    budget_before,
                    losers,
                    ..
                } => {
                    self.rollbacks += 1;
                    if R::IS_ENABLED {
                        self.obs.instant(
                            Scope::Policy,
                            "master.rollback",
                            task as u64,
                            candidate.slot as u64,
                            losers.len() as u64,
                        );
                        self.obs.counter("master.rollbacks", 1);
                    }
                    for (loser, entry) in losers.into_iter().rev() {
                        out.push(MasterCommand::UndoRefresh {
                            task: loser,
                            slot: candidate.slot,
                        });
                        self.versions[loser] += 1;
                        self.table[loser] = entry;
                        self.conflicts -= 1;
                    }
                    assert!(
                        self.ledger.release(candidate.slot, worker),
                        "rolling back a grant must release its occupancy"
                    );
                    self.remaining = budget_before;
                    self.table[task] = old_entry;
                }
                Step::Conflict {
                    task,
                    candidate,
                    old_entry,
                    ..
                } => {
                    out.push(MasterCommand::UndoRefresh {
                        task,
                        slot: candidate.slot,
                    });
                    self.versions[task] += 1;
                    self.table[task] = old_entry;
                    self.conflicts -= 1;
                }
                Step::Invalidate { task, old_entry } => {
                    self.versions[task] += 1;
                    self.table[task] = old_entry;
                }
            }
        }
        // The rollback may have *raised* `remaining` past the budget bound
        // some entries (or in-flight requests) were computed under — those
        // searches never considered candidates costing more than their
        // bound, so they are unusable in the restored timeline.  Recompute
        // them under the restored budget (the barrier master, whose budget
        // never grows, maintains this invariant for free).
        for task in 0..self.table.len() {
            match &self.table[task] {
                Entry::Known { bound, .. } if *bound < self.remaining => {
                    let old_entry = std::mem::replace(&mut self.table[task], Entry::Pending);
                    self.journal.push_back(Step::Invalidate { task, old_entry });
                    self.versions[task] += 1;
                    self.pending += 1;
                    self.issued_bound[task] = self.remaining;
                    out.push(MasterCommand::Compute {
                        task,
                        version: self.versions[task],
                        max_cost: self.remaining,
                    });
                }
                Entry::Pending if self.issued_bound[task] < self.remaining => {
                    self.versions[task] += 1;
                    self.pending += 1;
                    self.issued_bound[task] = self.remaining;
                    out.push(MasterCommand::Compute {
                        task,
                        version: self.versions[task],
                        max_cost: self.remaining,
                    });
                }
                _ => {}
            }
        }
    }

    /// Records one conflict event: counts the losing tasks, bumps the
    /// `(slot, worker)` fallback rank (first conflict starts at the 2nd NN)
    /// and appends the conflicting-table record.  The single site of the
    /// rank convention — the late-loser, selection-conflict and grant-loser
    /// paths all go through it (rollback decrements `conflicts` per loser).
    fn record_conflict(&mut self, tasks: Vec<usize>, slot: SlotIndex, worker: WorkerId) {
        self.conflicts += tasks.len();
        let rank = self
            .conflict_ranks
            .entry((slot, worker))
            .and_modify(|r| *r += 1)
            .or_insert(2);
        self.conflict_table.push(ConflictRecord {
            tasks,
            slot,
            worker,
            next_rank: *rank,
        });
    }

    /// Sorts a request batch by descending last-reported heuristic when the
    /// dynamic priorities are enabled (Fig. 9(f)); affects only the emission
    /// order, never the result.
    fn priority_sort(&self, tasks: &mut [usize]) {
        if self.use_priorities {
            tasks.sort_by(|&a, &b| {
                let ha = self.last_heuristic[a].unwrap_or(f64::INFINITY);
                let hb = self.last_heuristic[b].unwrap_or(f64::INFINITY);
                hb.total_cmp(&ha)
            });
        }
    }

    /// Drives the machine forward: finalize ripe grants, invalidate stale
    /// candidates, and (policy permitting) decide new grants.
    fn attempt(&mut self, mut out: Vec<MasterCommand>) -> Vec<MasterCommand> {
        loop {
            let before = out.len();
            self.finalize_ripe_grants(&mut out);

            // Budget staleness: cached candidates computed under a larger
            // budget may have become unaffordable; recompute them under the
            // current budget so cheaper slots are still considered.
            let mut stale: Vec<usize> = Vec::new();
            for (task, entry) in self.table.iter().enumerate() {
                if let Entry::Known {
                    candidate: Some(c), ..
                } = entry
                {
                    if c.cost > self.remaining {
                        stale.push(task);
                    }
                }
            }
            self.priority_sort(&mut stale);
            for task in stale {
                let old_entry = std::mem::replace(&mut self.table[task], Entry::Pending);
                self.journal.push_back(Step::Invalidate { task, old_entry });
                self.versions[task] += 1;
                self.pending += 1;
                self.issued_bound[task] = self.remaining;
                out.push(MasterCommand::Compute {
                    task,
                    version: self.versions[task],
                    max_cost: self.remaining,
                });
            }

            if self.may_grant() {
                self.try_grant(&mut out);
            }
            self.finalize_ripe_grants(&mut out);

            if out.len() == before {
                break;
            }
        }
        self.done = self.pending == 0 && self.journal.is_empty() && self.select().is_none();
        out
    }

    /// Whether the policy currently allows deciding a grant.
    fn may_grant(&self) -> bool {
        match self.policy {
            GrantPolicy::Barrier => self.pending == 0,
            GrantPolicy::Optimistic => true,
        }
    }

    /// The serial selection rule: the affordable candidate with the maximum
    /// heuristic, ties to the lower task index.
    fn select(&self) -> Option<(usize, TaskCandidate, WorkerId)> {
        let mut best: Option<(usize, TaskCandidate, WorkerId)> = None;
        for (task, entry) in self.table.iter().enumerate() {
            let Entry::Known {
                candidate: Some(c),
                worker: Some(worker),
                ..
            } = entry
            else {
                continue;
            };
            if c.cost > self.remaining {
                continue;
            }
            let better = match &best {
                None => true,
                Some((bt, b, _)) => {
                    c.heuristic > b.heuristic || (c.heuristic == b.heuristic && task < *bt)
                }
            };
            if better {
                best = Some((task, *c, *worker));
            }
        }
        best
    }

    /// Decides grants (and processes selection-time conflicts) while the
    /// selection yields winners.
    fn try_grant(&mut self, out: &mut Vec<MasterCommand>) {
        while let Some((task, candidate, worker)) = self.select() {
            if self.ledger.is_occupied(candidate.slot, worker) {
                // Selection-time conflict: the cached candidate's worker was
                // taken since the candidate was computed.  Count it, record
                // it, and refresh the slot (speculatively — the refresh is
                // undoable).
                self.record_conflict(vec![task], candidate.slot, worker);
                let waiting_on: BTreeSet<usize> = self
                    .table
                    .iter()
                    .enumerate()
                    .filter(|(t, e)| *t != task && matches!(e, Entry::Pending))
                    .map(|(t, _)| t)
                    .collect();
                let old_entry = std::mem::replace(&mut self.table[task], Entry::Pending);
                self.journal.push_back(Step::Conflict {
                    task,
                    candidate,
                    old_entry,
                    budget_at: self.remaining,
                    waiting_on,
                });
                self.versions[task] += 1;
                self.pending += 1;
                self.issued_bound[task] = self.remaining;
                out.push(MasterCommand::Refresh {
                    task,
                    version: self.versions[task],
                    slot: candidate.slot,
                    occupied: self.ledger.occupied_at(candidate.slot),
                    max_cost: self.remaining,
                });
                if matches!(self.policy, GrantPolicy::Barrier) {
                    // The barrier master waits for the refreshed heartbeat
                    // before selecting again.
                    break;
                }
                continue;
            }

            // Provisional grant: apply budget and occupancy speculatively and
            // invalidate + refresh the conflict losers immediately; defer the
            // irreversible Execute to finalization.
            if R::IS_ENABLED {
                self.obs.instant(
                    Scope::Policy,
                    "master.grant",
                    task as u64,
                    candidate.slot as u64,
                    u64::from(worker.0),
                );
                self.obs.counter("master.grants", 1);
            }
            let budget_before = self.remaining;
            self.remaining -= candidate.cost;
            self.ledger.occupy(candidate.slot, worker);
            let old_entry = std::mem::replace(&mut self.table[task], Entry::Granted);

            let mut losers: Vec<usize> = Vec::new();
            for (other, entry) in self.table.iter().enumerate() {
                if other == task {
                    continue;
                }
                if let Entry::Known {
                    candidate: Some(c),
                    worker: Some(w),
                    ..
                } = entry
                {
                    if c.slot == candidate.slot && *w == worker {
                        losers.push(other);
                    }
                }
            }
            if !losers.is_empty() {
                self.record_conflict(losers.clone(), candidate.slot, worker);
            }
            let mut ordered = losers.clone();
            self.priority_sort(&mut ordered);
            let occupied = self.ledger.occupied_at(candidate.slot);
            let mut loser_entries = Vec::with_capacity(losers.len());
            for &loser in &losers {
                loser_entries.push((
                    loser,
                    std::mem::replace(&mut self.table[loser], Entry::Pending),
                ));
            }
            for loser in ordered {
                self.versions[loser] += 1;
                self.pending += 1;
                self.issued_bound[loser] = self.remaining;
                out.push(MasterCommand::Refresh {
                    task: loser,
                    version: self.versions[loser],
                    slot: candidate.slot,
                    occupied: occupied.clone(),
                    max_cost: self.remaining,
                });
            }

            let waiting_on: BTreeSet<usize> = self
                .table
                .iter()
                .enumerate()
                .filter(|(_, e)| matches!(e, Entry::Pending))
                .map(|(t, _)| t)
                .filter(|t| !losers.contains(t))
                .collect();
            self.journal.push_back(Step::Grant {
                task,
                candidate,
                worker,
                old_entry,
                budget_before,
                occupied_after: occupied,
                losers: loser_entries,
                waiting_on,
            });

            if matches!(self.policy, GrantPolicy::Barrier) {
                // The barrier master decides at most one grant per epoch and
                // finalizes it immediately (nothing was outstanding).
                break;
            }
        }
    }

    /// Retires the journal from the oldest step up while waiting sets are
    /// empty: ripe grants finalize (Execute + the winner's follow-up Compute
    /// are emitted, the execution is committed), ripe conflicts and
    /// invalidations simply become permanent.  Stops at the first step whose
    /// selection is still awaiting late heartbeats — an irreversible Execute
    /// may never overtake a step that could still roll back underneath it.
    fn finalize_ripe_grants(&mut self, out: &mut Vec<MasterCommand>) {
        while let Some(step) = self.journal.front() {
            match step {
                Step::Grant { waiting_on, .. } | Step::Conflict { waiting_on, .. }
                    if !waiting_on.is_empty() =>
                {
                    return;
                }
                Step::Conflict { .. } | Step::Invalidate { .. } => {
                    self.journal.pop_front();
                }
                Step::Grant {
                    task,
                    candidate,
                    worker,
                    budget_before,
                    ..
                } => {
                    let (task, candidate, worker) = (*task, *candidate, *worker);
                    let after_grant = *budget_before - candidate.cost;
                    self.journal.pop_front();
                    self.committed.push(CommittedExecution {
                        task,
                        slot: candidate.slot,
                        worker,
                        cost: candidate.cost,
                    });
                    self.pending += 2;
                    out.push(MasterCommand::Execute {
                        task,
                        slot: candidate.slot,
                    });
                    self.versions[task] += 1;
                    self.table[task] = Entry::Pending;
                    self.issued_bound[task] = after_grant;
                    out.push(MasterCommand::Compute {
                        task,
                        version: self.versions[task],
                        // The budget the barrier master hands the winner:
                        // remaining right after this grant's subtraction,
                        // independent of any younger provisional grants.
                        max_cost: after_grant,
                    });
                    // In the barrier timeline the winner's post-execution
                    // heartbeat arrives before every later selection; steps
                    // decided after this grant (still in the journal) must
                    // therefore wait for it — it may supersede them.
                    for step in &mut self.journal {
                        match step {
                            Step::Grant { waiting_on, .. } | Step::Conflict { waiting_on, .. } => {
                                waiting_on.insert(task);
                            }
                            Step::Invalidate { .. } => {}
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(slot: SlotIndex, cost: f64, heuristic: f64) -> TaskCandidate {
        TaskCandidate {
            slot,
            gain: heuristic * cost,
            cost,
            heuristic,
        }
    }

    fn hb(
        task: usize,
        version: Version,
        candidate: Option<TaskCandidate>,
        worker: Option<WorkerId>,
    ) -> WorkerEvent {
        WorkerEvent::Heartbeat {
            task,
            version,
            candidate,
            planned_worker: worker,
        }
    }

    #[test]
    fn barrier_machine_waits_for_every_heartbeat() {
        let (mut master, initial) =
            TaskMaster::new(2, 10.0, WorkerLedger::new(), GrantPolicy::Barrier, false);
        assert_eq!(initial.len(), 2);
        // One heartbeat in: the barrier master must not grant yet.
        let out = master.handle(hb(0, 0, Some(cand(0, 1.0, 3.0)), Some(WorkerId(0))));
        assert!(out.is_empty(), "barrier must wait for task 1's heartbeat");
        // Second heartbeat: now the max (task 0) is granted and executed.
        let out = master.handle(hb(1, 0, Some(cand(1, 1.0, 2.0)), Some(WorkerId(1))));
        assert!(matches!(
            out[0],
            MasterCommand::Execute { task: 0, slot: 0 }
        ));
        assert_eq!(master.rollbacks(), 0);
    }

    #[test]
    fn optimistic_machine_grants_early_and_rolls_back_when_superseded() {
        let (mut master, initial) =
            TaskMaster::new(2, 10.0, WorkerLedger::new(), GrantPolicy::Optimistic, false);
        assert_eq!(initial.len(), 2);
        // Task 1 reports first; the optimistic master provisionally grants it
        // (no Execute yet — task 0 is still outstanding and could supersede).
        let out = master.handle(hb(1, 0, Some(cand(0, 1.0, 2.0)), Some(WorkerId(1))));
        assert!(
            !out.iter()
                .any(|c| matches!(c, MasterCommand::Execute { .. })),
            "a provisional grant must not execute"
        );
        assert!(master.ledger().is_occupied(0, WorkerId(1)));
        // Task 0's late heartbeat beats the provisional grant: rollback, then
        // task 0 is granted and finalized (nothing else is outstanding);
        // task 1 is re-granted behind it, provisionally again — its commit
        // must wait for task 0's post-execution recompute, exactly like the
        // barrier master would.
        let out = master.handle(hb(0, 0, Some(cand(0, 1.0, 3.0)), Some(WorkerId(0))));
        assert_eq!(master.rollbacks(), 1);
        let executes: Vec<usize> = out
            .iter()
            .filter_map(|c| match c {
                MasterCommand::Execute { task, .. } => Some(*task),
                _ => None,
            })
            .collect();
        assert_eq!(executes, vec![0], "commit order follows the serial max");
        assert_eq!(master.committed()[0].task, 0);
        let v0 = out
            .iter()
            .find_map(|c| match c {
                MasterCommand::Compute {
                    task: 0, version, ..
                } => Some(*version),
                _ => None,
            })
            .expect("the winner gets a follow-up compute");
        master.handle(WorkerEvent::Executed {
            task: 0,
            slot: 0,
            worker: WorkerId(0),
            cost: 1.0,
        });
        // Task 0 has nothing left; the waiting provisional grant of task 1
        // finalizes now.
        let out = master.handle(hb(0, v0, None, None));
        assert!(matches!(
            out[0],
            MasterCommand::Execute { task: 1, slot: 0 }
        ));
        assert_eq!(master.committed()[1].task, 1);
        let v1 = out
            .iter()
            .find_map(|c| match c {
                MasterCommand::Compute {
                    task: 1, version, ..
                } => Some(*version),
                _ => None,
            })
            .expect("the winner gets a follow-up compute");
        master.handle(WorkerEvent::Executed {
            task: 1,
            slot: 0,
            worker: WorkerId(1),
            cost: 1.0,
        });
        let out = master.handle(hb(1, v1, None, None));
        assert!(out.is_empty());
        assert!(master.is_done());
        assert_eq!(master.executions(), 2);
    }

    #[test]
    fn stale_heartbeats_from_rolled_back_timelines_are_dropped() {
        let (mut master, _) =
            TaskMaster::new(3, 10.0, WorkerLedger::new(), GrantPolicy::Optimistic, false);
        // Tasks 1 and 2 both plan worker 9 at slot 0; task 1 wins the
        // provisional grant and task 2 becomes a speculative loser (its
        // refresh is version-bumped).
        master.handle(hb(1, 0, Some(cand(0, 1.0, 5.0)), Some(WorkerId(9))));
        let out = master.handle(hb(2, 0, Some(cand(0, 1.0, 4.0)), Some(WorkerId(9))));
        assert!(out
            .iter()
            .any(|c| matches!(c, MasterCommand::Refresh { task: 2, .. })));
        assert_eq!(master.conflicts(), 1);
        // Task 0 supersedes the grant: the loser refresh is undone first, and
        // the re-run selection re-grants task 1 behind task 0 — re-deriving
        // task 2's loss with a fresh (higher-version) refresh.
        let out = master.handle(hb(0, 0, Some(cand(1, 1.0, 6.0)), Some(WorkerId(3))));
        assert_eq!(master.rollbacks(), 1);
        let undo_pos = out
            .iter()
            .position(|c| matches!(c, MasterCommand::UndoRefresh { task: 2, .. }))
            .expect("the speculative loser refresh is undone");
        let redo_pos = out
            .iter()
            .position(|c| matches!(c, MasterCommand::Refresh { task: 2, .. }))
            .expect("the loss is re-derived in the corrected timeline");
        assert!(undo_pos < redo_pos, "undo precedes the re-derived refresh");
        assert_eq!(
            master.conflicts(),
            1,
            "one rolled-back conflict uncounted, one re-derived"
        );
        // The in-flight heartbeat of the *rolled-back* refresh carries a
        // stale version and must be ignored (the re-derived refresh bumped
        // past it).
        master.handle(hb(2, 1, None, None));
        assert_eq!(master.conflicts(), 1);
        assert!(!master.is_done());
    }
}
