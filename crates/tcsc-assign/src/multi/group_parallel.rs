//! Group-level parallelization (Section IV-A.1).
//!
//! Tasks are partitioned into independent groups with the independence graph
//! of [`super::conflict`]; groups never compete for the same workers, so each
//! group can be optimised by its own serial MSQM greedy on a separate thread.
//! The global budget is split across groups proportionally to their task
//! counts (the paper leaves the split unspecified; a proportional split keeps
//! the comparison with the other frameworks fair and is documented in
//! DESIGN.md).  The drawback noted in the paper is visible here too: skewed
//! workloads produce few, large groups, which limits the achievable speed-up.

use std::thread;

use tcsc_core::{AssignmentPlan, CostModel, MultiAssignment, Task};
use tcsc_index::WorkerIndex;

use crate::candidates::{SlotCandidates, WorkerLedger};
use crate::engine::{msqm_greedy_core, CacheStats, CandidateCache};
use crate::engine::{AssignmentEngine, Objective};
use crate::multi::conflict::independence_graph;
use crate::multi::{MultiOutcome, MultiTaskConfig, TaskState};

/// Outcome of the group-level parallel run, with the grouping statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupParallelOutcome {
    /// The combined multi-task outcome.
    pub outcome: MultiOutcome,
    /// Number of independent groups.
    pub groups: usize,
    /// Size of the largest group.
    pub largest_group: usize,
    /// Number of conflict edges in the independence graph.
    pub conflict_edges: usize,
}

/// Runs MSQM with group-level parallelization over at most `threads`
/// concurrent worker threads.
#[deprecated(note = "use tcsc::solver::SolverBuilder with Runtime::GroupParallel")]
pub fn msqm_group_parallel(
    tasks: &[Task],
    index: &WorkerIndex,
    cost_model: &(dyn CostModel + Sync),
    config: &MultiTaskConfig,
    threads: usize,
) -> GroupParallelOutcome {
    let threads = threads.max(1);
    let graph = independence_graph(tasks, index, 8);
    let groups = graph.groups.clone();
    let total_tasks = tasks.len().max(1);

    // Each group receives a budget share proportional to its size.
    let jobs: Vec<(Vec<usize>, f64)> = groups
        .iter()
        .map(|g| {
            let share = config.budget * g.len() as f64 / total_tasks as f64;
            (g.clone(), share)
        })
        .collect();

    // Run the groups in waves of at most `threads` concurrent jobs.
    let mut per_group: Vec<(Vec<usize>, MultiOutcome)> = Vec::with_capacity(jobs.len());
    for wave in jobs.chunks(threads) {
        let results: Vec<(Vec<usize>, MultiOutcome)> = thread::scope(|scope| {
            let handles: Vec<_> = wave
                .iter()
                .map(|(group, share)| {
                    let group_tasks: Vec<Task> = group.iter().map(|&i| tasks[i].clone()).collect();
                    let group = group.clone();
                    let share = *share;
                    scope.spawn(move || {
                        let cfg = MultiTaskConfig {
                            budget: share,
                            ..*config
                        };
                        let outcome = AssignmentEngine::borrowed(index, cost_model, cfg)
                            .assign_batch(&group_tasks, Objective::SumQuality);
                        (group, outcome)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("group worker thread panicked"))
                .collect()
        });
        per_group.extend(results);
    }

    // Stitch the per-group plans back into the original task order.
    let mut plans: Vec<Option<AssignmentPlan>> = vec![None; tasks.len()];
    let mut conflicts = 0usize;
    let mut executions = 0usize;
    let mut stats = CacheStats::default();
    for (group, outcome) in per_group {
        conflicts += outcome.conflicts;
        executions += outcome.executions;
        stats.merge(&outcome.stats);
        for (local, &task_idx) in group.iter().enumerate() {
            plans[task_idx] = Some(outcome.assignment.plans[local].clone());
        }
    }
    let plans: Vec<AssignmentPlan> = plans
        .into_iter()
        .enumerate()
        .map(|(i, p)| p.unwrap_or_else(|| AssignmentPlan::empty(tasks[i].id, tasks[i].num_slots)))
        .collect();

    GroupParallelOutcome {
        outcome: MultiOutcome {
            assignment: MultiAssignment::new(plans),
            conflicts,
            executions,
            stats,
        },
        groups: groups.len(),
        largest_group: graph.largest_group(),
        conflict_edges: graph.conflict_count(),
    }
}

/// Runs MSQM with group-level parallelization, sharing one engine-style
/// base-candidate cache across every group (and across calls).
///
/// [`msqm_group_parallel`] builds a fresh per-call engine per group, so each
/// group re-queries the index for all of its tasks' base candidates on every
/// call.  This variant checks every task's base candidates out of the shared
/// `cache` once up front (the read path — groups never write occupancy into
/// the cache, their ledgers are group-local), then runs the same per-group
/// greedy over the pre-checked-out candidates.  Repeated calls — budget
/// sweeps, wave after wave of the same region — reuse the cached bases
/// instead of recomputing them per group.
///
/// The outcome is identical to [`msqm_group_parallel`] (same groups, same
/// budget shares, same greedy over the same candidates); the equivalence is
/// locked in by the tests below.
#[deprecated(
    note = "use tcsc::solver::SolverBuilder with Runtime::GroupParallel and \
            with_group_cache(true)"
)]
pub fn msqm_group_parallel_cached(
    tasks: &[Task],
    index: &WorkerIndex,
    cost_model: &(dyn CostModel + Sync),
    config: &MultiTaskConfig,
    threads: usize,
    cache: &mut CandidateCache,
) -> GroupParallelOutcome {
    let threads = threads.max(1);
    let graph = independence_graph(tasks, index, 8);
    let groups = graph.groups.clone();
    let total_tasks = tasks.len().max(1);

    // Prewarm: one shared checkout of every task's base candidates (the
    // empty-ledger nearest workers).  Misses are computed once for the whole
    // call; hits are served from previous calls.
    let mut stats = CacheStats::default();
    let mut base: Vec<Option<SlotCandidates>> = tasks
        .iter()
        .map(|t| Some(cache.checkout_base(t, index, cost_model, &mut stats)))
        .collect();

    let jobs: Vec<(Vec<usize>, f64)> = groups
        .iter()
        .map(|g| {
            let share = config.budget * g.len() as f64 / total_tasks as f64;
            (g.clone(), share)
        })
        .collect();

    let mut per_group: Vec<(Vec<usize>, MultiOutcome)> = Vec::with_capacity(jobs.len());
    for wave in jobs.chunks(threads) {
        let results: Vec<(Vec<usize>, MultiOutcome)> = thread::scope(|scope| {
            let handles: Vec<_> = wave
                .iter()
                .map(|(group, share)| {
                    let group_tasks: Vec<(Task, SlotCandidates)> = group
                        .iter()
                        .map(|&i| {
                            let candidates = base[i]
                                .take()
                                .expect("each task belongs to exactly one group");
                            (tasks[i].clone(), candidates)
                        })
                        .collect();
                    let group = group.clone();
                    let share = *share;
                    scope.spawn(move || {
                        let cfg = MultiTaskConfig {
                            budget: share,
                            ..*config
                        };
                        let mut group_stats = CacheStats::default();
                        let mut states: Vec<TaskState> = group_tasks
                            .into_iter()
                            .map(|(task, candidates)| {
                                TaskState::from_candidates(&task, candidates, &cfg)
                            })
                            .collect();
                        let mut ledger = WorkerLedger::new();
                        let (conflicts, executions) = msqm_greedy_core(
                            &mut states,
                            cfg.budget,
                            index,
                            cost_model,
                            &mut ledger,
                            cfg.accounting,
                            &mut group_stats,
                        );
                        let assignment = MultiAssignment::new(
                            states.into_iter().map(TaskState::into_plan).collect(),
                        );
                        (
                            group,
                            MultiOutcome {
                                assignment,
                                conflicts,
                                executions,
                                stats: group_stats,
                            },
                        )
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("group worker thread panicked"))
                .collect()
        });
        per_group.extend(results);
    }

    // Stitch the per-group plans back into the original task order.
    let mut plans: Vec<Option<AssignmentPlan>> = vec![None; tasks.len()];
    let mut conflicts = 0usize;
    let mut executions = 0usize;
    for (group, outcome) in per_group {
        conflicts += outcome.conflicts;
        executions += outcome.executions;
        stats.merge(&outcome.stats);
        for (local, &task_idx) in group.iter().enumerate() {
            plans[task_idx] = Some(outcome.assignment.plans[local].clone());
        }
    }
    let plans: Vec<AssignmentPlan> = plans
        .into_iter()
        .enumerate()
        .map(|(i, p)| p.unwrap_or_else(|| AssignmentPlan::empty(tasks[i].id, tasks[i].num_slots)))
        .collect();

    GroupParallelOutcome {
        outcome: MultiOutcome {
            assignment: MultiAssignment::new(plans),
            conflicts,
            executions,
            stats,
        },
        groups: groups.len(),
        largest_group: graph.largest_group(),
        conflict_edges: graph.conflict_count(),
    }
}

#[cfg(test)]
// The unit tests keep exercising the deprecated free-function wrappers on
// purpose: they are the advertised migration shims and must stay correct.
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::multi::test_support::small_instance;

    #[test]
    fn respects_the_global_budget() {
        let (tasks, index, cost) = small_instance(31, 6, 20, 150);
        for budget in [10.0, 40.0] {
            let result =
                msqm_group_parallel(&tasks, &index, &cost, &MultiTaskConfig::new(budget), 4);
            assert!(result.outcome.assignment.total_cost() <= budget + 1e-6);
        }
    }

    #[test]
    fn produces_one_plan_per_task_in_order() {
        let (tasks, index, cost) = small_instance(32, 7, 15, 150);
        let result = msqm_group_parallel(&tasks, &index, &cost, &MultiTaskConfig::new(30.0), 4);
        assert_eq!(result.outcome.assignment.plans.len(), 7);
        for (task, plan) in tasks.iter().zip(&result.outcome.assignment.plans) {
            assert_eq!(task.id, plan.task);
        }
        assert!(result.groups >= 1);
        assert!(result.largest_group <= 7);
    }

    #[test]
    fn no_worker_double_booking_within_a_group() {
        // Each group runs its own serial greedy with a shared ledger, so a
        // worker can never serve two tasks of the same group during one slot.
        // (Cross-group isolation is what the independence graph approximates;
        // it is exercised by the conflict-graph tests.)
        let (tasks, index, cost) = small_instance(33, 8, 20, 60);
        let graph = independence_graph(&tasks, &index, 8);
        let result = msqm_group_parallel(&tasks, &index, &cost, &MultiTaskConfig::new(200.0), 4);
        for group in &graph.groups {
            let mut seen = std::collections::HashSet::new();
            for &task_idx in group {
                for exec in &result.outcome.assignment.plans[task_idx].executions {
                    assert!(
                        seen.insert((exec.slot, exec.worker)),
                        "worker {:?} double-booked at slot {} within a group",
                        exec.worker,
                        exec.slot
                    );
                }
            }
        }
    }

    #[test]
    fn single_thread_and_many_threads_give_the_same_result() {
        let (tasks, index, cost) = small_instance(34, 6, 20, 120);
        let cfg = MultiTaskConfig::new(50.0);
        let one = msqm_group_parallel(&tasks, &index, &cost, &cfg, 1);
        let many = msqm_group_parallel(&tasks, &index, &cost, &cfg, 8);
        assert!((one.outcome.sum_quality() - many.outcome.sum_quality()).abs() < 1e-9);
        assert_eq!(one.groups, many.groups);
    }

    #[test]
    fn cached_variant_is_equivalent_to_the_per_group_engine_path() {
        for seed in [36, 37] {
            let (tasks, index, cost) = small_instance(seed, 8, 20, 100);
            let cfg = MultiTaskConfig::new(45.0);
            let current = msqm_group_parallel(&tasks, &index, &cost, &cfg, 4);
            let mut cache = CandidateCache::new();
            let cached = msqm_group_parallel_cached(&tasks, &index, &cost, &cfg, 4, &mut cache);
            assert_eq!(current.outcome.assignment, cached.outcome.assignment);
            assert_eq!(current.outcome.conflicts, cached.outcome.conflicts);
            assert_eq!(current.outcome.executions, cached.outcome.executions);
            assert_eq!(current.outcome.stats, cached.outcome.stats);
            assert_eq!(current.groups, cached.groups);
            assert_eq!(current.largest_group, cached.largest_group);
            assert_eq!(current.conflict_edges, cached.conflict_edges);
        }
    }

    #[test]
    fn repeated_calls_reuse_the_shared_cache_across_groups() {
        let (tasks, index, cost) = small_instance(38, 7, 20, 120);
        let cfg = MultiTaskConfig::new(40.0);
        let mut cache = CandidateCache::new();
        let first = msqm_group_parallel_cached(&tasks, &index, &cost, &cfg, 4, &mut cache);
        assert_eq!(first.outcome.stats.tasks_computed, tasks.len());
        // A budget sweep over the same wave: all base candidates come from
        // the shared cache, no task is recomputed.
        let sweep_cfg = MultiTaskConfig::new(25.0);
        let second = msqm_group_parallel_cached(&tasks, &index, &cost, &sweep_cfg, 4, &mut cache);
        assert_eq!(second.outcome.stats.tasks_computed, 0);
        assert_eq!(second.outcome.stats.tasks_reused, tasks.len());
        // And the cached path still matches the rebuild-per-group baseline.
        let baseline = msqm_group_parallel(&tasks, &index, &cost, &sweep_cfg, 4);
        assert_eq!(baseline.outcome.assignment, second.outcome.assignment);
    }

    #[test]
    fn quality_is_comparable_to_serial_msqm() {
        // The proportional budget split may cost some quality relative to the
        // globally greedy serial solver, but it must stay in the same
        // ballpark (and never exceed it by construction of the greedy rule).
        let (tasks, index, cost) = small_instance(35, 6, 25, 200);
        let cfg = MultiTaskConfig::new(60.0);
        let serial = crate::multi::msqm::msqm_serial(&tasks, &index, &cost, &cfg);
        let grouped = msqm_group_parallel(&tasks, &index, &cost, &cfg, 4);
        assert!(grouped.outcome.sum_quality() > 0.0);
        assert!(
            grouped.outcome.sum_quality() <= serial.sum_quality() + 1e-6
                || grouped.outcome.sum_quality() >= 0.5 * serial.sum_quality()
        );
    }
}
