//! MMQM: multi-task *minimum* quality maximisation (Problem 3).
//!
//! `q_min` is submodular and non-decreasing (Lemma 5), so the `(1 − 1/√e)`
//! approximation is achieved by repeatedly reinforcing the currently weakest
//! task: take the task with the minimum quality, execute its best affordable
//! subtask (greedy rule of Algorithm 1), and repeat until the budget is
//! exhausted.  The paper maintains a heap over the tasks for fast minimum
//! retrieval; because every execution changes only one task's quality, a
//! binary heap with lazy re-insertion is sufficient.  Subtasks are executed
//! strictly in sequence, so no worker conflicts arise (Section IV-B), but the
//! ledger still guarantees that one worker never serves two tasks in the same
//! slot.
//!
//! The greedy itself lives in [`crate::engine::AssignmentEngine`]; this entry
//! point wraps a per-call engine around the caller's index so existing users
//! keep their signature while routing through the shared candidate cache.
//! The pre-engine implementation survives as
//! [`crate::multi::rebuild::mmqm_rebuild`], the rebuild-per-call baseline.

use tcsc_core::{CostModel, Task};
use tcsc_index::WorkerIndex;

use crate::engine::{AssignmentEngine, Objective};
use crate::multi::{MultiOutcome, MultiTaskConfig};

/// Runs the MMQM greedy (maximise the minimum task quality).
#[deprecated(note = "use tcsc::solver::SolverBuilder with Runtime::Serial and \
            SolveObjective::MinQuality, or AssignmentEngine directly")]
pub fn mmqm(
    tasks: &[Task],
    index: &WorkerIndex,
    cost_model: &dyn CostModel,
    config: &MultiTaskConfig,
) -> MultiOutcome {
    AssignmentEngine::borrowed(index, cost_model, *config)
        .assign_batch(tasks, Objective::MinQuality)
}

#[cfg(test)]
// The unit tests keep exercising the deprecated free-function wrappers on
// purpose: they are the advertised migration shims and must stay correct.
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::multi::msqm::msqm_serial;
    use crate::multi::test_support::small_instance;

    #[test]
    fn respects_the_global_budget() {
        let (tasks, index, cost) = small_instance(11, 4, 25, 200);
        for budget in [5.0, 20.0, 50.0] {
            let outcome = mmqm(&tasks, &index, &cost, &MultiTaskConfig::new(budget));
            assert!(outcome.assignment.total_cost() <= budget + 1e-6);
        }
    }

    #[test]
    fn min_quality_grows_with_budget() {
        let (tasks, index, cost) = small_instance(12, 4, 25, 300);
        let mut last = -1.0;
        for budget in [10.0, 30.0, 80.0] {
            let outcome = mmqm(&tasks, &index, &cost, &MultiTaskConfig::new(budget));
            assert!(outcome.min_quality() >= last - 1e-9);
            last = outcome.min_quality();
        }
    }

    #[test]
    fn mmqm_balances_better_than_msqm() {
        // MMQM's objective is the weakest task, so its minimum quality must be
        // at least that of the sum-oriented greedy under the same budget.
        let (tasks, index, cost) = small_instance(13, 5, 30, 300);
        let cfg = MultiTaskConfig::new(40.0);
        let min_focused = mmqm(&tasks, &index, &cost, &cfg);
        let sum_focused = msqm_serial(&tasks, &index, &cost, &cfg);
        assert!(
            min_focused.min_quality() + 1e-9 >= sum_focused.min_quality(),
            "MMQM min {} should not be below MSQM min {}",
            min_focused.min_quality(),
            sum_focused.min_quality()
        );
    }

    #[test]
    fn no_double_booked_workers() {
        let (tasks, index, cost) = small_instance(14, 6, 20, 50);
        let outcome = mmqm(&tasks, &index, &cost, &MultiTaskConfig::new(300.0));
        let mut seen = std::collections::HashSet::new();
        for plan in &outcome.assignment.plans {
            for exec in &plan.executions {
                assert!(seen.insert((exec.slot, exec.worker)));
            }
        }
    }

    #[test]
    fn zero_budget_executes_nothing() {
        let (tasks, index, cost) = small_instance(15, 3, 20, 100);
        let outcome = mmqm(&tasks, &index, &cost, &MultiTaskConfig::new(0.0));
        assert_eq!(outcome.executions, 0);
    }

    #[test]
    fn indexed_and_plain_variants_agree_on_min_quality() {
        let (tasks, index, cost) = small_instance(16, 3, 25, 200);
        let a = mmqm(&tasks, &index, &cost, &MultiTaskConfig::new(30.0));
        let b = mmqm(
            &tasks,
            &index,
            &cost,
            &MultiTaskConfig::new(30.0).with_index(false),
        );
        assert!((a.min_quality() - b.min_quality()).abs() < 1e-6);
    }
}
