//! Worker-conflict analysis and independence groups (Section IV-A.1).
//!
//! Two tasks *conflict* when they compete for the same worker with the lowest
//! cost.  Taking each task as a node and adding an edge between conflicting
//! tasks yields an independence graph; connected components ("independent
//! groups") can be optimised in parallel without interacting.  The paper
//! derives the graph by gradually expanding each task's j-NN bound: a task of
//! degree `d` must reserve its `(d+1)` nearest workers, which may create new
//! conflicts, until a fixpoint is reached.

use std::collections::HashSet;

use tcsc_core::{Task, WorkerId};
use tcsc_index::WorkerIndex;

/// The independence graph over a task set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndependenceGraph {
    /// Number of tasks (nodes).
    pub num_tasks: usize,
    /// Conflict edges as (task index, task index) pairs with `a < b`.
    pub edges: Vec<(usize, usize)>,
    /// Connected components: each entry is a sorted list of task indices.
    pub groups: Vec<Vec<usize>>,
}

impl IndependenceGraph {
    /// Number of conflict edges.
    pub fn conflict_count(&self) -> usize {
        self.edges.len()
    }

    /// Size of the largest independent group.
    pub fn largest_group(&self) -> usize {
        self.groups.iter().map(Vec::len).max().unwrap_or(0)
    }
}

/// The set of workers a task would reserve when it needs its `count` nearest
/// workers, aggregated over all slots of the task (a worker is identified by
/// id; the nearest workers are computed per slot and unioned, which mirrors
/// the per-slot competition of the assignment algorithms).
fn reserved_workers(task: &Task, index: &WorkerIndex, count: usize) -> HashSet<WorkerId> {
    let mut set = HashSet::new();
    for slot in 0..task.num_slots {
        for candidate in index.k_nearest(slot, &task.location, count) {
            set.insert(candidate.worker);
        }
    }
    set
}

/// Builds the independence graph by gradually expanding each task's j-NN
/// bound until no new conflicts appear (or `max_rounds` is reached, which
/// bounds the work on extremely contended instances).
pub fn independence_graph(
    tasks: &[Task],
    index: &WorkerIndex,
    max_rounds: usize,
) -> IndependenceGraph {
    let n = tasks.len();
    // Current NN rank each task reserves (1-NN initially).
    let mut ranks = vec![1usize; n];
    let mut reservations: Vec<HashSet<WorkerId>> = tasks
        .iter()
        .map(|t| reserved_workers(t, index, 1))
        .collect();
    let mut edges: HashSet<(usize, usize)> = HashSet::new();

    for _ in 0..max_rounds.max(1) {
        // Detect conflicts with the current reservations.
        let mut new_edges = Vec::new();
        for a in 0..n {
            for b in (a + 1)..n {
                if edges.contains(&(a, b)) {
                    continue;
                }
                if !reservations[a].is_disjoint(&reservations[b]) {
                    new_edges.push((a, b));
                }
            }
        }
        if new_edges.is_empty() {
            break;
        }
        edges.extend(new_edges.iter().copied());
        // Expand the bound of every node to (degree + 1)-NN.
        let mut degree = vec![0usize; n];
        for &(a, b) in &edges {
            degree[a] += 1;
            degree[b] += 1;
        }
        let mut changed = false;
        for i in 0..n {
            let needed = degree[i] + 1;
            if needed > ranks[i] {
                ranks[i] = needed;
                reservations[i] = reserved_workers(&tasks[i], index, needed);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // Connected components via union-find.
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, x: usize) -> usize {
        if parent[x] != x {
            let root = find(parent, parent[x]);
            parent[x] = root;
        }
        parent[x]
    }
    for &(a, b) in &edges {
        let ra = find(&mut parent, a);
        let rb = find(&mut parent, b);
        if ra != rb {
            parent[ra] = rb;
        }
    }
    let mut groups_map: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
    for i in 0..n {
        let root = find(&mut parent, i);
        groups_map.entry(root).or_default().push(i);
    }
    let mut edges: Vec<(usize, usize)> = edges.into_iter().collect();
    edges.sort_unstable();

    IndependenceGraph {
        num_tasks: n,
        edges,
        groups: groups_map.into_values().collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multi::test_support::small_instance;
    use tcsc_core::{Domain, Location, TaskId, Worker, WorkerPool, WorkerSlot};

    #[test]
    fn groups_partition_the_task_set() {
        let (tasks, index, _) = small_instance(21, 8, 20, 60);
        let graph = independence_graph(&tasks, &index, 8);
        let mut seen: Vec<usize> = graph.groups.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..8).collect::<Vec<_>>());
        assert_eq!(graph.num_tasks, 8);
    }

    #[test]
    fn far_apart_tasks_with_plenty_of_workers_are_independent() {
        // Two tasks in opposite corners, each with its own nearby worker.
        let tasks = vec![
            Task::new(TaskId(0), Location::new(5.0, 5.0), 3),
            Task::new(TaskId(1), Location::new(95.0, 95.0), 3),
        ];
        let workers: WorkerPool = vec![
            Worker::new(
                WorkerId(0),
                (0..3)
                    .map(|slot| WorkerSlot {
                        slot,
                        location: Location::new(6.0, 6.0),
                    })
                    .collect(),
            ),
            Worker::new(
                WorkerId(1),
                (0..3)
                    .map(|slot| WorkerSlot {
                        slot,
                        location: Location::new(94.0, 94.0),
                    })
                    .collect(),
            ),
        ]
        .into_iter()
        .collect();
        let index = WorkerIndex::build(&workers, 3, &Domain::square(100.0));
        let graph = independence_graph(&tasks, &index, 4);
        assert_eq!(graph.conflict_count(), 0);
        assert_eq!(graph.groups.len(), 2);
        assert_eq!(graph.largest_group(), 1);
    }

    #[test]
    fn colocated_tasks_sharing_one_worker_conflict() {
        let tasks = vec![
            Task::new(TaskId(0), Location::new(10.0, 10.0), 2),
            Task::new(TaskId(1), Location::new(12.0, 10.0), 2),
        ];
        let workers: WorkerPool = vec![Worker::new(
            WorkerId(0),
            vec![
                WorkerSlot {
                    slot: 0,
                    location: Location::new(11.0, 10.0),
                },
                WorkerSlot {
                    slot: 1,
                    location: Location::new(11.0, 10.0),
                },
            ],
        )]
        .into_iter()
        .collect();
        let index = WorkerIndex::build(&workers, 2, &Domain::square(100.0));
        let graph = independence_graph(&tasks, &index, 4);
        assert_eq!(graph.conflict_count(), 1);
        assert_eq!(graph.groups.len(), 1);
        assert_eq!(graph.largest_group(), 2);
    }

    #[test]
    fn scarcer_workers_create_more_conflicts() {
        let (tasks, index_many, _) = small_instance(22, 10, 20, 400);
        let (_, index_few, _) = small_instance(22, 10, 20, 30);
        let many = independence_graph(&tasks, &index_many, 6).conflict_count();
        let few = independence_graph(&tasks, &index_few, 6).conflict_count();
        assert!(
            few >= many,
            "fewer workers ({few} conflicts) should not conflict less than many workers ({many})"
        );
    }

    #[test]
    fn empty_task_set_yields_empty_graph() {
        let (_, index, _) = small_instance(23, 1, 10, 20);
        let graph = independence_graph(&[], &index, 4);
        assert_eq!(graph.num_tasks, 0);
        assert_eq!(graph.conflict_count(), 0);
        assert!(graph.groups.is_empty());
        assert_eq!(graph.largest_group(), 0);
    }
}
