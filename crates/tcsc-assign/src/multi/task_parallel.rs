//! Task-level parallelization (Section IV-A.2).
//!
//! A master thread coordinates a pool of worker threads.  Each worker thread
//! owns a subset of the tasks and, on request, computes the best candidate
//! subtask of a task (the expensive part: heuristic-value search over the
//! aggregated tree).  The master maintains the control structures of the
//! paper:
//!
//! * **Heartbeat table** — the latest heuristic value reported per task;
//! * **Conflicting table** — records `⟨conflicting tasks, slot, j-th NN⟩`
//!   describing which tasks competed for a worker and which fallback rank the
//!   losers must use next;
//! * **Logging table** — the history of heartbeats and executions;
//! * **dynamic priorities** — tasks are re-evaluated in descending order of
//!   their last reported heuristic value, so threads working on promising
//!   tasks are served first (Fig. 9(f) ablates this).
//!
//! The framework is *deterministic*: the master waits for every outstanding
//! heartbeat before granting an execution, so the sequence of executed
//! subtasks — and therefore the final assignment plan — is identical to the
//! serial greedy of [`super::msqm::msqm_serial`].  Parallelism only reduces
//! the wall-clock time of the per-task candidate searches.

use std::collections::HashMap;
use std::sync::mpsc::{channel, Receiver, Sender};

use tcsc_core::{AssignmentPlan, CostModel, MultiAssignment, SlotIndex, Task, WorkerId};
use tcsc_index::WorkerIndex;

use crate::candidates::WorkerLedger;
use crate::engine::CacheStats;
use crate::multi::{MultiOutcome, MultiTaskConfig, TaskCandidate, TaskState};

/// One record of the conflicting table: the tasks that competed for a worker
/// at a slot and the NN rank the losers must fall back to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConflictRecord {
    /// Indices of the conflicting tasks.
    pub tasks: Vec<usize>,
    /// The contested time slot.
    pub slot: SlotIndex,
    /// The worker that was contested.
    pub worker: WorkerId,
    /// The NN rank the losing tasks have to use next (1-based; 1 = nearest).
    pub next_rank: usize,
}

/// One entry of the logging table.
#[derive(Debug, Clone, PartialEq)]
pub enum LogEntry {
    /// A task reported a heartbeat (its best heuristic value), or `None` when
    /// it has no affordable candidate left.
    Heartbeat {
        /// Task index.
        task: usize,
        /// Reported heuristic value.
        heuristic: Option<f64>,
    },
    /// A task was granted an execution.
    Execution {
        /// Task index.
        task: usize,
        /// Executed slot.
        slot: SlotIndex,
        /// Assigned worker.
        worker: WorkerId,
        /// Charged cost.
        cost: f64,
    },
}

/// Outcome of the task-level parallel run, including the master's tables.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskParallelOutcome {
    /// The combined multi-task outcome.
    pub outcome: MultiOutcome,
    /// The conflicting table accumulated by the master thread.
    pub conflict_table: Vec<ConflictRecord>,
    /// The logging table (heartbeats and executions, in order).
    pub log: Vec<LogEntry>,
    /// Number of worker threads used.
    pub threads: usize,
}

/// Commands sent from the master to a worker thread.
enum Command {
    /// Compute the best candidate of a task under the given budget.
    Compute { task: usize, max_cost: f64 },
    /// Execute a slot of a task (the candidate previously reported).
    Execute { task: usize, slot: SlotIndex },
    /// A conflict occurred: recompute the slot's candidate excluding the
    /// occupied workers, then recompute the task's best candidate.
    Refresh {
        task: usize,
        slot: SlotIndex,
        occupied: Vec<WorkerId>,
        max_cost: f64,
    },
    /// Finish: send the task plans back to the master.
    Finish,
}

/// Events sent from worker threads to the master.
enum Event {
    Heartbeat {
        task: usize,
        candidate: Option<TaskCandidate>,
        planned_worker: Option<WorkerId>,
    },
    Executed {
        task: usize,
        slot: SlotIndex,
        worker: WorkerId,
        cost: f64,
    },
    Plans(Vec<(usize, AssignmentPlan)>),
}

/// Runs MSQM with the task-level parallel framework on `threads` worker
/// threads.  `use_priorities` toggles the dynamic priority ordering of
/// recomputation requests (Fig. 9(f)).
pub fn msqm_task_parallel(
    tasks: &[Task],
    index: &WorkerIndex,
    cost_model: &(dyn CostModel + Sync),
    config: &MultiTaskConfig,
    threads: usize,
    use_priorities: bool,
) -> TaskParallelOutcome {
    let threads = threads.clamp(1, tasks.len().max(1));
    if tasks.is_empty() {
        return TaskParallelOutcome {
            outcome: MultiOutcome {
                assignment: MultiAssignment::default(),
                conflicts: 0,
                executions: 0,
                stats: CacheStats::default(),
            },
            conflict_table: Vec::new(),
            log: Vec::new(),
            threads,
        };
    }

    // Task -> owning thread (round-robin).
    let owner: Vec<usize> = (0..tasks.len()).map(|i| i % threads).collect();

    // The master retrieves every task's initial per-slot candidates through a
    // candidate cache (real, measured `CacheStats`) and hands them to the
    // owning threads, which build their mutable states from them.  With the
    // empty initial ledger the checkout equals a fresh computation, so the
    // framework's determinism is untouched.
    let mut stats = CacheStats::default();
    let mut cache = crate::engine::CandidateCache::new();
    let initial_ledger = WorkerLedger::new();
    let mut per_thread_candidates: Vec<HashMap<usize, crate::candidates::SlotCandidates>> =
        (0..threads).map(|_| HashMap::new()).collect();
    for (task_idx, task) in tasks.iter().enumerate() {
        let candidates = cache.checkout(task, index, &cost_model, &initial_ledger, &mut stats);
        per_thread_candidates[owner[task_idx]].insert(task_idx, candidates);
    }

    let (event_tx, event_rx): (Sender<Event>, Receiver<Event>) = channel();
    let mut command_txs: Vec<Sender<Command>> = Vec::with_capacity(threads);
    let mut command_rxs: Vec<Receiver<Command>> = Vec::with_capacity(threads);
    for _ in 0..threads {
        let (tx, rx) = channel();
        command_txs.push(tx);
        command_rxs.push(rx);
    }

    std::thread::scope(|scope| {
        // ------------------------------------------------------------------
        // Worker threads.
        // ------------------------------------------------------------------
        for (command_rx, thread_candidates) in command_rxs.into_iter().zip(per_thread_candidates) {
            let event_tx = event_tx.clone();
            scope.spawn(move || {
                let mut states: HashMap<usize, TaskState> = thread_candidates
                    .into_iter()
                    .map(|(task_idx, candidates)| {
                        (
                            task_idx,
                            TaskState::from_candidates(&tasks[task_idx], candidates, config),
                        )
                    })
                    .collect();
                while let Ok(command) = command_rx.recv() {
                    match command {
                        Command::Compute { task, max_cost } => {
                            let state = states.get_mut(&task).expect("task owned by this thread");
                            let candidate = state.best_candidate(max_cost);
                            let planned_worker =
                                candidate.and_then(|c| state.planned_worker(c.slot));
                            event_tx
                                .send(Event::Heartbeat {
                                    task,
                                    candidate,
                                    planned_worker,
                                })
                                .ok();
                        }
                        Command::Execute { task, slot } => {
                            let state = states.get_mut(&task).expect("task owned by this thread");
                            let candidate = *state
                                .candidates
                                .get(slot)
                                .expect("granted slot has a candidate");
                            state.execute(slot);
                            event_tx
                                .send(Event::Executed {
                                    task,
                                    slot,
                                    worker: candidate.worker,
                                    cost: candidate.cost,
                                })
                                .ok();
                        }
                        Command::Refresh {
                            task,
                            slot,
                            occupied,
                            max_cost,
                        } => {
                            let state = states.get_mut(&task).expect("task owned by this thread");
                            let mut ledger = WorkerLedger::new();
                            for w in occupied {
                                ledger.occupy(slot, w);
                            }
                            state.refresh_slot(slot, index, cost_model, &ledger);
                            let candidate = state.best_candidate(max_cost);
                            let planned_worker =
                                candidate.and_then(|c| state.planned_worker(c.slot));
                            event_tx
                                .send(Event::Heartbeat {
                                    task,
                                    candidate,
                                    planned_worker,
                                })
                                .ok();
                        }
                        Command::Finish => {
                            let plans = states
                                .drain()
                                .map(|(task_idx, state)| (task_idx, state.into_plan()))
                                .collect();
                            event_tx.send(Event::Plans(plans)).ok();
                            break;
                        }
                    }
                }
            });
        }
        drop(event_tx);

        // ------------------------------------------------------------------
        // Master thread (this thread).
        // ------------------------------------------------------------------
        let mut remaining = config.budget;
        let mut ledger = WorkerLedger::new();
        let mut conflicts = 0usize;
        let mut executions = 0usize;
        // `stats` already carries the initial checkout counters; each Refresh
        // command below additionally recomputes exactly one slot on the
        // owning worker thread.
        let mut conflict_table: Vec<ConflictRecord> = Vec::new();
        let mut conflict_ranks: HashMap<(SlotIndex, WorkerId), usize> = HashMap::new();
        let mut log: Vec<LogEntry> = Vec::new();

        // Heartbeat table: the latest candidate per task.
        let mut heartbeat: Vec<Option<(Option<TaskCandidate>, Option<WorkerId>)>> =
            vec![None; tasks.len()];
        let mut pending = 0usize;

        // Initial heartbeats, requested in priority order (all priorities are
        // initialised to infinity, so the initial order is the task order).
        let request_order: Vec<usize> = (0..tasks.len()).collect();
        for &task in &request_order {
            command_txs[owner[task]]
                .send(Command::Compute {
                    task,
                    max_cost: remaining,
                })
                .ok();
            pending += 1;
        }

        loop {
            // Wait for every outstanding heartbeat so that the greedy choice
            // is deterministic.
            while pending > 0 {
                match event_rx
                    .recv()
                    .expect("worker threads stay alive until Finish")
                {
                    Event::Heartbeat {
                        task,
                        candidate,
                        planned_worker,
                    } => {
                        log.push(LogEntry::Heartbeat {
                            task,
                            heuristic: candidate.map(|c| c.heuristic),
                        });
                        heartbeat[task] = Some((candidate, planned_worker));
                        pending -= 1;
                    }
                    Event::Executed {
                        task,
                        slot,
                        worker,
                        cost,
                    } => {
                        log.push(LogEntry::Execution {
                            task,
                            slot,
                            worker,
                            cost,
                        });
                        executions += 1;
                        pending -= 1;
                    }
                    Event::Plans(_) => unreachable!("no Finish command sent yet"),
                }
            }

            // Invalidate candidates that became unaffordable and request their
            // recomputation (in priority order when enabled).
            let mut stale: Vec<usize> = Vec::new();
            for (task, entry) in heartbeat.iter_mut().enumerate() {
                if let Some((Some(c), _)) = entry {
                    if c.cost > remaining {
                        stale.push(task);
                        *entry = None;
                    }
                }
            }
            if use_priorities {
                stale.sort_by(|&a, &b| {
                    let ha = last_heuristic(&log, a).unwrap_or(f64::INFINITY);
                    let hb = last_heuristic(&log, b).unwrap_or(f64::INFINITY);
                    hb.total_cmp(&ha)
                });
            }
            if !stale.is_empty() {
                for task in stale {
                    command_txs[owner[task]]
                        .send(Command::Compute {
                            task,
                            max_cost: remaining,
                        })
                        .ok();
                    pending += 1;
                }
                continue;
            }

            // Select the affordable candidate with the maximum heuristic.
            let mut best: Option<(usize, TaskCandidate, WorkerId)> = None;
            for (task, entry) in heartbeat.iter().enumerate() {
                let Some((Some(c), Some(worker))) = entry else {
                    continue;
                };
                if c.cost > remaining {
                    continue;
                }
                let better = match &best {
                    None => true,
                    Some((bt, b, _)) => {
                        c.heuristic > b.heuristic || (c.heuristic == b.heuristic && task < *bt)
                    }
                };
                if better {
                    best = Some((task, *c, *worker));
                }
            }
            let Some((task, candidate, worker)) = best else {
                break;
            };

            if ledger.is_occupied(candidate.slot, worker) {
                // Conflict: look up / update the conflicting table and tell the
                // losing task to fall back to its next-nearest worker.
                conflicts += 1;
                let rank = conflict_ranks
                    .entry((candidate.slot, worker))
                    .and_modify(|r| *r += 1)
                    .or_insert(2);
                conflict_table.push(ConflictRecord {
                    tasks: vec![task],
                    slot: candidate.slot,
                    worker,
                    next_rank: *rank,
                });
                heartbeat[task] = None;
                stats.slot_computations += 1;
                stats.slot_refreshes += 1;
                stats.rebuild_slot_computations += 1;
                command_txs[owner[task]]
                    .send(Command::Refresh {
                        task,
                        slot: candidate.slot,
                        occupied: ledger.occupied_at(candidate.slot),
                        max_cost: remaining,
                    })
                    .ok();
                pending += 1;
                continue;
            }

            // Grant the execution.
            remaining -= candidate.cost;
            ledger.occupy(candidate.slot, worker);
            command_txs[owner[task]]
                .send(Command::Execute {
                    task,
                    slot: candidate.slot,
                })
                .ok();
            pending += 1;
            heartbeat[task] = None;
            command_txs[owner[task]]
                .send(Command::Compute {
                    task,
                    max_cost: remaining,
                })
                .ok();
            pending += 1;

            // Any other task that planned to use the now-occupied worker at
            // the same slot must fall back (this is the conflicting-table
            // lookup of the paper's step 3).
            let mut losers: Vec<usize> = Vec::new();
            for (other, entry) in heartbeat.iter_mut().enumerate() {
                if other == task {
                    continue;
                }
                if let Some((Some(c), Some(w))) = entry {
                    if c.slot == candidate.slot && *w == worker {
                        losers.push(other);
                        *entry = None;
                    }
                }
            }
            if !losers.is_empty() {
                conflicts += losers.len();
                let rank = conflict_ranks
                    .entry((candidate.slot, worker))
                    .and_modify(|r| *r += 1)
                    .or_insert(2);
                conflict_table.push(ConflictRecord {
                    tasks: losers.clone(),
                    slot: candidate.slot,
                    worker,
                    next_rank: *rank,
                });
                if use_priorities {
                    losers.sort_by(|&a, &b| {
                        let ha = last_heuristic(&log, a).unwrap_or(f64::INFINITY);
                        let hb = last_heuristic(&log, b).unwrap_or(f64::INFINITY);
                        hb.total_cmp(&ha)
                    });
                }
                for loser in losers {
                    stats.slot_computations += 1;
                    stats.slot_refreshes += 1;
                    stats.rebuild_slot_computations += 1;
                    command_txs[owner[loser]]
                        .send(Command::Refresh {
                            task: loser,
                            slot: candidate.slot,
                            occupied: ledger.occupied_at(candidate.slot),
                            max_cost: remaining,
                        })
                        .ok();
                    pending += 1;
                }
            }
        }
        // Collect the plans.
        for tx in &command_txs {
            tx.send(Command::Finish).ok();
        }
        let mut plans: Vec<Option<AssignmentPlan>> = vec![None; tasks.len()];
        let mut finished = 0usize;
        while finished < threads {
            match event_rx.recv().expect("threads reply with their plans") {
                Event::Plans(batch) => {
                    for (task_idx, plan) in batch {
                        plans[task_idx] = Some(plan);
                    }
                    finished += 1;
                }
                Event::Heartbeat { .. } | Event::Executed { .. } => {
                    // Late events from already-granted work; ignore.
                }
            }
        }
        let plans: Vec<AssignmentPlan> = plans
            .into_iter()
            .enumerate()
            .map(|(i, p)| {
                p.unwrap_or_else(|| AssignmentPlan::empty(tasks[i].id, tasks[i].num_slots))
            })
            .collect();

        TaskParallelOutcome {
            outcome: MultiOutcome {
                assignment: MultiAssignment::new(plans),
                conflicts,
                executions,
                stats,
            },
            conflict_table,
            log,
            threads,
        }
    })
}

/// The last heuristic value a task reported, from the logging table.
fn last_heuristic(log: &[LogEntry], task: usize) -> Option<f64> {
    log.iter().rev().find_map(|entry| match entry {
        LogEntry::Heartbeat {
            task: t,
            heuristic: Some(h),
        } if *t == task => Some(*h),
        _ => None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multi::msqm::msqm_serial;
    use crate::multi::test_support::small_instance;

    #[test]
    fn matches_the_serial_plan() {
        // The framework is deterministic and must reproduce the serial greedy
        // plan (the paper's consistency claim).
        let (tasks, index, cost) = small_instance(41, 6, 25, 120);
        let cfg = MultiTaskConfig::new(60.0);
        let serial = msqm_serial(&tasks, &index, &cost, &cfg);
        for threads in [1, 2, 4] {
            let parallel = msqm_task_parallel(&tasks, &index, &cost, &cfg, threads, true);
            assert!(
                (parallel.outcome.sum_quality() - serial.sum_quality()).abs() < 1e-9,
                "{threads} threads: {} vs serial {}",
                parallel.outcome.sum_quality(),
                serial.sum_quality()
            );
            assert_eq!(parallel.outcome.executions, serial.executions);
        }
    }

    #[test]
    fn respects_the_global_budget() {
        let (tasks, index, cost) = small_instance(42, 5, 20, 100);
        for budget in [10.0, 35.0] {
            let outcome = msqm_task_parallel(
                &tasks,
                &index,
                &cost,
                &MultiTaskConfig::new(budget),
                3,
                true,
            );
            assert!(outcome.outcome.assignment.total_cost() <= budget + 1e-6);
        }
    }

    #[test]
    fn no_worker_double_booking() {
        let (tasks, index, cost) = small_instance(43, 8, 20, 40);
        let outcome =
            msqm_task_parallel(&tasks, &index, &cost, &MultiTaskConfig::new(300.0), 4, true);
        let mut seen = std::collections::HashSet::new();
        for plan in &outcome.outcome.assignment.plans {
            for exec in &plan.executions {
                assert!(seen.insert((exec.slot, exec.worker)));
            }
        }
    }

    #[test]
    fn conflicts_are_recorded_in_the_conflict_table() {
        // Scarce workers and clustered tasks force conflicts.
        let (tasks, index, cost) = small_instance(44, 8, 15, 20);
        let outcome =
            msqm_task_parallel(&tasks, &index, &cost, &MultiTaskConfig::new(400.0), 4, true);
        assert_eq!(
            outcome.outcome.conflicts > 0,
            !outcome.conflict_table.is_empty(),
            "conflict count and table must agree on whether conflicts happened"
        );
        for record in &outcome.conflict_table {
            assert!(record.next_rank >= 2, "fallback rank starts at the 2nd NN");
            assert!(!record.tasks.is_empty());
        }
    }

    #[test]
    fn log_contains_heartbeats_and_executions() {
        let (tasks, index, cost) = small_instance(45, 4, 15, 80);
        let outcome =
            msqm_task_parallel(&tasks, &index, &cost, &MultiTaskConfig::new(40.0), 2, true);
        let heartbeats = outcome
            .log
            .iter()
            .filter(|e| matches!(e, LogEntry::Heartbeat { .. }))
            .count();
        let execs = outcome
            .log
            .iter()
            .filter(|e| matches!(e, LogEntry::Execution { .. }))
            .count();
        assert!(
            heartbeats >= tasks.len(),
            "every task reports at least once"
        );
        assert_eq!(execs, outcome.outcome.executions);
    }

    #[test]
    fn priority_toggle_does_not_change_the_result() {
        let (tasks, index, cost) = small_instance(46, 5, 20, 60);
        let cfg = MultiTaskConfig::new(50.0);
        let with = msqm_task_parallel(&tasks, &index, &cost, &cfg, 3, true);
        let without = msqm_task_parallel(&tasks, &index, &cost, &cfg, 3, false);
        assert!((with.outcome.sum_quality() - without.outcome.sum_quality()).abs() < 1e-9);
    }

    #[test]
    fn empty_task_set_is_handled() {
        let (_, index, cost) = small_instance(47, 1, 10, 20);
        let outcome = msqm_task_parallel(&[], &index, &cost, &MultiTaskConfig::new(10.0), 2, true);
        assert_eq!(outcome.outcome.executions, 0);
        assert!(outcome.outcome.assignment.plans.is_empty());
    }
}
