//! Task-level parallelization (Section IV-A.2).
//!
//! A master thread coordinates a pool of worker threads.  Each worker thread
//! owns a subset of the tasks and, on request, computes the best candidate
//! subtask of a task (the expensive part: heuristic-value search over the
//! aggregated tree).  The master maintains the control structures of the
//! paper:
//!
//! * **Heartbeat table** — the latest heuristic value reported per task, now
//!   *versioned*: every request carries a version the heartbeat echoes, so
//!   replies from abandoned timelines are recognisable;
//! * **Conflicting table** — records `⟨conflicting tasks, slot, j-th NN⟩`
//!   describing which tasks competed for a worker and which fallback rank the
//!   losers must use next;
//! * **Logging table** — the history of heartbeats and executions;
//! * **dynamic priorities** — tasks are re-evaluated in descending order of
//!   their last reported heuristic value, so threads working on promising
//!   tasks are served first (Fig. 9(f) ablates this).
//!
//! The decision logic lives in the driver-agnostic
//! [`crate::multi::protocol::TaskMaster`] state machine; this module is the
//! *thread driver*: it wires the machine and the
//! [`crate::multi::protocol::TaskOwner`] executors over `std::sync::mpsc`
//! channels.  (`tcsc-sim` drives the same machine over simulated network
//! messages.)
//!
//! Two grant policies are offered:
//!
//! * [`msqm_task_parallel`] — the paper's deterministic **barrier** master:
//!   it waits for every outstanding heartbeat before granting an execution,
//!   so the sequence of executed subtasks — and therefore the final
//!   assignment plan — is identical to the serial greedy of
//!   [`super::msqm::msqm_serial`].
//! * [`msqm_task_parallel_optimistic`] — the **optimistic non-blocking**
//!   master: grants are decided as soon as a global max is known, applied
//!   provisionally, and rolled back if a late heartbeat supersedes them (see
//!   the [`crate::multi::protocol`] docs for the versioned-table mechanics).
//!   Its *committed* execution sequence is identical to the barrier master's
//!   — locked in by `tests/optimistic_equivalence.rs` — while conflict-loser
//!   refreshes overlap with outstanding heartbeats instead of serialising
//!   behind a full barrier.

use std::collections::HashMap;
use std::sync::mpsc::{channel, Receiver, Sender};

use tcsc_core::{AssignmentPlan, CostModel, MultiAssignment, SlotIndex, Task, WorkerId};
use tcsc_index::WorkerIndex;

use crate::candidates::WorkerLedger;
use crate::engine::CacheStats;
use crate::multi::protocol::{
    CommittedExecution, GrantPolicy, MasterCommand, TaskMaster, TaskOwner, WorkerEvent,
};
use crate::multi::{MultiOutcome, MultiTaskConfig, TaskState};

/// One record of the conflicting table: the tasks that competed for a worker
/// at a slot and the NN rank the losers must fall back to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConflictRecord {
    /// Indices of the conflicting tasks.
    pub tasks: Vec<usize>,
    /// The contested time slot.
    pub slot: SlotIndex,
    /// The worker that was contested.
    pub worker: WorkerId,
    /// The NN rank the losing tasks have to use next (1-based; 1 = nearest).
    pub next_rank: usize,
}

/// One entry of the logging table.
#[derive(Debug, Clone, PartialEq)]
pub enum LogEntry {
    /// A task reported a heartbeat (its best heuristic value), or `None` when
    /// it has no affordable candidate left.
    Heartbeat {
        /// Task index.
        task: usize,
        /// Reported heuristic value.
        heuristic: Option<f64>,
    },
    /// A task was granted an execution.
    Execution {
        /// Task index.
        task: usize,
        /// Executed slot.
        slot: SlotIndex,
        /// Assigned worker.
        worker: WorkerId,
        /// Charged cost.
        cost: f64,
    },
}

/// Outcome of the task-level parallel run, including the master's tables.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskParallelOutcome {
    /// The combined multi-task outcome.
    pub outcome: MultiOutcome,
    /// The conflicting table accumulated by the master thread.
    pub conflict_table: Vec<ConflictRecord>,
    /// The logging table (heartbeats and executions, in arrival order; under
    /// the optimistic policy it may also contain heartbeats of rolled-back
    /// timelines).
    pub log: Vec<LogEntry>,
    /// The committed execution sequence, in grant order (identical between
    /// the barrier and the optimistic master).
    pub committed: Vec<CommittedExecution>,
    /// Number of provisional grants that were rolled back (always 0 under
    /// the barrier policy).
    pub rollbacks: usize,
    /// Number of provisional grants superseded by a late heartbeat winning
    /// the serial tie-break (a subset of `rollbacks`).
    pub supersedes: usize,
    /// Number of worker threads used.
    pub threads: usize,
}

/// What travels over a worker thread's command channel.
enum ThreadCommand {
    /// A master command for a task this thread owns.
    Master(MasterCommand),
    /// Finish: send the task plans back to the master.
    Finish,
}

/// What travels back to the master.
enum ThreadEvent {
    Worker(WorkerEvent),
    /// The thread's task plans plus its states' refresh accounting.
    Plans(Vec<(usize, AssignmentPlan)>, crate::multi::RefreshStats),
}

/// Runs MSQM with the task-level parallel framework on `threads` worker
/// threads under the deterministic barrier master.  `use_priorities` toggles
/// the dynamic priority ordering of recomputation requests (Fig. 9(f)).
#[deprecated(
    note = "use tcsc::solver::SolverBuilder with Runtime::TaskParallel and \
            GrantPolicy::Barrier"
)]
pub fn msqm_task_parallel(
    tasks: &[Task],
    index: &WorkerIndex,
    cost_model: &(dyn CostModel + Sync),
    config: &MultiTaskConfig,
    threads: usize,
    use_priorities: bool,
) -> TaskParallelOutcome {
    run_task_parallel(
        tasks,
        index,
        cost_model,
        config,
        threads,
        use_priorities,
        GrantPolicy::Barrier,
    )
}

/// Runs MSQM with the task-level parallel framework under the optimistic
/// non-blocking master: grants are applied provisionally without waiting for
/// every outstanding heartbeat and rolled back when superseded.  The
/// committed execution sequence (and hence the plans) is identical to
/// [`msqm_task_parallel`].
#[deprecated(
    note = "use tcsc::solver::SolverBuilder with Runtime::TaskParallel and \
            GrantPolicy::Optimistic"
)]
pub fn msqm_task_parallel_optimistic(
    tasks: &[Task],
    index: &WorkerIndex,
    cost_model: &(dyn CostModel + Sync),
    config: &MultiTaskConfig,
    threads: usize,
    use_priorities: bool,
) -> TaskParallelOutcome {
    run_task_parallel(
        tasks,
        index,
        cost_model,
        config,
        threads,
        use_priorities,
        GrantPolicy::Optimistic,
    )
}

fn run_task_parallel(
    tasks: &[Task],
    index: &WorkerIndex,
    cost_model: &(dyn CostModel + Sync),
    config: &MultiTaskConfig,
    threads: usize,
    use_priorities: bool,
    policy: GrantPolicy,
) -> TaskParallelOutcome {
    assert_eq!(
        config.accounting,
        crate::multi::ConflictAccounting::V1,
        "the task-parallel master replays the V1 eager conflict contract \
         (grant/deny protocol refreshes losers immediately); run it with \
         ConflictAccounting::V1 or use the serial/concurrent engines for V2",
    );
    let threads = threads.clamp(1, tasks.len().max(1));
    if tasks.is_empty() {
        return TaskParallelOutcome {
            outcome: MultiOutcome {
                assignment: MultiAssignment::default(),
                conflicts: 0,
                executions: 0,
                stats: CacheStats::default(),
            },
            conflict_table: Vec::new(),
            log: Vec::new(),
            committed: Vec::new(),
            rollbacks: 0,
            supersedes: 0,
            threads,
        };
    }

    // Task -> owning thread (round-robin).
    let owner: Vec<usize> = (0..tasks.len()).map(|i| i % threads).collect();

    // The master retrieves every task's initial per-slot candidates through a
    // candidate cache (real, measured `CacheStats`) and hands them to the
    // owning threads, which build their mutable states from them.  With the
    // empty initial ledger the checkout equals a fresh computation, so the
    // framework's determinism is untouched.
    let mut stats = CacheStats::default();
    let mut cache = crate::engine::CandidateCache::new();
    let initial_ledger = WorkerLedger::new();
    let mut per_thread_candidates: Vec<HashMap<usize, crate::candidates::SlotCandidates>> =
        (0..threads).map(|_| HashMap::new()).collect();
    for (task_idx, task) in tasks.iter().enumerate() {
        let candidates = cache.checkout(task, index, &cost_model, &initial_ledger, &mut stats);
        per_thread_candidates[owner[task_idx]].insert(task_idx, candidates);
    }

    let (event_tx, event_rx): (Sender<ThreadEvent>, Receiver<ThreadEvent>) = channel();
    let mut command_txs: Vec<Sender<ThreadCommand>> = Vec::with_capacity(threads);
    let mut command_rxs: Vec<Receiver<ThreadCommand>> = Vec::with_capacity(threads);
    for _ in 0..threads {
        let (tx, rx) = channel();
        command_txs.push(tx);
        command_rxs.push(rx);
    }

    std::thread::scope(|scope| {
        // ------------------------------------------------------------------
        // Worker threads: a `TaskOwner` executor each.
        // ------------------------------------------------------------------
        for (command_rx, thread_candidates) in command_rxs.into_iter().zip(per_thread_candidates) {
            let event_tx = event_tx.clone();
            scope.spawn(move || {
                let mut owner =
                    TaskOwner::new(thread_candidates.into_iter().map(|(task_idx, candidates)| {
                        (
                            task_idx,
                            TaskState::from_candidates(&tasks[task_idx], candidates, config),
                        )
                    }));
                while let Ok(command) = command_rx.recv() {
                    match command {
                        ThreadCommand::Master(command) => {
                            if let Some(event) = owner.handle(command, index, cost_model) {
                                event_tx.send(ThreadEvent::Worker(event)).ok();
                            }
                        }
                        ThreadCommand::Finish => {
                            let refresh = owner.refresh_stats();
                            event_tx
                                .send(ThreadEvent::Plans(owner.into_plans(), refresh))
                                .ok();
                            break;
                        }
                    }
                }
            });
        }
        drop(event_tx);

        // ------------------------------------------------------------------
        // Master thread (this thread): drive the shared state machine.
        // ------------------------------------------------------------------
        let (mut master, initial) = TaskMaster::new(
            tasks.len(),
            config.budget,
            WorkerLedger::new(),
            policy,
            use_priorities,
        );
        let dispatch = |commands: Vec<MasterCommand>, txs: &[Sender<ThreadCommand>]| {
            for command in commands {
                txs[owner[command.task()]]
                    .send(ThreadCommand::Master(command))
                    .ok();
            }
        };
        dispatch(initial, &command_txs);
        while !master.is_done() {
            let event = match event_rx
                .recv()
                .expect("worker threads stay alive until Finish")
            {
                ThreadEvent::Worker(event) => event,
                ThreadEvent::Plans(..) => unreachable!("no Finish command sent yet"),
            };
            let commands = master.handle(event);
            dispatch(commands, &command_txs);
        }

        // Collect the plans.
        for tx in &command_txs {
            tx.send(ThreadCommand::Finish).ok();
        }
        let mut plans: Vec<Option<AssignmentPlan>> = vec![None; tasks.len()];
        let mut finished = 0usize;
        while finished < threads {
            match event_rx.recv().expect("threads reply with their plans") {
                ThreadEvent::Plans(batch, refresh) => {
                    for (task_idx, plan) in batch {
                        plans[task_idx] = Some(plan);
                    }
                    stats.absorb_refresh(&refresh);
                    finished += 1;
                }
                ThreadEvent::Worker(_) => {
                    // Late events from already-committed work; ignore.
                }
            }
        }
        let plans: Vec<AssignmentPlan> = plans
            .into_iter()
            .enumerate()
            .map(|(i, p)| {
                p.unwrap_or_else(|| AssignmentPlan::empty(tasks[i].id, tasks[i].num_slots))
            })
            .collect();

        let (conflict_table, log, committed, conflicts, executions, rollbacks, supersedes) =
            master.into_tables();
        // Each committed conflict (selection-time or loser) triggered exactly
        // one slot refresh on the owning thread; account them like the serial
        // engine does.
        stats.slot_computations += conflicts;
        stats.slot_refreshes += conflicts;
        stats.rebuild_slot_computations += conflicts;

        TaskParallelOutcome {
            outcome: MultiOutcome {
                assignment: MultiAssignment::new(plans),
                conflicts,
                executions,
                stats,
            },
            conflict_table,
            log,
            committed,
            rollbacks,
            supersedes,
            threads,
        }
    })
}

#[cfg(test)]
// The unit tests keep exercising the deprecated free-function wrappers on
// purpose: they are the advertised migration shims and must stay correct.
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::multi::msqm::msqm_serial;
    use crate::multi::test_support::small_instance;

    #[test]
    fn matches_the_serial_plan() {
        // The framework is deterministic and must reproduce the serial greedy
        // plan (the paper's consistency claim).
        let (tasks, index, cost) = small_instance(41, 6, 25, 120);
        let cfg = MultiTaskConfig::new(60.0);
        let serial = msqm_serial(&tasks, &index, &cost, &cfg);
        for threads in [1, 2, 4] {
            let parallel = msqm_task_parallel(&tasks, &index, &cost, &cfg, threads, true);
            assert!(
                (parallel.outcome.sum_quality() - serial.sum_quality()).abs() < 1e-9,
                "{threads} threads: {} vs serial {}",
                parallel.outcome.sum_quality(),
                serial.sum_quality()
            );
            assert_eq!(parallel.outcome.executions, serial.executions);
            assert_eq!(parallel.rollbacks, 0, "the barrier master never rolls back");
        }
    }

    #[test]
    fn respects_the_global_budget() {
        let (tasks, index, cost) = small_instance(42, 5, 20, 100);
        for budget in [10.0, 35.0] {
            let outcome = msqm_task_parallel(
                &tasks,
                &index,
                &cost,
                &MultiTaskConfig::new(budget),
                3,
                true,
            );
            assert!(outcome.outcome.assignment.total_cost() <= budget + 1e-6);
        }
    }

    #[test]
    fn no_worker_double_booking() {
        let (tasks, index, cost) = small_instance(43, 8, 20, 40);
        let outcome =
            msqm_task_parallel(&tasks, &index, &cost, &MultiTaskConfig::new(300.0), 4, true);
        let mut seen = std::collections::HashSet::new();
        for plan in &outcome.outcome.assignment.plans {
            for exec in &plan.executions {
                assert!(seen.insert((exec.slot, exec.worker)));
            }
        }
    }

    #[test]
    fn conflicts_are_recorded_in_the_conflict_table() {
        // Scarce workers and clustered tasks force conflicts.
        let (tasks, index, cost) = small_instance(44, 8, 15, 20);
        let outcome =
            msqm_task_parallel(&tasks, &index, &cost, &MultiTaskConfig::new(400.0), 4, true);
        assert_eq!(
            outcome.outcome.conflicts > 0,
            !outcome.conflict_table.is_empty(),
            "conflict count and table must agree on whether conflicts happened"
        );
        for record in &outcome.conflict_table {
            assert!(record.next_rank >= 2, "fallback rank starts at the 2nd NN");
            assert!(!record.tasks.is_empty());
        }
    }

    #[test]
    fn log_contains_heartbeats_and_executions() {
        let (tasks, index, cost) = small_instance(45, 4, 15, 80);
        let outcome =
            msqm_task_parallel(&tasks, &index, &cost, &MultiTaskConfig::new(40.0), 2, true);
        let heartbeats = outcome
            .log
            .iter()
            .filter(|e| matches!(e, LogEntry::Heartbeat { .. }))
            .count();
        let execs = outcome
            .log
            .iter()
            .filter(|e| matches!(e, LogEntry::Execution { .. }))
            .count();
        assert!(
            heartbeats >= tasks.len(),
            "every task reports at least once"
        );
        assert_eq!(execs, outcome.outcome.executions);
        assert_eq!(outcome.committed.len(), outcome.outcome.executions);
    }

    #[test]
    fn priority_toggle_does_not_change_the_result() {
        let (tasks, index, cost) = small_instance(46, 5, 20, 60);
        let cfg = MultiTaskConfig::new(50.0);
        let with = msqm_task_parallel(&tasks, &index, &cost, &cfg, 3, true);
        let without = msqm_task_parallel(&tasks, &index, &cost, &cfg, 3, false);
        assert!((with.outcome.sum_quality() - without.outcome.sum_quality()).abs() < 1e-9);
    }

    #[test]
    fn empty_task_set_is_handled() {
        let (_, index, cost) = small_instance(47, 1, 10, 20);
        let outcome = msqm_task_parallel(&[], &index, &cost, &MultiTaskConfig::new(10.0), 2, true);
        assert_eq!(outcome.outcome.executions, 0);
        assert!(outcome.outcome.assignment.plans.is_empty());
    }

    #[test]
    fn optimistic_master_commits_the_barrier_sequence() {
        let (tasks, index, cost) = small_instance(48, 8, 20, 60);
        let cfg = MultiTaskConfig::new(70.0);
        let barrier = msqm_task_parallel(&tasks, &index, &cost, &cfg, 4, true);
        let optimistic = msqm_task_parallel_optimistic(&tasks, &index, &cost, &cfg, 4, true);
        assert_eq!(barrier.committed, optimistic.committed);
        assert_eq!(barrier.outcome.assignment, optimistic.outcome.assignment);
        assert_eq!(barrier.outcome.conflicts, optimistic.outcome.conflicts);
        assert_eq!(barrier.outcome.executions, optimistic.outcome.executions);
    }
}
