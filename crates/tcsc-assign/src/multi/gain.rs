//! Incremental-gain maintenance for the greedy commit loops.
//!
//! Every multi-task driver (serial engine, concurrent engine, task-parallel
//! master, simulated cluster) repeatedly asks one question of a task: *"what
//! is your best affordable `(gain / cost)` execution right now?"*.  The
//! original answer — [`RefreshStrategy::Full`] — recomputes it from scratch
//! on every call: a V-tree best-first search (or a plain scan) over the whole
//! candidate set, per grant, per conflict, per budget-staleness
//! invalidation.  That recompute is the serial commit tail that caps the
//! parallel engines' speedup.
//!
//! [`GainLedger`] replaces the recompute with a **per-task lazy max-structure
//! over the `(slot, worker)` candidate pairs**:
//!
//! * every feasible slot owns one live entry `(heuristic key, gain, cost,
//!   slot, worker)` in a max-heap ordered by `(key, slot asc)`;
//! * when a grant lands on *another* `(slot, worker)` pair, nothing here is
//!   touched — entries are only **patched** (re-scored and re-stamped) for
//!   the slots whose candidate actually changed: the conflict-loser refreshes
//!   that the reverse holder map already identifies, and the optimistic
//!   master's `UndoRefresh` un-patches through the same entry point;
//! * when a slot of *this* task executes, the task's gains shift, so the
//!   ledger bumps a **score version**: every entry key becomes a *stale upper
//!   bound* (the entropy quality metric has diminishing marginal gains — the
//!   same lazy-greedy justification the MMQM heap already relies on), and
//!   stale entries are **re-scored on pop**, exactly like a lazy-greedy
//!   priority queue;
//! * affordability never forces a recompute: entries costing more than the
//!   query bound are *parked* and reactivated the moment a later query (e.g.
//!   after an optimistic rollback restored budget) can afford them again.
//!
//! # Why the committed plan stays bit-identical
//!
//! The returned candidate's `gain` / `cost` / `heuristic` are produced by the
//! *same* scoring functions the full search uses (`VTree::gain` under
//! `use_index`, `QualityEvaluator::gain_if_executed` otherwise) evaluated at
//! the same state, so the values are the same `f64`s.  The selection is the
//! same argmax: stale keys only ever *over*-estimate (diminishing gains), so
//! popping until the top entry is freshly scored yields the true maximum, and
//! final comparisons use the exact `>` / `==` + lower-slot tie-break of the
//! full search.  Floating-point jitter can push a re-scored gain a few ULP
//! *above* its stale key; the pop loop therefore keeps re-scoring every entry
//! whose key is within a small margin (`RESCORE_MARGIN`) of the current
//! best — orders of magnitude wider than the observed jitter (~1e-15) and
//! narrower than any meaningful heuristic gap — before trusting the argmax.
//! Zero-cost candidates (`heuristic == INFINITY`) are the one case whose
//! tie-break depends on the V-tree's internal visit order; the caller falls
//! back to the full search for those (they are immediately executed, so the
//! fallback is at most a handful of searches per task).  The differential
//! fuzz suite (`tests/incremental_gain_fuzz.rs`) and every pre-existing
//! equivalence suite pin the bit-identity across presets × grids × threads ×
//! grant policies.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use tcsc_core::{SlotIndex, WorkerId};

/// Which best-candidate maintenance strategy a solve uses.
///
/// The committed plans, conflicts and executions are **bit-identical** under
/// both strategies; only the amount of per-grant recomputation differs.
/// `Full` is retained as the in-tree equivalence oracle and for the
/// `fig9p` old-vs-new measurements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RefreshStrategy {
    /// Recompute the best candidate from scratch on every request (V-tree
    /// best-first search / plain scan) — the pre-ledger behaviour.
    Full,
    /// Maintain a [`GainLedger`] per task: patch entries on candidate
    /// refreshes, lazily re-score on pop after executions.
    #[default]
    Incremental,
}

/// Refresh-accounting counters of one task state (merged into
/// [`crate::engine::CacheStats`] by the drivers).
///
/// `full_refreshes` counts full best-candidate searches *beyond the first*
/// per task state — the first search is the warm start both strategies pay
/// identically (the full path's initial search, the ledger's initial build).
/// On the incremental path the commit tail therefore shows
/// `full_refreshes == 0` (zero-cost-candidate fallbacks aside).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RefreshStats {
    /// Full best-candidate searches beyond the warm start.
    pub full_refreshes: usize,
    /// Ledger entries patched (re-keyed) by candidate refreshes / undos.
    pub incremental_patches: usize,
    /// Stale ledger entries re-scored on pop (the lazy-greedy work).
    pub stale_pops: usize,
    /// Nanoseconds spent in commit-tail refresh work (searches beyond the
    /// warm start, ledger pops and patches).  Measurement, not behaviour:
    /// excluded from every equivalence comparison.
    pub refresh_nanos: u64,
}

impl RefreshStats {
    /// Accumulates another stats block into this one.
    pub fn merge(&mut self, other: &RefreshStats) {
        self.full_refreshes += other.full_refreshes;
        self.incremental_patches += other.incremental_patches;
        self.stale_pops += other.stale_pops;
        self.refresh_nanos += other.refresh_nanos;
    }
}

/// Re-score margin of the lazy pop: an entry whose stale key is within this
/// (relative + absolute) band of the current best is re-scored before the
/// argmax is trusted.  Wide enough to swallow the float jitter of re-scored
/// gains (observed ≤ 4e-15), narrow enough never to matter for real gaps.
const RESCORE_MARGIN: f64 = 1e-9;

/// One `(slot, worker)` candidate entry of the ledger.
#[derive(Debug, Clone, Copy)]
pub(crate) struct GainEntry {
    /// Heuristic key `gain / cost` (`INFINITY` for zero-cost candidates).
    pub heuristic: f64,
    /// Quality gain at scoring time.
    pub gain: f64,
    /// Assignment cost at scoring time (exact while `slot_version` matches:
    /// costs only change through patches, which re-stamp the version).
    pub cost: f64,
    /// The slot this entry scores.
    pub slot: SlotIndex,
    /// The candidate worker at scoring time (diagnostic; the version stamp is
    /// what detects candidate changes).
    pub worker: WorkerId,
    /// Slot-version stamp: the entry is dead once the slot was patched.
    pub slot_version: u32,
    /// Score-version stamp: the entry is stale (key = upper bound) once the
    /// task executed another slot.
    pub scored_at: u32,
}

impl PartialEq for GainEntry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for GainEntry {}
impl PartialOrd for GainEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for GainEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Max-heap: highest key first, ties to the *lower* slot (the serial
        // tie-break), then the version stamps for a total order.
        self.heuristic
            .total_cmp(&other.heuristic)
            .then_with(|| other.slot.cmp(&self.slot))
            .then_with(|| self.slot_version.cmp(&other.slot_version))
            .then_with(|| self.scored_at.cmp(&other.scored_at))
    }
}

/// What [`GainLedger::pop_best`] asks of an entry it is about to trust.
pub(crate) enum EntryState {
    /// The slot can no longer be a candidate (executed / candidate gone).
    Dead,
    /// The entry's key is stale; `rescore` carries the fresh score.
    Stale {
        /// Freshly computed `(gain, cost, heuristic)`.
        gain: f64,
        /// Current candidate cost.
        cost: f64,
        /// Current heuristic.
        heuristic: f64,
        /// Current candidate worker.
        worker: WorkerId,
    },
}

/// The per-task lazy max-structure over `(slot, worker)` candidate entries.
///
/// The ledger is a dumb container: scoring needs the task's evaluator, tree
/// and candidates, so [`crate::multi::TaskState`] drives it and hands in the
/// scores.  See the [module docs](self) for the maintenance protocol.
#[derive(Debug, Default)]
pub struct GainLedger {
    heap: BinaryHeap<GainEntry>,
    /// Entries whose cost exceeded a query's budget bound: kept aside so a
    /// later query with a larger bound (optimistic rollback) can reactivate
    /// them instead of recomputing.
    parked: Vec<GainEntry>,
    /// Per-slot patch versions; entries stamped with an older version are
    /// dead.
    slot_versions: Vec<u32>,
    /// Bumped on every execution of this task; entries stamped older are
    /// stale upper bounds to be re-scored on pop.
    score_version: u32,
    built: bool,
}

impl GainLedger {
    /// An unbuilt ledger over `num_slots` slots (entries are installed by the
    /// first [`GainLedger::is_built`]-gated build).
    pub fn new(num_slots: usize) -> Self {
        Self {
            heap: BinaryHeap::with_capacity(num_slots),
            parked: Vec::new(),
            slot_versions: vec![0; num_slots],
            score_version: 0,
            built: false,
        }
    }

    /// Whether the initial build has run.
    pub fn is_built(&self) -> bool {
        self.built
    }

    /// Marks the ledger built (after the caller pushed the initial entries).
    pub(crate) fn mark_built(&mut self) {
        self.built = true;
    }

    /// Live entries currently in the structure (heap + parked; may include
    /// version-dead garbage awaiting a pop).
    pub fn len(&self) -> usize {
        self.heap.len() + self.parked.len()
    }

    /// Whether no entry is held at all.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty() && self.parked.is_empty()
    }

    /// Installs a *bounded* entry for a slot: `key` is an admissible upper
    /// bound on the slot's heuristic (e.g. the V-tree's leaf gain bound over
    /// the slot's own cost) rather than its exact value, so the entry enters
    /// stale and is exact-scored only if it ever reaches the top — the
    /// initial build then costs one cheap tree walk instead of one exact
    /// gain per slot, mirroring the pruning of the full best-first search.
    pub(crate) fn push_bounded(&mut self, slot: SlotIndex, worker: WorkerId, cost: f64, key: f64) {
        let entry = GainEntry {
            heuristic: key,
            gain: 0.0,
            cost,
            slot,
            worker,
            slot_version: self.slot_versions[slot],
            // One behind the current version: stale until re-scored.  The
            // version only moves forward (per execution of this task), so a
            // sentinel collision would need u32::MAX executions.
            scored_at: self.score_version.wrapping_sub(1),
        };
        self.heap.push(entry);
    }

    /// Installs a freshly scored entry for a slot.
    pub(crate) fn push_scored(
        &mut self,
        slot: SlotIndex,
        worker: WorkerId,
        gain: f64,
        cost: f64,
        heuristic: f64,
    ) {
        let entry = GainEntry {
            heuristic,
            gain,
            cost,
            slot,
            worker,
            slot_version: self.slot_versions[slot],
            scored_at: self.score_version,
        };
        self.heap.push(entry);
    }

    /// Patch entry point: the slot's candidate changed (conflict fallback or
    /// rollback undo).  Bumps the slot version so the old entry dies; the
    /// caller re-scores and [`GainLedger::push_scored`]s the replacement if a
    /// candidate remains.
    pub(crate) fn invalidate_slot(&mut self, slot: SlotIndex) {
        self.slot_versions[slot] = self.slot_versions[slot].wrapping_add(1);
    }

    /// Execution entry point: this task executed a slot, every key becomes a
    /// stale upper bound.
    pub(crate) fn bump_score_version(&mut self) {
        self.score_version = self.score_version.wrapping_add(1);
    }

    /// Whether an entry is still the live entry of its slot.
    fn is_live(&self, entry: &GainEntry) -> bool {
        entry.slot_version == self.slot_versions[entry.slot]
    }

    /// Reactivates the parked entries `max_cost` can now afford (the
    /// restored-budget case), dropping version-dead garbage and keeping the
    /// still-unaffordable rest parked so a budget oscillation never cycles
    /// high-cost entries through the heap.
    fn reactivate_parked(&mut self, max_cost: f64) {
        if !self.parked.iter().any(|e| e.cost <= max_cost) {
            return;
        }
        let parked = std::mem::take(&mut self.parked);
        for entry in parked {
            if entry.slot_version != self.slot_versions[entry.slot] {
                continue;
            }
            if entry.cost <= max_cost {
                self.heap.push(entry);
            } else {
                self.parked.push(entry);
            }
        }
    }

    /// Could an entry with stale key `key` still beat `best_key` once
    /// re-scored?  (Stale keys are upper bounds up to float jitter.)  Shared
    /// with the cross-task CELF commit loop, whose task-level stale keys obey
    /// the same upper-bound-plus-jitter contract.
    pub(crate) fn could_beat(key: f64, best_key: f64) -> bool {
        key + RESCORE_MARGIN * key.abs() + RESCORE_MARGIN >= best_key
    }

    /// The lazy-greedy pop: returns the affordable entry with the exact
    /// maximum `(heuristic, lower slot)` — bit-identical to a full search —
    /// re-scoring stale entries through `probe` on the way.  `probe` returns
    /// [`EntryState::Dead`] when the slot is executed / candidate-less, or
    /// the fresh score.  `stale_pops` counts the re-scores performed.
    pub(crate) fn pop_best(
        &mut self,
        max_cost: f64,
        mut probe: impl FnMut(SlotIndex) -> EntryState,
        stale_pops: &mut usize,
    ) -> Option<GainEntry> {
        self.reactivate_parked(max_cost);
        let mut best: Option<GainEntry> = None;
        let mut aside: Vec<GainEntry> = Vec::new();
        while let Some(top) = self.heap.peek().copied() {
            if let Some(b) = &best {
                if !Self::could_beat(top.heuristic, b.heuristic) {
                    break;
                }
            }
            self.heap.pop();
            if !self.is_live(&top) {
                continue;
            }
            // Affordability first: the recorded cost is exact while the slot
            // version matches (patches re-stamp it; executions of *other*
            // slots never change it), so an unaffordable entry parks without
            // paying for a gain re-score — the case where the full search
            // prunes on `min_cost > max_cost` for free.
            if top.cost > max_cost {
                self.parked.push(top);
                continue;
            }
            if top.scored_at != self.score_version {
                // Stale upper bound: re-score against the current state.
                *stale_pops += 1;
                match probe(top.slot) {
                    EntryState::Dead => {
                        // Kill the slot so later duplicates die cheaply.
                        self.invalidate_slot(top.slot);
                    }
                    EntryState::Stale {
                        gain,
                        cost,
                        heuristic,
                        worker,
                    } => {
                        self.heap.push(GainEntry {
                            heuristic,
                            gain,
                            cost,
                            slot: top.slot,
                            worker,
                            slot_version: top.slot_version,
                            scored_at: self.score_version,
                        });
                    }
                }
                continue;
            }
            // Fresh and affordable: exact comparison, exact tie-break.
            let better = match &best {
                None => true,
                Some(b) => {
                    top.heuristic > b.heuristic
                        || (top.heuristic == b.heuristic && top.slot < b.slot)
                }
            };
            if better {
                if let Some(b) = best.replace(top) {
                    aside.push(b);
                }
            } else {
                aside.push(top);
            }
        }
        // Losing fresh entries — and the winner — stay in the structure: the
        // winner's entry dies naturally when the caller executes or refreshes
        // the slot.
        for entry in aside {
            self.heap.push(entry);
        }
        if let Some(b) = &best {
            self.heap.push(*b);
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probe_table(scores: Vec<Option<(f64, f64)>>) -> impl FnMut(SlotIndex) -> EntryState {
        move |slot| match scores[slot] {
            None => EntryState::Dead,
            Some((gain, cost)) => EntryState::Stale {
                gain,
                cost,
                heuristic: if cost > 0.0 {
                    gain / cost
                } else {
                    f64::INFINITY
                },
                worker: WorkerId(slot as u32),
            },
        }
    }

    fn push(ledger: &mut GainLedger, slot: SlotIndex, gain: f64, cost: f64) {
        let h = if cost > 0.0 {
            gain / cost
        } else {
            f64::INFINITY
        };
        ledger.push_scored(slot, WorkerId(slot as u32), gain, cost, h);
    }

    #[test]
    fn pop_returns_the_exact_argmax_with_lower_slot_ties() {
        let mut ledger = GainLedger::new(4);
        push(&mut ledger, 2, 4.0, 2.0); // h = 2.0
        push(&mut ledger, 0, 2.0, 1.0); // h = 2.0 (tie, lower slot wins)
        push(&mut ledger, 3, 9.0, 2.0); // h = 4.5
        ledger.mark_built();
        let mut pops = 0;
        let best = ledger
            .pop_best(f64::INFINITY, |_| EntryState::Dead, &mut pops)
            .unwrap();
        assert_eq!(best.slot, 3);
        assert_eq!(pops, 0, "fresh entries need no re-score");
        // Kill slot 3; the 2.0-tie resolves to slot 0.
        ledger.invalidate_slot(3);
        let best = ledger
            .pop_best(f64::INFINITY, |_| EntryState::Dead, &mut pops)
            .unwrap();
        assert_eq!(best.slot, 0);
    }

    #[test]
    fn stale_entries_are_rescored_on_pop() {
        let mut ledger = GainLedger::new(2);
        push(&mut ledger, 0, 10.0, 1.0); // h = 10
        push(&mut ledger, 1, 8.0, 1.0); // h = 8
        ledger.mark_built();
        ledger.bump_score_version();
        // After the "execution", slot 0's gain collapsed below slot 1's.
        let mut pops = 0;
        let best = ledger
            .pop_best(
                f64::INFINITY,
                probe_table(vec![Some((1.0, 1.0)), Some((7.0, 1.0))]),
                &mut pops,
            )
            .unwrap();
        assert_eq!(best.slot, 1);
        assert!((best.heuristic - 7.0).abs() < 1e-12);
        assert_eq!(pops, 2, "both stale entries had to be re-scored");
        // A second pop re-scores nothing: the tops are fresh now.
        let mut more = 0;
        let again = ledger
            .pop_best(f64::INFINITY, |_| EntryState::Dead, &mut more)
            .unwrap();
        assert_eq!(again.slot, 1);
        assert_eq!(more, 0);
    }

    #[test]
    fn unaffordable_entries_park_and_reactivate() {
        let mut ledger = GainLedger::new(2);
        push(&mut ledger, 0, 50.0, 10.0); // h = 5, cost 10
        push(&mut ledger, 1, 3.0, 1.0); // h = 3, cost 1
        ledger.mark_built();
        let mut pops = 0;
        let tight = ledger
            .pop_best(2.0, |_| EntryState::Dead, &mut pops)
            .unwrap();
        assert_eq!(tight.slot, 1, "the expensive slot is parked");
        // A restored budget (rollback) reactivates the parked entry.
        let wide = ledger
            .pop_best(20.0, |_| EntryState::Dead, &mut pops)
            .unwrap();
        assert_eq!(wide.slot, 0);
        assert_eq!(pops, 0);
    }

    #[test]
    fn dead_slots_are_skipped() {
        let mut ledger = GainLedger::new(2);
        push(&mut ledger, 0, 5.0, 1.0);
        push(&mut ledger, 1, 4.0, 1.0);
        ledger.mark_built();
        ledger.bump_score_version();
        let mut pops = 0;
        // Slot 0 reports dead on re-score (it was executed).
        let best = ledger
            .pop_best(
                f64::INFINITY,
                probe_table(vec![None, Some((4.0, 1.0))]),
                &mut pops,
            )
            .unwrap();
        assert_eq!(best.slot, 1);
        let empty = GainLedger::new(0);
        assert!(empty.is_empty());
    }
}
