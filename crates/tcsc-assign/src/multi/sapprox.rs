//! `SApprox`: multi-task assignment under spatiotemporal interpolation
//! (Appendix C of the paper, the STCC extension).
//!
//! An unexecuted subtask can be interpolated temporally (from executed
//! subtasks of the same task) *and* spatially (from subtasks executed at the
//! same time slot by nearby tasks), with the two error components combined by
//! the weights `w_t` / `w_s`.  The combined quality functions `q_sum` and
//! `q_min` remain submodular and non-decreasing, so the same greedy framework
//! applies: at each step execute the (task, slot) pair with the largest
//! increase of the objective per unit cost.

use tcsc_core::{CostModel, Domain, InterpolationWeights, Task};
use tcsc_index::WorkerIndex;

use crate::engine::AssignmentEngine;
use crate::multi::{MultiOutcome, MultiTaskConfig};

/// Which aggregate objective `SApprox` maximises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpatioTemporalObjective {
    /// Maximise the summation quality `q_sum` (Problem 2 / STCC variant).
    Sum,
    /// Maximise the minimum quality `q_min` (Problem 3 / STCC variant).
    Min,
}

/// Runs `SApprox` over a task set.
///
/// All tasks must share the same number of slots (as in the paper's setup).
/// The greedy itself lives in
/// [`AssignmentEngine::assign_spatiotemporal`]; this entry point wraps a
/// per-call engine around the caller's index so candidates route through the
/// shared cache.
#[deprecated(
    note = "use tcsc::solver::SolverBuilder with SolveObjective::SpatioTemporal, \
            or AssignmentEngine::assign_spatiotemporal directly"
)]
pub fn sapprox(
    tasks: &[Task],
    index: &WorkerIndex,
    cost_model: &dyn CostModel,
    domain: &Domain,
    weights: InterpolationWeights,
    objective: SpatioTemporalObjective,
    config: &MultiTaskConfig,
) -> MultiOutcome {
    AssignmentEngine::borrowed(index, cost_model, *config)
        .assign_spatiotemporal(tasks, domain, weights, objective)
}

#[cfg(test)]
// The unit tests keep exercising the deprecated free-function wrappers on
// purpose: they are the advertised migration shims and must stay correct.
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::multi::test_support::small_instance;
    use tcsc_core::Domain;

    fn run(
        seed: u64,
        budget: f64,
        weights: InterpolationWeights,
        objective: SpatioTemporalObjective,
    ) -> MultiOutcome {
        let (tasks, index, cost) = small_instance(seed, 4, 20, 150);
        let domain = Domain::square(100.0);
        sapprox(
            &tasks,
            &index,
            &cost,
            &domain,
            weights,
            objective,
            &MultiTaskConfig::new(budget),
        )
    }

    #[test]
    fn respects_the_budget() {
        for budget in [5.0, 20.0, 60.0] {
            let outcome = run(
                51,
                budget,
                InterpolationWeights::paper_default(),
                SpatioTemporalObjective::Sum,
            );
            assert!(outcome.assignment.total_cost() <= budget + 1e-6);
        }
    }

    #[test]
    fn quality_grows_with_budget() {
        let mut last = -1.0;
        for budget in [5.0, 20.0, 60.0] {
            let q = run(
                52,
                budget,
                InterpolationWeights::paper_default(),
                SpatioTemporalObjective::Sum,
            )
            .sum_quality();
            assert!(q >= last - 1e-9);
            last = q;
        }
    }

    #[test]
    fn min_objective_does_not_trail_sum_objective_on_min_quality() {
        let sum = run(
            53,
            40.0,
            InterpolationWeights::paper_default(),
            SpatioTemporalObjective::Sum,
        );
        let min = run(
            53,
            40.0,
            InterpolationWeights::paper_default(),
            SpatioTemporalObjective::Min,
        );
        assert!(min.min_quality() + 1e-9 >= sum.min_quality() * 0.99);
    }

    #[test]
    fn no_worker_double_booking() {
        let outcome = run(
            54,
            200.0,
            InterpolationWeights::paper_default(),
            SpatioTemporalObjective::Sum,
        );
        let mut seen = std::collections::HashSet::new();
        for plan in &outcome.assignment.plans {
            for exec in &plan.executions {
                assert!(seen.insert((exec.slot, exec.worker)));
            }
        }
    }

    #[test]
    fn temporal_only_weights_match_the_base_greedy_metric() {
        // With w_t = 1 the metric degenerates into the plain temporal one, so
        // the achieved per-task qualities must be valid under the base
        // evaluator as well (spot check: recompute quality from executions).
        let outcome = run(
            55,
            30.0,
            InterpolationWeights::temporal_only(),
            SpatioTemporalObjective::Sum,
        );
        for plan in &outcome.assignment.plans {
            let mut ev = tcsc_core::QualityEvaluator::with_slots(plan.num_slots, 3);
            for exec in &plan.executions {
                ev.execute(exec.slot);
            }
            assert!((ev.quality() - plan.quality).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_task_set_is_fine() {
        let (_, index, cost) = small_instance(56, 1, 10, 20);
        let outcome = sapprox(
            &[],
            &index,
            &cost,
            &Domain::square(100.0),
            InterpolationWeights::paper_default(),
            SpatioTemporalObjective::Sum,
            &MultiTaskConfig::new(10.0),
        );
        assert_eq!(outcome.executions, 0);
    }
}
