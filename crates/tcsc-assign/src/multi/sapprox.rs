//! `SApprox`: multi-task assignment under spatiotemporal interpolation
//! (Appendix C of the paper, the STCC extension).
//!
//! An unexecuted subtask can be interpolated temporally (from executed
//! subtasks of the same task) *and* spatially (from subtasks executed at the
//! same time slot by nearby tasks), with the two error components combined by
//! the weights `w_t` / `w_s`.  The combined quality functions `q_sum` and
//! `q_min` remain submodular and non-decreasing, so the same greedy framework
//! applies: at each step execute the (task, slot) pair with the largest
//! increase of the objective per unit cost.

use tcsc_core::{
    CostModel, Domain, ExecutedSubtask, InterpolationWeights, MultiAssignment, QualityParams,
    SpatioTemporalEvaluator, Task,
};
use tcsc_index::WorkerIndex;

use crate::candidates::{SlotCandidates, WorkerLedger};
use crate::multi::{MultiOutcome, MultiTaskConfig};

/// Which aggregate objective `SApprox` maximises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpatioTemporalObjective {
    /// Maximise the summation quality `q_sum` (Problem 2 / STCC variant).
    Sum,
    /// Maximise the minimum quality `q_min` (Problem 3 / STCC variant).
    Min,
}

/// Runs `SApprox` over a task set.
///
/// All tasks must share the same number of slots (as in the paper's setup).
pub fn sapprox(
    tasks: &[Task],
    index: &WorkerIndex,
    cost_model: &dyn CostModel,
    domain: &Domain,
    weights: InterpolationWeights,
    objective: SpatioTemporalObjective,
    config: &MultiTaskConfig,
) -> MultiOutcome {
    if tasks.is_empty() {
        return MultiOutcome {
            assignment: MultiAssignment::default(),
            conflicts: 0,
            executions: 0,
        };
    }
    let num_slots = tasks[0].num_slots;
    assert!(
        tasks.iter().all(|t| t.num_slots == num_slots),
        "SApprox requires tasks with a uniform number of slots"
    );

    let mut evaluator = SpatioTemporalEvaluator::new(
        tasks.iter().map(|t| t.location).collect(),
        QualityParams::new(num_slots, config.k),
        *domain,
        weights,
    );
    let mut candidates: Vec<SlotCandidates> = tasks
        .iter()
        .map(|t| SlotCandidates::compute(t, index, cost_model))
        .collect();
    let mut executions_log: Vec<Vec<ExecutedSubtask>> = vec![Vec::new(); tasks.len()];
    let mut ledger = WorkerLedger::new();
    let mut remaining = config.budget;
    let mut conflicts = 0usize;
    let mut executions = 0usize;

    loop {
        // Candidate search: the (task, slot) pair maximising the objective
        // increase per unit cost among affordable pairs.
        let mut best: Option<(usize, usize, f64, f64)> = None; // (task, slot, gain, cost)
        let task_range: Vec<usize> = match objective {
            SpatioTemporalObjective::Sum => (0..tasks.len()).collect(),
            SpatioTemporalObjective::Min => {
                // Reinforce the currently weakest task that still has
                // affordable candidates.
                let mut order: Vec<usize> = (0..tasks.len()).collect();
                order.sort_by(|&a, &b| {
                    evaluator
                        .task_quality(a)
                        .total_cmp(&evaluator.task_quality(b))
                });
                order
            }
        };
        'outer: for &task_idx in &task_range {
            for slot in 0..num_slots {
                if evaluator.is_executed(task_idx, slot) {
                    continue;
                }
                let Some(candidate) = candidates[task_idx].get(slot) else {
                    continue;
                };
                if candidate.cost > remaining {
                    continue;
                }
                let reliability = if config.use_reliability {
                    candidate.reliability
                } else {
                    1.0
                };
                let gain = match objective {
                    SpatioTemporalObjective::Sum => {
                        evaluator.sum_gain_if_executed(task_idx, slot, reliability)
                    }
                    SpatioTemporalObjective::Min => {
                        evaluator.task_gain_if_executed(task_idx, slot, reliability)
                    }
                };
                let heuristic = if candidate.cost > 0.0 {
                    gain / candidate.cost
                } else {
                    f64::INFINITY
                };
                let better = match &best {
                    None => true,
                    Some((_, _, bg, bc)) => {
                        let bh = if *bc > 0.0 { bg / bc } else { f64::INFINITY };
                        heuristic > bh
                    }
                };
                if better {
                    best = Some((task_idx, slot, gain, candidate.cost));
                }
            }
            // For the min objective only the weakest task with any affordable
            // candidate is reinforced, mirroring the MMQM loop.
            if matches!(objective, SpatioTemporalObjective::Min) && best.is_some() {
                break 'outer;
            }
        }

        let Some((task_idx, slot, _gain, cost)) = best else {
            break;
        };
        let candidate = *candidates[task_idx]
            .get(slot)
            .expect("selected candidate exists");
        // Worker conflict: fall back to the next nearest worker.
        if ledger.is_occupied(slot, candidate.worker) {
            conflicts += 1;
            candidates[task_idx].refresh_slot(&tasks[task_idx], slot, index, cost_model, &ledger);
            continue;
        }
        remaining -= cost;
        ledger.occupy(slot, candidate.worker);
        let reliability = if config.use_reliability {
            candidate.reliability
        } else {
            1.0
        };
        evaluator.execute(task_idx, slot, reliability);
        executions_log[task_idx].push(ExecutedSubtask {
            slot,
            worker: candidate.worker,
            cost,
            reliability: candidate.reliability,
        });
        executions += 1;
    }

    let plans = tasks
        .iter()
        .enumerate()
        .map(|(i, task)| tcsc_core::AssignmentPlan {
            task: task.id,
            num_slots,
            quality: evaluator.task_quality(i),
            executions: std::mem::take(&mut executions_log[i]),
        })
        .collect();

    MultiOutcome {
        assignment: MultiAssignment::new(plans),
        conflicts,
        executions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multi::test_support::small_instance;
    use tcsc_core::Domain;

    fn run(
        seed: u64,
        budget: f64,
        weights: InterpolationWeights,
        objective: SpatioTemporalObjective,
    ) -> MultiOutcome {
        let (tasks, index, cost) = small_instance(seed, 4, 20, 150);
        let domain = Domain::square(100.0);
        sapprox(
            &tasks,
            &index,
            &cost,
            &domain,
            weights,
            objective,
            &MultiTaskConfig::new(budget),
        )
    }

    #[test]
    fn respects_the_budget() {
        for budget in [5.0, 20.0, 60.0] {
            let outcome = run(
                51,
                budget,
                InterpolationWeights::paper_default(),
                SpatioTemporalObjective::Sum,
            );
            assert!(outcome.assignment.total_cost() <= budget + 1e-6);
        }
    }

    #[test]
    fn quality_grows_with_budget() {
        let mut last = -1.0;
        for budget in [5.0, 20.0, 60.0] {
            let q = run(
                52,
                budget,
                InterpolationWeights::paper_default(),
                SpatioTemporalObjective::Sum,
            )
            .sum_quality();
            assert!(q >= last - 1e-9);
            last = q;
        }
    }

    #[test]
    fn min_objective_does_not_trail_sum_objective_on_min_quality() {
        let sum = run(
            53,
            40.0,
            InterpolationWeights::paper_default(),
            SpatioTemporalObjective::Sum,
        );
        let min = run(
            53,
            40.0,
            InterpolationWeights::paper_default(),
            SpatioTemporalObjective::Min,
        );
        assert!(min.min_quality() + 1e-9 >= sum.min_quality() * 0.99);
    }

    #[test]
    fn no_worker_double_booking() {
        let outcome = run(
            54,
            200.0,
            InterpolationWeights::paper_default(),
            SpatioTemporalObjective::Sum,
        );
        let mut seen = std::collections::HashSet::new();
        for plan in &outcome.assignment.plans {
            for exec in &plan.executions {
                assert!(seen.insert((exec.slot, exec.worker)));
            }
        }
    }

    #[test]
    fn temporal_only_weights_match_the_base_greedy_metric() {
        // With w_t = 1 the metric degenerates into the plain temporal one, so
        // the achieved per-task qualities must be valid under the base
        // evaluator as well (spot check: recompute quality from executions).
        let outcome = run(
            55,
            30.0,
            InterpolationWeights::temporal_only(),
            SpatioTemporalObjective::Sum,
        );
        for plan in &outcome.assignment.plans {
            let mut ev = tcsc_core::QualityEvaluator::with_slots(plan.num_slots, 3);
            for exec in &plan.executions {
                ev.execute(exec.slot);
            }
            assert!((ev.quality() - plan.quality).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_task_set_is_fine() {
        let (_, index, cost) = small_instance(56, 1, 10, 20);
        let outcome = sapprox(
            &[],
            &index,
            &cost,
            &Domain::square(100.0),
            InterpolationWeights::paper_default(),
            SpatioTemporalObjective::Sum,
            &MultiTaskConfig::new(10.0),
        );
        assert_eq!(outcome.executions, 0);
    }
}
