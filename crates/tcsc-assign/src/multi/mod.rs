//! Multi-task assignment (Section IV of the paper): MSQM (maximise the
//! summation quality), MMQM (maximise the minimum quality), the worker
//! conflict machinery, and the group-level / task-level parallel frameworks.

pub mod conflict;
pub mod gain;
pub mod group_parallel;
pub mod mmqm;
pub mod msqm;
pub mod protocol;
pub mod rebuild;
pub mod sapprox;
pub mod task_parallel;

use tcsc_obs::Stopwatch;

use tcsc_core::{
    AssignmentPlan, CostModel, ExecutedSubtask, MultiAssignment, QualityEvaluator, QualityParams,
    SlotIndex, Task, WorkerId,
};
use tcsc_index::{SearchStats, SpatialQuery, VTree, VTreeConfig};

use crate::candidates::{SlotCandidates, WorkerLedger};
use crate::engine::CacheStats;
use crate::multi::gain::{EntryState, GainLedger};
pub use crate::multi::gain::{RefreshStats, RefreshStrategy};

/// Which conflict-accounting contract the MSQM commit loop follows.
///
/// The two versions commit the **same plans** (same executions, same order,
/// same qualities — locked by the differential fuzz suites); what differs is
/// *when* worker conflicts are discovered and therefore how much per-grant
/// refresh work the loop performs:
///
/// * [`ConflictAccounting::V1`] — the original eager contract: when a grant
///   occupies a worker, every other task whose cached candidate planned that
///   same `(slot, worker)` is charged a conflict **immediately** and its slot
///   refreshed, and every task invalidated by the shrinking budget is
///   re-scored before the next selection.  Bit-identical to the pinned
///   [`crate::multi::rebuild::msqm_rebuild`] oracle, conflicts included.
/// * [`ConflictAccounting::V2`] — the CELF lazy contract: candidates survive
///   grants as *stale upper bounds* in a cross-task lazy priority queue; a
///   task is only re-scored when its bound actually binds the selection, and
///   a conflict is only charged when the task's planned worker turns out
///   occupied at its own selection attempt.  Bit-identical to the
///   [`crate::multi::rebuild::msqm_rebuild_v2`] oracle; conflict counts are
///   generally **lower** than V1's (losers that never re-bind are never
///   charged).
///
/// MMQM already discovers conflicts at selection time only, so both versions
/// coincide there.  The task-parallel protocol and the distributed simulation
/// replay V1's eager contract and reject V2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConflictAccounting {
    /// Eager loser refresh at grant time (the original contract; default).
    #[default]
    V1,
    /// Lazy CELF queue: conflicts discovered at selection time only.
    V2,
}

/// Parameters shared by the multi-task solvers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultiTaskConfig {
    /// Global budget `b` shared by all tasks.
    pub budget: f64,
    /// Interpolation parameter `k` (paper default 3).
    pub k: usize,
    /// Tree split threshold `ts` (paper default 4).
    pub ts: usize,
    /// Whether to weight the metric by worker reliability.
    pub use_reliability: bool,
    /// Whether per-task candidate search uses the aggregated tree index
    /// (`Approx*`) or the plain enumeration (`Approx`).
    pub use_index: bool,
    /// How best-candidate values are maintained across the commit loop:
    /// recomputed from scratch per request ([`RefreshStrategy::Full`], the
    /// in-tree equivalence oracle) or maintained incrementally through a
    /// per-task [`GainLedger`] ([`RefreshStrategy::Incremental`], the
    /// default).  The committed plans are bit-identical either way.
    pub refresh: RefreshStrategy,
    /// Which conflict-accounting contract the MSQM commit loop follows (V1
    /// eager loser refresh vs the V2 lazy CELF queue); see
    /// [`ConflictAccounting`].
    pub accounting: ConflictAccounting,
}

impl MultiTaskConfig {
    /// Default configuration (`k = 3`, `ts = 4`, indexed search, incremental
    /// gain maintenance).
    pub fn new(budget: f64) -> Self {
        Self {
            budget,
            k: 3,
            ts: 4,
            use_reliability: false,
            use_index: true,
            refresh: RefreshStrategy::Incremental,
            accounting: ConflictAccounting::V1,
        }
    }

    /// Overrides `k`.
    pub fn with_k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Overrides `ts`.
    pub fn with_ts(mut self, ts: usize) -> Self {
        self.ts = ts;
        self
    }

    /// Switches between the indexed (`Approx*`) and plain (`Approx`) per-task
    /// candidate search.
    pub fn with_index(mut self, use_index: bool) -> Self {
        self.use_index = use_index;
        self
    }

    /// Enables reliability weighting.
    pub fn with_reliability(mut self) -> Self {
        self.use_reliability = true;
        self
    }

    /// Overrides the best-candidate refresh strategy.
    pub fn with_refresh(mut self, refresh: RefreshStrategy) -> Self {
        self.refresh = refresh;
        self
    }

    /// Overrides the conflict-accounting contract of the MSQM commit loop.
    pub fn with_accounting(mut self, accounting: ConflictAccounting) -> Self {
        self.accounting = accounting;
        self
    }
}

/// A task's best currently-known candidate execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskCandidate {
    /// Slot to execute.
    pub slot: SlotIndex,
    /// Quality gain of executing it.
    pub gain: f64,
    /// Assignment cost.
    pub cost: f64,
    /// Heuristic value `gain / cost`.
    pub heuristic: f64,
}

/// Mutable per-task state shared by the serial and parallel multi-task
/// algorithms: the quality evaluator, the optional tree index, the per-slot
/// worker candidates and the executions performed so far.
#[derive(Debug)]
pub struct TaskState {
    /// The task being assigned.
    pub task: Task,
    /// The entropy-quality evaluator of the task.
    pub evaluator: QualityEvaluator,
    /// The aggregated tree index (present when `use_index` is on).
    pub tree: Option<VTree>,
    /// The per-slot candidate assignments (kept consistent with the ledger).
    pub candidates: SlotCandidates,
    /// Executions performed so far, in selection order.
    pub executions: Vec<ExecutedSubtask>,
    /// Accumulated best-first search statistics.
    pub search_stats: SearchStats,
    use_reliability: bool,
    refresh: RefreshStrategy,
    /// The incremental-gain structure (present under
    /// [`RefreshStrategy::Incremental`]; built lazily by the first
    /// best-candidate request).
    gain_ledger: Option<GainLedger>,
    /// Refresh-accounting counters of this state's commit-tail work.
    refresh_stats: RefreshStats,
    /// Best-candidate requests served so far (the first is the warm start
    /// both strategies pay identically; it is excluded from the refresh
    /// accounting).
    searches: usize,
}

/// Scores one slot of a task against the current evaluator / tree state:
/// `(gain, cost, heuristic, worker)`, or `None` when the slot is executed or
/// has no candidate.  This is the *same* computation the full search performs
/// per evaluated slot, so ledger entries carry bit-identical values.
fn score_slot(
    evaluator: &QualityEvaluator,
    tree: &Option<VTree>,
    candidates: &SlotCandidates,
    slot: SlotIndex,
) -> Option<(f64, f64, f64, WorkerId)> {
    if evaluator.is_executed(slot) {
        return None;
    }
    let candidate = candidates.get(slot)?;
    let cost = candidate.cost;
    let gain = match tree {
        Some(tree) => tree.gain(evaluator, slot),
        None => evaluator.gain_if_executed(slot),
    };
    let heuristic = if cost > 0.0 {
        gain / cost
    } else {
        f64::INFINITY
    };
    Some((gain, cost, heuristic, candidate.worker))
}

impl TaskState {
    /// Initialises the state of one task against the worker index.
    pub fn new(
        task: &Task,
        index: &dyn SpatialQuery,
        cost_model: &dyn CostModel,
        config: &MultiTaskConfig,
    ) -> Self {
        let candidates = SlotCandidates::compute(task, index, cost_model);
        Self::from_candidates(task, candidates, config)
    }

    /// Initialises the state of one task from already-computed per-slot
    /// candidates (the entry point used by the engine's candidate cache, so
    /// that reused candidates skip the index queries of [`TaskState::new`]).
    pub fn from_candidates(
        task: &Task,
        candidates: SlotCandidates,
        config: &MultiTaskConfig,
    ) -> Self {
        let evaluator = QualityEvaluator::new(QualityParams::new(task.num_slots, config.k));
        let tree = config
            .use_index
            .then(|| VTree::build(&evaluator, candidates.costs(), VTreeConfig::new(config.ts)));
        Self {
            task: task.clone(),
            evaluator,
            tree,
            candidates,
            executions: Vec::new(),
            search_stats: SearchStats::default(),
            use_reliability: config.use_reliability,
            refresh: config.refresh,
            gain_ledger: matches!(config.refresh, RefreshStrategy::Incremental)
                .then(|| GainLedger::new(task.num_slots)),
            refresh_stats: RefreshStats::default(),
            searches: 0,
        }
    }

    /// The refresh-accounting counters accumulated by this state.
    pub fn refresh_stats(&self) -> RefreshStats {
        self.refresh_stats
    }

    /// The best affordable candidate execution of this task, or `None` when no
    /// remaining slot has an available worker within `max_cost`.
    ///
    /// Under [`RefreshStrategy::Full`] every call runs the full search
    /// (V-tree best-first / plain scan); under
    /// [`RefreshStrategy::Incremental`] the [`GainLedger`] answers with a
    /// lazy-greedy pop.  The returned candidate is bit-identical either way.
    pub fn best_candidate(&mut self, max_cost: f64) -> Option<TaskCandidate> {
        self.searches += 1;
        // The first request is the warm start both strategies pay alike (the
        // full path's initial search, the ledger's initial build); only the
        // commit tail beyond it is accounted as refresh work.
        let warm = self.searches == 1;
        let start = (!warm).then(Stopwatch::start);
        let result = match self.refresh {
            RefreshStrategy::Full => {
                if !warm {
                    self.refresh_stats.full_refreshes += 1;
                }
                self.search_best(max_cost)
            }
            RefreshStrategy::Incremental => self.best_candidate_incremental(max_cost),
        };
        if let Some(start) = start {
            self.refresh_stats.refresh_nanos += start.elapsed_nanos();
        }
        result
    }

    /// The incremental path: build the ledger on first use, then answer via
    /// the lazy-greedy pop.  Zero-cost candidates (`heuristic == INFINITY`)
    /// fall back to the full search, whose tie-break among them depends on
    /// the V-tree's visit order that the ledger does not replicate.
    fn best_candidate_incremental(&mut self, max_cost: f64) -> Option<TaskCandidate> {
        let Self {
            evaluator,
            tree,
            candidates,
            gain_ledger,
            refresh_stats,
            task,
            ..
        } = self;
        let ledger = gain_ledger
            .as_mut()
            .expect("the incremental strategy always owns a gain ledger");
        if !ledger.is_built() {
            match tree {
                Some(tree) => {
                    // Seed with the V-tree's admissible leaf gain bounds
                    // (stale upper-bound keys): one cheap tree walk instead
                    // of one exact gain per slot, so the first pop cascades
                    // exactly like the pruned best-first search — exact-
                    // scoring only slots that can reach the top.
                    for (start, end, gain_ub) in tree.leaf_bounds() {
                        for slot in start..=end {
                            if evaluator.is_executed(slot) {
                                continue;
                            }
                            let Some(candidate) = candidates.get(slot) else {
                                continue;
                            };
                            let key = if candidate.cost > 0.0 {
                                gain_ub / candidate.cost
                            } else {
                                f64::INFINITY
                            };
                            ledger.push_bounded(slot, candidate.worker, candidate.cost, key);
                        }
                    }
                }
                None => {
                    // The plain path has no aggregate bounds (and no pruned
                    // search to match); exact-score every slot up front.
                    for slot in 0..task.num_slots {
                        if let Some((gain, cost, heuristic, worker)) =
                            score_slot(evaluator, tree, candidates, slot)
                        {
                            ledger.push_scored(slot, worker, gain, cost, heuristic);
                        }
                    }
                }
            }
            ledger.mark_built();
        }
        let best = ledger.pop_best(
            max_cost,
            |slot| match score_slot(evaluator, tree, candidates, slot) {
                None => EntryState::Dead,
                Some((gain, cost, heuristic, worker)) => EntryState::Stale {
                    gain,
                    cost,
                    heuristic,
                    worker,
                },
            },
            &mut refresh_stats.stale_pops,
        )?;
        debug_assert_eq!(
            self.candidates.get(best.slot).map(|c| c.worker),
            Some(best.worker),
            "a live ledger entry must agree with the slot's planned worker"
        );
        if best.heuristic == f64::INFINITY {
            self.refresh_stats.full_refreshes += 1;
            return self.search_best(max_cost);
        }
        Some(TaskCandidate {
            slot: best.slot,
            gain: best.gain,
            cost: best.cost,
            heuristic: best.heuristic,
        })
    }

    /// The full best-candidate search (the [`RefreshStrategy::Full`] path and
    /// the pre-ledger behaviour): a V-tree best-first search when the index
    /// is enabled, a plain scan otherwise.
    fn search_best(&mut self, max_cost: f64) -> Option<TaskCandidate> {
        if let Some(tree) = &self.tree {
            let best = tree.best_slot(&self.evaluator, max_cost, &mut self.search_stats)?;
            Some(TaskCandidate {
                slot: best.slot,
                gain: best.gain,
                cost: best.cost,
                heuristic: best.heuristic,
            })
        } else {
            let mut best: Option<TaskCandidate> = None;
            for slot in 0..self.task.num_slots {
                if self.evaluator.is_executed(slot) {
                    continue;
                }
                let Some(cost) = self.candidates.cost(slot) else {
                    continue;
                };
                if cost > max_cost {
                    continue;
                }
                let gain = self.evaluator.gain_if_executed(slot);
                let heuristic = if cost > 0.0 {
                    gain / cost
                } else {
                    f64::INFINITY
                };
                let better = best.map_or(true, |b| {
                    heuristic > b.heuristic || (heuristic == b.heuristic && slot < b.slot)
                });
                if better {
                    best = Some(TaskCandidate {
                        slot,
                        gain,
                        cost,
                        heuristic,
                    });
                }
            }
            best
        }
    }

    /// Executes a slot with the currently recorded candidate worker, updating
    /// the evaluator, the tree and the execution log.  The caller is
    /// responsible for budget accounting and ledger occupancy.
    pub fn execute(&mut self, slot: SlotIndex) {
        let candidate = *self
            .candidates
            .get(slot)
            .expect("cannot execute a slot without a candidate");
        if self.use_reliability {
            self.evaluator
                .execute_with_reliability(slot, candidate.reliability);
        } else {
            self.evaluator.execute(slot);
        }
        if let Some(tree) = &mut self.tree {
            tree.notify_executed(&self.evaluator, slot);
        }
        if let Some(ledger) = &mut self.gain_ledger {
            // The task's gains shifted: every ledger key becomes a stale
            // upper bound, re-scored lazily on pop.
            ledger.bump_score_version();
        }
        self.executions.push(ExecutedSubtask {
            slot,
            worker: candidate.worker,
            cost: candidate.cost,
            reliability: candidate.reliability,
        });
    }

    /// Patches the gain ledger after one slot's candidate changed (conflict
    /// fallback or rollback undo): the old `(slot, worker)` entry is
    /// version-killed and a freshly scored replacement installed.  Touches
    /// exactly one slot — this is the incremental alternative to the full
    /// path's recompute-on-next-request.
    fn patch_gain_slot(&mut self, slot: SlotIndex) {
        let Self {
            evaluator,
            tree,
            candidates,
            gain_ledger,
            refresh_stats,
            ..
        } = self;
        let Some(ledger) = gain_ledger.as_mut() else {
            return;
        };
        if !ledger.is_built() {
            // Nothing installed yet; the initial build scores current state.
            return;
        }
        let start = Stopwatch::start();
        ledger.invalidate_slot(slot);
        if let Some((gain, cost, heuristic, worker)) = score_slot(evaluator, tree, candidates, slot)
        {
            ledger.push_scored(slot, worker, gain, cost, heuristic);
        }
        refresh_stats.incremental_patches += 1;
        refresh_stats.refresh_nanos += start.elapsed_nanos();
    }

    /// Refreshes the candidate of one slot against the ledger (after a worker
    /// conflict) and keeps the tree's cost aggregates in sync.
    pub fn refresh_slot(
        &mut self,
        slot: SlotIndex,
        index: &dyn SpatialQuery,
        cost_model: &dyn CostModel,
        ledger: &WorkerLedger,
    ) {
        self.candidates
            .refresh_slot(&self.task, slot, index, cost_model, ledger);
        if let Some(tree) = &mut self.tree {
            tree.update_cost(&self.evaluator, slot, self.candidates.cost(slot));
        }
        self.patch_gain_slot(slot);
    }

    /// Replaces the candidate of one slot directly (the entry point used by
    /// the concurrent engine, whose refreshes go through the sharded ledger
    /// rather than a dense [`WorkerLedger`]), keeping the tree's cost
    /// aggregates in sync.
    pub fn set_candidate(
        &mut self,
        slot: SlotIndex,
        candidate: Option<tcsc_core::CandidateAssignment>,
    ) {
        self.candidates.set(slot, candidate);
        if let Some(tree) = &mut self.tree {
            tree.update_cost(&self.evaluator, slot, self.candidates.cost(slot));
        }
        self.patch_gain_slot(slot);
    }

    /// The worker currently planned for a slot.
    pub fn planned_worker(&self, slot: SlotIndex) -> Option<tcsc_core::WorkerId> {
        self.candidates.get(slot).map(|c| c.worker)
    }

    /// Finalises the task's assignment plan.
    pub fn into_plan(self) -> AssignmentPlan {
        AssignmentPlan {
            task: self.task.id,
            num_slots: self.task.num_slots,
            quality: self.evaluator.quality(),
            executions: self.executions,
        }
    }

    /// The task's current quality.
    pub fn quality(&self) -> f64 {
        self.evaluator.quality()
    }
}

/// Outcome of a multi-task assignment run.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiOutcome {
    /// The per-task assignment plans.
    pub assignment: MultiAssignment,
    /// Number of worker conflicts encountered (two tasks competing for the
    /// same worker at the same slot).
    pub conflicts: usize,
    /// Number of executed subtasks across all tasks.
    pub executions: usize,
    /// Candidate-cache counters of the run: how many per-slot candidates were
    /// computed, refreshed after occupancy changes, or served from the
    /// engine's cache — and what a rebuild-per-call strategy would have cost.
    pub stats: CacheStats,
}

impl MultiOutcome {
    /// Summation quality of the outcome.
    pub fn sum_quality(&self) -> f64 {
        self.assignment.sum_quality()
    }

    /// Minimum quality of the outcome.
    pub fn min_quality(&self) -> f64 {
        self.assignment.min_quality()
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    //! Shared fixtures for the multi-task solver tests.

    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use tcsc_core::{
        Domain, EuclideanCost, Location, Task, TaskId, Worker, WorkerId, WorkerPool, WorkerSlot,
    };
    use tcsc_index::WorkerIndex;

    /// Minimal inline workload generation so that the assign crate's tests do
    /// not depend on `tcsc-workload`; mirrors the generators' behaviour on a
    /// small scale.
    pub fn small_world(
        seed: u64,
        num_tasks: usize,
        num_slots: usize,
        num_workers: usize,
    ) -> (Vec<Task>, WorkerPool, Domain) {
        let domain = Domain::square(100.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let tasks: Vec<Task> = (0..num_tasks)
            .map(|i| {
                Task::new(
                    TaskId(i as u32),
                    Location::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)),
                    num_slots,
                )
            })
            .collect();
        let workers: WorkerPool = (0..num_workers)
            .map(|i| {
                let start = rng.gen_range(0..num_slots);
                let len = rng.gen_range(1..=5.min(num_slots));
                let loc = Location::new(rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0));
                let availability = (start..(start + len).min(num_slots))
                    .map(|slot| WorkerSlot {
                        slot,
                        location: loc,
                    })
                    .collect();
                Worker::new(WorkerId(i as u32), availability)
            })
            .collect();
        (tasks, workers, domain)
    }

    /// Builds a small instance: tasks, a worker index and the cost model.
    pub fn small_instance(
        seed: u64,
        num_tasks: usize,
        num_slots: usize,
        num_workers: usize,
    ) -> (Vec<Task>, WorkerIndex, EuclideanCost) {
        let (tasks, workers, domain) = small_world(seed, num_tasks, num_slots, num_workers);
        let index = WorkerIndex::build(&workers, num_slots, &domain);
        (tasks, index, EuclideanCost::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use test_support::small_instance;

    #[test]
    fn config_builders() {
        let cfg = MultiTaskConfig::new(50.0)
            .with_k(4)
            .with_ts(6)
            .with_index(false)
            .with_reliability();
        assert_eq!(cfg.budget, 50.0);
        assert_eq!(cfg.k, 4);
        assert_eq!(cfg.ts, 6);
        assert!(!cfg.use_index);
        assert!(cfg.use_reliability);
        assert_eq!(cfg.accounting, ConflictAccounting::V1);
        let v2 = cfg.with_accounting(ConflictAccounting::V2);
        assert_eq!(v2.accounting, ConflictAccounting::V2);
    }

    #[test]
    fn task_state_candidate_and_execute_roundtrip() {
        let (tasks, index, cost) = small_instance(1, 3, 40, 200);
        let cfg = MultiTaskConfig::new(100.0);
        let mut state = TaskState::new(&tasks[0], &index, &cost, &cfg);
        let before = state.quality();
        let candidate = state
            .best_candidate(f64::INFINITY)
            .expect("a 200-worker pool must offer at least one candidate");
        state.execute(candidate.slot);
        assert!(state.quality() > before);
        assert_eq!(state.executions.len(), 1);
        let plan = state.into_plan();
        assert_eq!(plan.executed_count(), 1);
        assert!(plan.quality > 0.0);
    }

    #[test]
    fn indexed_and_plain_candidate_search_agree() {
        let (tasks, index, cost) = small_instance(2, 1, 50, 300);
        let indexed_cfg = MultiTaskConfig::new(100.0);
        let plain_cfg = MultiTaskConfig::new(100.0).with_index(false);
        let mut indexed = TaskState::new(&tasks[0], &index, &cost, &indexed_cfg);
        let mut plain = TaskState::new(&tasks[0], &index, &cost, &plain_cfg);
        for _ in 0..5 {
            let a = indexed.best_candidate(f64::INFINITY);
            let b = plain.best_candidate(f64::INFINITY);
            match (a, b) {
                (Some(a), Some(b)) => {
                    assert!((a.heuristic - b.heuristic).abs() < 1e-9);
                    indexed.execute(a.slot);
                    plain.execute(a.slot);
                }
                (None, None) => break,
                _ => panic!("indexed and plain search disagree on feasibility"),
            }
        }
    }
}
