//! Rebuild-per-call baseline solvers.
//!
//! These are the original serial MSQM / MMQM greedy implementations that
//! recompute every task's candidate state from scratch on each call
//! (`TaskState::new` runs one index query per slot, nothing survives between
//! calls).  They are kept for two jobs:
//!
//! * **equivalence oracle** — `tests/engine_equivalence.rs` asserts that the
//!   cache-backed [`crate::engine::AssignmentEngine`] reproduces their plans,
//!   conflicts and execution counts bit-for-bit on the seeded scenario
//!   presets;
//! * **throughput baseline** — the `fig9i` batched-vs-rebuild comparison in
//!   `tcsc-bench` measures the engine's amortisation against them.
//!
//! Production callers should use [`crate::msqm_serial`] / [`crate::mmqm`]
//! (which route through the engine) or a long-lived engine directly.

use tcsc_core::{CostModel, MultiAssignment, Task};
use tcsc_index::WorkerIndex;

use crate::candidates::WorkerLedger;
use crate::engine::commit::{absorb_refresh_stats, mmqm_commit_loop, DenseBackend};
use crate::engine::CacheStats;
use crate::multi::{MultiOutcome, MultiTaskConfig, RefreshStrategy, TaskCandidate, TaskState};

/// Builds fresh per-task states, charging the full rebuild cost to `stats`.
///
/// The rebuild solvers always run under [`RefreshStrategy::Full`] regardless
/// of the caller's configuration: they are the in-tree oracle the
/// incremental-gain path is differentially checked against, so they must
/// keep exercising the recompute-per-request behaviour.
fn rebuild_states(
    tasks: &[Task],
    index: &WorkerIndex,
    cost_model: &dyn CostModel,
    config: &MultiTaskConfig,
    stats: &mut CacheStats,
) -> Vec<TaskState> {
    let config = config.with_refresh(RefreshStrategy::Full);
    stats.tasks_computed += tasks.len();
    let slots: usize = tasks.iter().map(|t| t.num_slots).sum();
    stats.slot_computations += slots;
    stats.rebuild_slot_computations += slots;
    tasks
        .iter()
        .map(|t| TaskState::new(t, index, cost_model, &config))
        .collect()
}

/// Runs the serial MSQM greedy, rebuilding all candidate state for this call.
pub fn msqm_rebuild(
    tasks: &[Task],
    index: &WorkerIndex,
    cost_model: &dyn CostModel,
    config: &MultiTaskConfig,
) -> MultiOutcome {
    let mut stats = CacheStats::default();
    let mut states = rebuild_states(tasks, index, cost_model, config, &mut stats);
    let mut ledger = WorkerLedger::new();
    let mut remaining = config.budget;
    let mut conflicts = 0usize;
    let mut executions = 0usize;

    // Cached best candidate per task; recomputed lazily when invalidated.
    let mut cached: Vec<Option<Option<TaskCandidate>>> = vec![None; states.len()];

    loop {
        // Refresh stale candidate caches.  A cached candidate computed under a
        // larger remaining budget may have become unaffordable; recompute it
        // with the current budget so that cheaper slots of the same task are
        // still considered.
        for (i, state) in states.iter_mut().enumerate() {
            if let Some(Some(c)) = &cached[i] {
                if c.cost > remaining {
                    cached[i] = None;
                }
            }
            if cached[i].is_none() {
                cached[i] = Some(state.best_candidate(remaining));
            }
        }
        // Pick the task with the globally maximal heuristic value among the
        // affordable candidates.
        let mut best: Option<(usize, TaskCandidate)> = None;
        for (i, entry) in cached.iter().enumerate() {
            let Some(Some(candidate)) = entry else {
                continue;
            };
            if candidate.cost > remaining {
                continue;
            }
            let better = match &best {
                None => true,
                Some((bi, b)) => {
                    candidate.heuristic > b.heuristic
                        || (candidate.heuristic == b.heuristic && i < *bi)
                }
            };
            if better {
                best = Some((i, *candidate));
            }
        }
        let Some((task_idx, candidate)) = best else {
            break;
        };

        // Worker-conflict check: the planned worker may have been taken by
        // another task since this candidate was computed.
        let worker = states[task_idx]
            .planned_worker(candidate.slot)
            .expect("candidate slot has a planned worker");
        if ledger.is_occupied(candidate.slot, worker) {
            // Conflict: fall back to the next nearest worker and retry.
            conflicts += 1;
            states[task_idx].refresh_slot(candidate.slot, index, cost_model, &ledger);
            stats.count_conflict_refresh();
            cached[task_idx] = None;
            continue;
        }

        // Execute.
        remaining -= candidate.cost;
        ledger.occupy(candidate.slot, worker);
        states[task_idx].execute(candidate.slot);
        executions += 1;
        cached[task_idx] = None;
        // Invalidate cached candidates of tasks that planned to use the same
        // worker at the same slot (they must fall back on their next try).
        for (i, entry) in cached.iter_mut().enumerate() {
            if i == task_idx {
                continue;
            }
            if let Some(Some(c)) = entry {
                if c.slot == candidate.slot && states[i].planned_worker(c.slot) == Some(worker) {
                    conflicts += 1;
                    states[i].refresh_slot(c.slot, index, cost_model, &ledger);
                    stats.count_conflict_refresh();
                    *entry = None;
                }
            }
        }
    }

    absorb_refresh_stats(&states, &mut stats);
    let assignment = MultiAssignment::new(states.into_iter().map(TaskState::into_plan).collect());
    MultiOutcome {
        assignment,
        conflicts,
        executions,
        stats,
    }
}

/// The [`crate::multi::ConflictAccounting::V2`] oracle: the serial MSQM
/// greedy with **selection-time-only** conflict charging, rebuilding all
/// candidate state for this call.
///
/// Structurally this is [`msqm_rebuild`] minus its eager loser-invalidation
/// scan: when a grant occupies a worker, every other task whose cached
/// candidate planned that worker simply *keeps* it — the conflict is
/// discovered (charged, and the slot refreshed) only if and when that task
/// wins a later selection.  An invalid cached candidate can never change the
/// committed plans: its true (refreshed) value is lower than its cached one,
/// so whenever it tops the argmax its conflict resolves first, and whenever
/// it does not, it would have lost under V1's refreshed value too.  The CELF
/// commit loop ([`crate::multi::ConflictAccounting::V2`] in the engines) is
/// differentially fuzzed against this oracle in
/// `tests/conflict_accounting_fuzz.rs`.
pub fn msqm_rebuild_v2(
    tasks: &[Task],
    index: &WorkerIndex,
    cost_model: &dyn CostModel,
    config: &MultiTaskConfig,
) -> MultiOutcome {
    let mut stats = CacheStats::default();
    let mut states = rebuild_states(tasks, index, cost_model, config, &mut stats);
    let mut ledger = WorkerLedger::new();
    let mut remaining = config.budget;
    let mut conflicts = 0usize;
    let mut executions = 0usize;

    // Cached best candidate per task; recomputed lazily when invalidated.
    let mut cached: Vec<Option<Option<TaskCandidate>>> = vec![None; states.len()];

    loop {
        // Budget staleness works exactly as in V1: a candidate computed under
        // a larger remaining budget is recomputed with the current one.
        for (i, state) in states.iter_mut().enumerate() {
            if let Some(Some(c)) = &cached[i] {
                if c.cost > remaining {
                    cached[i] = None;
                }
            }
            if cached[i].is_none() {
                cached[i] = Some(state.best_candidate(remaining));
            }
        }
        // Globally maximal heuristic among the affordable candidates
        // (identical rule and ties to V1).
        let mut best: Option<(usize, TaskCandidate)> = None;
        for (i, entry) in cached.iter().enumerate() {
            let Some(Some(candidate)) = entry else {
                continue;
            };
            if candidate.cost > remaining {
                continue;
            }
            let better = match &best {
                None => true,
                Some((bi, b)) => {
                    candidate.heuristic > b.heuristic
                        || (candidate.heuristic == b.heuristic && i < *bi)
                }
            };
            if better {
                best = Some((i, *candidate));
            }
        }
        let Some((task_idx, candidate)) = best else {
            break;
        };

        // Selection-time conflict check — the only place V2 charges
        // conflicts.
        let worker = states[task_idx]
            .planned_worker(candidate.slot)
            .expect("candidate slot has a planned worker");
        if ledger.is_occupied(candidate.slot, worker) {
            conflicts += 1;
            states[task_idx].refresh_slot(candidate.slot, index, cost_model, &ledger);
            stats.count_conflict_refresh();
            cached[task_idx] = None;
            continue;
        }

        // Execute.  No loser scan: other tasks planning this worker keep
        // their cached candidates until their own selection attempt.
        remaining -= candidate.cost;
        ledger.occupy(candidate.slot, worker);
        states[task_idx].execute(candidate.slot);
        executions += 1;
        cached[task_idx] = None;
    }

    absorb_refresh_stats(&states, &mut stats);
    let assignment = MultiAssignment::new(states.into_iter().map(TaskState::into_plan).collect());
    MultiOutcome {
        assignment,
        conflicts,
        executions,
        stats,
    }
}

/// Ordered heap entry: (quality, task index).  `f64` is wrapped through its
/// total ordering to make the heap usable.
#[derive(Debug, PartialEq)]
pub(crate) struct HeapEntry(pub(crate) f64, pub(crate) usize);

impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0).then(self.1.cmp(&other.1))
    }
}

/// Runs the MMQM greedy (maximise the minimum task quality), rebuilding all
/// candidate state for this call and committing through the shared lazy-heap
/// commit loop (`crate::engine::commit`).
pub fn mmqm_rebuild(
    tasks: &[Task],
    index: &WorkerIndex,
    cost_model: &dyn CostModel,
    config: &MultiTaskConfig,
) -> MultiOutcome {
    let mut stats = CacheStats::default();
    let mut states = rebuild_states(tasks, index, cost_model, config, &mut stats);
    let mut ledger = WorkerLedger::new();
    let mut backend = DenseBackend {
        index,
        cost_model,
        ledger: &mut ledger,
    };
    let (conflicts, executions) =
        mmqm_commit_loop(&mut states, config.budget, &mut backend, &mut stats);

    let assignment = MultiAssignment::new(states.into_iter().map(TaskState::into_plan).collect());
    MultiOutcome {
        assignment,
        conflicts,
        executions,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multi::test_support::small_instance;

    #[test]
    fn rebuild_stats_charge_the_full_candidate_build() {
        let (tasks, index, cost) = small_instance(81, 4, 20, 150);
        let outcome = msqm_rebuild(&tasks, &index, &cost, &MultiTaskConfig::new(30.0));
        assert_eq!(outcome.stats.tasks_computed, 4);
        assert_eq!(outcome.stats.tasks_reused, 0);
        assert!(outcome.stats.slot_computations >= 4 * 20);
        // By definition the rebuild strategy saves nothing over itself.
        assert_eq!(outcome.stats.saved_slot_computations(), 0);
    }

    #[test]
    fn mmqm_rebuild_respects_the_budget() {
        let (tasks, index, cost) = small_instance(82, 4, 20, 150);
        for budget in [5.0, 25.0] {
            let outcome = mmqm_rebuild(&tasks, &index, &cost, &MultiTaskConfig::new(budget));
            assert!(outcome.assignment.total_cost() <= budget + 1e-6);
        }
    }
}
