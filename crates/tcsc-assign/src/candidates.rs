//! Candidate assignments ("worker cost retrieval") and worker occupancy
//! bookkeeping.
//!
//! For every slot of a task the assignment algorithms need to know which
//! worker would serve it and at what cost.  Under travel-distance costs the
//! nearest available worker is the cheapest choice (Section II-A of the
//! paper); in multi-task settings a worker already occupied at a time slot
//! forces the task to fall back to its 2nd, 3rd, ... nearest worker
//! (Section IV-A), which is what the [`WorkerLedger`] tracks.

use std::collections::{BTreeSet, HashMap};

use tcsc_core::{CandidateAssignment, CostModel, SlotIndex, Task, WorkerId};
use tcsc_index::SpatialQuery;

/// The per-slot candidate assignments of one task.
#[derive(Debug, Clone, Default)]
pub struct SlotCandidates {
    /// `candidates[j]` is the currently cheapest feasible assignment for slot
    /// `j`, or `None` when no (unoccupied) worker is available at that slot.
    candidates: Vec<Option<CandidateAssignment>>,
}

impl SlotCandidates {
    /// Computes the candidates of `task` against the worker index: the
    /// nearest available worker of every slot.  (Any [`SpatialQuery`]
    /// implementation works — the dense and the sharded index answer
    /// bit-identically.)
    pub fn compute(task: &Task, index: &dyn SpatialQuery, cost_model: &dyn CostModel) -> Self {
        Self::compute_excluding(task, index, cost_model, &WorkerLedger::new())
    }

    /// Computes the candidates of `task`, skipping workers that the ledger
    /// marks as occupied at the corresponding slot.
    pub fn compute_excluding(
        task: &Task,
        index: &dyn SpatialQuery,
        cost_model: &dyn CostModel,
        ledger: &WorkerLedger,
    ) -> Self {
        let candidates = (0..task.num_slots)
            .map(|slot| candidate_for_slot(task, slot, index, cost_model, ledger))
            .collect();
        Self { candidates }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.candidates.len()
    }

    /// Whether there are no slots.
    pub fn is_empty(&self) -> bool {
        self.candidates.is_empty()
    }

    /// The candidate of a slot.
    pub fn get(&self, slot: SlotIndex) -> Option<&CandidateAssignment> {
        self.candidates.get(slot).and_then(|c| c.as_ref())
    }

    /// The cost of a slot's candidate.
    pub fn cost(&self, slot: SlotIndex) -> Option<f64> {
        self.get(slot).map(|c| c.cost)
    }

    /// Costs of every slot, in slot order (the format consumed by the
    /// `VTree`).
    pub fn costs(&self) -> Vec<Option<f64>> {
        self.candidates
            .iter()
            .map(|c| c.as_ref().map(|c| c.cost))
            .collect()
    }

    /// Replaces the candidate for a slot (used after conflicts).
    pub fn set(&mut self, slot: SlotIndex, candidate: Option<CandidateAssignment>) {
        self.candidates[slot] = candidate;
    }

    /// Recomputes the candidate of a single slot against the ledger.
    pub fn refresh_slot(
        &mut self,
        task: &Task,
        slot: SlotIndex,
        index: &dyn SpatialQuery,
        cost_model: &dyn CostModel,
        ledger: &WorkerLedger,
    ) {
        self.candidates[slot] = candidate_for_slot(task, slot, index, cost_model, ledger);
    }

    /// Number of slots that currently have a feasible candidate.
    pub fn available(&self) -> usize {
        self.candidates.iter().filter(|c| c.is_some()).count()
    }
}

pub(crate) fn candidate_for_slot(
    task: &Task,
    slot: SlotIndex,
    index: &dyn SpatialQuery,
    cost_model: &dyn CostModel,
    ledger: &WorkerLedger,
) -> Option<CandidateAssignment> {
    let subtask = task.subtask(slot);
    // The ledger hands its per-slot occupancy set to the index directly; no
    // per-query exclusion vector is built and no pseudo-worker is constructed.
    let nearest = match ledger.occupied_set_at(slot) {
        Some(excluded) => index.nearest_excluding_set(slot, &task.location, excluded)?,
        None => index.nearest(slot, &task.location)?,
    };
    // The cost model may weight the distance (or price the worker); rebuild
    // the cost through it so that alternative models keep working.
    let cost = cost_model.assignment_cost_at(&subtask, nearest.worker, nearest.location);
    Some(CandidateAssignment {
        slot,
        worker: nearest.worker,
        worker_location: nearest.location,
        cost,
        reliability: nearest.reliability,
    })
}

/// Tracks which workers are already committed at which time slots across a
/// multi-task assignment, so that two tasks never use the same worker during
/// the same slot.
///
/// The occupancy is stored per slot (`slot -> sorted worker set`) so that a
/// slot's exclusion set is answered in `O(1)` instead of scanning every
/// commitment of the whole run, and membership checks are `O(log n)` in the
/// slot's own occupancy.
#[derive(Debug, Clone, Default)]
pub struct WorkerLedger {
    occupied: HashMap<SlotIndex, BTreeSet<WorkerId>>,
    commitments: usize,
}

impl WorkerLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Marks a worker as occupied during a slot.  Returns `false` when the
    /// worker was already occupied at that slot (a conflict).
    pub fn occupy(&mut self, slot: SlotIndex, worker: WorkerId) -> bool {
        let inserted = self.occupied.entry(slot).or_default().insert(worker);
        if inserted {
            self.commitments += 1;
        }
        inserted
    }

    /// Whether a worker is occupied during a slot.
    pub fn is_occupied(&self, slot: SlotIndex, worker: WorkerId) -> bool {
        self.occupied
            .get(&slot)
            .is_some_and(|set| set.contains(&worker))
    }

    /// The workers occupied during a slot, in ascending id order.
    pub fn occupied_at(&self, slot: SlotIndex) -> Vec<WorkerId> {
        self.occupied
            .get(&slot)
            .map(|set| set.iter().copied().collect())
            .unwrap_or_default()
    }

    /// The slot's occupancy set, or `None` when nothing is occupied at the
    /// slot.  This is the allocation-free fast path consumed by
    /// [`SpatialQuery::nearest_excluding_set`].
    pub fn occupied_set_at(&self, slot: SlotIndex) -> Option<&BTreeSet<WorkerId>> {
        self.occupied.get(&slot).filter(|set| !set.is_empty())
    }

    /// Releases one commitment (the rollback path of the optimistic master:
    /// a provisional grant that a late heartbeat superseded is undone).
    /// Returns `false` when the worker was not occupied at the slot.
    pub fn release(&mut self, slot: SlotIndex, worker: WorkerId) -> bool {
        let removed = self
            .occupied
            .get_mut(&slot)
            .is_some_and(|set| set.remove(&worker));
        if removed {
            self.commitments -= 1;
        }
        removed
    }

    /// Every `(slot, worker)` commitment, in ascending `(slot, worker)`
    /// order (the deterministic enumeration used when a ledger is re-routed
    /// after an index swap).
    pub fn commitments(&self) -> Vec<(SlotIndex, WorkerId)> {
        let mut out: Vec<(SlotIndex, WorkerId)> = self
            .occupied
            .iter()
            .flat_map(|(slot, set)| set.iter().map(move |w| (*slot, *w)))
            .collect();
        out.sort_unstable();
        out
    }

    /// Total number of (slot, worker) commitments.
    pub fn len(&self) -> usize {
        self.commitments
    }

    /// Whether nothing is occupied.
    pub fn is_empty(&self) -> bool {
        self.commitments == 0
    }

    /// Releases every commitment, returning the ledger to its empty state
    /// (used by the engine between re-planning rounds).
    pub fn clear(&mut self) {
        self.occupied.clear();
        self.commitments = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcsc_core::{Domain, EuclideanCost, Location, TaskId, Worker, WorkerPool, WorkerSlot};
    use tcsc_index::WorkerIndex;

    fn setup() -> (Task, WorkerIndex, EuclideanCost) {
        let task = Task::new(TaskId(0), Location::new(0.0, 0.0), 4);
        let workers: WorkerPool = vec![
            Worker::new(
                WorkerId(0),
                vec![
                    WorkerSlot {
                        slot: 0,
                        location: Location::new(1.0, 0.0),
                    },
                    WorkerSlot {
                        slot: 1,
                        location: Location::new(2.0, 0.0),
                    },
                ],
            ),
            Worker::new(
                WorkerId(1),
                vec![
                    WorkerSlot {
                        slot: 0,
                        location: Location::new(3.0, 0.0),
                    },
                    WorkerSlot {
                        slot: 2,
                        location: Location::new(4.0, 0.0),
                    },
                ],
            ),
        ]
        .into_iter()
        .collect();
        let index = WorkerIndex::build(&workers, 4, &Domain::square(10.0));
        (task, index, EuclideanCost::default())
    }

    #[test]
    fn candidates_pick_the_nearest_worker_per_slot() {
        let (task, index, cost) = setup();
        let candidates = SlotCandidates::compute(&task, &index, &cost);
        assert_eq!(candidates.len(), 4);
        assert_eq!(candidates.get(0).unwrap().worker, WorkerId(0));
        assert!((candidates.cost(0).unwrap() - 1.0).abs() < 1e-12);
        assert_eq!(candidates.get(1).unwrap().worker, WorkerId(0));
        assert_eq!(candidates.get(2).unwrap().worker, WorkerId(1));
        assert!(
            candidates.get(3).is_none(),
            "slot 3 has no available worker"
        );
        assert_eq!(candidates.available(), 3);
    }

    #[test]
    fn ledger_forces_fallback_to_second_nearest() {
        let (task, index, cost) = setup();
        let mut ledger = WorkerLedger::new();
        assert!(ledger.occupy(0, WorkerId(0)));
        assert!(
            !ledger.occupy(0, WorkerId(0)),
            "double occupancy is a conflict"
        );
        let candidates = SlotCandidates::compute_excluding(&task, &index, &cost, &ledger);
        assert_eq!(candidates.get(0).unwrap().worker, WorkerId(1));
        assert!((candidates.cost(0).unwrap() - 3.0).abs() < 1e-12);
        // Slot 1 is unaffected: worker 0 is only occupied at slot 0.
        assert_eq!(candidates.get(1).unwrap().worker, WorkerId(0));
    }

    #[test]
    fn refresh_slot_updates_a_single_entry() {
        let (task, index, cost) = setup();
        let mut candidates = SlotCandidates::compute(&task, &index, &cost);
        let mut ledger = WorkerLedger::new();
        ledger.occupy(0, WorkerId(0));
        candidates.refresh_slot(&task, 0, &index, &cost, &ledger);
        assert_eq!(candidates.get(0).unwrap().worker, WorkerId(1));
        assert_eq!(candidates.get(1).unwrap().worker, WorkerId(0));
    }

    #[test]
    fn costs_vector_matches_entries() {
        let (task, index, cost) = setup();
        let candidates = SlotCandidates::compute(&task, &index, &cost);
        let costs = candidates.costs();
        assert_eq!(costs.len(), 4);
        assert!(costs[3].is_none());
        assert!((costs[0].unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ledger_accessors() {
        let mut ledger = WorkerLedger::new();
        assert!(ledger.is_empty());
        ledger.occupy(2, WorkerId(5));
        ledger.occupy(2, WorkerId(3));
        ledger.occupy(1, WorkerId(5));
        assert_eq!(ledger.len(), 3);
        assert!(ledger.is_occupied(2, WorkerId(5)));
        assert!(!ledger.is_occupied(0, WorkerId(5)));
        assert_eq!(ledger.occupied_at(2), vec![WorkerId(3), WorkerId(5)]);
    }

    #[test]
    fn occupied_set_is_none_for_untouched_slots() {
        let mut ledger = WorkerLedger::new();
        assert!(ledger.occupied_set_at(0).is_none());
        ledger.occupy(0, WorkerId(1));
        ledger.occupy(0, WorkerId(4));
        let set = ledger.occupied_set_at(0).unwrap();
        assert_eq!(set.len(), 2);
        assert!(set.contains(&WorkerId(4)));
        assert!(ledger.occupied_set_at(1).is_none());
    }

    #[test]
    fn clear_releases_every_commitment() {
        let mut ledger = WorkerLedger::new();
        ledger.occupy(0, WorkerId(1));
        ledger.occupy(3, WorkerId(2));
        assert_eq!(ledger.len(), 2);
        ledger.clear();
        assert!(ledger.is_empty());
        assert!(!ledger.is_occupied(0, WorkerId(1)));
        assert!(
            ledger.occupy(0, WorkerId(1)),
            "cleared slots can be re-used"
        );
    }
}
