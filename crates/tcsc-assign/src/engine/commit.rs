//! The shared greedy commit loops.
//!
//! Before this module, the MSQM holder-map loop lived twice (serial engine,
//! concurrent engine) and the MMQM lazy-heap loop three times (serial engine,
//! rebuild baseline, concurrent engine) — every copy a line-for-line port
//! that had to be patched in lockstep (the equivalence suites were the only
//! tripwire).  The incremental-gain ledger gives the commit tail exactly one
//! implementation to patch by factoring both loops here, parameterized by a
//! [`CommitBackend`]: the only thing the drivers actually differ in is *where
//! occupancy lives* (a dense [`WorkerLedger`] vs the sharded per-tile
//! ledgers) and therefore how a conflict-invalidated slot is refreshed.
//!
//! The loops never compute candidates themselves — they call
//! [`TaskState::best_candidate`], which dispatches on the task's
//! [`crate::multi::RefreshStrategy`]; the refresh accounting each state
//! accumulates is absorbed into the run's [`CacheStats`] when a loop
//! finishes.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use tcsc_core::{CandidateAssignment, CostModel, SlotIndex, WorkerId};
use tcsc_index::SpatialQuery;

use crate::candidates::WorkerLedger;
use crate::engine::CacheStats;
use crate::multi::gain::GainLedger;
use crate::multi::rebuild::HeapEntry;
use crate::multi::{TaskCandidate, TaskState};

/// What a commit loop needs from its occupancy store: conflict checks,
/// claims, and the post-conflict slot refresh.
pub(crate) trait CommitBackend {
    /// Whether the planned worker is already occupied at the planned slot.
    fn is_occupied(&self, planned: &CandidateAssignment) -> bool;

    /// Claims the planned `(slot, worker)` (the caller checked availability).
    fn occupy(&mut self, planned: &CandidateAssignment);

    /// Recomputes one slot's candidate against the current occupancy (the
    /// conflict fallback), counting the refresh into `stats`.
    fn refresh_conflict_slot(
        &mut self,
        state: &mut TaskState,
        slot: SlotIndex,
        stats: &mut CacheStats,
    );
}

/// The dense-ledger backend of the serial engine and the rebuild baselines.
pub(crate) struct DenseBackend<'a> {
    pub index: &'a dyn SpatialQuery,
    pub cost_model: &'a dyn CostModel,
    pub ledger: &'a mut WorkerLedger,
}

impl CommitBackend for DenseBackend<'_> {
    fn is_occupied(&self, planned: &CandidateAssignment) -> bool {
        self.ledger.is_occupied(planned.slot, planned.worker)
    }

    fn occupy(&mut self, planned: &CandidateAssignment) {
        self.ledger.occupy(planned.slot, planned.worker);
    }

    fn refresh_conflict_slot(
        &mut self,
        state: &mut TaskState,
        slot: SlotIndex,
        stats: &mut CacheStats,
    ) {
        state.refresh_slot(slot, self.index, self.cost_model, self.ledger);
        stats.count_conflict_refresh();
    }
}

/// Folds every state's refresh accounting into the run's stats (called once
/// per finished commit loop; states are per-solve, so nothing double-counts).
pub(crate) fn absorb_refresh_stats(states: &[TaskState], stats: &mut CacheStats) {
    for state in states {
        stats.absorb_refresh(&state.refresh_stats());
    }
}

/// Reverse holder map of one solve: `(slot, worker)` to the tasks whose
/// cached best candidate currently targets that worker.  `registered`
/// remembers each task's key so deregistration never has to search.
#[derive(Debug, Default)]
pub(crate) struct HolderMap {
    holders: HashMap<(SlotIndex, WorkerId), std::collections::BTreeSet<usize>>,
    registered: Vec<Option<(SlotIndex, WorkerId)>>,
}

impl HolderMap {
    pub(crate) fn with_tasks(n: usize) -> Self {
        Self {
            holders: HashMap::new(),
            registered: vec![None; n],
        }
    }

    pub(crate) fn register(&mut self, task_idx: usize, slot: SlotIndex, worker: WorkerId) {
        self.holders
            .entry((slot, worker))
            .or_default()
            .insert(task_idx);
        self.registered[task_idx] = Some((slot, worker));
    }

    pub(crate) fn deregister(&mut self, task_idx: usize) {
        if let Some(key) = self.registered[task_idx].take() {
            if let Some(set) = self.holders.get_mut(&key) {
                set.remove(&task_idx);
                if set.is_empty() {
                    self.holders.remove(&key);
                }
            }
        }
    }

    /// Removes and returns every task holding `(slot, worker)` as its best
    /// candidate.
    pub(crate) fn take_holders(
        &mut self,
        slot: SlotIndex,
        worker: WorkerId,
    ) -> std::collections::BTreeSet<usize> {
        let set = self.holders.remove(&(slot, worker)).unwrap_or_default();
        for &task_idx in &set {
            self.registered[task_idx] = None;
        }
        set
    }
}

/// A candidate wave: recomputes `best_candidate(remaining)` for the listed
/// states, returning `(task index, candidate)` pairs in ascending task order.
/// The serial drivers answer inline; the concurrent engine fans large waves
/// out to its thread pool.  Each answer is a pure function of the task's own
/// state and `remaining`, so inline and parallel execution coincide.
pub(crate) type CandidateWave<'a> =
    dyn FnMut(&mut [TaskState], &[usize], f64) -> Vec<(usize, Option<TaskCandidate>)> + 'a;

/// The inline (serial) candidate wave.
pub(crate) fn inline_wave(
    states: &mut [TaskState],
    invalidated: &[usize],
    remaining: f64,
) -> Vec<(usize, Option<TaskCandidate>)> {
    invalidated
        .iter()
        .map(|&i| (i, states[i].best_candidate(remaining)))
        .collect()
}

/// The serial MSQM greedy over already-checked-out task states: repeatedly
/// execute the globally best affordable `(gain / cost)` candidate, arbitrate
/// worker conflicts through the backend and refresh exactly the invalidated
/// slots (the reverse holder map yields them without scanning the batch).
/// Returns `(conflicts, executions)`.
///
/// Every MSQM driver commits through this loop — the serial engine, the
/// cache-sharing group-parallel variant and the concurrent engine (which
/// passes its thread-pool wave); their results can only differ through the
/// candidates they feed in.  The equivalence suites (`engine_equivalence.rs`,
/// `concurrent_equivalence.rs`) are the tripwire.
pub(crate) fn msqm_commit_loop(
    states: &mut [TaskState],
    budget: f64,
    backend: &mut dyn CommitBackend,
    stats: &mut CacheStats,
    wave: &mut CandidateWave<'_>,
) -> (usize, usize) {
    let mut remaining = budget;
    let mut conflicts = 0usize;
    let mut executions = 0usize;

    // Cached best candidate per task; recomputed lazily when invalidated.
    let mut cached: Vec<Option<Option<TaskCandidate>>> = vec![None; states.len()];
    let mut holders = HolderMap::with_tasks(states.len());
    let mut warm_start_done = false;

    loop {
        // Deregister candidates that the shrinking budget made unaffordable
        // (they must be recomputed with the current budget so cheaper slots
        // of the same task are still considered).
        for (i, entry) in cached.iter_mut().enumerate() {
            if let Some(Some(c)) = entry {
                if c.cost > remaining {
                    holders.deregister(i);
                    *entry = None;
                }
            }
        }
        // Recompute every invalidated candidate as one wave (the first
        // iteration recomputes the whole batch — the warm start).
        let invalidated: Vec<usize> = (0..states.len()).filter(|&i| cached[i].is_none()).collect();
        if !invalidated.is_empty() {
            if warm_start_done {
                // Everything past the warm start is eager per-grant refresh
                // work — the quantity the V2 lazy queue attacks.
                stats.commit_rescores += invalidated.len();
            }
            warm_start_done = true;
            for (i, candidate) in wave(states, &invalidated, remaining) {
                if let Some(c) = &candidate {
                    let worker = states[i]
                        .planned_worker(c.slot)
                        .expect("candidate slot has a planned worker");
                    holders.register(i, c.slot, worker);
                }
                cached[i] = Some(candidate);
            }
        }
        // Pick the task with the globally maximal heuristic value among the
        // affordable candidates (identical rule, identical ties).
        let mut best: Option<(usize, TaskCandidate)> = None;
        for (i, entry) in cached.iter().enumerate() {
            let Some(Some(candidate)) = entry else {
                continue;
            };
            if candidate.cost > remaining {
                continue;
            }
            let better = match &best {
                None => true,
                Some((bi, b)) => {
                    candidate.heuristic > b.heuristic
                        || (candidate.heuristic == b.heuristic && i < *bi)
                }
            };
            if better {
                best = Some((i, *candidate));
            }
        }
        let Some((task_idx, candidate)) = best else {
            break;
        };

        // Worker-conflict check: the planned worker may have been taken by
        // another task since this candidate was computed.
        let planned = *states[task_idx]
            .candidates
            .get(candidate.slot)
            .expect("candidate slot has a planned worker");
        if backend.is_occupied(&planned) {
            // Conflict: fall back to the next nearest worker and retry.
            conflicts += 1;
            holders.deregister(task_idx);
            cached[task_idx] = None;
            backend.refresh_conflict_slot(&mut states[task_idx], candidate.slot, stats);
            continue;
        }

        // Execute.
        remaining -= candidate.cost;
        backend.occupy(&planned);
        states[task_idx].execute(candidate.slot);
        executions += 1;
        holders.deregister(task_idx);
        cached[task_idx] = None;
        // Invalidate cached candidates of tasks that planned to use the same
        // worker at the same slot (they must fall back on their next try).
        // The holder map yields exactly those tasks without scanning the
        // whole batch.
        let losers = holders.take_holders(candidate.slot, planned.worker);
        debug_assert!(
            !losers.contains(&task_idx),
            "the executing task was deregistered before its worker was occupied"
        );
        for i in losers {
            conflicts += 1;
            cached[i] = None;
            backend.refresh_conflict_slot(&mut states[i], candidate.slot, stats);
        }
    }

    absorb_refresh_stats(states, stats);
    (conflicts, executions)
}

/// One entry of the cross-task CELF queue: a task keyed by an upper bound on
/// its best affordable heuristic.  `seq` version-kills superseded entries;
/// `exact` marks keys that equal the task's stored candidate (fresh scores)
/// as opposed to stale upper bounds left behind by a grant.
#[derive(Debug, Clone, Copy, PartialEq)]
struct CelfEntry {
    key: f64,
    task: usize,
    seq: u32,
    exact: bool,
}

impl Eq for CelfEntry {}

impl Ord for CelfEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap on key; lower task index pops first on exact key ties (the
        // selection tie-break), with seq/exact only completing the total
        // order for duplicate (key, task) pairs.
        self.key
            .total_cmp(&other.key)
            .then_with(|| other.task.cmp(&self.task))
            .then_with(|| self.seq.cmp(&other.seq))
            .then_with(|| self.exact.cmp(&other.exact))
    }
}

impl PartialOrd for CelfEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// The MSQM greedy under [`crate::multi::ConflictAccounting::V2`]: a
/// cross-task CELF lazy priority queue instead of V1's eager per-grant
/// refresh.  Returns `(conflicts, executions)`.
///
/// Every task sits in a global max-heap keyed by an **upper bound** on its
/// best affordable heuristic.  After a grant, the winner is re-inserted with
/// its pre-grant key as a stale bound instead of being re-scored — entropy
/// gains diminish monotonically, and a conflict fallback only raises a slot's
/// cost, so a task's true best can only drop below its old key (up to the
/// float jitter [`GainLedger::could_beat`] absorbs).  A task is re-scored via
/// [`TaskState::best_candidate`] only when its bound actually binds the
/// selection; losers whose planned worker was taken keep their (now invalid)
/// candidates and discover the conflict at their own selection attempt —
/// that selection-time-only conflict charging is the V2 accounting contract,
/// pinned bit-identically by [`crate::multi::rebuild::msqm_rebuild_v2`] and
/// the `conflict_accounting_fuzz.rs` suite.  The committed plans are the same
/// as V1's; only the conflict counts and the per-grant re-score work differ
/// (`CacheStats::commit_rescores` measures the latter for both loops).
pub(crate) fn msqm_commit_loop_celf(
    states: &mut [TaskState],
    budget: f64,
    backend: &mut dyn CommitBackend,
    stats: &mut CacheStats,
    wave: &mut CandidateWave<'_>,
) -> (usize, usize) {
    let mut remaining = budget;
    let mut conflicts = 0usize;
    let mut executions = 0usize;

    // Warm start: score the whole batch as one wave (parallelisable), then
    // seed the queue with exact keys.
    let mut current: Vec<Option<TaskCandidate>> = vec![None; states.len()];
    let mut seq = vec![0u32; states.len()];
    let mut retired = vec![false; states.len()];
    let mut heap: BinaryHeap<CelfEntry> = BinaryHeap::with_capacity(states.len());
    let all: Vec<usize> = (0..states.len()).collect();
    for (i, candidate) in wave(states, &all, remaining) {
        match candidate {
            Some(c) => {
                heap.push(CelfEntry {
                    key: c.heuristic,
                    task: i,
                    seq: 0,
                    exact: true,
                });
                current[i] = Some(c);
            }
            None => retired[i] = true,
        }
    }

    let mut aside: Vec<CelfEntry> = Vec::new();
    loop {
        // Lazy selection: pop until no remaining key could beat the best
        // exact candidate seen, re-scoring entries whose bound binds.
        let mut best: Option<CelfEntry> = None;
        aside.clear();
        while let Some(&top) = heap.peek() {
            if let Some(b) = &best {
                if !GainLedger::could_beat(top.key, b.key) {
                    break;
                }
            }
            let top = heap.pop().expect("peeked entry exists");
            if top.seq != seq[top.task] || retired[top.task] {
                continue;
            }
            // An exact key stays trustworthy while its candidate remains
            // affordable: a shrinking budget only removes competitors from
            // the task's feasible set, never changes its stored argmax.
            let fresh = top.exact && current[top.task].is_some_and(|c| c.cost <= remaining);
            if !fresh {
                stats.commit_rescores += 1;
                seq[top.task] = seq[top.task].wrapping_add(1);
                match states[top.task].best_candidate(remaining) {
                    Some(c) => {
                        heap.push(CelfEntry {
                            key: c.heuristic,
                            task: top.task,
                            seq: seq[top.task],
                            exact: true,
                        });
                        current[top.task] = Some(c);
                    }
                    None => {
                        retired[top.task] = true;
                        current[top.task] = None;
                    }
                }
                continue;
            }
            // Exact vs exact: the full search's comparison (strict heuristic,
            // lower task index on ties), immune to the margin band.
            let candidate = current[top.task].expect("fresh entry has a candidate");
            let better = match &best {
                None => true,
                Some(b) => {
                    let bc = current[b.task].expect("best entry has a candidate");
                    candidate.heuristic > bc.heuristic
                        || (candidate.heuristic == bc.heuristic && top.task < b.task)
                }
            };
            if better {
                if let Some(prev) = best.replace(top) {
                    aside.push(prev);
                }
            } else {
                aside.push(top);
            }
        }
        for entry in aside.drain(..) {
            heap.push(entry);
        }
        let Some(winner) = best else {
            break;
        };
        let task_idx = winner.task;
        let candidate = current[task_idx].expect("winner has a candidate");

        // Conflict check at selection time — the only place V2 charges
        // conflicts.
        let planned = *states[task_idx]
            .candidates
            .get(candidate.slot)
            .expect("candidate slot has a planned worker");
        if backend.is_occupied(&planned) {
            conflicts += 1;
            backend.refresh_conflict_slot(&mut states[task_idx], candidate.slot, stats);
            // The slot's value only dropped (farther fallback worker), so the
            // old key is a valid upper bound on the task's new best.
            seq[task_idx] = seq[task_idx].wrapping_add(1);
            current[task_idx] = None;
            heap.push(CelfEntry {
                key: winner.key,
                task: task_idx,
                seq: seq[task_idx],
                exact: false,
            });
            continue;
        }

        // Execute; the winner re-enters the queue as a stale upper bound
        // (diminishing gains: its next best can only be lower) and is only
        // re-scored when that bound binds again — the CELF saving.
        remaining -= candidate.cost;
        backend.occupy(&planned);
        states[task_idx].execute(candidate.slot);
        executions += 1;
        seq[task_idx] = seq[task_idx].wrapping_add(1);
        current[task_idx] = None;
        heap.push(CelfEntry {
            key: winner.key,
            task: task_idx,
            seq: seq[task_idx],
            exact: false,
        });
    }

    absorb_refresh_stats(states, stats);
    (conflicts, executions)
}

/// The MMQM lazy-heap greedy: repeatedly reinforce the weakest task with its
/// best affordable candidate, arbitrating conflicts through the backend.
/// Heap entries are lazily refreshed — a popped entry whose quality no longer
/// matches the task is re-pushed with the current quality instead of being
/// trusted.  Returns `(conflicts, executions)`.
///
/// The single implementation behind the serial engine, the rebuild baseline
/// and the concurrent engine (which previously carried three line-for-line
/// copies of this loop).
pub(crate) fn mmqm_commit_loop(
    states: &mut [TaskState],
    budget: f64,
    backend: &mut dyn CommitBackend,
    stats: &mut CacheStats,
) -> (usize, usize) {
    let mut remaining = budget;
    let mut conflicts = 0usize;
    let mut executions = 0usize;

    // Min-heap over (quality, task index); entries are lazily refreshed.
    let mut heap: BinaryHeap<Reverse<HeapEntry>> = states
        .iter()
        .enumerate()
        .map(|(i, s)| Reverse(HeapEntry(s.quality(), i)))
        .collect();
    // Tasks that ran out of affordable candidates are retired.
    let mut retired = vec![false; states.len()];

    while let Some(Reverse(HeapEntry(quality, task_idx))) = heap.pop() {
        if retired[task_idx] {
            continue;
        }
        // Lazy entry: skip if stale (the task's quality has changed since the
        // entry was pushed).
        if (states[task_idx].quality() - quality).abs() > 1e-12 {
            heap.push(Reverse(HeapEntry(states[task_idx].quality(), task_idx)));
            continue;
        }

        let Some(candidate) = states[task_idx].best_candidate(remaining) else {
            retired[task_idx] = true;
            continue;
        };
        if candidate.cost > remaining {
            retired[task_idx] = true;
            continue;
        }
        // Conflict check against the shared occupancy.
        let planned = *states[task_idx]
            .candidates
            .get(candidate.slot)
            .expect("candidate slot has a planned worker");
        if backend.is_occupied(&planned) {
            conflicts += 1;
            backend.refresh_conflict_slot(&mut states[task_idx], candidate.slot, stats);
            heap.push(Reverse(HeapEntry(states[task_idx].quality(), task_idx)));
            continue;
        }

        remaining -= candidate.cost;
        backend.occupy(&planned);
        states[task_idx].execute(candidate.slot);
        executions += 1;
        heap.push(Reverse(HeapEntry(states[task_idx].quality(), task_idx)));
    }

    absorb_refresh_stats(states, stats);
    (conflicts, executions)
}
