//! The shared greedy commit loops.
//!
//! Before this module, the MSQM holder-map loop lived twice (serial engine,
//! concurrent engine) and the MMQM lazy-heap loop three times (serial engine,
//! rebuild baseline, concurrent engine) — every copy a line-for-line port
//! that had to be patched in lockstep (the equivalence suites were the only
//! tripwire).  The incremental-gain ledger gives the commit tail exactly one
//! implementation to patch by factoring both loops here, parameterized by a
//! [`CommitBackend`]: the only thing the drivers actually differ in is *where
//! occupancy lives* (a dense [`WorkerLedger`] vs the sharded per-tile
//! ledgers) and therefore how a conflict-invalidated slot is refreshed.
//!
//! The loops never compute candidates themselves — they call
//! [`TaskState::best_candidate`], which dispatches on the task's
//! [`crate::multi::RefreshStrategy`]; the refresh accounting each state
//! accumulates is absorbed into the run's [`CacheStats`] when a loop
//! finishes.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use tcsc_core::{CandidateAssignment, CostModel, SlotIndex, WorkerId};
use tcsc_index::SpatialQuery;

use crate::candidates::WorkerLedger;
use crate::engine::CacheStats;
use crate::multi::rebuild::HeapEntry;
use crate::multi::{TaskCandidate, TaskState};

/// What a commit loop needs from its occupancy store: conflict checks,
/// claims, and the post-conflict slot refresh.
pub(crate) trait CommitBackend {
    /// Whether the planned worker is already occupied at the planned slot.
    fn is_occupied(&self, planned: &CandidateAssignment) -> bool;

    /// Claims the planned `(slot, worker)` (the caller checked availability).
    fn occupy(&mut self, planned: &CandidateAssignment);

    /// Recomputes one slot's candidate against the current occupancy (the
    /// conflict fallback), counting the refresh into `stats`.
    fn refresh_conflict_slot(
        &mut self,
        state: &mut TaskState,
        slot: SlotIndex,
        stats: &mut CacheStats,
    );
}

/// The dense-ledger backend of the serial engine and the rebuild baselines.
pub(crate) struct DenseBackend<'a> {
    pub index: &'a dyn SpatialQuery,
    pub cost_model: &'a dyn CostModel,
    pub ledger: &'a mut WorkerLedger,
}

impl CommitBackend for DenseBackend<'_> {
    fn is_occupied(&self, planned: &CandidateAssignment) -> bool {
        self.ledger.is_occupied(planned.slot, planned.worker)
    }

    fn occupy(&mut self, planned: &CandidateAssignment) {
        self.ledger.occupy(planned.slot, planned.worker);
    }

    fn refresh_conflict_slot(
        &mut self,
        state: &mut TaskState,
        slot: SlotIndex,
        stats: &mut CacheStats,
    ) {
        state.refresh_slot(slot, self.index, self.cost_model, self.ledger);
        stats.count_conflict_refresh();
    }
}

/// Folds every state's refresh accounting into the run's stats (called once
/// per finished commit loop; states are per-solve, so nothing double-counts).
pub(crate) fn absorb_refresh_stats(states: &[TaskState], stats: &mut CacheStats) {
    for state in states {
        stats.absorb_refresh(&state.refresh_stats());
    }
}

/// Reverse holder map of one solve: `(slot, worker)` to the tasks whose
/// cached best candidate currently targets that worker.  `registered`
/// remembers each task's key so deregistration never has to search.
#[derive(Debug, Default)]
pub(crate) struct HolderMap {
    holders: HashMap<(SlotIndex, WorkerId), std::collections::BTreeSet<usize>>,
    registered: Vec<Option<(SlotIndex, WorkerId)>>,
}

impl HolderMap {
    pub(crate) fn with_tasks(n: usize) -> Self {
        Self {
            holders: HashMap::new(),
            registered: vec![None; n],
        }
    }

    pub(crate) fn register(&mut self, task_idx: usize, slot: SlotIndex, worker: WorkerId) {
        self.holders
            .entry((slot, worker))
            .or_default()
            .insert(task_idx);
        self.registered[task_idx] = Some((slot, worker));
    }

    pub(crate) fn deregister(&mut self, task_idx: usize) {
        if let Some(key) = self.registered[task_idx].take() {
            if let Some(set) = self.holders.get_mut(&key) {
                set.remove(&task_idx);
                if set.is_empty() {
                    self.holders.remove(&key);
                }
            }
        }
    }

    /// Removes and returns every task holding `(slot, worker)` as its best
    /// candidate.
    pub(crate) fn take_holders(
        &mut self,
        slot: SlotIndex,
        worker: WorkerId,
    ) -> std::collections::BTreeSet<usize> {
        let set = self.holders.remove(&(slot, worker)).unwrap_or_default();
        for &task_idx in &set {
            self.registered[task_idx] = None;
        }
        set
    }
}

/// A candidate wave: recomputes `best_candidate(remaining)` for the listed
/// states, returning `(task index, candidate)` pairs in ascending task order.
/// The serial drivers answer inline; the concurrent engine fans large waves
/// out to its thread pool.  Each answer is a pure function of the task's own
/// state and `remaining`, so inline and parallel execution coincide.
pub(crate) type CandidateWave<'a> =
    dyn FnMut(&mut [TaskState], &[usize], f64) -> Vec<(usize, Option<TaskCandidate>)> + 'a;

/// The inline (serial) candidate wave.
pub(crate) fn inline_wave(
    states: &mut [TaskState],
    invalidated: &[usize],
    remaining: f64,
) -> Vec<(usize, Option<TaskCandidate>)> {
    invalidated
        .iter()
        .map(|&i| (i, states[i].best_candidate(remaining)))
        .collect()
}

/// The serial MSQM greedy over already-checked-out task states: repeatedly
/// execute the globally best affordable `(gain / cost)` candidate, arbitrate
/// worker conflicts through the backend and refresh exactly the invalidated
/// slots (the reverse holder map yields them without scanning the batch).
/// Returns `(conflicts, executions)`.
///
/// Every MSQM driver commits through this loop — the serial engine, the
/// cache-sharing group-parallel variant and the concurrent engine (which
/// passes its thread-pool wave); their results can only differ through the
/// candidates they feed in.  The equivalence suites (`engine_equivalence.rs`,
/// `concurrent_equivalence.rs`) are the tripwire.
pub(crate) fn msqm_commit_loop(
    states: &mut [TaskState],
    budget: f64,
    backend: &mut dyn CommitBackend,
    stats: &mut CacheStats,
    wave: &mut CandidateWave<'_>,
) -> (usize, usize) {
    let mut remaining = budget;
    let mut conflicts = 0usize;
    let mut executions = 0usize;

    // Cached best candidate per task; recomputed lazily when invalidated.
    let mut cached: Vec<Option<Option<TaskCandidate>>> = vec![None; states.len()];
    let mut holders = HolderMap::with_tasks(states.len());

    loop {
        // Deregister candidates that the shrinking budget made unaffordable
        // (they must be recomputed with the current budget so cheaper slots
        // of the same task are still considered).
        for (i, entry) in cached.iter_mut().enumerate() {
            if let Some(Some(c)) = entry {
                if c.cost > remaining {
                    holders.deregister(i);
                    *entry = None;
                }
            }
        }
        // Recompute every invalidated candidate as one wave (the first
        // iteration recomputes the whole batch — the warm start).
        let invalidated: Vec<usize> = (0..states.len()).filter(|&i| cached[i].is_none()).collect();
        if !invalidated.is_empty() {
            for (i, candidate) in wave(states, &invalidated, remaining) {
                if let Some(c) = &candidate {
                    let worker = states[i]
                        .planned_worker(c.slot)
                        .expect("candidate slot has a planned worker");
                    holders.register(i, c.slot, worker);
                }
                cached[i] = Some(candidate);
            }
        }
        // Pick the task with the globally maximal heuristic value among the
        // affordable candidates (identical rule, identical ties).
        let mut best: Option<(usize, TaskCandidate)> = None;
        for (i, entry) in cached.iter().enumerate() {
            let Some(Some(candidate)) = entry else {
                continue;
            };
            if candidate.cost > remaining {
                continue;
            }
            let better = match &best {
                None => true,
                Some((bi, b)) => {
                    candidate.heuristic > b.heuristic
                        || (candidate.heuristic == b.heuristic && i < *bi)
                }
            };
            if better {
                best = Some((i, *candidate));
            }
        }
        let Some((task_idx, candidate)) = best else {
            break;
        };

        // Worker-conflict check: the planned worker may have been taken by
        // another task since this candidate was computed.
        let planned = *states[task_idx]
            .candidates
            .get(candidate.slot)
            .expect("candidate slot has a planned worker");
        if backend.is_occupied(&planned) {
            // Conflict: fall back to the next nearest worker and retry.
            conflicts += 1;
            holders.deregister(task_idx);
            cached[task_idx] = None;
            backend.refresh_conflict_slot(&mut states[task_idx], candidate.slot, stats);
            continue;
        }

        // Execute.
        remaining -= candidate.cost;
        backend.occupy(&planned);
        states[task_idx].execute(candidate.slot);
        executions += 1;
        holders.deregister(task_idx);
        cached[task_idx] = None;
        // Invalidate cached candidates of tasks that planned to use the same
        // worker at the same slot (they must fall back on their next try).
        // The holder map yields exactly those tasks without scanning the
        // whole batch.
        let losers = holders.take_holders(candidate.slot, planned.worker);
        debug_assert!(
            !losers.contains(&task_idx),
            "the executing task was deregistered before its worker was occupied"
        );
        for i in losers {
            conflicts += 1;
            cached[i] = None;
            backend.refresh_conflict_slot(&mut states[i], candidate.slot, stats);
        }
    }

    absorb_refresh_stats(states, stats);
    (conflicts, executions)
}

/// The MMQM lazy-heap greedy: repeatedly reinforce the weakest task with its
/// best affordable candidate, arbitrating conflicts through the backend.
/// Heap entries are lazily refreshed — a popped entry whose quality no longer
/// matches the task is re-pushed with the current quality instead of being
/// trusted.  Returns `(conflicts, executions)`.
///
/// The single implementation behind the serial engine, the rebuild baseline
/// and the concurrent engine (which previously carried three line-for-line
/// copies of this loop).
pub(crate) fn mmqm_commit_loop(
    states: &mut [TaskState],
    budget: f64,
    backend: &mut dyn CommitBackend,
    stats: &mut CacheStats,
) -> (usize, usize) {
    let mut remaining = budget;
    let mut conflicts = 0usize;
    let mut executions = 0usize;

    // Min-heap over (quality, task index); entries are lazily refreshed.
    let mut heap: BinaryHeap<Reverse<HeapEntry>> = states
        .iter()
        .enumerate()
        .map(|(i, s)| Reverse(HeapEntry(s.quality(), i)))
        .collect();
    // Tasks that ran out of affordable candidates are retired.
    let mut retired = vec![false; states.len()];

    while let Some(Reverse(HeapEntry(quality, task_idx))) = heap.pop() {
        if retired[task_idx] {
            continue;
        }
        // Lazy entry: skip if stale (the task's quality has changed since the
        // entry was pushed).
        if (states[task_idx].quality() - quality).abs() > 1e-12 {
            heap.push(Reverse(HeapEntry(states[task_idx].quality(), task_idx)));
            continue;
        }

        let Some(candidate) = states[task_idx].best_candidate(remaining) else {
            retired[task_idx] = true;
            continue;
        };
        if candidate.cost > remaining {
            retired[task_idx] = true;
            continue;
        }
        // Conflict check against the shared occupancy.
        let planned = *states[task_idx]
            .candidates
            .get(candidate.slot)
            .expect("candidate slot has a planned worker");
        if backend.is_occupied(&planned) {
            conflicts += 1;
            backend.refresh_conflict_slot(&mut states[task_idx], candidate.slot, stats);
            heap.push(Reverse(HeapEntry(states[task_idx].quality(), task_idx)));
            continue;
        }

        remaining -= candidate.cost;
        backend.occupy(&planned);
        states[task_idx].execute(candidate.slot);
        executions += 1;
        heap.push(Reverse(HeapEntry(states[task_idx].quality(), task_idx)));
    }

    absorb_refresh_stats(states, stats);
    (conflicts, executions)
}
