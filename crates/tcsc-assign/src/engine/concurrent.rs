//! The concurrent, region-parallel assignment engine.
//!
//! [`super::AssignmentEngine`] is single-threaded: one ledger, one candidate
//! cache, one thread.  [`ConcurrentAssignmentEngine`] partitions that state
//! along the spatial tiles of a [`ShardedWorkerIndex`]:
//!
//! * the **ledger** becomes a [`ShardedLedger`] — one `RwLock<WorkerLedger>`
//!   per tile, where a worker's occupancy at a slot is recorded in the shard
//!   owning the worker's *location* during that slot (the same routing
//!   function the sharded index uses, so an index probe of tile `t` only
//!   ever consults ledger shard `t`);
//! * the **candidate cache** becomes one `Mutex<CandidateCache>` per tile,
//!   with each task owned by its *home shard* (the tile of the task's
//!   location);
//! * the expensive phases — candidate checkout and the initial
//!   best-candidate computation of every task — run on a scoped thread pool,
//!   with worker threads pulling whole home-shard groups so tasks of
//!   disjoint regions never contend on a lock.
//!
//! # Determinism and bit-identity
//!
//! The commit loop (pick the globally best candidate, arbitrate conflicts,
//! subtract budget) is the exact serial greedy of the single-threaded
//! engine; only *pure computations* are parallelised:
//!
//! * checkout and refresh of a task's candidates depend on the task, the
//!   index state at the phase boundary (the index only mutates *between*
//!   solves, through the engine's own insert/remove/move API, which keeps
//!   the shard caches exact) and the ledger state at that boundary —
//!   computing them on any thread gives the same result the serial engine
//!   computes inline;
//! * budget arithmetic happens only in the commit loop, in commit order, so
//!   every affordability comparison sees the exact `f64` the serial engine
//!   sees.
//!
//! Cross-shard candidates (a task in tile A whose nearest worker sits in
//! tile B) are resolved by a deterministic **two-phase claim**: when a
//! worker is granted, phase one *releases* every task registered on that
//! `(shard, worker, slot)` claim (the holder map hands them over as a set),
//! and phase two lets the losers *re-claim* replacement candidates in
//! ascending `(shard, worker, task)` order, each computed against the same
//! post-commit ledger state — so the outcome is independent of thread
//! interleaving.  The net result:
//! [`ConcurrentAssignmentEngine::assign_batch_parallel`] is **bit-identical**
//! (plans, conflicts, executions, cache counters) to
//! [`super::AssignmentEngine::assign_batch`] for every shard grid and every
//! thread count — locked in by `tests/concurrent_equivalence.rs` over the
//! seeded `ScenarioConfig` presets.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, RwLock, RwLockReadGuard};
use std::thread;

use tcsc_core::{
    AssignmentPlan, CandidateAssignment, CostModel, Location, MultiAssignment, SlotIndex, Task,
    Worker, WorkerId,
};
use tcsc_index::{IndexMutation, MutableSpatialIndex, ShardedWorkerIndex};
use tcsc_obs::{NoopRecorder, Recorder, Stopwatch};

use crate::candidates::WorkerLedger;
use crate::engine::commit::{
    inline_wave, mmqm_commit_loop, msqm_commit_loop, msqm_commit_loop_celf, CommitBackend,
};
use crate::engine::{CacheStats, CandidateCache, ChurnCounters, Objective};
use crate::multi::{ConflictAccounting, MultiOutcome, MultiTaskConfig, TaskCandidate, TaskState};

/// Minimum number of simultaneously invalidated tasks before an in-loop
/// candidate wave is dispatched to the thread pool; smaller waves (the common
/// 0–2 conflict losers) run inline, where thread spawn overhead would
/// dominate.
const PARALLEL_WAVE_MIN: usize = 8;

/// Worker occupancy partitioned by spatial shard behind per-shard locks.
///
/// A commitment `(slot, worker)` lives in the shard owning the worker's
/// location during that slot — [`ShardedWorkerIndex::spatial_shard_of`] is
/// the routing function, shared with the index itself, so ledger shard `t`
/// holds exactly the occupancy of the workers that index shard `t` stores.
#[derive(Debug)]
pub struct ShardedLedger {
    shards: Vec<RwLock<WorkerLedger>>,
}

impl ShardedLedger {
    /// An empty ledger over `num_shards` spatial shards.
    pub fn new(num_shards: usize) -> Self {
        Self {
            shards: (0..num_shards.max(1))
                .map(|_| RwLock::new(WorkerLedger::new()))
                .collect(),
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total number of (slot, worker) commitments across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("ledger shard lock poisoned").len())
            .sum()
    }

    /// Whether nothing is occupied anywhere.
    pub fn is_empty(&self) -> bool {
        self.shards
            .iter()
            .all(|s| s.read().expect("ledger shard lock poisoned").is_empty())
    }

    /// Marks a worker as occupied during a slot within a shard.  Returns
    /// `false` when the worker was already occupied there (a conflict).
    pub fn occupy(&self, shard: usize, slot: SlotIndex, worker: WorkerId) -> bool {
        self.shards[shard]
            .write()
            .expect("ledger shard lock poisoned")
            .occupy(slot, worker)
    }

    /// Whether a worker is occupied during a slot within a shard.
    pub fn is_occupied(&self, shard: usize, slot: SlotIndex, worker: WorkerId) -> bool {
        self.shards[shard]
            .read()
            .expect("ledger shard lock poisoned")
            .is_occupied(slot, worker)
    }

    /// Releases one commitment within a shard, returning whether it was held
    /// (the migration path of a cross-tile worker move, and the release path
    /// of a worker going offline).
    pub fn release(&self, shard: usize, slot: SlotIndex, worker: WorkerId) -> bool {
        self.shards[shard]
            .write()
            .expect("ledger shard lock poisoned")
            .release(slot, worker)
    }

    /// Every `(shard, slot, worker)` commitment, in ascending order — the
    /// deterministic enumeration used when the ledger is re-routed through a
    /// freshly built index.
    pub fn commitments(&self) -> Vec<(usize, SlotIndex, WorkerId)> {
        let mut out = Vec::new();
        for (shard, lock) in self.shards.iter().enumerate() {
            let ledger = lock.read().expect("ledger shard lock poisoned");
            for (slot, worker) in ledger.commitments() {
                out.push((shard, slot, worker));
            }
        }
        out
    }

    /// Releases every commitment of every shard.
    pub fn clear(&mut self) {
        for shard in &mut self.shards {
            shard.get_mut().expect("ledger shard lock poisoned").clear();
        }
    }

    /// Read guards over every shard, for a bulk-synchronous read phase (each
    /// worker thread of a parallel phase holds its own set; `std` RwLock
    /// readers do not contend with each other).
    fn read_all(&self) -> Vec<RwLockReadGuard<'_, WorkerLedger>> {
        self.shards
            .iter()
            .map(|s| s.read().expect("ledger shard lock poisoned"))
            .collect()
    }
}

/// Computes a task's candidate for one slot against the sharded index and
/// the sharded ledger: the nearest worker whose owning shard does not record
/// it as occupied at the slot.  Pure function of `(task, slot, index, ledger
/// state)` — bit-identical to the dense `candidate_for_slot` over the
/// equivalent flat ledger.
fn candidate_for_slot_sharded(
    task: &Task,
    slot: SlotIndex,
    index: &ShardedWorkerIndex,
    cost_model: &dyn CostModel,
    ledger: &[RwLockReadGuard<'_, WorkerLedger>],
) -> Option<CandidateAssignment> {
    let nearest = index.nearest_excluding_with(slot, &task.location, |shard, worker| {
        ledger[shard].is_occupied(slot, worker)
    })?;
    let cost = cost_model.assignment_cost_at(&task.subtask(slot), nearest.worker, nearest.location);
    Some(CandidateAssignment {
        slot,
        worker: nearest.worker,
        worker_location: nearest.location,
        cost,
        reliability: nearest.reliability,
    })
}

/// The sharded-ledger backend of the shared commit loops: occupancy routed to
/// the shard owning the planned worker's location (the same routing function
/// the index uses), conflict refreshes computed against a read snapshot of
/// every shard.
struct ShardedBackend<'a> {
    index: &'a ShardedWorkerIndex,
    cost_model: &'a (dyn CostModel + Sync),
    ledger: &'a ShardedLedger,
}

impl CommitBackend for ShardedBackend<'_> {
    fn is_occupied(&self, planned: &CandidateAssignment) -> bool {
        let shard = self.index.spatial_shard_of(&planned.worker_location);
        self.ledger.is_occupied(shard, planned.slot, planned.worker)
    }

    fn occupy(&mut self, planned: &CandidateAssignment) {
        let shard = self.index.spatial_shard_of(&planned.worker_location);
        self.ledger.occupy(shard, planned.slot, planned.worker);
    }

    fn refresh_conflict_slot(
        &mut self,
        state: &mut TaskState,
        slot: SlotIndex,
        stats: &mut CacheStats,
    ) {
        let guards = self.ledger.read_all();
        let candidate =
            candidate_for_slot_sharded(&state.task, slot, self.index, self.cost_model, &guards);
        state.set_candidate(slot, candidate);
        stats.count_conflict_refresh();
    }
}

/// Relative slack applied to the home-tile interior bound when classifying a
/// task as region-interior (and when re-checking a tile-local conflict
/// fallback).  The classification must be *conservative*: a candidate whose
/// distance lands within one ulp of the exact tile-edge distance is treated
/// as boundary, so float noise in `tile_of`'s clamping arithmetic can never
/// promote a genuinely edge-crossing task into an interior region.
const INTERIOR_SLACK: f64 = 1e-9;

/// The tile-local backend of a disjoint-region commit loop: occupancy is
/// routed straight to the region's own ledger shard (every candidate the
/// region ever commits lives strictly inside its tile — that is the
/// admission test of `assign_batch_disjoint`), and a conflict fallback is
/// recomputed *within the home tile only*.  A fallback at or beyond the tile
/// interior bound might be beaten by a worker of a neighbouring tile, which
/// this backend must not consult — the slot is dropped for this drain
/// instead and counted in [`DisjointDrainReport::deferred_slots`].
struct RegionBackend<'a> {
    index: &'a ShardedWorkerIndex,
    cost_model: &'a (dyn CostModel + Sync),
    ledger: &'a ShardedLedger,
    /// The spatial shard (== tile) this region owns.
    shard: usize,
    /// Conflict fallbacks discarded because they fell outside the tile
    /// interior bound.
    deferred: usize,
}

impl CommitBackend for RegionBackend<'_> {
    fn is_occupied(&self, planned: &CandidateAssignment) -> bool {
        self.ledger
            .is_occupied(self.shard, planned.slot, planned.worker)
    }

    fn occupy(&mut self, planned: &CandidateAssignment) {
        debug_assert_eq!(
            self.index.spatial_shard_of(&planned.worker_location),
            self.shard,
            "a disjoint region may only commit workers of its own tile",
        );
        self.ledger.occupy(self.shard, planned.slot, planned.worker);
    }

    fn refresh_conflict_slot(
        &mut self,
        state: &mut TaskState,
        slot: SlotIndex,
        stats: &mut CacheStats,
    ) {
        let query = &state.task.location;
        let relaxed = self.index.tile_interior_bound(query) * (1.0 - INTERIOR_SLACK);
        let shard = self.shard;
        let ledger = self.ledger;
        let nearest = self.index.nearest_in_home_tile(slot, query, |worker| {
            ledger.is_occupied(shard, slot, worker)
        });
        let candidate = match nearest {
            Some(n) if n.distance < relaxed => {
                let cost = self.cost_model.assignment_cost_at(
                    &state.task.subtask(slot),
                    n.worker,
                    n.location,
                );
                Some(CandidateAssignment {
                    slot,
                    worker: n.worker,
                    worker_location: n.location,
                    cost,
                    reliability: n.reliability,
                })
            }
            Some(_) => {
                // The in-tile fallback might lose to a neighbouring tile's
                // worker; without cross-tile visibility the slot is deferred.
                self.deferred += 1;
                None
            }
            None => None,
        };
        state.set_candidate(slot, candidate);
        stats.count_conflict_refresh();
    }
}

/// What the last [`ConcurrentAssignmentEngine::drain_parallel`] did when the
/// disjoint-region overlap was eligible (V2 accounting, MSQM objective,
/// more than one spatial shard).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DisjointDrainReport {
    /// Interior regions whose commit loops ran overlapped (one per tile that
    /// owned at least one interior task).
    pub regions_used: usize,
    /// Tasks admitted to an interior region: every candidate of every slot
    /// strictly inside the task's home tile.
    pub interior_tasks: usize,
    /// Tasks left to the serial reconciliation pass (a candidate ring
    /// touches or crosses a tile edge).
    pub boundary_tasks: usize,
    /// Conflict fallbacks interior regions dropped because the replacement
    /// fell outside the tile interior bound.
    pub deferred_slots: usize,
    /// Selection-time conflicts charged by the serial boundary pass.
    pub boundary_conflicts: usize,
}

/// Long-lived concurrent assignment engine over a sharded index: per-shard
/// ledgers and candidate caches, parallel checkout/candidate phases, serial
/// deterministic commit loop.  See the [module docs](self) for the shard
/// routing and the bit-identity argument.
pub struct ConcurrentAssignmentEngine<'a, R: Recorder = NoopRecorder> {
    index: ShardedWorkerIndex,
    cost_model: &'a (dyn CostModel + Sync),
    config: MultiTaskConfig,
    ledger: ShardedLedger,
    caches: Vec<Mutex<CandidateCache>>,
    pending: Vec<Task>,
    threads: usize,
    lifetime_stats: CacheStats,
    last_disjoint: Option<DisjointDrainReport>,
    churn: ChurnCounters,
    /// Event recorder (statically dispatched; `NoopRecorder` by default
    /// keeps the un-instrumented hot paths free of any recording code).
    obs: R,
}

impl<'a> ConcurrentAssignmentEngine<'a> {
    /// An engine owning a sharded index, running its parallel phases on
    /// `threads` worker threads (1 = fully serial, still shard-partitioned).
    pub fn new(
        index: ShardedWorkerIndex,
        cost_model: &'a (dyn CostModel + Sync),
        config: MultiTaskConfig,
        threads: usize,
    ) -> Self {
        let num_shards = index.num_spatial_shards();
        Self {
            index,
            cost_model,
            config,
            ledger: ShardedLedger::new(num_shards),
            caches: (0..num_shards)
                .map(|_| Mutex::new(CandidateCache::new()))
                .collect(),
            pending: Vec::new(),
            threads: threads.max(1),
            lifetime_stats: CacheStats::default(),
            last_disjoint: None,
            churn: ChurnCounters::default(),
            obs: NoopRecorder,
        }
    }
}

impl<'a, R: Recorder> ConcurrentAssignmentEngine<'a, R> {
    /// Rebinds the engine to a different recorder (typically from the
    /// `NoopRecorder` default to a live `&ObsSession`), carrying over the
    /// ledger, the shard caches and the lifetime counters unchanged.
    pub fn with_recorder<R2: Recorder>(self, obs: R2) -> ConcurrentAssignmentEngine<'a, R2> {
        ConcurrentAssignmentEngine {
            index: self.index,
            cost_model: self.cost_model,
            config: self.config,
            ledger: self.ledger,
            caches: self.caches,
            pending: self.pending,
            threads: self.threads,
            lifetime_stats: self.lifetime_stats,
            last_disjoint: self.last_disjoint,
            churn: self.churn,
            obs,
        }
    }

    /// The engine's sharded worker index.
    pub fn index(&self) -> &ShardedWorkerIndex {
        &self.index
    }

    /// The engine's configuration.
    pub fn config(&self) -> &MultiTaskConfig {
        &self.config
    }

    /// The configured degree of parallelism.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Changes the degree of parallelism (results never depend on it).
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// Overrides the budget used by subsequent solves.
    pub fn set_budget(&mut self, budget: f64) {
        self.config.budget = budget;
    }

    /// The sharded occupancy ledger.
    pub fn ledger(&self) -> &ShardedLedger {
        &self.ledger
    }

    /// Number of tasks cached across all shard caches.
    pub fn cached_tasks(&self) -> usize {
        self.caches
            .iter()
            .map(|c| c.lock().expect("shard cache lock poisoned").len())
            .sum()
    }

    /// Bounds every shard cache to `capacity` tasks (LRU per shard; `None`
    /// removes the bound).
    pub fn set_cache_capacity(&mut self, capacity: Option<usize>) {
        for cache in &self.caches {
            cache
                .lock()
                .expect("shard cache lock poisoned")
                .set_capacity(capacity);
        }
    }

    /// Accumulated candidate-computation counters over the engine's lifetime.
    pub fn stats(&self) -> CacheStats {
        self.lifetime_stats
    }

    /// Releases every occupancy commitment while keeping the shard caches
    /// warm.
    pub fn release_all(&mut self) {
        self.ledger.clear();
    }

    /// Inserts a worker into the sharded index (an offline worker coming
    /// online): a tile-local bucket splice, followed by worker-scoped
    /// invalidation across every shard cache (a task homed in tile A may
    /// hold a candidate of tile B).  Rejected and a no-op for a duplicate id.
    pub fn insert_worker(&mut self, worker: &Worker) -> IndexMutation {
        let mutation = self.index.insert_worker(worker);
        if mutation.applied {
            let profile = self
                .index
                .worker_profile(worker.id)
                .expect("the worker was just inserted");
            let refreshed = self.invalidate_caches(|cache| {
                cache.invalidate_inserted(worker.id, &profile, &self.index, self.cost_model)
            });
            self.churn.note(&mutation, refreshed);
        }
        mutation
    }

    /// Removes a worker (going offline): its ledger commitments are released
    /// from the shards owning its in-horizon locations, and the holder tasks
    /// of every shard cache refresh their affected slots.  Rejected and a
    /// no-op for an unknown id.
    pub fn remove_worker(&mut self, id: WorkerId) -> IndexMutation {
        let profile = self.index.worker_profile(id);
        let mutation = self.index.remove_worker(id);
        if mutation.applied {
            if let Some(profile) = &profile {
                for (slot, loc) in &profile.entries {
                    let shard = self.index.spatial_shard_of(loc);
                    self.ledger.release(shard, *slot, id);
                }
            }
            let refreshed = self.invalidate_caches(|cache| {
                cache.invalidate_removed(id, &self.index, self.cost_model)
            });
            self.churn.note(&mutation, refreshed);
        }
        mutation
    }

    /// Moves a worker: the index splices only the affected tile buckets, the
    /// shard caches refresh only the slots the move can change, and — unlike
    /// the dense engine, whose ledger is location-blind — any ledger
    /// commitment of the worker **migrates** to the shard owning its new
    /// location when the move crossed a tile, keeping the
    /// shard-owns-its-workers'-occupancy routing invariant intact.  Rejected
    /// and a no-op for an unknown id.
    pub fn move_worker(&mut self, id: WorkerId, to: Location) -> IndexMutation {
        let before = self.index.worker_profile(id);
        let mutation = self.index.move_worker(id, to);
        if mutation.applied {
            let after = self
                .index
                .worker_profile(id)
                .expect("a moved worker stays registered");
            let before = before.expect("the move applied, so the worker was registered");
            for ((slot, old_loc), (slot_after, new_loc)) in
                before.entries.iter().zip(&after.entries)
            {
                debug_assert_eq!(slot, slot_after, "a move never changes the slot set");
                let old_shard = self.index.spatial_shard_of(old_loc);
                let new_shard = self.index.spatial_shard_of(new_loc);
                if old_shard != new_shard && self.ledger.release(old_shard, *slot, id) {
                    self.ledger.occupy(new_shard, *slot, id);
                }
            }
            let refreshed = self.invalidate_caches(|cache| {
                cache.invalidate_moved(id, &after, &self.index, self.cost_model)
            });
            self.churn.note(&mutation, refreshed);
        }
        mutation
    }

    /// Runs a worker-scoped invalidation over every shard cache, summing the
    /// slot refreshes.
    fn invalidate_caches(&self, mut invalidate: impl FnMut(&mut CandidateCache) -> usize) -> usize {
        self.caches
            .iter()
            .map(|cache| invalidate(&mut cache.lock().expect("shard cache lock poisoned")))
            .sum()
    }

    /// Swaps in a freshly built sharded index — the rebuild-per-drain
    /// baseline the mutation API above replaces.  The shard caches come back
    /// cold (sized to the new grid), and every surviving ledger commitment is
    /// re-routed through the new index's registry: a commitment is kept iff
    /// the new index holds its worker at its slot, and it lands in the shard
    /// owning the worker's (possibly new) location.
    pub fn rebuild_index(&mut self, index: ShardedWorkerIndex) {
        let commitments = self.ledger.commitments();
        let cache_capacity = self
            .caches
            .first()
            .and_then(|c| c.lock().expect("shard cache lock poisoned").capacity());
        self.index = index;
        let num_shards = self.index.num_spatial_shards();
        self.ledger = ShardedLedger::new(num_shards);
        self.caches = (0..num_shards)
            .map(|_| {
                let mut cache = CandidateCache::new();
                cache.set_capacity(cache_capacity);
                Mutex::new(cache)
            })
            .collect();
        for (_, slot, worker) in commitments {
            let Some(profile) = self.index.worker_profile(worker) else {
                continue;
            };
            let Some((_, loc)) = profile.entries.iter().find(|(s, _)| *s == slot) else {
                continue;
            };
            let shard = self.index.spatial_shard_of(loc);
            self.ledger.occupy(shard, slot, worker);
        }
    }

    /// The index-churn counters accumulated since the last drain.
    pub fn churn(&self) -> ChurnCounters {
        self.churn
    }

    /// Queues task arrivals for the next
    /// [`ConcurrentAssignmentEngine::drain_parallel`].
    pub fn submit(&mut self, tasks: impl IntoIterator<Item = Task>) {
        self.pending.extend(tasks);
    }

    /// Number of submitted-but-not-yet-drained tasks.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// What the last [`ConcurrentAssignmentEngine::drain_parallel`] did with
    /// the disjoint-region overlap, or `None` when the last drain was not
    /// eligible for it (V1 accounting, MMQM objective or a single-shard
    /// grid) or no drain ran yet.
    pub fn last_drain_report(&self) -> Option<DisjointDrainReport> {
        self.last_disjoint
    }

    /// Solves every pending task as one parallel batch (in submission order)
    /// and commits the occupancy; like [`super::AssignmentEngine::drain`],
    /// the one-shot arrivals are evicted from their home-shard caches
    /// afterwards and the caches' arrival-round clocks advance.
    ///
    /// Under [`ConflictAccounting::V2`] with [`Objective::SumQuality`] on a
    /// grid with more than one spatial shard, the commit phase itself runs
    /// region-overlapped: tasks whose entire candidate ring sits strictly
    /// inside their home tile commit through per-tile CELF loops in
    /// parallel, and only the boundary tasks go through the serial
    /// reconciliation pass (see [`DisjointDrainReport`]).  The outcome is
    /// independent of the thread count but — unlike
    /// [`ConcurrentAssignmentEngine::assign_batch_parallel`] — *not*
    /// bit-identical to the serial engine: the budget is pre-split across
    /// regions proportionally to their task counts (the same concession the
    /// group-parallel solver makes), with every region's unspent remainder
    /// handed to the boundary pass.
    pub fn drain_parallel(&mut self, objective: Objective) -> MultiOutcome {
        let tasks = std::mem::take(&mut self.pending);
        if R::IS_ENABLED {
            self.obs.begin("cengine.drain", tasks.len() as u64);
        }
        let sw = R::IS_ENABLED.then(Stopwatch::start);
        let disjoint_eligible = self.config.accounting == ConflictAccounting::V2
            && matches!(objective, Objective::SumQuality)
            && self.index.num_spatial_shards() > 1
            && !tasks.is_empty();
        let outcome = if disjoint_eligible {
            self.assign_batch_disjoint(&tasks)
        } else {
            self.last_disjoint = None;
            self.assign_batch_parallel(&tasks, objective)
        };
        for task in &tasks {
            let shard = self.index.spatial_shard_of(&task.location);
            self.caches[shard]
                .lock()
                .expect("shard cache lock poisoned")
                .evict(task.id);
        }
        for cache in &self.caches {
            cache
                .lock()
                .expect("shard cache lock poisoned")
                .advance_round();
        }
        if R::IS_ENABLED {
            if let Some(sw) = sw {
                self.obs.value("cengine.drain_ns", sw.elapsed_nanos());
            }
            self.publish_metrics(&outcome);
            let imbalance = self.index.occupancy_imbalance_milli();
            self.churn.publish_and_reset(&self.obs, imbalance);
            self.obs.end("cengine.drain", tasks.len() as u64);
        } else {
            self.churn = ChurnCounters::default();
        }
        outcome
    }

    /// Publishes a finished drain/batch's counters into the recorder's
    /// metrics registry (cache hit/miss, conflict/execution totals, and the
    /// disjoint-region report when the overlapped path ran).
    fn publish_metrics(&self, outcome: &MultiOutcome) {
        self.obs
            .counter("cache.hits", outcome.stats.tasks_reused as u64);
        self.obs
            .counter("cache.misses", outcome.stats.tasks_computed as u64);
        self.obs
            .counter("cengine.conflicts", outcome.conflicts as u64);
        self.obs
            .counter("cengine.executions", outcome.executions as u64);
        if let Some(report) = self.last_disjoint {
            self.obs
                .counter("router.regions_used", report.regions_used as u64);
            self.obs
                .counter("router.interior_tasks", report.interior_tasks as u64);
            self.obs
                .counter("router.boundary_tasks", report.boundary_tasks as u64);
            self.obs
                .counter("router.deferred_slots", report.deferred_slots as u64);
        }
    }

    /// Solves one task batch under the configured budget and objective,
    /// running checkout and candidate waves region-parallel across shards.
    /// Bit-identical to [`super::AssignmentEngine::assign_batch`] on the same
    /// engine history, for any shard grid and any thread count.
    pub fn assign_batch_parallel(&mut self, tasks: &[Task], objective: Objective) -> MultiOutcome {
        let outcome = match objective {
            Objective::SumQuality => self.run_msqm_parallel(tasks),
            Objective::MinQuality => self.run_mmqm_parallel(tasks),
        };
        self.lifetime_stats.merge(&outcome.stats);
        outcome
    }

    /// The region-overlapped MSQM commit phase of a V2 drain: interior tasks
    /// commit through per-tile CELF loops running in parallel (each against
    /// its own ledger shard only), boundary tasks through one serial CELF
    /// pass over the full sharded backend afterwards.
    ///
    /// Thread-count invariance holds by construction: each interior region's
    /// loop is a deterministic function of its own task group, its budget
    /// share and its own ledger shard (which no other region touches), the
    /// budget shares are fixed up front, the unspent remainders are summed
    /// in shard order, and the boundary pass starts only after every region
    /// joined.
    fn assign_batch_disjoint(&mut self, tasks: &[Task]) -> MultiOutcome {
        let mut stats = CacheStats::default();
        let states = self.checkout_states_parallel(tasks, &mut stats);

        // Admission test: a task joins its home tile's region iff every slot
        // candidate sits strictly inside the tile (relaxed bound, so a
        // within-one-ulp-of-the-edge candidate conservatively demotes the
        // task to the boundary pass).  A non-positive bound (task clamped in
        // from outside the domain, or a degenerate tile) is never interior.
        let mut interior: Vec<Vec<(usize, TaskState)>> = (0..self.index.num_spatial_shards())
            .map(|_| Vec::new())
            .collect();
        let mut boundary: Vec<(usize, TaskState)> = Vec::new();
        for (i, state) in states.into_iter().enumerate() {
            let relaxed =
                self.index.tile_interior_bound(&state.task.location) * (1.0 - INTERIOR_SLACK);
            let inside = relaxed > 0.0
                && (0..state.candidates.len()).all(|slot| {
                    state.candidates.get(slot).map_or(true, |c| {
                        state.task.location.distance(&c.worker_location) < relaxed
                    })
                });
            if inside {
                let shard = self.index.spatial_shard_of(&state.task.location);
                interior[shard].push((i, state));
            } else {
                boundary.push((i, state));
            }
        }

        // Fixed proportional budget split (the group-parallel precedent):
        // every region gets `budget * |region| / |batch|`, the boundary pass
        // gets the rest plus whatever the regions leave unspent.
        // One interior region's commit job: (shard, [(batch index, task
        // state)], proportional budget share).
        type RegionJob = (usize, Vec<(usize, TaskState)>, f64);
        let total = tasks.len() as f64;
        let jobs: Vec<RegionJob> = interior
            .into_iter()
            .enumerate()
            .filter(|(_, group)| !group.is_empty())
            .map(|(shard, group)| {
                let share = self.config.budget * group.len() as f64 / total;
                (shard, group, share)
            })
            .collect();
        let interior_total: f64 = jobs.iter().map(|(_, _, share)| share).sum();
        let mut report = DisjointDrainReport {
            regions_used: jobs.len(),
            interior_tasks: jobs.iter().map(|(_, g, _)| g.len()).sum(),
            boundary_tasks: boundary.len(),
            deferred_slots: 0,
            boundary_conflicts: 0,
        };

        struct RegionResult {
            plans: Vec<(usize, AssignmentPlan)>,
            conflicts: usize,
            executions: usize,
            stats: CacheStats,
            unspent: f64,
            deferred: usize,
        }

        let index = &self.index;
        let cost_model = self.cost_model;
        let ledger = &self.ledger;
        let num_jobs = jobs.len();
        let job_cells: Vec<Mutex<Option<RegionJob>>> =
            jobs.into_iter().map(|job| Mutex::new(Some(job))).collect();
        let workers = self.threads.min(num_jobs).max(1);
        let next_job = AtomicUsize::new(0);
        type WorkerYield = (Vec<(usize, RegionResult)>, Option<tcsc_obs::ThreadBuffer>);
        let collected: Vec<WorkerYield> = thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let job_cells = &job_cells;
                    let next_job = &next_job;
                    // Per-thread span buffer (buffer tid 0 is the session
                    // owner, so worker w records as tid w + 1); drained back
                    // into the session after the join.
                    let mut buf = self.obs.thread_buffer(w as u32 + 1);
                    scope.spawn(move || {
                        let mut out: Vec<(usize, RegionResult)> = Vec::new();
                        loop {
                            let j = next_job.fetch_add(1, Ordering::Relaxed);
                            let Some(cell) = job_cells.get(j) else {
                                break;
                            };
                            let (shard, group, share) = cell
                                .lock()
                                .expect("region job cell poisoned")
                                .take()
                                .expect("every region job is taken exactly once");
                            if let Some(b) = buf.as_mut() {
                                b.begin("cengine.region_drain", shard as u64);
                            }
                            let (orig, mut states): (Vec<usize>, Vec<TaskState>) =
                                group.into_iter().unzip();
                            let mut local_stats = CacheStats::default();
                            let mut backend = RegionBackend {
                                index,
                                cost_model,
                                ledger,
                                shard,
                                deferred: 0,
                            };
                            let (conflicts, executions) = msqm_commit_loop_celf(
                                &mut states,
                                share,
                                &mut backend,
                                &mut local_stats,
                                &mut inline_wave,
                            );
                            let mut spent = 0.0;
                            let plans: Vec<(usize, AssignmentPlan)> = orig
                                .into_iter()
                                .zip(states)
                                .map(|(i, state)| {
                                    let plan = state.into_plan();
                                    spent += plan.executions.iter().map(|e| e.cost).sum::<f64>();
                                    (i, plan)
                                })
                                .collect();
                            if let Some(b) = buf.as_mut() {
                                b.end("cengine.region_drain", shard as u64);
                            }
                            out.push((
                                j,
                                RegionResult {
                                    plans,
                                    conflicts,
                                    executions,
                                    stats: local_stats,
                                    unspent: share - spent,
                                    deferred: backend.deferred,
                                },
                            ));
                        }
                        (out, buf)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("region commit thread panicked"))
                .collect()
        });

        // Reassemble in job (== shard) order so the float sums below are
        // independent of which thread ran which region.
        let mut results: Vec<Option<RegionResult>> = Vec::new();
        results.resize_with(num_jobs, || None);
        for (chunk, buf) in collected {
            if let Some(buf) = buf {
                self.obs.absorb_events(buf.into_events());
            }
            for (j, result) in chunk {
                results[j] = Some(result);
            }
        }
        let mut plans: Vec<Option<AssignmentPlan>> = Vec::new();
        plans.resize_with(tasks.len(), || None);
        let mut conflicts = 0usize;
        let mut executions = 0usize;
        let mut unspent = 0.0f64;
        for result in results.into_iter().map(|r| r.expect("region job ran")) {
            conflicts += result.conflicts;
            executions += result.executions;
            unspent += result.unspent;
            report.deferred_slots += result.deferred;
            stats.merge(&result.stats);
            for (i, plan) in result.plans {
                plans[i] = Some(plan);
            }
        }

        // Serial reconciliation: the boundary tasks commit against the full
        // sharded backend, seeing every interior commitment.  Their cached
        // candidates may have been taken by an interior region — V2's
        // selection-time conflict path resolves exactly those.
        if !boundary.is_empty() {
            let boundary_budget = (self.config.budget - interior_total) + unspent;
            if R::IS_ENABLED {
                self.obs
                    .begin("cengine.boundary_pass", boundary.len() as u64);
            }
            let (orig, mut states): (Vec<usize>, Vec<TaskState>) = boundary.into_iter().unzip();
            let mut backend = ShardedBackend {
                index: &self.index,
                cost_model: self.cost_model,
                ledger: &self.ledger,
            };
            let threads = self.threads;
            let mut wave = |states: &mut [TaskState], invalidated: &[usize], remaining: f64| {
                candidate_wave(threads, states, invalidated, remaining)
            };
            let (b_conflicts, b_executions) = msqm_commit_loop_celf(
                &mut states,
                boundary_budget,
                &mut backend,
                &mut stats,
                &mut wave,
            );
            report.boundary_conflicts = b_conflicts;
            conflicts += b_conflicts;
            executions += b_executions;
            for (i, state) in orig.into_iter().zip(states) {
                plans[i] = Some(state.into_plan());
            }
            if R::IS_ENABLED {
                self.obs.end("cengine.boundary_pass", b_executions as u64);
            }
        }

        self.last_disjoint = Some(report);
        let assignment = MultiAssignment::new(
            plans
                .into_iter()
                .map(|p| p.expect("every task was committed by exactly one pass"))
                .collect(),
        );
        let outcome = MultiOutcome {
            assignment,
            conflicts,
            executions,
            stats,
        };
        self.lifetime_stats.merge(&outcome.stats);
        outcome
    }

    /// Parallel checkout: tasks grouped by home shard, shard groups pulled by
    /// the worker threads, candidates served from the shard's cache and
    /// reconciled against a read snapshot of the sharded ledger.  Returns the
    /// states in batch order with the merged cache counters.
    fn checkout_states_parallel(
        &mut self,
        tasks: &[Task],
        stats: &mut CacheStats,
    ) -> Vec<TaskState> {
        // Group the batch by home shard, in shard order.
        let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); self.caches.len()];
        for (i, task) in tasks.iter().enumerate() {
            by_shard[self.index.spatial_shard_of(&task.location)].push(i);
        }
        let jobs: Vec<(usize, Vec<usize>)> = by_shard
            .into_iter()
            .enumerate()
            .filter(|(_, idxs)| !idxs.is_empty())
            .collect();
        if R::IS_ENABLED {
            // Shard-router accounting: distinct tiles this batch touched and
            // the tasks routed into them (counted here, at the phase
            // boundary, so the k-NN hot path stays atomics-free).
            self.obs.counter("router.tile_visits", jobs.len() as u64);
            self.obs.counter("router.tasks_routed", tasks.len() as u64);
        }

        let index = &self.index;
        let cost_model = self.cost_model;
        let config = self.config;
        let ledger = &self.ledger;
        let ledger_empty = self.ledger.is_empty();
        let caches = &self.caches;

        let mut states: Vec<Option<TaskState>> = Vec::new();
        states.resize_with(tasks.len(), || None);

        let workers = self.threads.min(jobs.len()).max(1);
        let next_job = AtomicUsize::new(0);
        let collected: Vec<(Vec<(usize, TaskState)>, CacheStats)> = thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let jobs = &jobs;
                    let next_job = &next_job;
                    scope.spawn(move || {
                        let guards = ledger.read_all();
                        let mut local_stats = CacheStats::default();
                        let mut out: Vec<(usize, TaskState)> = Vec::new();
                        loop {
                            let j = next_job.fetch_add(1, Ordering::Relaxed);
                            let Some((shard, idxs)) = jobs.get(j) else {
                                break;
                            };
                            let mut cache =
                                caches[*shard].lock().expect("shard cache lock poisoned");
                            for &i in idxs {
                                let task = &tasks[i];
                                let mut working =
                                    cache.checkout_base(task, index, cost_model, &mut local_stats);
                                if !ledger_empty {
                                    for slot in 0..working.len() {
                                        let occupied = working.get(slot).is_some_and(|c| {
                                            let owner = index.spatial_shard_of(&c.worker_location);
                                            guards[owner].is_occupied(slot, c.worker)
                                        });
                                        if occupied {
                                            working.set(
                                                slot,
                                                candidate_for_slot_sharded(
                                                    task, slot, index, cost_model, &guards,
                                                ),
                                            );
                                            local_stats.slot_computations += 1;
                                            local_stats.slot_refreshes += 1;
                                        }
                                    }
                                }
                                out.push((i, TaskState::from_candidates(task, working, &config)));
                            }
                        }
                        (out, local_stats)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("checkout worker thread panicked"))
                .collect()
        });
        for (chunk, local_stats) in collected {
            stats.merge(&local_stats);
            for (i, state) in chunk {
                states[i] = Some(state);
            }
        }
        states
            .into_iter()
            .map(|s| s.expect("every task was checked out by exactly one shard job"))
            .collect()
    }

    /// MSQM: the shared greedy commit loop over the sharded backend, with
    /// the checkout, the warm-start candidate wave and the budget-staleness
    /// waves running region-parallel.  Conflict resolution is the
    /// deterministic two-phase claim: granting a worker releases every claim
    /// registered on that `(shard, worker, slot)` (the holder map hands them
    /// over as a set) and the losers re-claim against the same post-commit
    /// ledger, so the result is independent of thread interleaving.
    fn run_msqm_parallel(&mut self, tasks: &[Task]) -> MultiOutcome {
        let mut stats = CacheStats::default();
        let mut states = self.checkout_states_parallel(tasks, &mut stats);
        let threads = self.threads;
        let mut backend = ShardedBackend {
            index: &self.index,
            cost_model: self.cost_model,
            ledger: &self.ledger,
        };
        let mut wave = |states: &mut [TaskState], invalidated: &[usize], remaining: f64| {
            candidate_wave(threads, states, invalidated, remaining)
        };
        let (conflicts, executions) = match self.config.accounting {
            ConflictAccounting::V1 => msqm_commit_loop(
                &mut states,
                self.config.budget,
                &mut backend,
                &mut stats,
                &mut wave,
            ),
            ConflictAccounting::V2 => msqm_commit_loop_celf(
                &mut states,
                self.config.budget,
                &mut backend,
                &mut stats,
                &mut wave,
            ),
        };

        let assignment =
            MultiAssignment::new(states.into_iter().map(TaskState::into_plan).collect());
        MultiOutcome {
            assignment,
            conflicts,
            executions,
            stats,
        }
    }

    /// MMQM: reinforce-the-weakest through the shared lazy-heap commit loop;
    /// the parallel phase is the checkout, the heap loop is inherently
    /// sequential.
    fn run_mmqm_parallel(&mut self, tasks: &[Task]) -> MultiOutcome {
        let mut stats = CacheStats::default();
        let mut states = self.checkout_states_parallel(tasks, &mut stats);
        let mut backend = ShardedBackend {
            index: &self.index,
            cost_model: self.cost_model,
            ledger: &self.ledger,
        };
        let (conflicts, executions) =
            mmqm_commit_loop(&mut states, self.config.budget, &mut backend, &mut stats);

        let assignment =
            MultiAssignment::new(states.into_iter().map(TaskState::into_plan).collect());
        MultiOutcome {
            assignment,
            conflicts,
            executions,
            stats,
        }
    }
}

/// Computes `best_candidate(remaining)` for every listed state, fanning the
/// searches out to a scoped thread pool when the wave is large enough.
/// Results come back in ascending task order; each is a pure function of the
/// task's own state and `remaining`, so inline and parallel execution
/// coincide.
fn candidate_wave(
    threads: usize,
    states: &mut [TaskState],
    invalidated: &[usize],
    remaining: f64,
) -> Vec<(usize, Option<TaskCandidate>)> {
    if threads == 1 || invalidated.len() < PARALLEL_WAVE_MIN {
        return inline_wave(states, invalidated, remaining);
    }
    let members: std::collections::BTreeSet<usize> = invalidated.iter().copied().collect();
    let mut refs: Vec<(usize, &mut TaskState)> = states
        .iter_mut()
        .enumerate()
        .filter(|(i, _)| members.contains(i))
        .collect();
    let chunk_size = refs.len().div_ceil(threads);
    thread::scope(|scope| {
        let handles: Vec<_> = refs
            .chunks_mut(chunk_size)
            .map(|chunk| {
                scope.spawn(move || {
                    chunk
                        .iter_mut()
                        .map(|(i, state)| (*i, state.best_candidate(remaining)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("candidate wave thread panicked"))
            .collect()
    })
}

impl<R: Recorder> std::fmt::Debug for ConcurrentAssignmentEngine<'_, R> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConcurrentAssignmentEngine")
            .field("config", &self.config)
            .field("shards", &self.caches.len())
            .field("threads", &self.threads)
            .field("ledger_commitments", &self.ledger.len())
            .field("cached_tasks", &self.cached_tasks())
            .field("pending", &self.pending.len())
            .field("lifetime_stats", &self.lifetime_stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::AssignmentEngine;
    use crate::multi::test_support::small_world;
    use tcsc_core::EuclideanCost;
    use tcsc_index::{ShardGridConfig, WorkerIndex};

    fn build(
        seed: u64,
        grid: ShardGridConfig,
    ) -> (
        Vec<tcsc_core::Task>,
        WorkerIndex,
        ShardedWorkerIndex,
        EuclideanCost,
    ) {
        let (tasks, workers, domain) = small_world(seed, 8, 20, 120);
        let dense = WorkerIndex::build(&workers, 20, &domain);
        let sharded = ShardedWorkerIndex::build(&workers, 20, &domain, grid);
        (tasks, dense, sharded, EuclideanCost::default())
    }

    #[test]
    fn matches_the_serial_engine_bit_for_bit() {
        for (seed, grid, threads) in [
            (90, ShardGridConfig::new(1, 1), 1),
            (91, ShardGridConfig::new(4, 4), 4),
            (92, ShardGridConfig::new(3, 5).with_time_splits(2), 8),
        ] {
            let (tasks, dense, sharded, cost) = build(seed, grid);
            let cfg = MultiTaskConfig::new(45.0);
            for objective in [Objective::SumQuality, Objective::MinQuality] {
                let serial =
                    AssignmentEngine::borrowed(&dense, &cost, cfg).assign_batch(&tasks, objective);
                let mut engine =
                    ConcurrentAssignmentEngine::new(sharded.clone(), &cost, cfg, threads);
                let parallel = engine.assign_batch_parallel(&tasks, objective);
                assert_eq!(serial.assignment, parallel.assignment, "{grid:?}");
                assert_eq!(serial.conflicts, parallel.conflicts);
                assert_eq!(serial.executions, parallel.executions);
                assert_eq!(serial.stats, parallel.stats);
                assert_eq!(engine.ledger().len(), parallel.executions);
            }
        }
    }

    #[test]
    fn thread_count_never_changes_the_outcome() {
        let (tasks, _, sharded, cost) = build(93, ShardGridConfig::new(4, 4));
        let cfg = MultiTaskConfig::new(60.0);
        let mut reference: Option<MultiOutcome> = None;
        for threads in [1, 2, 4, 16] {
            let mut engine = ConcurrentAssignmentEngine::new(sharded.clone(), &cost, cfg, threads);
            let outcome = engine.assign_batch_parallel(&tasks, Objective::SumQuality);
            match &reference {
                None => reference = Some(outcome),
                Some(r) => assert_eq!(r, &outcome, "threads={threads}"),
            }
        }
    }

    #[test]
    fn drains_persist_occupancy_and_evict_arrivals() {
        let (tasks, _, sharded, cost) = build(94, ShardGridConfig::new(2, 2));
        let mut engine =
            ConcurrentAssignmentEngine::new(sharded, &cost, MultiTaskConfig::new(100.0), 4);
        let (a, b) = tasks.split_at(4);
        engine.submit(a.to_vec());
        let round1 = engine.drain_parallel(Objective::SumQuality);
        assert_eq!(engine.cached_tasks(), 0, "drain must evict its arrivals");
        engine.submit(b.to_vec());
        let round2 = engine.drain_parallel(Objective::SumQuality);
        assert_eq!(engine.pending(), 0);
        let mut seen = std::collections::HashSet::new();
        for plan in round1
            .assignment
            .plans
            .iter()
            .chain(&round2.assignment.plans)
        {
            for exec in &plan.executions {
                assert!(
                    seen.insert((exec.slot, exec.worker)),
                    "worker {:?} double-booked at slot {} across rounds",
                    exec.worker,
                    exec.slot
                );
            }
        }
        assert_eq!(engine.ledger().len(), round1.executions + round2.executions);
    }

    #[test]
    fn v2_batches_match_the_serial_engine_bit_for_bit() {
        for (seed, grid, threads) in [
            (90, ShardGridConfig::new(1, 1), 1),
            (91, ShardGridConfig::new(4, 4), 4),
            (92, ShardGridConfig::new(3, 5).with_time_splits(2), 8),
        ] {
            let (tasks, dense, sharded, cost) = build(seed, grid);
            let cfg = MultiTaskConfig::new(45.0).with_accounting(ConflictAccounting::V2);
            let serial = AssignmentEngine::borrowed(&dense, &cost, cfg)
                .assign_batch(&tasks, Objective::SumQuality);
            let mut engine = ConcurrentAssignmentEngine::new(sharded, &cost, cfg, threads);
            let parallel = engine.assign_batch_parallel(&tasks, Objective::SumQuality);
            assert_eq!(serial.assignment, parallel.assignment, "{grid:?}");
            assert_eq!(serial.conflicts, parallel.conflicts);
            assert_eq!(serial.executions, parallel.executions);
            assert_eq!(serial.stats, parallel.stats);
        }
    }

    #[test]
    fn disjoint_drain_is_thread_invariant_and_overlaps_regions() {
        let (tasks, workers, domain) = small_world(96, 24, 12, 400);
        let sharded = ShardedWorkerIndex::build(&workers, 12, &domain, ShardGridConfig::new(2, 2));
        let cost = EuclideanCost::default();
        let cfg = MultiTaskConfig::new(80.0).with_accounting(ConflictAccounting::V2);
        let mut reference: Option<(MultiOutcome, DisjointDrainReport)> = None;
        for threads in [1, 2, 4, 8] {
            let mut engine = ConcurrentAssignmentEngine::new(sharded.clone(), &cost, cfg, threads);
            engine.submit(tasks.clone());
            let outcome = engine.drain_parallel(Objective::SumQuality);
            let report = engine
                .last_drain_report()
                .expect("a V2 multi-shard drain must record a disjoint report");
            assert_eq!(
                report.interior_tasks + report.boundary_tasks,
                tasks.len(),
                "every task goes through exactly one pass"
            );
            assert!(
                outcome.assignment.total_cost() <= cfg.budget + 1e-6,
                "split budgets must still respect the global budget"
            );
            match &reference {
                None => {
                    assert!(
                        report.regions_used >= 2,
                        "expected >=2 overlapped interior regions, got {report:?}"
                    );
                    reference = Some((outcome, report));
                }
                Some((r_outcome, r_report)) => {
                    assert_eq!(r_outcome, &outcome, "threads={threads}");
                    assert_eq!(r_report, &report, "threads={threads}");
                }
            }
        }
    }

    #[test]
    fn v1_drains_never_use_the_disjoint_path() {
        let (tasks, _, sharded, cost) = build(97, ShardGridConfig::new(4, 4));
        let mut engine =
            ConcurrentAssignmentEngine::new(sharded, &cost, MultiTaskConfig::new(45.0), 4);
        engine.submit(tasks);
        let _ = engine.drain_parallel(Objective::SumQuality);
        assert_eq!(engine.last_drain_report(), None);
    }

    #[test]
    fn mutations_keep_matching_the_serial_engine() {
        use tcsc_core::{Location, Worker, WorkerSlot};
        for (seed, grid, threads) in [
            (98u64, ShardGridConfig::new(3, 3), 4),
            (99, ShardGridConfig::new(2, 4).with_time_splits(2), 2),
        ] {
            let (tasks, dense, sharded, cost) = build(seed, grid);
            let cfg = MultiTaskConfig::new(55.0);
            let mut serial = AssignmentEngine::new(dense, &cost, cfg);
            let mut conc = ConcurrentAssignmentEngine::new(sharded, &cost, cfg, threads);
            let (b1, b2) = tasks.split_at(4);
            let s1 = serial.assign_batch(b1, Objective::SumQuality);
            let c1 = conc.assign_batch_parallel(b1, Objective::SumQuality);
            assert_eq!(s1.assignment, c1.assignment, "{grid:?}");

            // The same mutation tape on both engines: a fresh worker comes
            // online, a committed worker crosses the domain (ledger
            // migration on the sharded side), one goes offline.
            let fresh = Worker::new(
                WorkerId(9000),
                (0..20)
                    .map(|slot| WorkerSlot {
                        slot,
                        location: Location::new(52.0, 48.0),
                    })
                    .collect(),
            );
            let committed = s1
                .assignment
                .plans
                .iter()
                .flat_map(|p| &p.executions)
                .next()
                .expect("batch 1 committed something")
                .worker;
            for (ms, mc) in [
                (serial.insert_worker(&fresh), conc.insert_worker(&fresh)),
                (
                    serial.move_worker(committed, Location::new(97.0, 3.0)),
                    conc.move_worker(committed, Location::new(97.0, 3.0)),
                ),
                (
                    serial.remove_worker(WorkerId(17)),
                    conc.remove_worker(WorkerId(17)),
                ),
                (
                    serial.move_worker(WorkerId(5), Location::new(-10.0, 120.0)),
                    conc.move_worker(WorkerId(5), Location::new(-10.0, 120.0)),
                ),
            ] {
                assert!(ms.applied && mc.applied);
                assert_eq!(ms.applied, mc.applied);
            }
            assert_eq!(
                serial.ledger().len(),
                conc.ledger().len(),
                "dense and sharded ledgers must hold the same commitments"
            );

            let s2 = serial.assign_batch(b2, Objective::SumQuality);
            let c2 = conc.assign_batch_parallel(b2, Objective::SumQuality);
            assert_eq!(s2.assignment, c2.assignment, "{grid:?} after mutations");
            assert_eq!(s2.conflicts, c2.conflicts);
            assert_eq!(s2.executions, c2.executions);
        }
    }

    #[test]
    fn cross_tile_move_migrates_ledger_occupancy() {
        let (tasks, _, sharded, cost) = build(100, ShardGridConfig::new(4, 4));
        let mut engine =
            ConcurrentAssignmentEngine::new(sharded, &cost, MultiTaskConfig::new(80.0), 2);
        let outcome = engine.assign_batch_parallel(&tasks, Objective::SumQuality);
        let exec = *outcome
            .assignment
            .plans
            .iter()
            .flat_map(|p| &p.executions)
            .next()
            .expect("at least one execution");
        let before = engine.ledger().commitments();
        // Push the worker into the far corner: every one of its commitments
        // must land in the shard owning its new location.
        let to = tcsc_core::Location::new(99.5, 99.5);
        assert!(engine.move_worker(exec.worker, to).applied);
        let target = engine.index().spatial_shard_of(&to);
        let after = engine.ledger().commitments();
        assert_eq!(before.len(), after.len(), "migration never loses entries");
        for (shard, _, worker) in &after {
            if *worker == exec.worker {
                assert_eq!(*shard, target, "occupancy must follow the move");
            }
        }
        // And removal drops them entirely.
        assert!(engine.remove_worker(exec.worker).applied);
        assert!(engine
            .ledger()
            .commitments()
            .iter()
            .all(|(_, _, w)| *w != exec.worker));
    }

    #[test]
    fn release_all_frees_every_shard() {
        let (tasks, _, sharded, cost) = build(95, ShardGridConfig::new(3, 3));
        let mut engine =
            ConcurrentAssignmentEngine::new(sharded, &cost, MultiTaskConfig::new(30.0), 2);
        let first = engine.assign_batch_parallel(&tasks, Objective::SumQuality);
        assert!(!engine.ledger().is_empty());
        engine.release_all();
        assert!(engine.ledger().is_empty());
        let second = engine.assign_batch_parallel(&tasks, Objective::SumQuality);
        assert_eq!(first.assignment, second.assignment);
        assert_eq!(second.stats.tasks_reused, tasks.len());
    }
}
