//! The concurrent, region-parallel assignment engine.
//!
//! [`super::AssignmentEngine`] is single-threaded: one ledger, one candidate
//! cache, one thread.  [`ConcurrentAssignmentEngine`] partitions that state
//! along the spatial tiles of a [`ShardedWorkerIndex`]:
//!
//! * the **ledger** becomes a [`ShardedLedger`] — one `RwLock<WorkerLedger>`
//!   per tile, where a worker's occupancy at a slot is recorded in the shard
//!   owning the worker's *location* during that slot (the same routing
//!   function the sharded index uses, so an index probe of tile `t` only
//!   ever consults ledger shard `t`);
//! * the **candidate cache** becomes one `Mutex<CandidateCache>` per tile,
//!   with each task owned by its *home shard* (the tile of the task's
//!   location);
//! * the expensive phases — candidate checkout and the initial
//!   best-candidate computation of every task — run on a scoped thread pool,
//!   with worker threads pulling whole home-shard groups so tasks of
//!   disjoint regions never contend on a lock.
//!
//! # Determinism and bit-identity
//!
//! The commit loop (pick the globally best candidate, arbitrate conflicts,
//! subtract budget) is the exact serial greedy of the single-threaded
//! engine; only *pure computations* are parallelised:
//!
//! * checkout and refresh of a task's candidates depend on the task, the
//!   immutable index and the ledger state at a phase boundary — computing
//!   them on any thread gives the same result the serial engine computes
//!   inline;
//! * budget arithmetic happens only in the commit loop, in commit order, so
//!   every affordability comparison sees the exact `f64` the serial engine
//!   sees.
//!
//! Cross-shard candidates (a task in tile A whose nearest worker sits in
//! tile B) are resolved by a deterministic **two-phase claim**: when a
//! worker is granted, phase one *releases* every task registered on that
//! `(shard, worker, slot)` claim (the holder map hands them over as a set),
//! and phase two lets the losers *re-claim* replacement candidates in
//! ascending `(shard, worker, task)` order, each computed against the same
//! post-commit ledger state — so the outcome is independent of thread
//! interleaving.  The net result:
//! [`ConcurrentAssignmentEngine::assign_batch_parallel`] is **bit-identical**
//! (plans, conflicts, executions, cache counters) to
//! [`super::AssignmentEngine::assign_batch`] for every shard grid and every
//! thread count — locked in by `tests/concurrent_equivalence.rs` over the
//! seeded `ScenarioConfig` presets.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, RwLock, RwLockReadGuard};
use std::thread;

use tcsc_core::{CandidateAssignment, CostModel, MultiAssignment, SlotIndex, Task, WorkerId};
use tcsc_index::ShardedWorkerIndex;

use crate::candidates::WorkerLedger;
use crate::engine::commit::{inline_wave, mmqm_commit_loop, msqm_commit_loop, CommitBackend};
use crate::engine::{CacheStats, CandidateCache, Objective};
use crate::multi::{MultiOutcome, MultiTaskConfig, TaskCandidate, TaskState};

/// Minimum number of simultaneously invalidated tasks before an in-loop
/// candidate wave is dispatched to the thread pool; smaller waves (the common
/// 0–2 conflict losers) run inline, where thread spawn overhead would
/// dominate.
const PARALLEL_WAVE_MIN: usize = 8;

/// Worker occupancy partitioned by spatial shard behind per-shard locks.
///
/// A commitment `(slot, worker)` lives in the shard owning the worker's
/// location during that slot — [`ShardedWorkerIndex::spatial_shard_of`] is
/// the routing function, shared with the index itself, so ledger shard `t`
/// holds exactly the occupancy of the workers that index shard `t` stores.
#[derive(Debug)]
pub struct ShardedLedger {
    shards: Vec<RwLock<WorkerLedger>>,
}

impl ShardedLedger {
    /// An empty ledger over `num_shards` spatial shards.
    pub fn new(num_shards: usize) -> Self {
        Self {
            shards: (0..num_shards.max(1))
                .map(|_| RwLock::new(WorkerLedger::new()))
                .collect(),
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total number of (slot, worker) commitments across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("ledger shard lock poisoned").len())
            .sum()
    }

    /// Whether nothing is occupied anywhere.
    pub fn is_empty(&self) -> bool {
        self.shards
            .iter()
            .all(|s| s.read().expect("ledger shard lock poisoned").is_empty())
    }

    /// Marks a worker as occupied during a slot within a shard.  Returns
    /// `false` when the worker was already occupied there (a conflict).
    pub fn occupy(&self, shard: usize, slot: SlotIndex, worker: WorkerId) -> bool {
        self.shards[shard]
            .write()
            .expect("ledger shard lock poisoned")
            .occupy(slot, worker)
    }

    /// Whether a worker is occupied during a slot within a shard.
    pub fn is_occupied(&self, shard: usize, slot: SlotIndex, worker: WorkerId) -> bool {
        self.shards[shard]
            .read()
            .expect("ledger shard lock poisoned")
            .is_occupied(slot, worker)
    }

    /// Releases every commitment of every shard.
    pub fn clear(&mut self) {
        for shard in &mut self.shards {
            shard.get_mut().expect("ledger shard lock poisoned").clear();
        }
    }

    /// Read guards over every shard, for a bulk-synchronous read phase (each
    /// worker thread of a parallel phase holds its own set; `std` RwLock
    /// readers do not contend with each other).
    fn read_all(&self) -> Vec<RwLockReadGuard<'_, WorkerLedger>> {
        self.shards
            .iter()
            .map(|s| s.read().expect("ledger shard lock poisoned"))
            .collect()
    }
}

/// Computes a task's candidate for one slot against the sharded index and
/// the sharded ledger: the nearest worker whose owning shard does not record
/// it as occupied at the slot.  Pure function of `(task, slot, index, ledger
/// state)` — bit-identical to the dense `candidate_for_slot` over the
/// equivalent flat ledger.
fn candidate_for_slot_sharded(
    task: &Task,
    slot: SlotIndex,
    index: &ShardedWorkerIndex,
    cost_model: &dyn CostModel,
    ledger: &[RwLockReadGuard<'_, WorkerLedger>],
) -> Option<CandidateAssignment> {
    let nearest = index.nearest_excluding_with(slot, &task.location, |shard, worker| {
        ledger[shard].is_occupied(slot, worker)
    })?;
    let cost = cost_model.assignment_cost_at(&task.subtask(slot), nearest.worker, nearest.location);
    Some(CandidateAssignment {
        slot,
        worker: nearest.worker,
        worker_location: nearest.location,
        cost,
        reliability: nearest.reliability,
    })
}

/// The sharded-ledger backend of the shared commit loops: occupancy routed to
/// the shard owning the planned worker's location (the same routing function
/// the index uses), conflict refreshes computed against a read snapshot of
/// every shard.
struct ShardedBackend<'a> {
    index: &'a ShardedWorkerIndex,
    cost_model: &'a (dyn CostModel + Sync),
    ledger: &'a ShardedLedger,
}

impl CommitBackend for ShardedBackend<'_> {
    fn is_occupied(&self, planned: &CandidateAssignment) -> bool {
        let shard = self.index.spatial_shard_of(&planned.worker_location);
        self.ledger.is_occupied(shard, planned.slot, planned.worker)
    }

    fn occupy(&mut self, planned: &CandidateAssignment) {
        let shard = self.index.spatial_shard_of(&planned.worker_location);
        self.ledger.occupy(shard, planned.slot, planned.worker);
    }

    fn refresh_conflict_slot(
        &mut self,
        state: &mut TaskState,
        slot: SlotIndex,
        stats: &mut CacheStats,
    ) {
        let guards = self.ledger.read_all();
        let candidate =
            candidate_for_slot_sharded(&state.task, slot, self.index, self.cost_model, &guards);
        state.set_candidate(slot, candidate);
        stats.count_conflict_refresh();
    }
}

/// Long-lived concurrent assignment engine over a sharded index: per-shard
/// ledgers and candidate caches, parallel checkout/candidate phases, serial
/// deterministic commit loop.  See the [module docs](self) for the shard
/// routing and the bit-identity argument.
pub struct ConcurrentAssignmentEngine<'a> {
    index: ShardedWorkerIndex,
    cost_model: &'a (dyn CostModel + Sync),
    config: MultiTaskConfig,
    ledger: ShardedLedger,
    caches: Vec<Mutex<CandidateCache>>,
    pending: Vec<Task>,
    threads: usize,
    lifetime_stats: CacheStats,
}

impl<'a> ConcurrentAssignmentEngine<'a> {
    /// An engine owning a sharded index, running its parallel phases on
    /// `threads` worker threads (1 = fully serial, still shard-partitioned).
    pub fn new(
        index: ShardedWorkerIndex,
        cost_model: &'a (dyn CostModel + Sync),
        config: MultiTaskConfig,
        threads: usize,
    ) -> Self {
        let num_shards = index.num_spatial_shards();
        Self {
            index,
            cost_model,
            config,
            ledger: ShardedLedger::new(num_shards),
            caches: (0..num_shards)
                .map(|_| Mutex::new(CandidateCache::new()))
                .collect(),
            pending: Vec::new(),
            threads: threads.max(1),
            lifetime_stats: CacheStats::default(),
        }
    }

    /// The engine's sharded worker index.
    pub fn index(&self) -> &ShardedWorkerIndex {
        &self.index
    }

    /// The engine's configuration.
    pub fn config(&self) -> &MultiTaskConfig {
        &self.config
    }

    /// The configured degree of parallelism.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Changes the degree of parallelism (results never depend on it).
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// Overrides the budget used by subsequent solves.
    pub fn set_budget(&mut self, budget: f64) {
        self.config.budget = budget;
    }

    /// The sharded occupancy ledger.
    pub fn ledger(&self) -> &ShardedLedger {
        &self.ledger
    }

    /// Number of tasks cached across all shard caches.
    pub fn cached_tasks(&self) -> usize {
        self.caches
            .iter()
            .map(|c| c.lock().expect("shard cache lock poisoned").len())
            .sum()
    }

    /// Bounds every shard cache to `capacity` tasks (LRU per shard; `None`
    /// removes the bound).
    pub fn set_cache_capacity(&mut self, capacity: Option<usize>) {
        for cache in &self.caches {
            cache
                .lock()
                .expect("shard cache lock poisoned")
                .set_capacity(capacity);
        }
    }

    /// Accumulated candidate-computation counters over the engine's lifetime.
    pub fn stats(&self) -> CacheStats {
        self.lifetime_stats
    }

    /// Releases every occupancy commitment while keeping the shard caches
    /// warm.
    pub fn release_all(&mut self) {
        self.ledger.clear();
    }

    /// Queues task arrivals for the next
    /// [`ConcurrentAssignmentEngine::drain_parallel`].
    pub fn submit(&mut self, tasks: impl IntoIterator<Item = Task>) {
        self.pending.extend(tasks);
    }

    /// Number of submitted-but-not-yet-drained tasks.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Solves every pending task as one parallel batch (in submission order)
    /// and commits the occupancy; like [`super::AssignmentEngine::drain`],
    /// the one-shot arrivals are evicted from their home-shard caches
    /// afterwards and the caches' arrival-round clocks advance.
    pub fn drain_parallel(&mut self, objective: Objective) -> MultiOutcome {
        let tasks = std::mem::take(&mut self.pending);
        let outcome = self.assign_batch_parallel(&tasks, objective);
        for task in &tasks {
            let shard = self.index.spatial_shard_of(&task.location);
            self.caches[shard]
                .lock()
                .expect("shard cache lock poisoned")
                .evict(task.id);
        }
        for cache in &self.caches {
            cache
                .lock()
                .expect("shard cache lock poisoned")
                .advance_round();
        }
        outcome
    }

    /// Solves one task batch under the configured budget and objective,
    /// running checkout and candidate waves region-parallel across shards.
    /// Bit-identical to [`super::AssignmentEngine::assign_batch`] on the same
    /// engine history, for any shard grid and any thread count.
    pub fn assign_batch_parallel(&mut self, tasks: &[Task], objective: Objective) -> MultiOutcome {
        let outcome = match objective {
            Objective::SumQuality => self.run_msqm_parallel(tasks),
            Objective::MinQuality => self.run_mmqm_parallel(tasks),
        };
        self.lifetime_stats.merge(&outcome.stats);
        outcome
    }

    /// Parallel checkout: tasks grouped by home shard, shard groups pulled by
    /// the worker threads, candidates served from the shard's cache and
    /// reconciled against a read snapshot of the sharded ledger.  Returns the
    /// states in batch order with the merged cache counters.
    fn checkout_states_parallel(
        &mut self,
        tasks: &[Task],
        stats: &mut CacheStats,
    ) -> Vec<TaskState> {
        // Group the batch by home shard, in shard order.
        let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); self.caches.len()];
        for (i, task) in tasks.iter().enumerate() {
            by_shard[self.index.spatial_shard_of(&task.location)].push(i);
        }
        let jobs: Vec<(usize, Vec<usize>)> = by_shard
            .into_iter()
            .enumerate()
            .filter(|(_, idxs)| !idxs.is_empty())
            .collect();

        let index = &self.index;
        let cost_model = self.cost_model;
        let config = self.config;
        let ledger = &self.ledger;
        let ledger_empty = self.ledger.is_empty();
        let caches = &self.caches;

        let mut states: Vec<Option<TaskState>> = Vec::new();
        states.resize_with(tasks.len(), || None);

        let workers = self.threads.min(jobs.len()).max(1);
        let next_job = AtomicUsize::new(0);
        let collected: Vec<(Vec<(usize, TaskState)>, CacheStats)> = thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let jobs = &jobs;
                    let next_job = &next_job;
                    scope.spawn(move || {
                        let guards = ledger.read_all();
                        let mut local_stats = CacheStats::default();
                        let mut out: Vec<(usize, TaskState)> = Vec::new();
                        loop {
                            let j = next_job.fetch_add(1, Ordering::Relaxed);
                            let Some((shard, idxs)) = jobs.get(j) else {
                                break;
                            };
                            let mut cache =
                                caches[*shard].lock().expect("shard cache lock poisoned");
                            for &i in idxs {
                                let task = &tasks[i];
                                let mut working =
                                    cache.checkout_base(task, index, cost_model, &mut local_stats);
                                if !ledger_empty {
                                    for slot in 0..working.len() {
                                        let occupied = working.get(slot).is_some_and(|c| {
                                            let owner = index.spatial_shard_of(&c.worker_location);
                                            guards[owner].is_occupied(slot, c.worker)
                                        });
                                        if occupied {
                                            working.set(
                                                slot,
                                                candidate_for_slot_sharded(
                                                    task, slot, index, cost_model, &guards,
                                                ),
                                            );
                                            local_stats.slot_computations += 1;
                                            local_stats.slot_refreshes += 1;
                                        }
                                    }
                                }
                                out.push((i, TaskState::from_candidates(task, working, &config)));
                            }
                        }
                        (out, local_stats)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("checkout worker thread panicked"))
                .collect()
        });
        for (chunk, local_stats) in collected {
            stats.merge(&local_stats);
            for (i, state) in chunk {
                states[i] = Some(state);
            }
        }
        states
            .into_iter()
            .map(|s| s.expect("every task was checked out by exactly one shard job"))
            .collect()
    }

    /// MSQM: the shared greedy commit loop over the sharded backend, with
    /// the checkout, the warm-start candidate wave and the budget-staleness
    /// waves running region-parallel.  Conflict resolution is the
    /// deterministic two-phase claim: granting a worker releases every claim
    /// registered on that `(shard, worker, slot)` (the holder map hands them
    /// over as a set) and the losers re-claim against the same post-commit
    /// ledger, so the result is independent of thread interleaving.
    fn run_msqm_parallel(&mut self, tasks: &[Task]) -> MultiOutcome {
        let mut stats = CacheStats::default();
        let mut states = self.checkout_states_parallel(tasks, &mut stats);
        let threads = self.threads;
        let mut backend = ShardedBackend {
            index: &self.index,
            cost_model: self.cost_model,
            ledger: &self.ledger,
        };
        let mut wave = |states: &mut [TaskState], invalidated: &[usize], remaining: f64| {
            candidate_wave(threads, states, invalidated, remaining)
        };
        let (conflicts, executions) = msqm_commit_loop(
            &mut states,
            self.config.budget,
            &mut backend,
            &mut stats,
            &mut wave,
        );

        let assignment =
            MultiAssignment::new(states.into_iter().map(TaskState::into_plan).collect());
        MultiOutcome {
            assignment,
            conflicts,
            executions,
            stats,
        }
    }

    /// MMQM: reinforce-the-weakest through the shared lazy-heap commit loop;
    /// the parallel phase is the checkout, the heap loop is inherently
    /// sequential.
    fn run_mmqm_parallel(&mut self, tasks: &[Task]) -> MultiOutcome {
        let mut stats = CacheStats::default();
        let mut states = self.checkout_states_parallel(tasks, &mut stats);
        let mut backend = ShardedBackend {
            index: &self.index,
            cost_model: self.cost_model,
            ledger: &self.ledger,
        };
        let (conflicts, executions) =
            mmqm_commit_loop(&mut states, self.config.budget, &mut backend, &mut stats);

        let assignment =
            MultiAssignment::new(states.into_iter().map(TaskState::into_plan).collect());
        MultiOutcome {
            assignment,
            conflicts,
            executions,
            stats,
        }
    }
}

/// Computes `best_candidate(remaining)` for every listed state, fanning the
/// searches out to a scoped thread pool when the wave is large enough.
/// Results come back in ascending task order; each is a pure function of the
/// task's own state and `remaining`, so inline and parallel execution
/// coincide.
fn candidate_wave(
    threads: usize,
    states: &mut [TaskState],
    invalidated: &[usize],
    remaining: f64,
) -> Vec<(usize, Option<TaskCandidate>)> {
    if threads == 1 || invalidated.len() < PARALLEL_WAVE_MIN {
        return inline_wave(states, invalidated, remaining);
    }
    let members: std::collections::BTreeSet<usize> = invalidated.iter().copied().collect();
    let mut refs: Vec<(usize, &mut TaskState)> = states
        .iter_mut()
        .enumerate()
        .filter(|(i, _)| members.contains(i))
        .collect();
    let chunk_size = refs.len().div_ceil(threads);
    thread::scope(|scope| {
        let handles: Vec<_> = refs
            .chunks_mut(chunk_size)
            .map(|chunk| {
                scope.spawn(move || {
                    chunk
                        .iter_mut()
                        .map(|(i, state)| (*i, state.best_candidate(remaining)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("candidate wave thread panicked"))
            .collect()
    })
}

impl std::fmt::Debug for ConcurrentAssignmentEngine<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConcurrentAssignmentEngine")
            .field("config", &self.config)
            .field("shards", &self.caches.len())
            .field("threads", &self.threads)
            .field("ledger_commitments", &self.ledger.len())
            .field("cached_tasks", &self.cached_tasks())
            .field("pending", &self.pending.len())
            .field("lifetime_stats", &self.lifetime_stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::AssignmentEngine;
    use crate::multi::test_support::small_world;
    use tcsc_core::EuclideanCost;
    use tcsc_index::{ShardGridConfig, WorkerIndex};

    fn build(
        seed: u64,
        grid: ShardGridConfig,
    ) -> (
        Vec<tcsc_core::Task>,
        WorkerIndex,
        ShardedWorkerIndex,
        EuclideanCost,
    ) {
        let (tasks, workers, domain) = small_world(seed, 8, 20, 120);
        let dense = WorkerIndex::build(&workers, 20, &domain);
        let sharded = ShardedWorkerIndex::build(&workers, 20, &domain, grid);
        (tasks, dense, sharded, EuclideanCost::default())
    }

    #[test]
    fn matches_the_serial_engine_bit_for_bit() {
        for (seed, grid, threads) in [
            (90, ShardGridConfig::new(1, 1), 1),
            (91, ShardGridConfig::new(4, 4), 4),
            (92, ShardGridConfig::new(3, 5).with_time_splits(2), 8),
        ] {
            let (tasks, dense, sharded, cost) = build(seed, grid);
            let cfg = MultiTaskConfig::new(45.0);
            for objective in [Objective::SumQuality, Objective::MinQuality] {
                let serial =
                    AssignmentEngine::borrowed(&dense, &cost, cfg).assign_batch(&tasks, objective);
                let mut engine =
                    ConcurrentAssignmentEngine::new(sharded.clone(), &cost, cfg, threads);
                let parallel = engine.assign_batch_parallel(&tasks, objective);
                assert_eq!(serial.assignment, parallel.assignment, "{grid:?}");
                assert_eq!(serial.conflicts, parallel.conflicts);
                assert_eq!(serial.executions, parallel.executions);
                assert_eq!(serial.stats, parallel.stats);
                assert_eq!(engine.ledger().len(), parallel.executions);
            }
        }
    }

    #[test]
    fn thread_count_never_changes_the_outcome() {
        let (tasks, _, sharded, cost) = build(93, ShardGridConfig::new(4, 4));
        let cfg = MultiTaskConfig::new(60.0);
        let mut reference: Option<MultiOutcome> = None;
        for threads in [1, 2, 4, 16] {
            let mut engine = ConcurrentAssignmentEngine::new(sharded.clone(), &cost, cfg, threads);
            let outcome = engine.assign_batch_parallel(&tasks, Objective::SumQuality);
            match &reference {
                None => reference = Some(outcome),
                Some(r) => assert_eq!(r, &outcome, "threads={threads}"),
            }
        }
    }

    #[test]
    fn drains_persist_occupancy_and_evict_arrivals() {
        let (tasks, _, sharded, cost) = build(94, ShardGridConfig::new(2, 2));
        let mut engine =
            ConcurrentAssignmentEngine::new(sharded, &cost, MultiTaskConfig::new(100.0), 4);
        let (a, b) = tasks.split_at(4);
        engine.submit(a.to_vec());
        let round1 = engine.drain_parallel(Objective::SumQuality);
        assert_eq!(engine.cached_tasks(), 0, "drain must evict its arrivals");
        engine.submit(b.to_vec());
        let round2 = engine.drain_parallel(Objective::SumQuality);
        assert_eq!(engine.pending(), 0);
        let mut seen = std::collections::HashSet::new();
        for plan in round1
            .assignment
            .plans
            .iter()
            .chain(&round2.assignment.plans)
        {
            for exec in &plan.executions {
                assert!(
                    seen.insert((exec.slot, exec.worker)),
                    "worker {:?} double-booked at slot {} across rounds",
                    exec.worker,
                    exec.slot
                );
            }
        }
        assert_eq!(engine.ledger().len(), round1.executions + round2.executions);
    }

    #[test]
    fn release_all_frees_every_shard() {
        let (tasks, _, sharded, cost) = build(95, ShardGridConfig::new(3, 3));
        let mut engine =
            ConcurrentAssignmentEngine::new(sharded, &cost, MultiTaskConfig::new(30.0), 2);
        let first = engine.assign_batch_parallel(&tasks, Objective::SumQuality);
        assert!(!engine.ledger().is_empty());
        engine.release_all();
        assert!(engine.ledger().is_empty());
        let second = engine.assign_batch_parallel(&tasks, Objective::SumQuality);
        assert_eq!(first.assignment, second.assignment);
        assert_eq!(second.stats.tasks_reused, tasks.len());
    }
}
