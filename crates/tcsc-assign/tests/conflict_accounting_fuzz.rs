//! Differential fuzz: [`ConflictAccounting::V2`] (the cross-task CELF lazy
//! commit queue) against its in-tree oracle [`msqm_rebuild_v2`], and against
//! [`ConflictAccounting::V1`] — the same playbook that locks
//! `RefreshStrategy::Incremental` to its `Full` oracle in
//! `incremental_gain_fuzz.rs`.
//!
//! ≥300 seeded cases across the suites below.  The contracts under test:
//!
//! * **V2 engine ≡ V2 oracle, bit-for-bit** — the CELF loop's lazy
//!   upper-bound queue must commit exactly the plans, conflicts and
//!   executions of the straightforward selection-time-only greedy
//!   (`msqm_rebuild_v2` recomputes every stale candidate eagerly; the CELF
//!   loop re-scores only the entries whose bounds bind — the results must
//!   not differ in a single bit).
//! * **V1 plans ≡ V2 plans** — the two accounting versions walk the same
//!   greedy trajectory; only *when* a doomed candidate's conflict is
//!   discovered differs, which an eventually-selected candidate always
//!   resolves identically.  Conflict counts legitimately differ (V1 charges
//!   losers eagerly even when they never re-bind), so only plans and
//!   executions are compared.
//! * **V2 re-scores ≤ V1 re-scores** — the point of the lazy queue,
//!   measured by `CacheStats::commit_rescores`.
//! * **concurrent ≡ serial under V2** — the sharded backend changes the
//!   candidate routing, not the commit loop.
//! * **disjoint drains are thread-invariant** — the region-overlapped V2
//!   drain must produce one outcome (and one [`DisjointDrainReport`]) for
//!   every thread count.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use tcsc_assign::{
    msqm_rebuild, msqm_rebuild_v2, AssignmentEngine, ConcurrentAssignmentEngine,
    ConflictAccounting, MultiTaskConfig, Objective, RefreshStrategy,
};
use tcsc_core::{Domain, EuclideanCost, Task, WorkerPool};
use tcsc_index::{ShardGridConfig, ShardedWorkerIndex, WorkerIndex};
use tcsc_workload::{ScenarioConfig, SpatialDistribution, TaskPlacement};

/// A random small scenario (same envelope as `incremental_gain_fuzz.rs`),
/// returning the raw pool so both the dense and the sharded index can be
/// built from it.
fn random_instance(rng: &mut StdRng) -> (Vec<Task>, WorkerPool, Domain, f64, usize) {
    let num_tasks = rng.gen_range(3..=10);
    let num_slots = rng.gen_range(8..=32);
    let num_workers = rng.gen_range(30..=160);
    let budget = rng.gen_range(4.0..70.0);
    let placement = match rng.gen_range(0..3) {
        0 => SpatialDistribution::Uniform,
        1 => SpatialDistribution::Gaussian,
        _ => SpatialDistribution::zipf_default(),
    };
    let cfg = ScenarioConfig::small()
        .with_num_tasks(num_tasks)
        .with_num_slots(num_slots)
        .with_num_workers(num_workers)
        .with_placement(TaskPlacement::Synthetic(placement))
        .with_seed(rng.next_u64());
    let scenario = cfg.build();
    (
        scenario.tasks,
        scenario.workers,
        scenario.domain,
        budget,
        num_slots,
    )
}

fn random_config(rng: &mut StdRng, budget: f64) -> MultiTaskConfig {
    let refresh = if rng.gen_bool(0.5) {
        RefreshStrategy::Full
    } else {
        RefreshStrategy::Incremental
    };
    MultiTaskConfig::new(budget)
        .with_index(rng.gen_bool(0.7))
        .with_refresh(refresh)
}

#[test]
fn v2_engine_matches_the_v2_oracle_bit_for_bit() {
    let cost = EuclideanCost::default();
    let mut total_lazy_savings = 0usize;
    for seed in 0..140u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let (tasks, workers, domain, budget, num_slots) = random_instance(&mut rng);
        let index = WorkerIndex::build(&workers, num_slots, &domain);
        let cfg = random_config(&mut rng, budget);

        let oracle = msqm_rebuild_v2(&tasks, &index, &cost, &cfg);
        let celf =
            AssignmentEngine::borrowed(&index, &cost, cfg.with_accounting(ConflictAccounting::V2))
                .assign_batch(&tasks, Objective::SumQuality);

        assert_eq!(
            oracle.assignment, celf.assignment,
            "plans diverged from the V2 oracle, seed {seed}"
        );
        assert_eq!(
            oracle.conflicts, celf.conflicts,
            "conflicts diverged from the V2 oracle, seed {seed}"
        );
        assert_eq!(
            oracle.executions, celf.executions,
            "executions diverged from the V2 oracle, seed {seed}"
        );

        // V1 on the same instance: identical plans, lazier accounting.
        let v1 = AssignmentEngine::borrowed(&index, &cost, cfg)
            .assign_batch(&tasks, Objective::SumQuality);
        assert_eq!(
            v1.assignment, celf.assignment,
            "V1 and V2 plans diverged, seed {seed}"
        );
        assert_eq!(
            v1.executions, celf.executions,
            "V1 and V2 executions diverged, seed {seed}"
        );
        assert!(
            celf.stats.commit_rescores <= v1.stats.commit_rescores,
            "the lazy queue re-scored more than the eager loop, seed {seed}: \
             V2 {} vs V1 {}",
            celf.stats.commit_rescores,
            v1.stats.commit_rescores,
        );
        total_lazy_savings += v1.stats.commit_rescores - celf.stats.commit_rescores;

        // The V1 oracle must agree with V1's engine path on plans too (the
        // cross-check that keeps the two oracles describing one greedy).
        let v1_oracle = msqm_rebuild(&tasks, &index, &cost, &cfg);
        assert_eq!(v1_oracle.assignment, v1.assignment, "seed {seed}");
        assert_eq!(v1_oracle.conflicts, v1.conflicts, "seed {seed}");
    }
    assert!(
        total_lazy_savings > 0,
        "across the sweep V2 must actually skip eager re-scores"
    );
}

#[test]
fn v2_concurrent_batches_match_the_serial_engine() {
    let cost = EuclideanCost::default();
    for seed in 1000..1100u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let (tasks, workers, domain, budget, num_slots) = random_instance(&mut rng);
        let dense = WorkerIndex::build(&workers, num_slots, &domain);
        let grid = match rng.gen_range(0..4) {
            0 => ShardGridConfig::new(1, 1),
            1 => ShardGridConfig::new(2, 2),
            2 => ShardGridConfig::new(4, 3),
            _ => ShardGridConfig::new(3, 3).with_time_splits(2),
        };
        let sharded = ShardedWorkerIndex::build(&workers, num_slots, &domain, grid);
        let cfg = random_config(&mut rng, budget).with_accounting(ConflictAccounting::V2);
        let threads = rng.gen_range(1..=6);

        let serial = AssignmentEngine::borrowed(&dense, &cost, cfg)
            .assign_batch(&tasks, Objective::SumQuality);
        let mut engine = ConcurrentAssignmentEngine::new(sharded, &cost, cfg, threads);
        let parallel = engine.assign_batch_parallel(&tasks, Objective::SumQuality);

        assert_eq!(
            serial.assignment, parallel.assignment,
            "plans diverged, seed {seed}, threads {threads}"
        );
        assert_eq!(serial.conflicts, parallel.conflicts, "seed {seed}");
        assert_eq!(serial.executions, parallel.executions, "seed {seed}");
        assert_eq!(serial.stats, parallel.stats, "seed {seed}");
    }
}

#[test]
fn disjoint_drains_are_thread_invariant() {
    let cost = EuclideanCost::default();
    let mut overlapped_at_least_once = false;
    for seed in 2000..2080u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let (tasks, workers, domain, budget, num_slots) = random_instance(&mut rng);
        let grid = match rng.gen_range(0..3) {
            0 => ShardGridConfig::new(2, 2),
            1 => ShardGridConfig::new(3, 3),
            _ => ShardGridConfig::new(4, 2),
        };
        let sharded = ShardedWorkerIndex::build(&workers, num_slots, &domain, grid);
        let cfg = random_config(&mut rng, budget).with_accounting(ConflictAccounting::V2);

        let mut reference = None;
        for threads in [1, rng.gen_range(2..=8)] {
            let mut engine = ConcurrentAssignmentEngine::new(sharded.clone(), &cost, cfg, threads);
            engine.submit(tasks.clone());
            let outcome = engine.drain_parallel(Objective::SumQuality);
            let report = engine
                .last_drain_report()
                .expect("a V2 multi-shard drain records a report, seed {seed}");
            assert_eq!(
                report.interior_tasks + report.boundary_tasks,
                tasks.len(),
                "seed {seed}"
            );
            assert!(
                outcome.assignment.total_cost() <= budget + 1e-6,
                "budget violated, seed {seed}"
            );
            if report.regions_used >= 2 {
                overlapped_at_least_once = true;
            }
            match &reference {
                None => reference = Some((outcome, report)),
                Some((r_outcome, r_report)) => {
                    assert_eq!(r_outcome, &outcome, "seed {seed}, threads {threads}");
                    assert_eq!(r_report, &report, "seed {seed}, threads {threads}");
                }
            }
        }
    }
    assert!(
        overlapped_at_least_once,
        "no sweep instance ever produced >=2 overlapped regions"
    );
}
