//! Differential fuzz: [`RefreshStrategy::Full`] vs
//! [`RefreshStrategy::Incremental`] must commit **bit-identical** outcomes —
//! plans, conflicts, executions — over random scenarios, streaming drains and
//! optimistic rollbacks, while the incremental path performs zero full
//! best-candidate recomputes on the commit tail.
//!
//! ≥300 seeded cases across the four suites below.  Every case that fails
//! here is a case where the gain ledger's lazy-greedy pop (or its
//! patch/un-patch protocol) returned a different argmax than the full
//! search — the exact regression the `Full` oracle exists to catch.

// These suites pin the semantics of the deprecated free-function wrappers
// against the engines; they call the wrappers on purpose.
#![allow(deprecated)]

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use tcsc_assign::{
    msqm_serial, msqm_task_parallel_optimistic, AssignmentEngine, MasterCommand, MultiTaskConfig,
    Objective, RefreshStrategy, SlotCandidates, TaskOwner, TaskState, WorkerEvent,
};
use tcsc_core::{EuclideanCost, Task, WorkerId};
use tcsc_index::WorkerIndex;
use tcsc_workload::{ScenarioConfig, SpatialDistribution, TaskPlacement};

/// A random small scenario (uniform / gaussian / zipf placements only: exact
/// zero-distance candidates cannot occur, so the incremental path never needs
/// its zero-cost full-search fallback and `full_refreshes == 0` is exact).
fn random_instance(rng: &mut StdRng) -> (Vec<Task>, WorkerIndex, f64, usize) {
    let num_tasks = rng.gen_range(3..=10);
    let num_slots = rng.gen_range(8..=32);
    let num_workers = rng.gen_range(30..=160);
    let budget = rng.gen_range(4.0..70.0);
    let placement = match rng.gen_range(0..3) {
        0 => SpatialDistribution::Uniform,
        1 => SpatialDistribution::Gaussian,
        _ => SpatialDistribution::zipf_default(),
    };
    let cfg = ScenarioConfig::small()
        .with_num_tasks(num_tasks)
        .with_num_slots(num_slots)
        .with_num_workers(num_workers)
        .with_placement(TaskPlacement::Synthetic(placement))
        .with_seed(rng.next_u64());
    let scenario = cfg.build();
    let index = WorkerIndex::build(&scenario.workers, num_slots, &scenario.domain);
    (scenario.tasks, index, budget, num_slots)
}

fn configs(budget: f64, use_index: bool) -> (MultiTaskConfig, MultiTaskConfig) {
    let base = MultiTaskConfig::new(budget).with_index(use_index);
    (
        base.with_refresh(RefreshStrategy::Full),
        base.with_refresh(RefreshStrategy::Incremental),
    )
}

#[test]
fn batch_plans_are_bit_identical_across_strategies() {
    let cost = EuclideanCost::default();
    let mut total_stale_pops = 0usize;
    for seed in 0..110u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let (tasks, index, budget, _) = random_instance(&mut rng);
        let objective = if seed % 2 == 0 {
            Objective::SumQuality
        } else {
            Objective::MinQuality
        };
        // Every third case exercises the plain (non-V-tree) search.
        let (full_cfg, inc_cfg) = configs(budget, seed % 3 != 0);

        let full =
            AssignmentEngine::borrowed(&index, &cost, full_cfg).assign_batch(&tasks, objective);
        let inc =
            AssignmentEngine::borrowed(&index, &cost, inc_cfg).assign_batch(&tasks, objective);

        assert_eq!(
            full.assignment, inc.assignment,
            "plans diverged, seed {seed}"
        );
        assert_eq!(
            full.conflicts, inc.conflicts,
            "conflicts diverged, seed {seed}"
        );
        assert_eq!(
            full.executions, inc.executions,
            "executions diverged, seed {seed}"
        );
        // Directional refresh accounting: the incremental commit tail never
        // runs a full search; the full path runs one per commit-tail request.
        assert_eq!(
            inc.stats.full_refreshes, 0,
            "incremental path ran a full refresh, seed {seed}: {:?}",
            inc.stats
        );
        if inc.executions > 1 {
            assert!(
                full.stats.full_refreshes > 0,
                "full path should recompute on the commit tail, seed {seed}"
            );
        }
        if inc.conflicts > 0 {
            assert!(
                inc.stats.incremental_patches > 0,
                "conflict refreshes must patch the ledger, seed {seed}"
            );
        }
        total_stale_pops += inc.stats.stale_pops;
    }
    // Individual tight-budget runs may park everything without a single
    // re-score, but across the sweep the lazy-greedy pop must have done real
    // work.
    assert!(total_stale_pops > 0, "the ledger never re-scored anything");
}

#[test]
fn streaming_drains_are_bit_identical_across_strategies() {
    let cost = EuclideanCost::default();
    for seed in 1000..1060u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let (tasks, index, budget, _) = random_instance(&mut rng);
        let (full_cfg, inc_cfg) = configs(budget, true);
        let mut full_engine = AssignmentEngine::borrowed(&index, &cost, full_cfg);
        let mut inc_engine = AssignmentEngine::borrowed(&index, &cost, inc_cfg);

        let mut start = 0usize;
        let mut round = 0usize;
        while start < tasks.len() {
            let len = rng.gen_range(1..=3.min(tasks.len() - start));
            let chunk = &tasks[start..start + len];
            start += len;
            let objective = if rng.gen_bool(0.5) {
                Objective::SumQuality
            } else {
                Objective::MinQuality
            };
            full_engine.submit(chunk.to_vec());
            inc_engine.submit(chunk.to_vec());
            let full = full_engine.drain(objective);
            let inc = inc_engine.drain(objective);
            assert_eq!(
                full.assignment, inc.assignment,
                "round {round} plans diverged, seed {seed}"
            );
            assert_eq!(full.conflicts, inc.conflicts, "seed {seed}");
            assert_eq!(full.executions, inc.executions, "seed {seed}");
            assert_eq!(inc.stats.full_refreshes, 0, "seed {seed}");
            round += 1;
        }
    }
}

#[test]
fn optimistic_rollbacks_commit_bit_identical_plans() {
    // The optimistic master speculates and rolls back (UndoRefresh), so the
    // incremental states' ledgers are patched *and un-patched* mid-run; the
    // committed outcome must still equal the full-strategy run and the serial
    // greedy.
    let cost = EuclideanCost::default();
    for seed in 2000..2060u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let (tasks, index, budget, _) = random_instance(&mut rng);
        let (full_cfg, inc_cfg) = configs(budget, true);
        let threads = rng.gen_range(2..=4);

        let serial = msqm_serial(&tasks, &index, &cost, &inc_cfg);
        let full = msqm_task_parallel_optimistic(&tasks, &index, &cost, &full_cfg, threads, true);
        let inc = msqm_task_parallel_optimistic(&tasks, &index, &cost, &inc_cfg, threads, true);

        assert_eq!(
            full.committed, inc.committed,
            "committed diverged, seed {seed}"
        );
        assert_eq!(
            full.outcome.assignment, inc.outcome.assignment,
            "plans diverged, seed {seed}"
        );
        assert_eq!(full.outcome.conflicts, inc.outcome.conflicts, "seed {seed}");
        assert_eq!(
            serial.assignment, inc.outcome.assignment,
            "optimistic+incremental diverged from the serial greedy, seed {seed}"
        );
    }
}

#[test]
fn rollback_unpatch_restores_the_ledger_state() {
    // Owner-level differential fuzz: drive one Full and one Incremental
    // `TaskOwner` with the *same* random command tape — computes under
    // shrinking and (rollback-like) re-grown budgets, speculative refreshes,
    // LIFO undos, executions — and require every reply event to be identical.
    // This is the direct check that patch followed by un-patch leaves the
    // gain ledger answering exactly like a never-patched full search.
    let cost = EuclideanCost::default();
    for seed in 3000..3090u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = ScenarioConfig::small()
            .with_num_tasks(1)
            .with_num_slots(rng.gen_range(10..=40))
            .with_num_workers(rng.gen_range(40..=150))
            .with_seed(rng.next_u64());
        let scenario = cfg.build();
        let index = WorkerIndex::build(&scenario.workers, cfg.num_slots, &scenario.domain);
        let task = scenario.tasks[0].clone();
        let candidates = SlotCandidates::compute(&task, &index, &cost);

        let (full_cfg, inc_cfg) = configs(1000.0, rng.gen_bool(0.7));
        let mut full_owner = TaskOwner::new([(
            0,
            TaskState::from_candidates(&task, candidates.clone(), &full_cfg),
        )]);
        let mut inc_owner =
            TaskOwner::new([(0, TaskState::from_candidates(&task, candidates, &inc_cfg))]);

        let mut max_cost: f64 = rng.gen_range(5.0..50.0);
        let mut undo_stack: Vec<usize> = Vec::new();
        let mut last_best: Option<(usize, WorkerId)> = None;
        for step in 0..40 {
            let command = match rng.gen_range(0..10) {
                // Compute under a wandering budget: mostly shrinking, but
                // sometimes restored upward like an optimistic rollback —
                // that reactivates parked ledger entries.
                0..=3 => {
                    max_cost = if rng.gen_bool(0.25) {
                        max_cost * rng.gen_range(1.1..2.0)
                    } else {
                        max_cost * rng.gen_range(0.6..1.0)
                    };
                    MasterCommand::Compute {
                        task: 0,
                        version: step,
                        max_cost,
                    }
                }
                // Speculative refresh of a random slot with random occupancy.
                4..=6 => {
                    let slot = rng.gen_range(0..task.num_slots);
                    let occupied: Vec<WorkerId> = (0..rng.gen_range(1..6))
                        .map(|_| WorkerId(rng.gen_range(0..cfg.num_workers as u32)))
                        .collect();
                    undo_stack.push(slot);
                    MasterCommand::Refresh {
                        task: 0,
                        version: step,
                        slot,
                        occupied,
                        max_cost,
                    }
                }
                // Undo the most recent speculative refresh (LIFO, exactly
                // like the optimistic master's rollback).
                7..=8 => match undo_stack.pop() {
                    Some(slot) => MasterCommand::UndoRefresh { task: 0, slot },
                    None => MasterCommand::Compute {
                        task: 0,
                        version: step,
                        max_cost,
                    },
                },
                // Execute the last reported best candidate.
                _ => match last_best.take() {
                    Some((slot, _)) => MasterCommand::Execute { task: 0, slot },
                    None => MasterCommand::Compute {
                        task: 0,
                        version: step,
                        max_cost,
                    },
                },
            };
            let full_reply = full_owner.handle(command.clone(), &index, &cost);
            let inc_reply = inc_owner.handle(command.clone(), &index, &cost);
            assert_eq!(
                full_reply, inc_reply,
                "replies diverged at step {step}, seed {seed}, command {command:?}"
            );
            if let Some(WorkerEvent::Heartbeat {
                candidate: Some(c),
                planned_worker: Some(w),
                ..
            }) = &full_reply
            {
                last_best = Some((c.slot, *w));
            }
        }
        let mut full_plans = full_owner.into_plans();
        let mut inc_plans = inc_owner.into_plans();
        full_plans.sort_by_key(|(i, _)| *i);
        inc_plans.sort_by_key(|(i, _)| *i);
        assert_eq!(full_plans, inc_plans, "final plans diverged, seed {seed}");
    }
}
