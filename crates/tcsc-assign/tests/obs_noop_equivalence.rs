//! Observability must be free and inert: attaching a live recorder to any
//! runtime changes *nothing* about what is decided — plans, conflicts,
//! executions and cache counters are bit-identical with the recorder on vs.
//! the `NoopRecorder` default.  This is the acceptance bar of the `tcsc-obs`
//! layer: instrumentation may observe the timeline, never perturb it.

use tcsc_assign::{
    AssignmentEngine, ConcurrentAssignmentEngine, GrantPolicy, MultiTaskConfig, Objective,
    TaskMaster, WorkerLedger,
};
use tcsc_core::{EuclideanCost, Task};
use tcsc_index::{ShardGridConfig, ShardedWorkerIndex, WorkerIndex};
use tcsc_obs::ObsSession;
use tcsc_workload::ScenarioConfig;

fn prepare(config: &ScenarioConfig) -> (Vec<Task>, WorkerIndex, ShardedWorkerIndex) {
    let scenario = config.build();
    let dense = WorkerIndex::build(&scenario.workers, config.num_slots, &scenario.domain);
    let sharded = ShardedWorkerIndex::build(
        &scenario.workers,
        config.num_slots,
        &scenario.domain,
        ShardGridConfig::new(4, 4),
    );
    (scenario.tasks, dense, sharded)
}

fn presets() -> Vec<ScenarioConfig> {
    vec![
        ScenarioConfig::small(),
        // Scarce workers force conflicts, so the conflict-refresh paths are
        // exercised with the recorder attached.
        ScenarioConfig::small()
            .with_seed(9)
            .with_num_workers(60)
            .with_budget(120.0),
    ]
}

#[test]
fn serial_engine_is_bit_identical_with_recorder_attached() {
    let cost = EuclideanCost::default();
    for config in presets() {
        let (tasks, dense, _) = prepare(&config);
        let cfg = MultiTaskConfig::new(config.budget);
        for objective in [Objective::SumQuality, Objective::MinQuality] {
            let plain =
                AssignmentEngine::borrowed(&dense, &cost, cfg).assign_batch(&tasks, objective);
            let session = ObsSession::wall();
            let observed = AssignmentEngine::borrowed(&dense, &cost, cfg)
                .with_recorder(&session)
                .assign_batch(&tasks, objective);
            assert_eq!(plain.assignment, observed.assignment);
            assert_eq!(plain.conflicts, observed.conflicts);
            assert_eq!(plain.executions, observed.executions);
            assert_eq!(plain.stats, observed.stats);
            assert!(
                !session.merged_events().is_empty(),
                "the attached recorder must actually have recorded"
            );
            assert!(session.metrics().counter_value("engine.executions") > 0);
        }
    }
}

#[test]
fn streaming_service_mode_is_bit_identical_with_recorder_attached() {
    // The service loop: submit / drain rounds with retired-plan GC between
    // them — the fig9svc driver's shape.  The recorded engine must produce
    // bit-identical plans while its gauges and windows observe the stream.
    let cost = EuclideanCost::default();
    let config = ScenarioConfig::small()
        .with_seed(21)
        .with_num_workers(80)
        .with_budget(200.0);
    let (tasks, dense, _) = prepare(&config);
    let cfg = MultiTaskConfig::new(config.budget);

    fn run<R: tcsc_obs::Recorder>(
        engine: &mut AssignmentEngine<'_, R>,
        tasks: &[Task],
    ) -> (Vec<tcsc_core::AssignmentPlan>, usize, usize) {
        let mut plans = Vec::new();
        let mut conflicts = 0usize;
        let mut executions = 0usize;
        let mut retired: Vec<tcsc_core::AssignmentPlan> = Vec::new();
        for (r, round) in tasks.chunks(4).enumerate() {
            engine.submit(round.to_vec());
            let outcome = engine.drain(Objective::SumQuality);
            conflicts += outcome.conflicts;
            executions += outcome.executions;
            // Retire every second round's plans one round later — the
            // service GC cadence, interleaved with live commitments.
            if r % 2 == 0 {
                retired.extend(outcome.assignment.plans.iter().cloned());
            }
            if r % 2 == 1 {
                for plan in retired.drain(..) {
                    engine.release_plan(&plan);
                }
            }
            plans.extend(outcome.assignment.plans);
        }
        (plans, conflicts, executions)
    }

    let mut plain = AssignmentEngine::borrowed(&dense, &cost, cfg);
    let reference = run(&mut plain, &tasks);

    let session = ObsSession::wall();
    session.install_window("engine.batch_ns", u64::MAX / 8, 4);
    let mut observed = AssignmentEngine::borrowed(&dense, &cost, cfg).with_recorder(&session);
    let outcome = run(&mut observed, &tasks);

    assert_eq!(reference.0, outcome.0, "plans must be bit-identical");
    assert_eq!(reference.1, outcome.1);
    assert_eq!(reference.2, outcome.2);
    assert_eq!(plain.ledger().len(), observed.ledger().len());

    // The recorder actually observed the service: gauges sampled per drain,
    // the installed window fed by the batch-latency values, releases
    // counted.
    let metrics = session.metrics();
    let depth = metrics.gauge("engine.queue_depth").unwrap();
    assert!(depth.samples > 0);
    assert!(metrics.gauge("engine.ledger_size").is_some());
    assert!(metrics.gauge("engine.cache_entries").is_some());
    assert!(metrics.counter_value("engine.released") > 0);
    let window = metrics.window("engine.batch_ns").unwrap();
    assert_eq!(window.lifetime_count(), tasks.chunks(4).count() as u64);
    assert!(
        session
            .merged_events()
            .iter()
            .any(|e| e.phase == tcsc_obs::Phase::Counter),
        "gauges must emit chrome counter events"
    );
}

#[test]
fn concurrent_engine_is_bit_identical_with_recorder_attached() {
    let cost = EuclideanCost::default();
    for config in presets() {
        let (tasks, _, sharded) = prepare(&config);
        let cfg = MultiTaskConfig::new(config.budget);
        let mut plain = ConcurrentAssignmentEngine::new(sharded.clone(), &cost, cfg, 4);
        plain.submit(tasks.clone());
        let reference = plain.drain_parallel(Objective::SumQuality);

        let session = ObsSession::wall();
        let mut observed =
            ConcurrentAssignmentEngine::new(sharded.clone(), &cost, cfg, 4).with_recorder(&session);
        observed.submit(tasks.clone());
        let outcome = observed.drain_parallel(Objective::SumQuality);

        assert_eq!(reference.assignment, outcome.assignment);
        assert_eq!(reference.conflicts, outcome.conflicts);
        assert_eq!(reference.executions, outcome.executions);
        assert_eq!(reference.stats, outcome.stats);
        let metrics = session.metrics();
        assert!(metrics.counter_value("router.tile_visits") > 0);
        assert!(metrics.counter_value("router.tasks_routed") >= tasks.len() as u64);
    }
}

#[test]
fn task_master_is_bit_identical_with_recorder_attached() {
    // The pure state machine: replay identical event sequences into a plain
    // and a recorded master and compare every table.  The driver-level check
    // (threads + default recorder) rides in the test below.
    let session = ObsSession::wall();
    let (plain, commands_a) =
        TaskMaster::new(3, 10.0, WorkerLedger::new(), GrantPolicy::Optimistic, false);
    let (observed, commands_b) =
        TaskMaster::new(3, 10.0, WorkerLedger::new(), GrantPolicy::Optimistic, false);
    let mut plain = plain;
    let mut observed = observed.with_recorder(&session);
    assert_eq!(commands_a, commands_b);

    use tcsc_assign::{TaskCandidate, WorkerEvent};
    use tcsc_core::WorkerId;
    let heartbeat = |task: usize, heuristic: f64, worker: u32| WorkerEvent::Heartbeat {
        task,
        version: 0,
        candidate: Some(TaskCandidate {
            slot: task,
            gain: heuristic,
            cost: 1.0,
            heuristic,
        }),
        planned_worker: Some(WorkerId(worker)),
    };
    for event in [
        heartbeat(0, 5.0, 1),
        heartbeat(2, 9.0, 2),
        heartbeat(1, 7.0, 3),
    ] {
        let a = plain.handle(event.clone());
        let b = observed.handle(event);
        assert_eq!(a, b, "identical commands with and without the recorder");
    }
    assert_eq!(plain.rollbacks(), observed.rollbacks());
    assert_eq!(plain.supersedes(), observed.supersedes());
    assert_eq!(plain.conflicts(), observed.conflicts());
    assert_eq!(plain.committed(), observed.committed());
    // The optimistic master granted provisionally on the first heartbeat and
    // rolled back when a later one superseded it — both visible in metrics.
    let metrics = session.metrics();
    assert_eq!(
        metrics.counter_value("master.supersedes"),
        observed.supersedes() as u64
    );
    assert_eq!(
        metrics.counter_value("master.rollbacks"),
        observed.rollbacks() as u64
    );
    assert!(observed.supersedes() > 0, "the scenario must supersede");
}

#[test]
fn task_parallel_driver_matches_with_and_without_priorities() {
    // The thread driver keeps the NoopRecorder default; this locks that the
    // refactor (generic master, supersede counter) left its committed
    // behaviour untouched and that `supersedes <= rollbacks` always holds.
    let cost = EuclideanCost::default();
    let config = ScenarioConfig::small()
        .with_seed(9)
        .with_num_workers(60)
        .with_budget(120.0);
    let (tasks, dense, _) = prepare(&config);
    let cfg = MultiTaskConfig::new(config.budget);
    for policy in [GrantPolicy::Barrier, GrantPolicy::Optimistic] {
        #[allow(deprecated)]
        let outcome = match policy {
            GrantPolicy::Barrier => {
                tcsc_assign::msqm_task_parallel(&tasks, &dense, &cost, &cfg, 4, true)
            }
            GrantPolicy::Optimistic => {
                tcsc_assign::msqm_task_parallel_optimistic(&tasks, &dense, &cost, &cfg, 4, true)
            }
        };
        assert!(
            outcome.supersedes <= outcome.rollbacks,
            "supersedes ({}) is a subset of rollbacks ({})",
            outcome.supersedes,
            outcome.rollbacks
        );
        if policy == GrantPolicy::Barrier {
            assert_eq!(outcome.rollbacks, 0);
            assert_eq!(outcome.supersedes, 0);
        }
    }
}
