//! Concurrent-engine equivalence: [`ConcurrentAssignmentEngine`] must be
//! **bit-identical** — plans, conflicts, executions *and* cache counters —
//! to the single-threaded [`AssignmentEngine`] on the seeded scenario
//! presets, for every shard grid and every thread count, in both the batch
//! and the streaming serving modes.  This is the acceptance bar of the
//! sharding subsystem: region parallelism is allowed to change *when* work
//! happens, never *what* is decided.

use tcsc_assign::{
    AssignmentEngine, ConcurrentAssignmentEngine, MultiOutcome, MultiTaskConfig, Objective,
};
use tcsc_core::{EuclideanCost, Task};
use tcsc_index::{ShardGridConfig, ShardedWorkerIndex, WorkerIndex};
use tcsc_workload::{
    PoiConfig, ScenarioConfig, SpatialDistribution, StreamingConfig, TaskPlacement,
};

/// Builds (tasks, dense index, sharded index) from a scenario configuration.
fn prepare(
    config: &ScenarioConfig,
    grid: ShardGridConfig,
) -> (Vec<Task>, WorkerIndex, ShardedWorkerIndex) {
    let scenario = config.build();
    let dense = WorkerIndex::build(&scenario.workers, config.num_slots, &scenario.domain);
    let sharded =
        ShardedWorkerIndex::build(&scenario.workers, config.num_slots, &scenario.domain, grid);
    (scenario.tasks, dense, sharded)
}

/// The scenario presets the equivalence is checked on: the CI-sized preset
/// under every placement (including the region-partitioned one), plus seed
/// and scarcity variants.
fn presets() -> Vec<ScenarioConfig> {
    vec![
        ScenarioConfig::small(),
        ScenarioConfig::small()
            .with_placement(TaskPlacement::Synthetic(SpatialDistribution::Gaussian)),
        ScenarioConfig::small()
            .with_placement(TaskPlacement::Synthetic(SpatialDistribution::zipf_default())),
        ScenarioConfig::small().with_placement(TaskPlacement::Poi(PoiConfig::default())),
        ScenarioConfig::small().with_placement(TaskPlacement::Synthetic(
            SpatialDistribution::region_grid(3),
        )),
        ScenarioConfig::small().with_seed(7).with_num_tasks(6),
        // Scarce workers force conflicts, exercising the two-phase claim.
        ScenarioConfig::small()
            .with_seed(9)
            .with_num_workers(60)
            .with_budget(120.0),
    ]
}

fn grids() -> Vec<ShardGridConfig> {
    vec![
        ShardGridConfig::new(1, 1),
        ShardGridConfig::new(4, 4),
        ShardGridConfig::new(3, 5).with_time_splits(2),
    ]
}

/// Full bit-identity, including the candidate-computation counters.
fn assert_identical(label: &str, parallel: &MultiOutcome, serial: &MultiOutcome) {
    assert_eq!(
        parallel.assignment, serial.assignment,
        "{label}: plans differ"
    );
    assert_eq!(
        parallel.conflicts, serial.conflicts,
        "{label}: conflict counts differ"
    );
    assert_eq!(
        parallel.executions, serial.executions,
        "{label}: execution counts differ"
    );
    assert_eq!(
        parallel.stats, serial.stats,
        "{label}: cache counters differ"
    );
}

#[test]
fn batch_assign_matches_the_serial_engine_on_every_preset() {
    let cost = EuclideanCost::default();
    for (i, preset) in presets().into_iter().enumerate() {
        for grid in grids() {
            let (tasks, dense, sharded) = prepare(&preset, grid);
            let cfg = MultiTaskConfig::new(preset.budget);
            for objective in [Objective::SumQuality, Objective::MinQuality] {
                let serial =
                    AssignmentEngine::borrowed(&dense, &cost, cfg).assign_batch(&tasks, objective);
                let mut engine = ConcurrentAssignmentEngine::new(sharded.clone(), &cost, cfg, 4);
                let parallel = engine.assign_batch_parallel(&tasks, objective);
                assert_identical(
                    &format!("preset {i}, {grid:?}, {objective:?}"),
                    &parallel,
                    &serial,
                );
            }
        }
    }
}

#[test]
fn thread_counts_are_interchangeable() {
    let cost = EuclideanCost::default();
    let preset = ScenarioConfig::small()
        .with_seed(9)
        .with_num_workers(60)
        .with_budget(120.0);
    let (tasks, dense, sharded) = prepare(&preset, ShardGridConfig::new(4, 4));
    let cfg = MultiTaskConfig::new(preset.budget);
    let serial =
        AssignmentEngine::borrowed(&dense, &cost, cfg).assign_batch(&tasks, Objective::SumQuality);
    for threads in [1, 2, 3, 8, 32] {
        let mut engine = ConcurrentAssignmentEngine::new(sharded.clone(), &cost, cfg, threads);
        let parallel = engine.assign_batch_parallel(&tasks, Objective::SumQuality);
        assert_identical(&format!("threads={threads}"), &parallel, &serial);
    }
}

#[test]
fn streaming_drains_match_the_serial_engine_round_by_round() {
    // The full streaming lifecycle — persistent occupancy across rounds,
    // per-round cache eviction, round-clock advance — must track the serial
    // engine exactly, on the region-partitioned preset the engine serves.
    let cost = EuclideanCost::default();
    let streaming = StreamingConfig::region_partitioned(ScenarioConfig::small(), 4, 4, 3).build();
    let num_slots = streaming.config.base.num_slots;
    let dense = WorkerIndex::build(&streaming.workers, num_slots, &streaming.domain);
    let sharded = ShardedWorkerIndex::build(
        &streaming.workers,
        num_slots,
        &streaming.domain,
        ShardGridConfig::new(4, 4),
    );
    let cfg = MultiTaskConfig::new(25.0);

    for objective in [Objective::SumQuality, Objective::MinQuality] {
        let mut serial = AssignmentEngine::borrowed(&dense, &cost, cfg);
        let mut parallel = ConcurrentAssignmentEngine::new(sharded.clone(), &cost, cfg, 4);
        for (r, round) in streaming.rounds.iter().enumerate() {
            serial.submit(round.clone());
            parallel.submit(round.clone());
            let a = serial.drain(objective);
            let b = parallel.drain_parallel(objective);
            assert_identical(&format!("round {r}, {objective:?}"), &b, &a);
        }
        assert_eq!(serial.ledger().len(), parallel.ledger().len());
        assert_eq!(parallel.cached_tasks(), 0, "drains must evict arrivals");
    }
}

#[test]
fn replanning_reuses_the_shard_caches_and_stays_identical() {
    // Budget sweep over one batch: the concurrent engine must reuse its
    // per-shard caches across solves exactly as the serial engine reuses its
    // global cache — same plans, same lifetime counters.
    let cost = EuclideanCost::default();
    let preset = ScenarioConfig::small()
        .with_placement(TaskPlacement::Synthetic(SpatialDistribution::region_grid(
            4,
        )))
        .with_num_tasks(12);
    let (tasks, dense, sharded) = prepare(&preset, ShardGridConfig::new(4, 4));
    let mut serial = AssignmentEngine::borrowed(&dense, &cost, MultiTaskConfig::new(30.0));
    let mut parallel =
        ConcurrentAssignmentEngine::new(sharded, &cost, MultiTaskConfig::new(30.0), 4);
    for budget in [30.0, 18.0, 45.0] {
        serial.release_all();
        parallel.release_all();
        serial.set_budget(budget);
        parallel.set_budget(budget);
        let a = serial.assign_batch(&tasks, Objective::SumQuality);
        let b = parallel.assign_batch_parallel(&tasks, Objective::SumQuality);
        assert_identical(&format!("budget {budget}"), &b, &a);
    }
    assert_eq!(serial.stats(), parallel.stats(), "lifetime counters differ");
    assert_eq!(serial.cache().len(), parallel.cached_tasks());
}
