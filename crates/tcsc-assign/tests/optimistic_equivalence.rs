//! Equivalence of the optimistic non-blocking task-parallel master with the
//! barrier master (and, transitively, the serial greedy): on every scenario
//! preset, thread count and budget, the *committed execution sequence* —
//! and therefore the plans, the conflict count and the execution count —
//! must be identical.  Rolled-back speculation may differ run to run; the
//! committed outcome may not.

// These suites pin the semantics of the deprecated free-function wrappers
// against the engines; they call the wrappers on purpose.
#![allow(deprecated)]

use tcsc_assign::{
    msqm_serial, msqm_task_parallel, msqm_task_parallel_optimistic, MultiTaskConfig,
};
use tcsc_core::EuclideanCost;
use tcsc_index::WorkerIndex;
use tcsc_workload::{ScenarioConfig, SpatialDistribution, StreamingConfig, TaskPlacement};

fn preset_scenarios() -> Vec<(&'static str, ScenarioConfig)> {
    vec![
        (
            "small-uniform",
            ScenarioConfig::small().with_num_tasks(8).with_num_slots(40),
        ),
        (
            "gaussian-clustered-tasks",
            ScenarioConfig::small()
                .with_num_tasks(10)
                .with_num_slots(30)
                .with_num_workers(120)
                .with_placement(TaskPlacement::Synthetic(SpatialDistribution::Gaussian)),
        ),
        (
            "zipf-scarce-workers",
            // Skewed tasks over few workers: the conflict-heavy preset.
            ScenarioConfig::small()
                .with_num_tasks(12)
                .with_num_slots(25)
                .with_num_workers(60)
                .with_placement(TaskPlacement::Synthetic(SpatialDistribution::zipf_default()))
                .with_seed(7),
        ),
        (
            "region-partitioned",
            StreamingConfig::region_partitioned(
                ScenarioConfig::small()
                    .with_num_slots(30)
                    .with_num_workers(200),
                3,
                2,
                5,
            )
            .base,
        ),
    ]
}

#[test]
fn optimistic_commits_the_barrier_sequence_on_every_preset() {
    for (name, cfg) in preset_scenarios() {
        let scenario = cfg.build();
        let index = WorkerIndex::build(&scenario.workers, cfg.num_slots, &scenario.domain);
        let cost = EuclideanCost::default();
        for budget in [12.0, 35.0, 90.0] {
            let mcfg = MultiTaskConfig::new(budget);
            let serial = msqm_serial(&scenario.tasks, &index, &cost, &mcfg);
            for threads in [1, 3, 6] {
                let barrier =
                    msqm_task_parallel(&scenario.tasks, &index, &cost, &mcfg, threads, true);
                let optimistic = msqm_task_parallel_optimistic(
                    &scenario.tasks,
                    &index,
                    &cost,
                    &mcfg,
                    threads,
                    true,
                );
                assert_eq!(
                    barrier.committed, optimistic.committed,
                    "committed sequence diverged on {name}, budget {budget}, {threads} threads"
                );
                assert_eq!(
                    barrier.outcome.assignment, optimistic.outcome.assignment,
                    "plans diverged on {name}, budget {budget}, {threads} threads"
                );
                assert_eq!(barrier.outcome.conflicts, optimistic.outcome.conflicts);
                assert_eq!(barrier.outcome.executions, optimistic.outcome.executions);
                assert_eq!(barrier.rollbacks, 0, "the barrier master never speculates");
                // Both frameworks reproduce the serial greedy.
                assert!(
                    (optimistic.outcome.sum_quality() - serial.sum_quality()).abs() < 1e-9,
                    "quality diverged from serial on {name}, budget {budget}"
                );
                assert_eq!(optimistic.outcome.executions, serial.executions);
            }
        }
    }
}

#[test]
fn optimistic_result_is_stable_across_repeated_runs() {
    // Thread timing varies run to run; the committed outcome may not.
    let scenario = ScenarioConfig::small()
        .with_num_tasks(10)
        .with_num_slots(30)
        .with_num_workers(80)
        .build();
    let index = WorkerIndex::build(&scenario.workers, 30, &scenario.domain);
    let cost = EuclideanCost::default();
    let cfg = MultiTaskConfig::new(45.0);
    let reference = msqm_task_parallel_optimistic(&scenario.tasks, &index, &cost, &cfg, 4, true);
    for _ in 0..5 {
        let run = msqm_task_parallel_optimistic(&scenario.tasks, &index, &cost, &cfg, 4, true);
        assert_eq!(reference.committed, run.committed);
        assert_eq!(reference.outcome.assignment, run.outcome.assignment);
        assert_eq!(reference.outcome.conflicts, run.outcome.conflicts);
    }
}

#[test]
fn priority_toggle_is_neutral_under_the_optimistic_master() {
    let scenario = ScenarioConfig::small().with_num_tasks(6).build();
    let index = WorkerIndex::build(
        &scenario.workers,
        scenario.config.num_slots,
        &scenario.domain,
    );
    let cost = EuclideanCost::default();
    let cfg = MultiTaskConfig::new(25.0);
    let with = msqm_task_parallel_optimistic(&scenario.tasks, &index, &cost, &cfg, 3, true);
    let without = msqm_task_parallel_optimistic(&scenario.tasks, &index, &cost, &cfg, 3, false);
    assert_eq!(with.committed, without.committed);
    assert_eq!(with.outcome.assignment, without.outcome.assignment);
}
