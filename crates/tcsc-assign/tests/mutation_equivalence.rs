//! Engine-level rebuild equivalence of the mutable worker index: applying
//! seeded insert/remove/move tapes to *live* engines (warm candidate caches,
//! persistent ledgers) must reproduce — bit for bit — the plans of engines
//! that **rebuild their index from scratch** after every tape, for both the
//! serial dense engine (`replace_index`) and the concurrent sharded engine
//! (`rebuild_index`).
//!
//! This is the assignment-layer counterpart of `tcsc-index`'s
//! `mutable_index_fuzz`: the index fuzz locks query-level equivalence, this
//! suite locks that the cache invalidation (worker-scoped holder-map
//! refreshes) and the ledger maintenance (release on remove, cross-tile
//! migration on move) never change what gets planned.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tcsc_assign::{AssignmentEngine, ConcurrentAssignmentEngine, MultiTaskConfig, Objective};
use tcsc_core::{Domain, EuclideanCost, Location, Worker, WorkerId, WorkerPool, WorkerSlot};
use tcsc_index::{ShardGridConfig, ShardedWorkerIndex, WorkerIndex};
use tcsc_workload::ScenarioConfig;

/// One replayable worker mutation.
enum Op {
    Insert(Worker),
    Remove(WorkerId),
    Move(WorkerId, Location),
}

fn random_location(rng: &mut StdRng, domain: &Domain) -> Location {
    // One in five placements lands outside the domain, exercising the
    // border-clamp invariant end to end.
    let slack = if rng.gen_range(0..5) == 0 { 0.25 } else { 0.0 };
    let (w, h) = (domain.width(), domain.height());
    Location::new(
        rng.gen_range(domain.min.x - slack * w..domain.max.x + slack * w),
        rng.gen_range(domain.min.y - slack * h..domain.max.y + slack * h),
    )
}

/// Draws a mutation tape, keeping `mirror` (the ground-truth pool a rebuild
/// uses) in sync.  Inserted workers always use fresh ids — recycling an id
/// across a rebuild is explicitly out of contract (see
/// `AssignmentEngine::replace_index`).
fn mutation_tape(
    rng: &mut StdRng,
    mirror: &mut Vec<Worker>,
    next_id: &mut u32,
    num_slots: usize,
    domain: &Domain,
) -> Vec<Op> {
    let mut ops = Vec::new();
    for _ in 0..6 {
        match rng.gen_range(0..5) {
            0 => {
                let count = rng.gen_range(1..=3);
                let slots = (0..count)
                    .map(|_| WorkerSlot {
                        slot: rng.gen_range(0..num_slots),
                        location: random_location(rng, domain),
                    })
                    .collect();
                let worker = Worker::new(WorkerId(*next_id), slots);
                *next_id += 1;
                mirror.push(worker.clone());
                ops.push(Op::Insert(worker));
            }
            1 if mirror.len() > 8 => {
                let at = rng.gen_range(0..mirror.len());
                ops.push(Op::Remove(mirror.remove(at).id));
            }
            _ => {
                let at = rng.gen_range(0..mirror.len());
                let to = random_location(rng, domain);
                let old = &mirror[at];
                let (id, reliability) = (old.id, old.reliability);
                let slots = old
                    .availability()
                    .iter()
                    .map(|ws| WorkerSlot {
                        slot: ws.slot,
                        location: to,
                    })
                    .collect();
                mirror[at] = Worker::with_reliability(id, slots, reliability);
                ops.push(Op::Move(id, to));
            }
        }
    }
    ops
}

fn apply_serial(engine: &mut AssignmentEngine<'_>, ops: &[Op]) {
    for op in ops {
        let applied = match op {
            Op::Insert(w) => engine.insert_worker(w).applied,
            Op::Remove(id) => engine.remove_worker(*id).applied,
            Op::Move(id, to) => engine.move_worker(*id, *to).applied,
        };
        assert!(applied, "every tape op targets a live id");
    }
}

fn apply_concurrent(engine: &mut ConcurrentAssignmentEngine<'_>, ops: &[Op]) {
    for op in ops {
        let applied = match op {
            Op::Insert(w) => engine.insert_worker(w).applied,
            Op::Remove(id) => engine.remove_worker(*id).applied,
            Op::Move(id, to) => engine.move_worker(*id, *to).applied,
        };
        assert!(applied, "every tape op targets a live id");
    }
}

/// Warm-cache re-planning shape: the same batch is solved again after every
/// tape (cache hits + worker-scoped invalidation on the mutating engines,
/// cold recompute on the rebuilding engines), with occupancy released
/// between rounds so plans stay comparable round over round.
#[test]
fn mutated_engines_match_rebuilt_engines_on_replanning() {
    let cost = EuclideanCost::default();
    for (seed, grid, threads) in [
        (11u64, ShardGridConfig::new(3, 3), 4),
        (12, ShardGridConfig::new(4, 2).with_time_splits(2), 2),
        (13, ShardGridConfig::new(1, 1), 1),
    ] {
        let config = ScenarioConfig::small().with_seed(seed);
        let scenario = config.build();
        let (num_slots, domain) = (config.num_slots, scenario.domain);
        let mut mirror: Vec<Worker> = scenario.workers.workers().to_vec();
        let mut next_id = mirror.iter().map(|w| w.id.0).max().unwrap_or(0) + 1;
        let mut rng = StdRng::seed_from_u64(0x0b5e ^ seed);
        let cfg = MultiTaskConfig::new(config.budget);

        let mut serial_mut = AssignmentEngine::new(
            WorkerIndex::build(&scenario.workers, num_slots, &domain),
            &cost,
            cfg,
        );
        let mut serial_reb = AssignmentEngine::new(
            WorkerIndex::build(&scenario.workers, num_slots, &domain),
            &cost,
            cfg,
        );
        let mut conc_mut = ConcurrentAssignmentEngine::new(
            ShardedWorkerIndex::build(&scenario.workers, num_slots, &domain, grid),
            &cost,
            cfg,
            threads,
        );
        let mut conc_reb = ConcurrentAssignmentEngine::new(
            ShardedWorkerIndex::build(&scenario.workers, num_slots, &domain, grid),
            &cost,
            cfg,
            threads,
        );

        for round in 0..4 {
            let ctx = format!("seed {seed}, round {round}");
            let a = serial_mut.assign_batch(&scenario.tasks, Objective::SumQuality);
            let b = serial_reb.assign_batch(&scenario.tasks, Objective::SumQuality);
            let c = conc_mut.assign_batch_parallel(&scenario.tasks, Objective::SumQuality);
            let d = conc_reb.assign_batch_parallel(&scenario.tasks, Objective::SumQuality);
            for (label, other) in [
                ("serial-rebuild", &b),
                ("conc-mutate", &c),
                ("conc-rebuild", &d),
            ] {
                assert_eq!(a.assignment, other.assignment, "{ctx}: {label} plans");
                assert_eq!(a.conflicts, other.conflicts, "{ctx}: {label} conflicts");
                assert_eq!(a.executions, other.executions, "{ctx}: {label} executions");
            }
            serial_mut.release_all();
            serial_reb.release_all();
            conc_mut.release_all();
            conc_reb.release_all();

            let tape = mutation_tape(&mut rng, &mut mirror, &mut next_id, num_slots, &domain);
            apply_serial(&mut serial_mut, &tape);
            apply_concurrent(&mut conc_mut, &tape);
            let pool = WorkerPool::new(mirror.clone());
            serial_reb.replace_index(WorkerIndex::build(&pool, num_slots, &domain));
            conc_reb.rebuild_index(ShardedWorkerIndex::build(&pool, num_slots, &domain, grid));
        }
    }
}

/// Service shape: submit/drain rounds with churn tapes between drains and a
/// ledger that persists across rounds (no release), so removal-releases and
/// cross-tile occupancy migration are on the equivalence path.
#[test]
fn mutated_engines_match_rebuilt_engines_across_drains() {
    let cost = EuclideanCost::default();
    for (seed, grid, threads) in [
        (21u64, ShardGridConfig::new(3, 3), 4),
        (22, ShardGridConfig::new(2, 3).with_time_splits(2), 3),
    ] {
        let config = ScenarioConfig::small().with_seed(seed).with_num_workers(80);
        let scenario = config.build();
        let (num_slots, domain) = (config.num_slots, scenario.domain);
        let mut mirror: Vec<Worker> = scenario.workers.workers().to_vec();
        let mut next_id = mirror.iter().map(|w| w.id.0).max().unwrap_or(0) + 1;
        let mut rng = StdRng::seed_from_u64(0xd5a1 ^ seed);
        let cfg = MultiTaskConfig::new(config.budget);

        let mut serial_mut = AssignmentEngine::new(
            WorkerIndex::build(&scenario.workers, num_slots, &domain),
            &cost,
            cfg,
        );
        let mut conc_mut = ConcurrentAssignmentEngine::new(
            ShardedWorkerIndex::build(&scenario.workers, num_slots, &domain, grid),
            &cost,
            cfg,
            threads,
        );
        let mut conc_reb = ConcurrentAssignmentEngine::new(
            ShardedWorkerIndex::build(&scenario.workers, num_slots, &domain, grid),
            &cost,
            cfg,
            threads,
        );

        for (round, batch) in scenario.tasks.chunks(3).enumerate() {
            let ctx = format!("seed {seed}, round {round}");
            serial_mut.submit(batch.to_vec());
            conc_mut.submit(batch.to_vec());
            conc_reb.submit(batch.to_vec());
            let a = serial_mut.drain(Objective::SumQuality);
            let b = conc_mut.drain_parallel(Objective::SumQuality);
            let c = conc_reb.drain_parallel(Objective::SumQuality);
            for (label, other) in [("conc-mutate", &b), ("conc-rebuild", &c)] {
                assert_eq!(a.assignment, other.assignment, "{ctx}: {label} plans");
                assert_eq!(a.conflicts, other.conflicts, "{ctx}: {label} conflicts");
                assert_eq!(a.executions, other.executions, "{ctx}: {label} executions");
            }
            assert_eq!(serial_mut.ledger().len(), conc_mut.ledger().len(), "{ctx}");
            assert_eq!(serial_mut.ledger().len(), conc_reb.ledger().len(), "{ctx}");

            let tape = mutation_tape(&mut rng, &mut mirror, &mut next_id, num_slots, &domain);
            apply_serial(&mut serial_mut, &tape);
            apply_concurrent(&mut conc_mut, &tape);
            let pool = WorkerPool::new(mirror.clone());
            conc_reb.rebuild_index(ShardedWorkerIndex::build(&pool, num_slots, &domain, grid));
        }
    }
}
