//! Regression lock for the streaming engines: `drain_parallel` followed by
//! `submit` of tasks in an already-drained region must not replay stale
//! cache entries — the concurrent engine's per-shard caches evict drained
//! arrivals exactly like the serial engine's single cache, and a re-arriving
//! task id (same or changed content) must be solved from fresh candidates
//! against the persisted occupancy.

use tcsc_assign::{AssignmentEngine, ConcurrentAssignmentEngine, MultiTaskConfig, Objective};
use tcsc_core::{EuclideanCost, Location};
use tcsc_index::{ShardGridConfig, ShardedWorkerIndex, WorkerIndex};
use tcsc_workload::{ScenarioConfig, StreamingConfig};

fn region_stream() -> tcsc_workload::StreamingScenario {
    StreamingConfig::region_partitioned(
        ScenarioConfig::small()
            .with_num_slots(24)
            .with_num_workers(150),
        3,
        3,
        5,
    )
    .build()
}

#[test]
fn submit_after_drain_in_a_drained_region_matches_the_serial_engine() {
    let streaming = region_stream();
    let slots = streaming.config.base.num_slots;
    let cost = EuclideanCost::default();
    let cfg = MultiTaskConfig::new(35.0);

    let dense = WorkerIndex::build(&streaming.workers, slots, &streaming.domain);
    let sharded = ShardedWorkerIndex::build(
        &streaming.workers,
        slots,
        &streaming.domain,
        ShardGridConfig::new(3, 3),
    );
    let mut serial = AssignmentEngine::borrowed(&dense, &cost, cfg);
    let mut concurrent = ConcurrentAssignmentEngine::new(sharded, &cost, cfg, 4);

    // Round 1 drains every region; rounds 2 and 3 submit fresh tasks into
    // the same (already-drained) regions.
    for (round, tasks) in streaming.rounds.iter().enumerate() {
        serial.submit(tasks.clone());
        concurrent.submit(tasks.clone());
        let s = serial.drain(Objective::SumQuality);
        let c = concurrent.drain_parallel(Objective::SumQuality);
        assert_eq!(
            s.assignment, c.assignment,
            "plans diverged in round {round}"
        );
        assert_eq!(
            s.conflicts, c.conflicts,
            "conflicts diverged in round {round}"
        );
        assert_eq!(s.executions, c.executions);
        assert_eq!(s.stats, c.stats, "cache counters diverged in round {round}");
        assert_eq!(
            concurrent.cached_tasks(),
            0,
            "drain_parallel must evict its arrivals from every shard cache"
        );
    }
}

#[test]
fn re_submitted_task_id_is_not_served_from_a_stale_cache_entry() {
    // A task re-arrives after its round was drained — once unchanged and once
    // *moved* (same id, different location, so a stale cache hit would
    // produce visibly wrong candidates).  Both engines must agree with each
    // other and with a fresh engine given the same ledger history.
    let streaming = region_stream();
    let slots = streaming.config.base.num_slots;
    let cost = EuclideanCost::default();
    let cfg = MultiTaskConfig::new(40.0);

    let dense = WorkerIndex::build(&streaming.workers, slots, &streaming.domain);
    let sharded = ShardedWorkerIndex::build(
        &streaming.workers,
        slots,
        &streaming.domain,
        ShardGridConfig::new(3, 3),
    );
    let round1 = streaming.rounds[0].clone();

    let mut serial = AssignmentEngine::borrowed(&dense, &cost, cfg);
    let mut concurrent = ConcurrentAssignmentEngine::new(sharded.clone(), &cost, cfg, 4);
    serial.submit(round1.clone());
    concurrent.submit(round1.clone());
    serial.drain(Objective::SumQuality);
    concurrent.drain_parallel(Objective::SumQuality);

    // Unchanged re-arrival of the drained round's first task.
    let replay = vec![round1[0].clone()];
    serial.submit(replay.clone());
    concurrent.submit(replay.clone());
    let s = serial.drain(Objective::SumQuality);
    let c = concurrent.drain_parallel(Objective::SumQuality);
    assert_eq!(s.assignment, c.assignment, "unchanged re-arrival diverged");
    assert_eq!(s.stats, c.stats);

    // Moved re-arrival: same id, different region.
    let mut moved = round1[1].clone();
    moved.location = Location::new(
        streaming.domain.max.x - (moved.location.x - streaming.domain.min.x),
        streaming.domain.max.y - (moved.location.y - streaming.domain.min.y),
    );
    serial.submit(vec![moved.clone()]);
    concurrent.submit(vec![moved.clone()]);
    let s = serial.drain(Objective::SumQuality);
    let c = concurrent.drain_parallel(Objective::SumQuality);
    assert_eq!(s.assignment, c.assignment, "moved re-arrival diverged");
    assert_eq!(s.conflicts, c.conflicts);
    assert_eq!(s.stats, c.stats);
    // A stale replay of the old location's candidates would also disagree
    // with a fresh engine fed the exact same history; lock that in too.
    let mut fresh = ConcurrentAssignmentEngine::new(sharded, &cost, cfg, 2);
    fresh.submit(round1.clone());
    fresh.drain_parallel(Objective::SumQuality);
    fresh.submit(replay);
    fresh.drain_parallel(Objective::SumQuality);
    fresh.submit(vec![moved]);
    let f = fresh.drain_parallel(Objective::SumQuality);
    assert_eq!(f.assignment, c.assignment);
}
