//! Engine equivalence: the cache-backed [`AssignmentEngine`] must reproduce
//! the rebuild-per-call solvers bit-for-bit on the seeded scenario presets,
//! streaming `submit`/`drain` must equal the one-shot batch call, and the
//! candidate-refresh counters must show the cache doing strictly less work
//! than the rebuild-per-call baseline.

// These suites pin the semantics of the deprecated free-function wrappers
// against the engines; they call the wrappers on purpose.
#![allow(deprecated)]

use tcsc_assign::{
    mmqm, mmqm_rebuild, msqm_rebuild, msqm_serial, sapprox, AssignmentEngine, MultiOutcome,
    MultiTaskConfig, Objective, SpatioTemporalObjective,
};
use tcsc_core::{EuclideanCost, InterpolationWeights, Task};
use tcsc_index::WorkerIndex;
use tcsc_workload::{
    PoiConfig, ScenarioConfig, SpatialDistribution, StreamingConfig, TaskPlacement,
};

/// Builds (tasks, index) from a scenario configuration.
fn prepare(config: &ScenarioConfig) -> (Vec<Task>, WorkerIndex) {
    let scenario = config.build();
    let index = WorkerIndex::build(&scenario.workers, config.num_slots, &scenario.domain);
    (scenario.tasks, index)
}

/// The scenario presets the equivalence is checked on: the CI-sized preset
/// under every placement, plus seed and shape variations.
fn presets() -> Vec<ScenarioConfig> {
    vec![
        ScenarioConfig::small(),
        ScenarioConfig::small()
            .with_placement(TaskPlacement::Synthetic(SpatialDistribution::Gaussian)),
        ScenarioConfig::small()
            .with_placement(TaskPlacement::Synthetic(SpatialDistribution::zipf_default())),
        ScenarioConfig::small().with_placement(TaskPlacement::Poi(PoiConfig::default())),
        ScenarioConfig::small().with_seed(7).with_num_tasks(6),
        // Scarce workers force conflicts, exercising the holder-map path.
        ScenarioConfig::small()
            .with_seed(9)
            .with_num_workers(60)
            .with_budget(120.0),
    ]
}

/// Asserts that two outcomes agree on everything except the cache counters.
fn assert_same_outcome(label: &str, engine: &MultiOutcome, reference: &MultiOutcome) {
    assert_eq!(
        engine.assignment, reference.assignment,
        "{label}: plans differ"
    );
    assert_eq!(
        engine.conflicts, reference.conflicts,
        "{label}: conflict counts differ"
    );
    assert_eq!(
        engine.executions, reference.executions,
        "{label}: execution counts differ"
    );
}

#[test]
fn assign_batch_matches_msqm_rebuild_on_every_preset() {
    let cost = EuclideanCost::default();
    for (i, preset) in presets().into_iter().enumerate() {
        let (tasks, index) = prepare(&preset);
        let cfg = MultiTaskConfig::new(preset.budget);
        let reference = msqm_rebuild(&tasks, &index, &cost, &cfg);
        let mut engine = AssignmentEngine::borrowed(&index, &cost, cfg);
        let outcome = engine.assign_batch(&tasks, Objective::SumQuality);
        assert_same_outcome(&format!("msqm preset {i}"), &outcome, &reference);
        // The public wrapper routes through the engine and must agree too.
        let wrapper = msqm_serial(&tasks, &index, &cost, &cfg);
        assert_same_outcome(&format!("msqm wrapper preset {i}"), &wrapper, &reference);
    }
}

#[test]
fn assign_batch_matches_mmqm_rebuild_on_every_preset() {
    let cost = EuclideanCost::default();
    for (i, preset) in presets().into_iter().enumerate() {
        let (tasks, index) = prepare(&preset);
        let cfg = MultiTaskConfig::new(preset.budget);
        let reference = mmqm_rebuild(&tasks, &index, &cost, &cfg);
        let mut engine = AssignmentEngine::borrowed(&index, &cost, cfg);
        let outcome = engine.assign_batch(&tasks, Objective::MinQuality);
        assert_same_outcome(&format!("mmqm preset {i}"), &outcome, &reference);
        let wrapper = mmqm(&tasks, &index, &cost, &cfg);
        assert_same_outcome(&format!("mmqm wrapper preset {i}"), &wrapper, &reference);
    }
}

#[test]
fn equivalence_holds_without_the_tree_index() {
    // The plain (non-VTree) candidate search must agree as well.
    let cost = EuclideanCost::default();
    let (tasks, index) = prepare(&ScenarioConfig::small().with_seed(11));
    let cfg = MultiTaskConfig::new(30.0).with_index(false);
    let reference = msqm_rebuild(&tasks, &index, &cost, &cfg);
    let mut engine = AssignmentEngine::borrowed(&index, &cost, cfg);
    let outcome = engine.assign_batch(&tasks, Objective::SumQuality);
    assert_same_outcome("msqm no-index", &outcome, &reference);
}

#[test]
fn streaming_submits_drained_once_equal_the_batch_call() {
    // Submitting k rounds of arrivals and draining once must be bit-identical
    // to one assign_batch call on the concatenated tasks under the same
    // budget.
    let cost = EuclideanCost::default();
    for objective in [Objective::SumQuality, Objective::MinQuality] {
        let streaming = StreamingConfig::small(4, 3).build();
        let index = WorkerIndex::build(
            &streaming.workers,
            streaming.config.base.num_slots,
            &streaming.domain,
        );
        let cfg = MultiTaskConfig::new(streaming.config.base.budget);

        let mut stream_engine = AssignmentEngine::borrowed(&index, &cost, cfg);
        for round in &streaming.rounds {
            stream_engine.submit(round.clone());
        }
        let drained = stream_engine.drain(objective);
        assert_eq!(stream_engine.pending(), 0);

        let mut batch_engine = AssignmentEngine::borrowed(&index, &cost, cfg);
        let batch = batch_engine.assign_batch(&streaming.concatenated(), objective);
        assert_same_outcome("stream vs batch", &drained, &batch);
    }
}

#[test]
fn per_round_drains_are_deterministic_and_share_occupancy() {
    // Draining round by round is the streaming serving mode: occupancy
    // persists, so no worker is granted twice at a slot across rounds, and
    // the whole run is reproducible.
    let cost = EuclideanCost::default();
    let streaming = StreamingConfig::small(3, 4).build();
    let index = WorkerIndex::build(
        &streaming.workers,
        streaming.config.base.num_slots,
        &streaming.domain,
    );
    let cfg = MultiTaskConfig::new(25.0);

    let run = |rounds: &[Vec<Task>]| -> Vec<MultiOutcome> {
        let mut engine = AssignmentEngine::borrowed(&index, &cost, cfg);
        rounds
            .iter()
            .map(|round| {
                engine.submit(round.clone());
                engine.drain(Objective::SumQuality)
            })
            .collect()
    };
    let first = run(&streaming.rounds);
    let second = run(&streaming.rounds);
    for (a, b) in first.iter().zip(&second) {
        assert_same_outcome("repeated streaming run", a, b);
    }

    let mut seen = std::collections::HashSet::new();
    for outcome in &first {
        for plan in &outcome.assignment.plans {
            for exec in &plan.executions {
                assert!(
                    seen.insert((exec.slot, exec.worker)),
                    "worker {:?} double-booked at slot {} across rounds",
                    exec.worker,
                    exec.slot
                );
            }
        }
    }
}

#[test]
fn sapprox_through_the_engine_is_deterministic() {
    // `sapprox` routes through the engine; two invocations over the same
    // scenario must agree bit-for-bit (the engine introduces no hidden
    // state into a fresh call).
    let cost = EuclideanCost::default();
    let scenario = ScenarioConfig::small().with_num_tasks(5).build();
    let index = WorkerIndex::build(
        &scenario.workers,
        scenario.config.num_slots,
        &scenario.domain,
    );
    let cfg = MultiTaskConfig::new(20.0);
    let run = || {
        sapprox(
            &scenario.tasks,
            &index,
            &cost,
            &scenario.domain,
            InterpolationWeights::paper_default(),
            SpatioTemporalObjective::Sum,
            &cfg,
        )
    };
    let a = run();
    let b = run();
    assert_same_outcome("sapprox", &a, &b);
    assert!(a.assignment.total_cost() <= 20.0 + 1e-6);
}

#[test]
fn candidate_cache_beats_the_rebuild_baseline_on_a_large_batch() {
    // Acceptance criterion: on a >= 100-task batch the engine's refresh
    // counter shows strictly fewer slot recomputations than the
    // rebuild-per-call baseline.
    let cost = EuclideanCost::default();
    let preset = ScenarioConfig::small()
        .with_num_tasks(100)
        .with_num_slots(30)
        .with_num_workers(800)
        .with_budget(150.0);
    let (tasks, index) = prepare(&preset);
    assert!(tasks.len() >= 100);
    let cfg = MultiTaskConfig::new(preset.budget);

    // Re-planning workload: the same batch solved under two budgets.  The
    // rebuild baseline pays the full candidate build twice; the engine pays
    // it once and serves the second solve from the cache.
    let reference_a = msqm_rebuild(&tasks, &index, &cost, &cfg);
    let cfg_b = MultiTaskConfig::new(preset.budget * 0.5);
    let reference_b = msqm_rebuild(&tasks, &index, &cost, &cfg_b);

    let mut engine = AssignmentEngine::borrowed(&index, &cost, cfg);
    let first = engine.assign_batch(&tasks, Objective::SumQuality);
    assert_same_outcome("large batch, full budget", &first, &reference_a);
    engine.release_all();
    engine.set_budget(cfg_b.budget);
    let second = engine.assign_batch(&tasks, Objective::SumQuality);
    assert_same_outcome("large batch, half budget", &second, &reference_b);

    // The second solve is served from the cache: its outcome stats alone
    // already beat the rebuild baseline for the same call...
    assert_eq!(second.stats.tasks_reused, tasks.len());
    assert!(
        second.stats.slot_computations < second.stats.rebuild_slot_computations,
        "cache did not save recomputations: {:?}",
        second.stats
    );
    // ...and so do the engine's lifetime counters against the two rebuild
    // runs actually performed by the baseline.
    let engine_total = engine.stats().slot_computations;
    let rebuild_total = reference_a.stats.slot_computations + reference_b.stats.slot_computations;
    assert!(
        engine_total < rebuild_total,
        "engine performed {engine_total} slot computations, rebuild baseline {rebuild_total}"
    );
}
