//! Deterministic interleaving fuzz of the optimistic master: the machine is
//! driven in-process against [`TaskOwner`] executors with a seeded scheduler
//! that picks, at every step, either a command to process or an event to
//! deliver — exploring message orderings real threads would produce (per-owner
//! command FIFO, arbitrary cross-owner event interleaving).  Every ordering
//! must commit the barrier sequence with the barrier's conflict count.

// These suites pin the semantics of the deprecated free-function wrappers
// against the engines; they call the wrappers on purpose.
#![allow(deprecated)]

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tcsc_assign::{
    msqm_task_parallel, CommittedExecution, GrantPolicy, MultiTaskConfig, TaskMaster, TaskOwner,
    TaskState, WorkerLedger,
};
use tcsc_core::{EuclideanCost, Task};
use tcsc_index::WorkerIndex;
use tcsc_workload::ScenarioConfig;

struct FuzzOutcome {
    committed: Vec<CommittedExecution>,
    conflicts: usize,
    executions: usize,
    rollbacks: usize,
    sum_quality: f64,
}

/// Runs the machine under one seeded delivery order.  Each task is owned by
/// `task % owners`; commands to one owner are FIFO, event delivery to the
/// master interleaves freely across owners.
fn run_interleaved(
    seed: u64,
    policy: GrantPolicy,
    owners: usize,
    tasks: &[Task],
    index: &WorkerIndex,
    config: &MultiTaskConfig,
) -> FuzzOutcome {
    let cost = EuclideanCost::default();
    let mut rng = StdRng::seed_from_u64(seed);
    let owner_of: Vec<usize> = (0..tasks.len()).map(|i| i % owners).collect();
    let mut executors: Vec<TaskOwner> = (0..owners)
        .map(|o| {
            TaskOwner::new(
                tasks
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % owners == o)
                    .map(|(i, task)| (i, TaskState::new(task, index, &cost, config))),
            )
        })
        .collect();

    let (mut master, initial) = TaskMaster::new(
        tasks.len(),
        config.budget,
        WorkerLedger::new(),
        policy,
        true,
    );
    let mut command_queues: Vec<VecDeque<_>> = vec![VecDeque::new(); owners];
    for command in initial {
        command_queues[owner_of[command.task()]].push_back(command);
    }
    // Events ready for delivery, one queue per owner (same-owner events stay
    // ordered, like one thread's sends over an mpsc channel).
    let mut event_queues: Vec<VecDeque<_>> = vec![VecDeque::new(); owners];

    loop {
        let mut choices: Vec<(usize, bool)> = Vec::new();
        for o in 0..owners {
            if !command_queues[o].is_empty() {
                choices.push((o, true));
            }
            if !event_queues[o].is_empty() {
                choices.push((o, false));
            }
        }
        if choices.is_empty() {
            break;
        }
        let (o, is_command) = choices[rng.gen_range(0..choices.len())];
        if is_command {
            let command = command_queues[o].pop_front().expect("chosen non-empty");
            if let Some(event) = executors[o].handle(command, index, &cost) {
                event_queues[o].push_back(event);
            }
        } else {
            let event = event_queues[o].pop_front().expect("chosen non-empty");
            for command in master.handle(event) {
                command_queues[owner_of[command.task()]].push_back(command);
            }
        }
    }
    assert!(
        master.is_done(),
        "delivery drained without completing the run"
    );

    let sum_quality: f64 = executors
        .into_iter()
        .flat_map(TaskOwner::into_plans)
        .map(|(_, plan)| plan.quality)
        .sum();
    let (_, _, committed, conflicts, executions, rollbacks, _) = master.into_tables();
    FuzzOutcome {
        committed,
        conflicts,
        executions,
        rollbacks,
        sum_quality,
    }
}

#[test]
fn every_delivery_order_commits_the_barrier_outcome() {
    let scenario = ScenarioConfig::small()
        .with_num_tasks(8)
        .with_num_slots(24)
        .with_num_workers(60)
        .build();
    let index = WorkerIndex::build(&scenario.workers, 24, &scenario.domain);
    let cost = EuclideanCost::default();
    let cfg = MultiTaskConfig::new(40.0);
    let reference = msqm_task_parallel(&scenario.tasks, &index, &cost, &cfg, 1, true);
    let mut rollbacks_seen = 0usize;
    for seed in 0..60 {
        for owners in [1, 3, 8] {
            let run = run_interleaved(
                seed,
                GrantPolicy::Optimistic,
                owners,
                &scenario.tasks,
                &index,
                &cfg,
            );
            assert_eq!(
                run.committed, reference.committed,
                "committed sequence diverged at seed {seed}, {owners} owners"
            );
            assert_eq!(
                run.conflicts, reference.outcome.conflicts,
                "conflict count diverged at seed {seed}, {owners} owners"
            );
            assert_eq!(run.executions, reference.outcome.executions);
            assert!(
                (run.sum_quality - reference.outcome.sum_quality()).abs() < 1e-9,
                "quality diverged at seed {seed}, {owners} owners"
            );
            rollbacks_seen += run.rollbacks;
        }
    }
    assert!(
        rollbacks_seen > 0,
        "the fuzz must exercise the rollback path at least once"
    );
}

#[test]
fn barrier_policy_is_order_insensitive_too() {
    let scenario = ScenarioConfig::small()
        .with_num_tasks(6)
        .with_num_slots(20)
        .with_num_workers(50)
        .build();
    let index = WorkerIndex::build(&scenario.workers, 20, &scenario.domain);
    let cost = EuclideanCost::default();
    let cfg = MultiTaskConfig::new(25.0);
    let reference = msqm_task_parallel(&scenario.tasks, &index, &cost, &cfg, 1, true);
    for seed in 0..20 {
        let run = run_interleaved(seed, GrantPolicy::Barrier, 3, &scenario.tasks, &index, &cfg);
        assert_eq!(run.committed, reference.committed, "seed {seed}");
        assert_eq!(run.conflicts, reference.outcome.conflicts);
        assert_eq!(run.rollbacks, 0);
    }
}
