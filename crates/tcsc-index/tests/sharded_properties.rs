//! Property tests: [`ShardedWorkerIndex`] must answer every query
//! **bit-identically** to the dense [`WorkerIndex`] — same workers, same
//! order, same `f64` distances — across seeded domains, shard layouts,
//! tile-boundary workers and empty shards.  This equivalence is what lets the
//! assignment layer swap the sharded router in without changing a single
//! plan.

use std::collections::BTreeSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tcsc_core::{Domain, Location, Worker, WorkerId, WorkerPool, WorkerSlot};
use tcsc_index::{
    MutableSpatialIndex, ShardGridConfig, ShardedWorkerIndex, SpatialQuery, WorkerIndex,
};

/// A seeded pool of workers with 1–4 availability slots each.
fn random_pool(seed: u64, num_workers: usize, num_slots: usize, domain: &Domain) -> WorkerPool {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..num_workers)
        .map(|i| {
            let start = rng.gen_range(0..num_slots);
            let len = rng.gen_range(1..=4.min(num_slots));
            let availability = (start..(start + len).min(num_slots))
                .map(|slot| WorkerSlot {
                    slot,
                    location: Location::new(
                        rng.gen_range(domain.min.x..=domain.max.x),
                        rng.gen_range(domain.min.y..=domain.max.y),
                    ),
                })
                .collect();
            Worker::new(WorkerId(i as u32), availability)
        })
        .collect()
}

/// Seeded query points, including the domain corners and centre.
fn query_points(seed: u64, count: usize, domain: &Domain) -> Vec<Location> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut points = vec![
        domain.min,
        domain.max,
        domain.center(),
        Location::new(domain.min.x, domain.max.y),
        Location::new(domain.max.x, domain.min.y),
    ];
    points.extend((0..count).map(|_| {
        Location::new(
            rng.gen_range(domain.min.x..=domain.max.x),
            rng.gen_range(domain.min.y..=domain.max.y),
        )
    }));
    points
}

fn shard_layouts() -> Vec<ShardGridConfig> {
    vec![
        ShardGridConfig::new(1, 1),
        ShardGridConfig::new(2, 2),
        ShardGridConfig::new(4, 4),
        ShardGridConfig::new(5, 3),
        ShardGridConfig::new(16, 16),
        ShardGridConfig::new(4, 4).with_time_splits(2),
        ShardGridConfig::new(3, 5).with_time_splits(4),
    ]
}

/// Asserts every query of every slot agrees bit-for-bit between the two
/// indexes.
fn assert_equivalent(
    pool: &WorkerPool,
    num_slots: usize,
    domain: &Domain,
    config: ShardGridConfig,
    queries: &[Location],
) {
    let dense = WorkerIndex::build(pool, num_slots, domain);
    let sharded = ShardedWorkerIndex::build(pool, num_slots, domain, config);
    assert_eq!(dense.num_slots(), SpatialQuery::num_slots(&sharded));
    for slot in 0..num_slots {
        assert_eq!(
            dense.available_count(slot),
            SpatialQuery::available_count(&sharded, slot),
            "availability at slot {slot} under {config:?}"
        );
        for q in queries {
            assert_eq!(
                dense.nearest(slot, q),
                sharded.nearest(slot, q),
                "nearest at slot {slot}, query {q}, {config:?}"
            );
            for count in [2, 5, 17] {
                assert_eq!(
                    dense.k_nearest(slot, q, count),
                    sharded.k_nearest(slot, q, count),
                    "{count}-nearest at slot {slot}, query {q}, {config:?}"
                );
            }
            // Exclusion sets built from the actual nearest workers (the
            // conflict-fallback shape) plus ids absent from the slot.
            let top: Vec<WorkerId> = dense
                .k_nearest(slot, q, 4)
                .into_iter()
                .map(|w| w.worker)
                .collect();
            for take in 0..=top.len() {
                let mut excluded: BTreeSet<WorkerId> = top[..take].iter().copied().collect();
                excluded.insert(WorkerId(u32::MAX));
                assert_eq!(
                    dense.nearest_excluding_set(slot, q, &excluded),
                    sharded.nearest_excluding_set(slot, q, &excluded),
                    "excluding {excluded:?} at slot {slot}, query {q}, {config:?}"
                );
            }
        }
    }
}

#[test]
fn random_domains_agree_across_shard_layouts() {
    let domain = Domain::square(100.0);
    for seed in [3, 17, 92] {
        let pool = random_pool(seed, 150, 12, &domain);
        let queries = query_points(seed ^ 0xbeef, 12, &domain);
        for config in shard_layouts() {
            assert_equivalent(&pool, 12, &domain, config, &queries);
        }
    }
}

#[test]
fn rectangular_domains_agree() {
    let domain = Domain::new(Location::new(-40.0, 10.0), Location::new(60.0, 35.0));
    let pool = random_pool(7, 120, 6, &domain);
    let queries = query_points(8, 10, &domain);
    for config in [
        ShardGridConfig::new(8, 2),
        ShardGridConfig::new(2, 8).with_time_splits(3),
    ] {
        assert_equivalent(&pool, 6, &domain, config, &queries);
    }
}

#[test]
fn workers_on_tile_boundaries_agree() {
    // Workers placed exactly on every 4x4 tile boundary line of a 100x100
    // domain (x or y multiples of 25), including tile corners, plus queries
    // on the same lines: the router must not lose or double-count them.
    let domain = Domain::square(100.0);
    let mut entries = Vec::new();
    for i in 0..=4 {
        for j in 0..=10 {
            entries.push((0usize, i as f64 * 25.0, j as f64 * 10.0));
            entries.push((0usize, j as f64 * 10.0, i as f64 * 25.0));
        }
    }
    let pool: WorkerPool = entries
        .iter()
        .enumerate()
        .map(|(i, &(slot, x, y))| {
            Worker::new(
                WorkerId(i as u32),
                vec![WorkerSlot {
                    slot,
                    location: Location::new(x, y),
                }],
            )
        })
        .collect();
    let mut queries = vec![
        Location::new(25.0, 25.0),
        Location::new(50.0, 50.0),
        Location::new(75.0, 24.999999999),
        Location::new(25.000000001, 80.0),
    ];
    queries.extend(query_points(11, 8, &domain));
    for config in [
        ShardGridConfig::new(4, 4),
        ShardGridConfig::new(8, 8),
        ShardGridConfig::new(4, 4).with_time_splits(2),
    ] {
        assert_equivalent(&pool, 1, &domain, config, &queries);
    }
}

#[test]
fn empty_shards_and_empty_slots_agree() {
    // Every worker clusters into one corner tile, so almost every shard is
    // empty, and slot 1 has no workers at all.
    let domain = Domain::square(100.0);
    let mut rng = StdRng::seed_from_u64(23);
    let pool: WorkerPool = (0..60)
        .map(|i| {
            Worker::new(
                WorkerId(i as u32),
                vec![WorkerSlot {
                    slot: if i % 3 == 0 { 2 } else { 0 },
                    location: Location::new(rng.gen_range(0.0..8.0), rng.gen_range(0.0..8.0)),
                }],
            )
        })
        .collect();
    let queries = query_points(29, 10, &domain);
    for config in shard_layouts() {
        assert_equivalent(&pool, 3, &domain, config, &queries);
    }
    let sharded = ShardedWorkerIndex::build(&pool, 3, &domain, ShardGridConfig::new(10, 10));
    let empty = (0..sharded.num_shards())
        .filter(|&s| sharded.shard_entries(s) == 0)
        .count();
    assert!(
        empty > 90,
        "expected mostly empty shards, got {empty} empty"
    );
}

#[test]
fn dense_tiles_exercise_the_interior_grids() {
    // Many workers packed into few tiles force multi-cell interior grids in
    // every populated (shard, slot) bucket; answers must stay bit-identical
    // to the dense index.  (600 workers over a 2x2 grid gives ~150 workers
    // per tile-slot — far past the handful-per-cell target of `SlotGrid`.)
    let domain = Domain::square(50.0);
    let mut rng = StdRng::seed_from_u64(57);
    let pool: WorkerPool = (0..600)
        .map(|i| {
            // Two dense clusters, both inside single tiles of the 2x2 grid.
            let (cx, cy) = if i % 2 == 0 {
                (10.0, 10.0)
            } else {
                (40.0, 35.0)
            };
            Worker::new(
                WorkerId(i as u32),
                vec![WorkerSlot {
                    slot: (i % 2) as usize,
                    location: Location::new(
                        cx + rng.gen_range(-9.0..9.0),
                        cy + rng.gen_range(-9.0..9.0),
                    ),
                }],
            )
        })
        .collect();
    let queries = query_points(59, 14, &domain);
    for config in [
        ShardGridConfig::new(2, 2),
        ShardGridConfig::new(1, 1),
        ShardGridConfig::new(2, 2).with_time_splits(2),
    ] {
        assert_equivalent(&pool, 2, &domain, config, &queries);
    }
}

#[test]
fn interior_grid_filtered_search_survives_heavy_occupancy() {
    // Exclude large prefixes of a dense tile's workers through the filtered
    // query: the interior grid must keep expanding past excluded cells and
    // agree with the dense index's equivalent set query.
    let domain = Domain::square(40.0);
    let mut rng = StdRng::seed_from_u64(61);
    let pool: WorkerPool = (0..200)
        .map(|i| {
            Worker::new(
                WorkerId(i as u32),
                vec![WorkerSlot {
                    slot: 0,
                    location: Location::new(rng.gen_range(0.0..40.0), rng.gen_range(0.0..40.0)),
                }],
            )
        })
        .collect();
    let dense = WorkerIndex::build(&pool, 1, &domain);
    let config = ShardGridConfig::new(3, 3);
    let sharded = ShardedWorkerIndex::build(&pool, 1, &domain, config);
    for q in query_points(67, 8, &domain) {
        let order: Vec<_> = dense.k_nearest(0, &q, 200);
        for take in [0, 1, 5, 40, 150, 199, 200] {
            let excluded: BTreeSet<WorkerId> = order[..take].iter().map(|w| w.worker).collect();
            let by_shard: BTreeSet<(usize, WorkerId)> = order[..take]
                .iter()
                .map(|w| (sharded.spatial_shard_of(&w.location), w.worker))
                .collect();
            let via_dense = dense.nearest_excluding_set(0, &q, &excluded);
            let via_filter =
                sharded.nearest_excluding_with(0, &q, |s, w| by_shard.contains(&(s, w)));
            assert_eq!(
                via_dense.map(|w| (w.worker, w.distance.to_bits())),
                via_filter.map(|w| (w.worker, w.distance.to_bits())),
                "excluding the {take} nearest at query {q}"
            );
        }
    }
}

/// Asserts a *mutated* sharded index agrees bit-for-bit with a dense index
/// rebuilt from the mirror pool — the pruning-exactness check after a
/// mutation tape: `tile_min_distance` skips and `unscanned_bound` stops must
/// not lose any relocated (possibly out-of-domain, border-clamped) worker —
/// and that the `tile_interior_bound` guarantee still holds: a home-tile
/// answer strictly inside the bound *is* the global answer.
fn assert_mutated_exact(
    mutated: &ShardedWorkerIndex,
    mirror: &[Worker],
    num_slots: usize,
    domain: &Domain,
    queries: &[Location],
    ctx: &str,
) {
    let pool = WorkerPool::new(mirror.to_vec());
    let dense = WorkerIndex::build(&pool, num_slots, domain);
    for slot in 0..num_slots {
        assert_eq!(
            SpatialQuery::available_count(mutated, slot),
            dense.available_count(slot),
            "{ctx}: availability at slot {slot}"
        );
        for q in queries {
            for count in [1, 4, 13] {
                assert_eq!(
                    mutated.k_nearest(slot, q, count),
                    dense.k_nearest(slot, q, count),
                    "{ctx}: {count}-nearest at slot {slot}, query {q}"
                );
            }
            let bound = mutated.tile_interior_bound(q);
            if let Some(home) = mutated.nearest_in_home_tile(slot, q, |_| false) {
                if home.distance < bound {
                    assert_eq!(
                        Some(home),
                        dense.nearest(slot, q),
                        "{ctx}: interior-bound guarantee at slot {slot}, query {q}"
                    );
                }
            }
        }
    }
}

#[test]
fn mutation_tapes_keep_pruning_and_interior_bounds_exact() {
    // Arbitrary move/remove sequences — with moves drifting workers across
    // tiles and beyond the domain edges — must leave every distance bound
    // exact: the mutated index answers like a fresh dense rebuild, and
    // home-tile answers inside `tile_interior_bound` stay globally correct.
    let domain = Domain::square(80.0);
    for seed in [5u64, 29, 71, 113] {
        for config in [
            ShardGridConfig::new(4, 4),
            ShardGridConfig::new(3, 5).with_time_splits(2),
        ] {
            let pool = random_pool(seed, 80, 6, &domain);
            let mut mirror: Vec<Worker> = pool.workers().to_vec();
            let mut sharded = ShardedWorkerIndex::build(&pool, 6, &domain, config);
            let mut rng = StdRng::seed_from_u64(seed ^ 0x7a9e);
            let queries = query_points(seed ^ 0x51, 8, &domain);
            for step in 0..30 {
                if rng.gen_range(0..10) < 7 || mirror.len() < 10 {
                    // Move: up to 35% beyond the domain on either axis.
                    let at = rng.gen_range(0..mirror.len());
                    let to = Location::new(
                        rng.gen_range(domain.min.x - 28.0..domain.max.x + 28.0),
                        rng.gen_range(domain.min.y - 28.0..domain.max.y + 28.0),
                    );
                    let old = &mirror[at];
                    let id = old.id;
                    let slots = old
                        .availability()
                        .iter()
                        .map(|ws| WorkerSlot {
                            slot: ws.slot,
                            location: to,
                        })
                        .collect();
                    mirror[at] = Worker::with_reliability(id, slots, old.reliability);
                    assert!(sharded.move_worker(id, to).applied);
                } else {
                    let at = rng.gen_range(0..mirror.len());
                    let id = mirror.remove(at).id;
                    assert!(sharded.remove_worker(id).applied);
                }
                if step % 10 == 9 {
                    let ctx = format!("seed {seed}, step {step}, {config:?}");
                    assert_mutated_exact(&sharded, &mirror, 6, &domain, &queries, &ctx);
                }
            }
        }
    }
}

#[test]
fn worker_moved_out_of_domain_lands_in_the_rebuild_tile() {
    // The border-clamp invariant regression: a worker moved beyond any
    // domain edge must land in exactly the border tile a from-scratch
    // rebuild places it in — same per-shard entry counts, same answers.
    let domain = Domain::square(40.0);
    let config = ShardGridConfig::new(4, 4);
    let pool: WorkerPool = [(5.0, 5.0), (22.0, 13.0), (35.0, 30.0)]
        .iter()
        .enumerate()
        .map(|(i, &(x, y))| {
            Worker::new(
                WorkerId(i as u32),
                vec![WorkerSlot {
                    slot: 0,
                    location: Location::new(x, y),
                }],
            )
        })
        .collect();
    for target in [
        Location::new(-5.0, -5.0),
        Location::new(45.0, 20.0),
        Location::new(20.0, 47.0),
        Location::new(-3.0, 44.0),
        Location::new(41.0, -2.0),
        Location::new(2000.0, 2000.0),
    ] {
        let mut mutated = ShardedWorkerIndex::build(&pool, 1, &domain, config);
        assert!(mutated.move_worker(WorkerId(0), target).applied);

        let mut mirror: Vec<Worker> = pool.workers().to_vec();
        mirror[0] = Worker::new(
            WorkerId(0),
            vec![WorkerSlot {
                slot: 0,
                location: target,
            }],
        );
        let rebuilt = ShardedWorkerIndex::build(&WorkerPool::new(mirror), 1, &domain, config);

        // Same bucket placement, clamped into a border tile.
        for shard in 0..rebuilt.num_shards() {
            assert_eq!(
                mutated.shard_entries(shard),
                rebuilt.shard_entries(shard),
                "target {target}: shard {shard} entries"
            );
        }
        let (tx, ty) = mutated.tile_of(&target);
        assert!(
            tx == 0 || tx == 3 || ty == 0 || ty == 3,
            "target {target}: expected a border tile, got ({tx}, {ty})"
        );
        // And the clamped worker is still found from everywhere, never
        // pruned by the border-tile distance bounds.
        for q in [
            Location::new(0.0, 0.0),
            Location::new(39.0, 39.0),
            target,
            Location::new(20.0, 0.0),
        ] {
            assert_eq!(
                mutated.k_nearest(0, &q, 3),
                rebuilt.k_nearest(0, &q, 3),
                "target {target}, query {q}"
            );
        }
    }
}

#[test]
fn nearest_excluding_with_matches_the_set_query() {
    // The closure-filtered query (used by the concurrent engine's per-shard
    // ledgers) must agree with the global-set query when the filter encodes
    // the same exclusions, with occupancy routed by the worker's tile.
    let domain = Domain::square(100.0);
    let pool = random_pool(41, 120, 4, &domain);
    let queries = query_points(43, 10, &domain);
    for config in [
        ShardGridConfig::new(4, 4),
        ShardGridConfig::new(6, 2).with_time_splits(2),
    ] {
        let sharded = ShardedWorkerIndex::build(&pool, 4, &domain, config);
        for slot in 0..4 {
            for q in &queries {
                let top: Vec<_> = sharded.k_nearest(slot, q, 3);
                for take in 0..=top.len() {
                    let excluded: BTreeSet<WorkerId> =
                        top[..take].iter().map(|w| w.worker).collect();
                    // Record each excluded worker under its owning tile, as
                    // the sharded ledger would.
                    let by_shard: BTreeSet<(usize, WorkerId)> = top[..take]
                        .iter()
                        .map(|w| (sharded.spatial_shard_of(&w.location), w.worker))
                        .collect();
                    let via_set = sharded.nearest_excluding_set(slot, q, &excluded);
                    let via_filter =
                        sharded.nearest_excluding_with(slot, q, |s, w| by_shard.contains(&(s, w)));
                    assert_eq!(via_set, via_filter, "slot {slot}, query {q}, {config:?}");
                }
            }
        }
    }
}
