//! Property tests: [`ShardedWorkerIndex`] must answer every query
//! **bit-identically** to the dense [`WorkerIndex`] — same workers, same
//! order, same `f64` distances — across seeded domains, shard layouts,
//! tile-boundary workers and empty shards.  This equivalence is what lets the
//! assignment layer swap the sharded router in without changing a single
//! plan.

use std::collections::BTreeSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tcsc_core::{Domain, Location, Worker, WorkerId, WorkerPool, WorkerSlot};
use tcsc_index::{ShardGridConfig, ShardedWorkerIndex, SpatialQuery, WorkerIndex};

/// A seeded pool of workers with 1–4 availability slots each.
fn random_pool(seed: u64, num_workers: usize, num_slots: usize, domain: &Domain) -> WorkerPool {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..num_workers)
        .map(|i| {
            let start = rng.gen_range(0..num_slots);
            let len = rng.gen_range(1..=4.min(num_slots));
            let availability = (start..(start + len).min(num_slots))
                .map(|slot| WorkerSlot {
                    slot,
                    location: Location::new(
                        rng.gen_range(domain.min.x..=domain.max.x),
                        rng.gen_range(domain.min.y..=domain.max.y),
                    ),
                })
                .collect();
            Worker::new(WorkerId(i as u32), availability)
        })
        .collect()
}

/// Seeded query points, including the domain corners and centre.
fn query_points(seed: u64, count: usize, domain: &Domain) -> Vec<Location> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut points = vec![
        domain.min,
        domain.max,
        domain.center(),
        Location::new(domain.min.x, domain.max.y),
        Location::new(domain.max.x, domain.min.y),
    ];
    points.extend((0..count).map(|_| {
        Location::new(
            rng.gen_range(domain.min.x..=domain.max.x),
            rng.gen_range(domain.min.y..=domain.max.y),
        )
    }));
    points
}

fn shard_layouts() -> Vec<ShardGridConfig> {
    vec![
        ShardGridConfig::new(1, 1),
        ShardGridConfig::new(2, 2),
        ShardGridConfig::new(4, 4),
        ShardGridConfig::new(5, 3),
        ShardGridConfig::new(16, 16),
        ShardGridConfig::new(4, 4).with_time_splits(2),
        ShardGridConfig::new(3, 5).with_time_splits(4),
    ]
}

/// Asserts every query of every slot agrees bit-for-bit between the two
/// indexes.
fn assert_equivalent(
    pool: &WorkerPool,
    num_slots: usize,
    domain: &Domain,
    config: ShardGridConfig,
    queries: &[Location],
) {
    let dense = WorkerIndex::build(pool, num_slots, domain);
    let sharded = ShardedWorkerIndex::build(pool, num_slots, domain, config);
    assert_eq!(dense.num_slots(), SpatialQuery::num_slots(&sharded));
    for slot in 0..num_slots {
        assert_eq!(
            dense.available_count(slot),
            SpatialQuery::available_count(&sharded, slot),
            "availability at slot {slot} under {config:?}"
        );
        for q in queries {
            assert_eq!(
                dense.nearest(slot, q),
                sharded.nearest(slot, q),
                "nearest at slot {slot}, query {q}, {config:?}"
            );
            for count in [2, 5, 17] {
                assert_eq!(
                    dense.k_nearest(slot, q, count),
                    sharded.k_nearest(slot, q, count),
                    "{count}-nearest at slot {slot}, query {q}, {config:?}"
                );
            }
            // Exclusion sets built from the actual nearest workers (the
            // conflict-fallback shape) plus ids absent from the slot.
            let top: Vec<WorkerId> = dense
                .k_nearest(slot, q, 4)
                .into_iter()
                .map(|w| w.worker)
                .collect();
            for take in 0..=top.len() {
                let mut excluded: BTreeSet<WorkerId> = top[..take].iter().copied().collect();
                excluded.insert(WorkerId(u32::MAX));
                assert_eq!(
                    dense.nearest_excluding_set(slot, q, &excluded),
                    sharded.nearest_excluding_set(slot, q, &excluded),
                    "excluding {excluded:?} at slot {slot}, query {q}, {config:?}"
                );
            }
        }
    }
}

#[test]
fn random_domains_agree_across_shard_layouts() {
    let domain = Domain::square(100.0);
    for seed in [3, 17, 92] {
        let pool = random_pool(seed, 150, 12, &domain);
        let queries = query_points(seed ^ 0xbeef, 12, &domain);
        for config in shard_layouts() {
            assert_equivalent(&pool, 12, &domain, config, &queries);
        }
    }
}

#[test]
fn rectangular_domains_agree() {
    let domain = Domain::new(Location::new(-40.0, 10.0), Location::new(60.0, 35.0));
    let pool = random_pool(7, 120, 6, &domain);
    let queries = query_points(8, 10, &domain);
    for config in [
        ShardGridConfig::new(8, 2),
        ShardGridConfig::new(2, 8).with_time_splits(3),
    ] {
        assert_equivalent(&pool, 6, &domain, config, &queries);
    }
}

#[test]
fn workers_on_tile_boundaries_agree() {
    // Workers placed exactly on every 4x4 tile boundary line of a 100x100
    // domain (x or y multiples of 25), including tile corners, plus queries
    // on the same lines: the router must not lose or double-count them.
    let domain = Domain::square(100.0);
    let mut entries = Vec::new();
    for i in 0..=4 {
        for j in 0..=10 {
            entries.push((0usize, i as f64 * 25.0, j as f64 * 10.0));
            entries.push((0usize, j as f64 * 10.0, i as f64 * 25.0));
        }
    }
    let pool: WorkerPool = entries
        .iter()
        .enumerate()
        .map(|(i, &(slot, x, y))| {
            Worker::new(
                WorkerId(i as u32),
                vec![WorkerSlot {
                    slot,
                    location: Location::new(x, y),
                }],
            )
        })
        .collect();
    let mut queries = vec![
        Location::new(25.0, 25.0),
        Location::new(50.0, 50.0),
        Location::new(75.0, 24.999999999),
        Location::new(25.000000001, 80.0),
    ];
    queries.extend(query_points(11, 8, &domain));
    for config in [
        ShardGridConfig::new(4, 4),
        ShardGridConfig::new(8, 8),
        ShardGridConfig::new(4, 4).with_time_splits(2),
    ] {
        assert_equivalent(&pool, 1, &domain, config, &queries);
    }
}

#[test]
fn empty_shards_and_empty_slots_agree() {
    // Every worker clusters into one corner tile, so almost every shard is
    // empty, and slot 1 has no workers at all.
    let domain = Domain::square(100.0);
    let mut rng = StdRng::seed_from_u64(23);
    let pool: WorkerPool = (0..60)
        .map(|i| {
            Worker::new(
                WorkerId(i as u32),
                vec![WorkerSlot {
                    slot: if i % 3 == 0 { 2 } else { 0 },
                    location: Location::new(rng.gen_range(0.0..8.0), rng.gen_range(0.0..8.0)),
                }],
            )
        })
        .collect();
    let queries = query_points(29, 10, &domain);
    for config in shard_layouts() {
        assert_equivalent(&pool, 3, &domain, config, &queries);
    }
    let sharded = ShardedWorkerIndex::build(&pool, 3, &domain, ShardGridConfig::new(10, 10));
    let empty = (0..sharded.num_shards())
        .filter(|&s| sharded.shard_entries(s) == 0)
        .count();
    assert!(
        empty > 90,
        "expected mostly empty shards, got {empty} empty"
    );
}

#[test]
fn dense_tiles_exercise_the_interior_grids() {
    // Many workers packed into few tiles force multi-cell interior grids in
    // every populated (shard, slot) bucket; answers must stay bit-identical
    // to the dense index.  (600 workers over a 2x2 grid gives ~150 workers
    // per tile-slot — far past the handful-per-cell target of `SlotGrid`.)
    let domain = Domain::square(50.0);
    let mut rng = StdRng::seed_from_u64(57);
    let pool: WorkerPool = (0..600)
        .map(|i| {
            // Two dense clusters, both inside single tiles of the 2x2 grid.
            let (cx, cy) = if i % 2 == 0 {
                (10.0, 10.0)
            } else {
                (40.0, 35.0)
            };
            Worker::new(
                WorkerId(i as u32),
                vec![WorkerSlot {
                    slot: (i % 2) as usize,
                    location: Location::new(
                        cx + rng.gen_range(-9.0..9.0),
                        cy + rng.gen_range(-9.0..9.0),
                    ),
                }],
            )
        })
        .collect();
    let queries = query_points(59, 14, &domain);
    for config in [
        ShardGridConfig::new(2, 2),
        ShardGridConfig::new(1, 1),
        ShardGridConfig::new(2, 2).with_time_splits(2),
    ] {
        assert_equivalent(&pool, 2, &domain, config, &queries);
    }
}

#[test]
fn interior_grid_filtered_search_survives_heavy_occupancy() {
    // Exclude large prefixes of a dense tile's workers through the filtered
    // query: the interior grid must keep expanding past excluded cells and
    // agree with the dense index's equivalent set query.
    let domain = Domain::square(40.0);
    let mut rng = StdRng::seed_from_u64(61);
    let pool: WorkerPool = (0..200)
        .map(|i| {
            Worker::new(
                WorkerId(i as u32),
                vec![WorkerSlot {
                    slot: 0,
                    location: Location::new(rng.gen_range(0.0..40.0), rng.gen_range(0.0..40.0)),
                }],
            )
        })
        .collect();
    let dense = WorkerIndex::build(&pool, 1, &domain);
    let config = ShardGridConfig::new(3, 3);
    let sharded = ShardedWorkerIndex::build(&pool, 1, &domain, config);
    for q in query_points(67, 8, &domain) {
        let order: Vec<_> = dense.k_nearest(0, &q, 200);
        for take in [0, 1, 5, 40, 150, 199, 200] {
            let excluded: BTreeSet<WorkerId> = order[..take].iter().map(|w| w.worker).collect();
            let by_shard: BTreeSet<(usize, WorkerId)> = order[..take]
                .iter()
                .map(|w| (sharded.spatial_shard_of(&w.location), w.worker))
                .collect();
            let via_dense = dense.nearest_excluding_set(0, &q, &excluded);
            let via_filter =
                sharded.nearest_excluding_with(0, &q, |s, w| by_shard.contains(&(s, w)));
            assert_eq!(
                via_dense.map(|w| (w.worker, w.distance.to_bits())),
                via_filter.map(|w| (w.worker, w.distance.to_bits())),
                "excluding the {take} nearest at query {q}"
            );
        }
    }
}

#[test]
fn nearest_excluding_with_matches_the_set_query() {
    // The closure-filtered query (used by the concurrent engine's per-shard
    // ledgers) must agree with the global-set query when the filter encodes
    // the same exclusions, with occupancy routed by the worker's tile.
    let domain = Domain::square(100.0);
    let pool = random_pool(41, 120, 4, &domain);
    let queries = query_points(43, 10, &domain);
    for config in [
        ShardGridConfig::new(4, 4),
        ShardGridConfig::new(6, 2).with_time_splits(2),
    ] {
        let sharded = ShardedWorkerIndex::build(&pool, 4, &domain, config);
        for slot in 0..4 {
            for q in &queries {
                let top: Vec<_> = sharded.k_nearest(slot, q, 3);
                for take in 0..=top.len() {
                    let excluded: BTreeSet<WorkerId> =
                        top[..take].iter().map(|w| w.worker).collect();
                    // Record each excluded worker under its owning tile, as
                    // the sharded ledger would.
                    let by_shard: BTreeSet<(usize, WorkerId)> = top[..take]
                        .iter()
                        .map(|w| (sharded.spatial_shard_of(&w.location), w.worker))
                        .collect();
                    let via_set = sharded.nearest_excluding_set(slot, q, &excluded);
                    let via_filter =
                        sharded.nearest_excluding_with(slot, q, |s, w| by_shard.contains(&(s, w)));
                    assert_eq!(via_set, via_filter, "slot {slot}, query {q}, {config:?}");
                }
            }
        }
    }
}
