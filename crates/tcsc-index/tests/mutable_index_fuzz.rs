//! Differential fuzz of the mutable spatial indexes: random
//! insert/remove/move tapes applied to a live [`WorkerIndex`] and
//! [`ShardedWorkerIndex`] must answer every [`SpatialQuery`] path
//! bit-identically to indexes **rebuilt from scratch** from an equivalently
//! mutated mirror pool — the rebuild equivalence invariant of
//! [`MutableSpatialIndex`].
//!
//! 320 seeds × 24-op tapes, checkpointed every few ops.  Covered paths:
//! `nearest`, `k_nearest` (several counts), `nearest_excluding_set`
//! (including absent ids), the occupancy-filtered
//! `nearest_excluding_with`, `nearest_in_home_tile` +
//! `tile_interior_bound` consistency, and the structural counters
//! (`available_count`, `total_workers`, `indexed_entries`, per-shard entry
//! counts).  Tapes deliberately move and insert workers *outside* the
//! domain, exercising the border-clamp invariant shared by `build` and
//! `move_worker`.

use std::collections::BTreeSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tcsc_core::{Domain, Location, Worker, WorkerId, WorkerPool, WorkerSlot};
use tcsc_index::{
    MutableSpatialIndex, NearestWorker, ShardGridConfig, ShardedWorkerIndex, SpatialQuery,
    WorkerIndex,
};

const SEEDS: u64 = 320;
const OPS_PER_TAPE: usize = 24;
const CHECK_EVERY: usize = 6;

/// Bit-exact comparison key of one query answer.
fn key(w: &NearestWorker) -> (WorkerId, u64, u64, u64, u64) {
    (
        w.worker,
        w.distance.to_bits(),
        w.location.x.to_bits(),
        w.location.y.to_bits(),
        w.reliability.to_bits(),
    )
}

fn keys(list: &[NearestWorker]) -> Vec<(WorkerId, u64, u64, u64, u64)> {
    list.iter().map(key).collect()
}

/// A deterministic pseudo-occupancy predicate over worker ids (the shard
/// argument is irrelevant for occupancy *membership*, which is global).
fn occupied(id: WorkerId) -> bool {
    id.0.wrapping_mul(2654435761) % 4 == 0
}

fn random_location(rng: &mut StdRng, domain: &Domain) -> Location {
    // 20% of placements land outside the domain (up to 30% beyond each
    // edge), so border-tile clamping is continuously exercised.
    let slack = if rng.gen_range(0..5) == 0 { 0.3 } else { 0.0 };
    let w = domain.width();
    let h = domain.height();
    Location::new(
        rng.gen_range(domain.min.x - slack * w..domain.max.x + slack * w),
        rng.gen_range(domain.min.y - slack * h..domain.max.y + slack * h),
    )
}

fn random_worker(rng: &mut StdRng, id: u32, num_slots: usize, domain: &Domain) -> Worker {
    let count = rng.gen_range(1..=3);
    let slots = (0..count)
        .map(|_| WorkerSlot {
            // Some entries beyond the slot horizon: ignored by every build
            // and by the registry, so they must not perturb equivalence.
            slot: rng.gen_range(0..num_slots + 2),
            location: random_location(rng, domain),
        })
        .collect();
    Worker::with_reliability(WorkerId(id), slots, rng.gen_range(0.5..1.0))
}

fn query_points(rng: &mut StdRng, domain: &Domain) -> Vec<Location> {
    let mut points = vec![
        domain.min,
        domain.max,
        Location::new(domain.min.x, domain.max.y),
        domain.center(),
        // An out-of-domain query: routing clamps it into a border tile.
        Location::new(domain.min.x - 7.0, domain.center().y),
    ];
    points.push(random_location(rng, domain));
    points.push(random_location(rng, domain));
    points
}

/// Asserts that the two *mutated* indexes answer every query path exactly
/// like the two indexes *rebuilt from scratch* at the mirror-pool state.
#[allow(clippy::too_many_arguments)]
fn assert_checkpoint(
    seed: u64,
    step: usize,
    mutated_dense: &WorkerIndex,
    mutated_sharded: &ShardedWorkerIndex,
    mirror: &[Worker],
    num_slots: usize,
    domain: &Domain,
    config: ShardGridConfig,
    rng: &mut StdRng,
) {
    let ctx = format!("seed {seed}, step {step}");
    let pool = WorkerPool::new(mirror.to_vec());
    let fresh_dense = WorkerIndex::build(&pool, num_slots, domain);
    let fresh_sharded = ShardedWorkerIndex::build(&pool, num_slots, domain, config);

    assert_eq!(mutated_dense.total_workers(), pool.len(), "{ctx}");
    assert_eq!(mutated_sharded.total_workers(), pool.len(), "{ctx}");
    assert_eq!(
        mutated_dense.indexed_entries(),
        fresh_dense.indexed_entries(),
        "{ctx}"
    );
    assert_eq!(
        mutated_sharded.indexed_entries(),
        fresh_sharded.indexed_entries(),
        "{ctx}"
    );
    // Structural equivalence of the sharded layout: every shard owns exactly
    // the entries a rebuild would give it (the clamp-invariant regression at
    // fuzz scale).
    for shard in 0..fresh_sharded.num_shards() {
        assert_eq!(
            mutated_sharded.shard_entries(shard),
            fresh_sharded.shard_entries(shard),
            "{ctx}, shard {shard}"
        );
    }

    let points = query_points(rng, domain);
    for slot in 0..num_slots {
        assert_eq!(
            mutated_dense.available_count(slot),
            fresh_dense.available_count(slot),
            "{ctx}, slot {slot}"
        );
        assert_eq!(
            mutated_sharded.available_count(slot),
            fresh_dense.available_count(slot),
            "{ctx}, slot {slot}"
        );
        // The global exclusion set equivalent to the pseudo-occupancy
        // predicate: every available worker the predicate marks occupied.
        let occupied_set: BTreeSet<WorkerId> = pool
            .available_at(slot)
            .filter(|(w, _)| occupied(w.id))
            .map(|(w, _)| w.id)
            .collect();
        // An exclusion set mixing present and absent ids.
        let mixed_set: BTreeSet<WorkerId> = pool
            .workers()
            .iter()
            .filter(|w| w.id.0 % 3 == 0)
            .map(|w| w.id)
            .chain([WorkerId(u32::MAX), WorkerId(u32::MAX - 7)])
            .collect();
        for q in &points {
            let ctx = format!("{ctx}, slot {slot}, query {q}");
            for count in [1usize, 3, 7] {
                let want = keys(&fresh_dense.k_nearest(slot, q, count));
                assert_eq!(
                    keys(&mutated_dense.k_nearest(slot, q, count)),
                    want,
                    "{ctx}, k={count}"
                );
                assert_eq!(
                    keys(&mutated_sharded.k_nearest(slot, q, count)),
                    want,
                    "{ctx}, k={count}"
                );
            }
            for set in [&occupied_set, &mixed_set] {
                let want = fresh_dense
                    .nearest_excluding_set(slot, q, set)
                    .map(|w| key(&w));
                assert_eq!(
                    mutated_dense
                        .nearest_excluding_set(slot, q, set)
                        .map(|w| key(&w)),
                    want,
                    "{ctx}"
                );
                assert_eq!(
                    mutated_sharded
                        .nearest_excluding_set(slot, q, set)
                        .map(|w| key(&w)),
                    want,
                    "{ctx}"
                );
            }
            // Occupancy-filtered path: the per-tile-shard callback answers
            // like the equivalent global exclusion set.
            let via_filter = mutated_sharded
                .nearest_excluding_with(slot, q, |_, id| occupied(id))
                .map(|w| key(&w));
            assert_eq!(
                via_filter,
                fresh_dense
                    .nearest_excluding_set(slot, q, &occupied_set)
                    .map(|w| key(&w)),
                "{ctx}"
            );
            // Home-tile search + interior bound: identical to a rebuild, and
            // whenever the answer is strictly inside the home tile's interior
            // bound it must equal the *global* filtered answer.
            let home = mutated_sharded
                .nearest_in_home_tile(slot, q, occupied)
                .map(|w| key(&w));
            assert_eq!(
                home,
                fresh_sharded
                    .nearest_in_home_tile(slot, q, occupied)
                    .map(|w| key(&w)),
                "{ctx}"
            );
            let bound = mutated_sharded.tile_interior_bound(q);
            assert_eq!(
                bound.to_bits(),
                fresh_sharded.tile_interior_bound(q).to_bits(),
                "{ctx}"
            );
            if let Some(h) = &home {
                if f64::from_bits(h.1) < bound {
                    assert_eq!(Some(*h), via_filter, "{ctx}: interior-bound guarantee");
                }
            }
        }
    }
}

#[test]
fn mutated_indexes_stay_bit_identical_to_rebuilds() {
    let layouts = [
        ShardGridConfig::new(1, 1),
        ShardGridConfig::new(2, 3),
        ShardGridConfig::new(4, 4),
        ShardGridConfig::new(3, 2).with_time_splits(2),
        ShardGridConfig::new(5, 5).with_time_splits(3),
    ];
    for seed in 0..SEEDS {
        let mut rng = StdRng::seed_from_u64(0x0b57_ac1e ^ seed);
        let num_slots = rng.gen_range(2..=4);
        let side = rng.gen_range(30.0..80.0);
        let domain = Domain::new(
            Location::new(-side / 4.0, 0.0),
            Location::new(side, side * 0.75),
        );
        let config = layouts[seed as usize % layouts.len()];

        let initial = rng.gen_range(8..=20);
        let mut mirror: Vec<Worker> = (0..initial)
            .map(|id| random_worker(&mut rng, id, num_slots, &domain))
            .collect();
        let mut next_id = initial;
        let pool = WorkerPool::new(mirror.clone());
        let mut dense = WorkerIndex::build(&pool, num_slots, &domain);
        let mut sharded = ShardedWorkerIndex::build(&pool, num_slots, &domain, config);

        for step in 0..OPS_PER_TAPE {
            match rng.gen_range(0..4) {
                // Insert a brand-new worker (offline worker coming online).
                0 => {
                    let worker = random_worker(&mut rng, next_id, num_slots, &domain);
                    next_id += 1;
                    assert!(dense.insert_worker(&worker).applied);
                    assert!(sharded.insert_worker(&worker).applied);
                    mirror.push(worker);
                }
                // Remove a random worker (going offline).
                1 if !mirror.is_empty() => {
                    let at = rng.gen_range(0..mirror.len());
                    let id = mirror.remove(at).id;
                    assert!(dense.remove_worker(id).applied);
                    assert!(sharded.remove_worker(id).applied);
                }
                // Move a random worker: every availability entry relocates.
                _ if !mirror.is_empty() => {
                    let at = rng.gen_range(0..mirror.len());
                    let to = random_location(&mut rng, &domain);
                    let old = &mirror[at];
                    let id = old.id;
                    let moved_slots = old
                        .availability()
                        .iter()
                        .map(|ws| WorkerSlot {
                            slot: ws.slot,
                            location: to,
                        })
                        .collect();
                    mirror[at] = Worker::with_reliability(id, moved_slots, old.reliability);
                    let md = dense.move_worker(id, to);
                    let ms = sharded.move_worker(id, to);
                    assert!(md.applied && ms.applied);
                    assert!(
                        ms.entries_touched <= ms.rebuild_equiv_entries,
                        "a tile-local splice never exceeds the full rebuild"
                    );
                }
                _ => {}
            }
            if (step + 1) % CHECK_EVERY == 0 || step + 1 == OPS_PER_TAPE {
                assert_checkpoint(
                    seed, step, &dense, &sharded, &mirror, num_slots, &domain, config, &mut rng,
                );
            }
        }
        // Rejections leave both indexes untouched.
        assert!(!dense.remove_worker(WorkerId(u32::MAX)).applied);
        assert!(
            !sharded
                .move_worker(WorkerId(u32::MAX), domain.center())
                .applied
        );
    }
}
